"""Streaming fraud monitoring: detect anomalous bursts as they arrive.

The static workflow (fit -> score -> threshold) assumes a finished graph.
This walkthrough shows the streaming workflow instead:

1. fit UMGAD once on the current graph and wrap it in a DetectorService;
2. synthesize an event stream — normal churn (edge adds/removals,
   attribute jitter, node arrivals) with injected anomalous bursts
   (clique formation, attribute hijacks), the streaming analogue of the
   paper's injection protocol;
3. feed the stream through a StreamMonitor: each window the evolving
   graph is snapshotted in O(delta), scored through the warm service, and
   typed alerts fire for new top-k entrants, per-node score jumps, and
   score-distribution drift (PSI/KS);
4. check the alerts against the known burst members.

Run:
    PYTHONPATH=src python examples/streaming_fraud.py
"""

import numpy as np

from repro import UMGAD, UMGADConfig, load_dataset
from repro.serve import DetectorService
from repro.stream import (
    IncrementalGraphBuilder,
    ScoreJump,
    StreamMonitor,
    TopKEntrant,
    synthesize_stream,
)


def main():
    # 1. The graph as of "now", and a detector fitted on it.
    dataset = load_dataset("retail", scale=0.2, num_features=16, seed=7)
    graph = dataset.graph
    print(f"base graph: {graph}")

    config = UMGADConfig(epochs=15, mask_repeats=1, hidden_dim=16, seed=0)
    model = UMGAD(config).fit(graph)
    service = DetectorService(model)   # a checkpoint path works here too

    # 2. What the next hours of traffic look like: mostly churn, with an
    #    anomalous burst every ~300 events.
    events, truth = synthesize_stream(
        graph, 1500, np.random.default_rng(42),
        burst_every=300, clique_size=8, attr_burst_size=6)
    print(f"stream: {len(events)} events, "
          f"{len(truth.bursts)} injected bursts "
          f"({', '.join(b.kind for b in truth.bursts)})")

    # 3. Monitor the stream in 250-event windows, collecting per-node
    #    alerts as they fire (monitor.reports only keeps recent windows).
    builder = IncrementalGraphBuilder.from_graph(graph)
    monitor = StreamMonitor(service, builder, window=250, top_k=15,
                            jump_sigma=5.0, psi_threshold=0.25)
    flagged = set()

    def consume(report):
        print(report.render())
        flagged.update(alert.node for alert in report.alerts
                       if isinstance(alert, (TopKEntrant, ScoreJump)))

    for report in monitor.run(events):
        consume(report)
    tail = monitor.flush()
    if tail is not None:
        consume(tail)

    # 4. Did the alerts point at the injected burst members?
    burst_nodes = set(truth.anomaly_nodes.tolist())
    hits = flagged & burst_nodes
    print(f"\nalerted nodes: {len(flagged)}, "
          f"burst members among them: {len(hits)} / {len(burst_nodes)}")
    print(f"serve cache: {service.stats.to_dict()}")


if __name__ == "__main__":
    main()
