"""Bring your own data: build a MultiplexGraph from raw edge lists.

Shows the minimal path from "I have CSV-ish interaction logs" to UMGAD
scores: construct per-relation edge arrays, stack them into a
``MultiplexGraph`` with a feature matrix, fit, and read out scored nodes.
No generators, no injection — this is the integration template.

Run:
    python examples/custom_dataset.py
"""

import numpy as np

from repro import UMGAD, UMGADConfig
from repro.graphs import MultiplexGraph, RelationGraph


def fake_interaction_logs(rng, num_accounts=600):
    """Stand-in for your real logs: three relation edge lists + features.

    Replace this with your own loading code; each relation is just an
    (E, 2) integer array of node-id pairs, features an (n, f) float array.
    """
    # Two behavioural communities plus a small coordinated cluster.
    community = rng.integers(0, 2, size=num_accounts)
    centroids = rng.normal(size=(2, 24))
    features = centroids[community] + rng.normal(0, 0.5, (num_accounts, 24))

    def community_edges(count):
        a = rng.integers(0, num_accounts, size=count * 2)
        b = rng.integers(0, num_accounts, size=count * 2)
        keep = community[a] == community[b]
        return np.stack([a[keep][:count], b[keep][:count]], axis=1)

    transfers = community_edges(1_500)
    messages = community_edges(3_000)
    logins = community_edges(800)

    # A coordinated cluster of 12 accounts: dense transfers among
    # themselves, features copied from a single template (bot farm).
    bots = rng.choice(num_accounts, size=12, replace=False)
    iu, iv = np.triu_indices(12, k=1)
    bot_edges = np.stack([bots[iu], bots[iv]], axis=1)
    transfers = np.concatenate([transfers, bot_edges])
    features[bots] = features[bots[0]] + rng.normal(0, 0.05, (12, 24))

    return {"transfer": transfers, "message": messages, "login": logins}, \
        features, bots


def main():
    rng = np.random.default_rng(3)
    edge_lists, features, bots = fake_interaction_logs(rng)

    # --- the integration step: raw arrays -> MultiplexGraph
    n = features.shape[0]
    graph = MultiplexGraph(
        x=features,
        relations={name: RelationGraph(n, edges, name=name)
                   for name, edges in edge_lists.items()},
    )
    print(f"built {graph}")

    model = UMGAD(UMGADConfig(epochs=30, seed=0))
    model.fit(graph)

    scores = model.decision_scores()
    result = model.threshold()
    flagged = np.flatnonzero(scores >= result.threshold)
    hits = len(set(flagged.tolist()) & set(bots.tolist()))
    print(f"flagged {flagged.size} accounts (threshold {result.threshold:.3f})")
    print(f"{hits} of the {bots.size} planted bot accounts are in the "
          f"flagged set")
    print("top-10 most anomalous accounts:", np.argsort(-scores)[:10].tolist())


if __name__ == "__main__":
    main()
