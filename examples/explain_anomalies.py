"""Explaining flagged anomalies: why did UMGAD score this node highly?

Production anomaly detection needs evidence, not just scores. This example
fits UMGAD on the YelpChi-like review network, takes the top flagged nodes,
and prints each one's evidence bundle: attribute residual (with the most
deviant feature dimensions), per-relation structure reconstruction error,
and the learned relation weights that fused them.

Run:
    python examples/explain_anomalies.py
"""

import numpy as np

from repro import UMGAD, UMGADConfig, load_dataset
from repro.core import AnomalyExplainer


def main():
    dataset = load_dataset("yelpchi", scale=0.35, seed=7)
    print(f"review network: {dataset.graph}")

    model = UMGAD(UMGADConfig(epochs=30, mask_ratio=0.6, encoder_layers=2,
                              seed=0))
    model.fit(dataset.graph)

    explainer = AnomalyExplainer(model, dataset.graph)
    top = explainer.top_anomalies(k=5)

    print("\n--- top flagged nodes, with evidence ---")
    for explanation in top:
        truth = "TRUE anomaly" if dataset.labels[explanation.node] else "normal"
        print(f"\n[{truth}]")
        print(explanation.summary())

    # Aggregate view: which relation carried the most anomaly signal?
    weights = model.relation_importance
    dominant = max(weights, key=weights.get)
    print(f"\nmost informative relation (learned a_r): {dominant} "
          f"({weights[dominant]:.2f})")

    hits = sum(dataset.labels[e.node] for e in top)
    print(f"{hits}/5 of the top-explained nodes are labelled anomalies")


if __name__ == "__main__":
    main()
