"""Serving UMGAD over HTTP: micro-batching, hot-swap, and metrics.

The in-process workflow (DetectorService in your own interpreter) assumes
every consumer imports this package. This walkthrough shows the network
workflow instead:

1. fit UMGAD once, register the checkpoint in a ModelRegistry, and boot
   the HTTP gateway on an ephemeral port;
2. hit /v1/score from many concurrent clients with the *same* graph —
   the micro-batcher coalesces the herd into one scoring pass, and the
   response scores are bitwise-identical to in-process score_graph;
3. push live events through /v1/events and read the window report;
4. register a second checkpoint and hot-swap it via
   /v1/models/{name}/activate without dropping the server;
5. read the Prometheus /metrics text to see what all of it cost.

Run:
    PYTHONPATH=src python examples/serving_gateway.py
"""

import threading

import numpy as np

from repro import UMGAD, UMGADConfig, load_dataset
from repro.graphs import random_multiplex
from repro.serve import ModelRegistry
from repro.server import Gateway, ServerClient, ServerThread
from repro.stream import synthesize_stream


def main():
    # 1. Train once, checkpoint, serve.
    dataset = load_dataset("retail", scale=0.2, num_features=16, seed=7)
    config = UMGADConfig(epochs=15, mask_repeats=1, hidden_dim=16, seed=0)
    model = UMGAD(config).fit(dataset.graph)

    registry = ModelRegistry("example-models")
    registry.save("retail-v1", model, graph=dataset.graph, overwrite=True)
    service = registry.service("retail-v1")
    gateway = Gateway(service, registry=registry, active_model="retail-v1",
                      base_graph=dataset.graph, linger_ms=10.0, window=200)

    with ServerThread(gateway) as server:
        print(f"serving on {server.url}")

        # 2. A thundering herd of identical requests -> one scoring pass.
        fresh = random_multiplex(120, dataset.graph.num_relations,
                                 dataset.graph.num_features,
                                 np.random.default_rng(1))
        responses = []
        lock = threading.Lock()

        def one_client():
            with ServerClient(port=server.port) as client:
                response = client.score(fresh, top_k=5)
            with lock:
                responses.append(response)

        threads = [threading.Thread(target=one_client) for _ in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()

        served = np.asarray(responses[0]["scores"])
        direct = model.score_graph(fresh)
        stats = gateway.batcher.stats
        print(f"herd of {len(responses)} requests -> "
              f"{service.stats.misses} scoring pass(es), "
              f"{stats.coalesced} coalesced joins")
        print(f"served == in-process score_graph bitwise: "
              f"{np.array_equal(served, direct)}")

        # 3. Live events through the same server.
        events, _truth = synthesize_stream(dataset.graph, 400,
                                           np.random.default_rng(2),
                                           burst_every=150)
        with ServerClient(port=server.port) as client:
            report = client.events(events, flush=True)
            print(f"events: {report['accepted']} accepted, "
                  f"{len(report['reports'])} window report(s), "
                  f"{report['alerts']} alert(s)")

            # 4. Hot-swap a refreshed model without restarting.
            refreshed = UMGAD(config).fit(dataset.graph)
            registry.save("retail-v2", refreshed, graph=dataset.graph,
                          overwrite=True)
            swap = client.activate("retail-v2")
            print(f"activated {swap['activated']} "
                  f"({swap['refit_epochs']} epochs recorded)")

            # 5. What did all of that cost?
            interesting = ("requests_total", "batcher_batches",
                           "batcher_coalesced", "cache_hits",
                           "monitor_events")
            for line in client.metrics().splitlines():
                if line.startswith("repro_") and \
                        any(key in line for key in interesting):
                    print(f"  {line}")


if __name__ == "__main__":
    main()
