"""The label-free threshold strategy, step by step (paper Sec. IV-E, RQ1).

Walks through Eqs. 20-23 on real model scores: sort, smooth with a moving
average, take first/second differences, find the inflection point — then
compares the flagged count against (a) the true anomaly count and (b) the
naive alternatives the paper critiques (fixed quantile, elbow-free argmax).

Run:
    python examples/threshold_selection.py
"""

import numpy as np

from repro import UMGAD, UMGADConfig, load_dataset
from repro.core.threshold import default_window, moving_average, select_threshold


def ascii_curve(values, width=64, height=10):
    """Tiny ASCII plot of a descending score curve."""
    idx = np.linspace(0, len(values) - 1, width).astype(int)
    ys = np.asarray(values)[idx]
    lo, hi = ys.min(), ys.max()
    rows = []
    for level in range(height, -1, -1):
        cut = lo + (hi - lo) * level / height
        rows.append("".join("#" if y >= cut else " " for y in ys))
    return "\n".join(rows)


def main():
    dataset = load_dataset("alibaba", scale=0.5, seed=7)
    model = UMGAD(UMGADConfig(epochs=40, mask_ratio=0.2, epsilon=0.7, seed=0))
    model.fit(dataset.graph)
    scores = model.decision_scores()

    # --- Eqs. 20-23, spelled out
    ordered = np.sort(scores)[::-1]
    w = default_window(len(scores))
    smoothed = moving_average(ordered, w)              # Eq. 20
    delta1 = smoothed[:-1] - smoothed[1:]              # Eq. 21
    delta2 = np.abs(delta1[:-1] - delta1[1:])          # Eq. 22
    result = select_threshold(scores)                  # Eq. 23 + tie-break

    print("ranked anomaly-score curve (descending):")
    print(ascii_curve(smoothed))
    print(f"\nsmoothing window w = max(0.0001*|V|, 5) = {w}")
    print(f"inflection index T = {result.index}")
    print(f"threshold s(T)     = {result.threshold:.4f}")
    print(f"flagged            = {result.num_anomalies}")
    print(f"true anomalies     = {dataset.num_anomalies}")

    # --- the alternatives the paper argues against
    naive_argmax = int(np.argmax(delta2))
    for q in (0.90, 0.95, 0.99):
        flagged = int((scores >= np.quantile(scores, q)).sum())
        print(f"fixed quantile {q:.0%}: flags {flagged:5d} "
              f"(needs the anomaly rate a priori)")
    print(f"raw argmax|Δ2| (no tie-break): index {naive_argmax} — "
          f"sensitive to top-of-curve spikes")
    print("\nThe inflection strategy needs neither labels nor the anomaly "
          "rate, and lands near the true count when the detector separates "
          "the classes (the paper's RQ1 claim).")


if __name__ == "__main__":
    main()
