"""Quickstart: detect anomalies in a multiplex graph with UMGAD.

Loads the Retail-like dataset (user-item graph with View/Cart/Buy
relations and injected anomalies), fits UMGAD, selects the anomaly-score
threshold WITHOUT ground truth, and evaluates against the held-out labels.

Run:
    python examples/quickstart.py
"""

from repro import UMGAD, UMGADConfig, load_dataset, macro_f1, roc_auc


def main():
    # 1. Load a dataset: a multiplex graph + labels (labels are used only
    #    for evaluation, never during fitting).
    dataset = load_dataset("retail", scale=0.4, seed=7)
    graph = dataset.graph
    print(f"dataset: {graph}")
    print(f"true anomalies: {dataset.num_anomalies} / {graph.num_nodes} nodes")

    # 2. Configure and fit. mask_ratio / encoder depth follow the paper's
    #    per-dataset settings (Sec. V-A3); epsilon weights the attribute
    #    error for injected-anomaly data.
    config = UMGADConfig(epochs=40, mask_ratio=0.2, encoder_layers=1,
                         epsilon=0.7, seed=0)
    model = UMGAD(config)
    model.fit(graph, verbose=True)

    # 3. Anomaly scores and the label-free threshold (paper Sec. IV-E).
    scores = model.decision_scores()
    threshold = model.threshold()
    print(f"\ninflection threshold: {threshold.threshold:.4f} "
          f"(flags {threshold.num_anomalies} nodes; window={threshold.window})")

    # 4. Which relations mattered? (learned fusion weights a_r)
    print("learned relation importance:",
          {k: round(v, 3) for k, v in model.relation_importance.items()})

    # 5. Evaluate (labels only used here).
    predictions = model.predict()
    print(f"\nAUC      = {roc_auc(dataset.labels, scores):.3f}")
    print(f"Macro-F1 = {macro_f1(dataset.labels, predictions):.3f}")


if __name__ == "__main__":
    main()
