"""E-commerce fraud detection on a custom multiplex behaviour graph.

This is the paper intro's motivating scenario: users interact with items
through View / Cart / Buy relations; fraud campaigns form coordinated
cliques (review-scrubbing buffs) and some accounts carry stolen profiles
(attribute anomalies). The example builds the graph from scratch with the
library's generator + injection APIs — the same path you would follow to
wrap your own interaction logs into a ``MultiplexGraph``.

Run:
    python examples/ecommerce_fraud.py
"""

import numpy as np

from repro import UMGAD, UMGADConfig, macro_f1, roc_auc
from repro.anomalies import inject_anomalies
from repro.graphs import behavior_multiplex
from repro.utils.rng import ensure_rng


def build_marketplace(rng):
    """A marketplace with 1,400 users, 600 items and nested behaviours."""
    return behavior_multiplex(
        num_users=1_400,
        num_items=600,
        edge_counts={"View": 6_000, "Cart": 1_000, "Buy": 760},
        num_features=32,
        rng=rng,
        noise=0.7,
    )


def main():
    rng = ensure_rng(13)
    clean = build_marketplace(rng)
    print(f"marketplace: {clean}")

    # Plant fraud: 4 coordinated cliques of 5 accounts (each clique picks
    # 1-2 relation types, like coordinated cart-boosting), plus 20 accounts
    # with swapped (stolen) attribute profiles.
    graph, labels, report = inject_anomalies(
        clean, clique_size=5, num_cliques=4, attribute_count=20, rng=rng)
    print(f"injected {report.num_anomalies} fraudulent accounts "
          f"({report.structural_nodes.size} clique members, "
          f"{report.attribute_nodes.size} stolen profiles)")

    model = UMGAD(UMGADConfig(epochs=40, mask_ratio=0.2, epsilon=0.7, seed=0))
    model.fit(graph)

    scores = model.decision_scores()
    predictions = model.predict()  # label-free threshold
    flagged = np.flatnonzero(predictions)

    print(f"\nflagged {flagged.size} accounts without any labels")
    print(f"AUC      = {roc_auc(labels, scores):.3f}")
    print(f"Macro-F1 = {macro_f1(labels, predictions):.3f}")

    # Which fraud type was easier to catch?
    order = np.argsort(-scores)
    top = set(order[:report.num_anomalies].tolist())
    caught_struct = len(top & set(report.structural_nodes.tolist()))
    caught_attr = len(top & set(report.attribute_nodes.tolist()))
    print(f"top-k hits: {caught_struct}/{report.structural_nodes.size} clique "
          f"members, {caught_attr}/{report.attribute_nodes.size} stolen profiles")


if __name__ == "__main__":
    main()
