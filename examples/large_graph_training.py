"""Large-graph training with the sampled-minibatch engine (repro.engine).

Full-batch training touches every node and edge each epoch, so epoch cost
grows with the graph. The training engine's ``SubgraphBatches`` strategy
instead trains each step on an RWR-sampled node-induced multiplex subgraph
(the paper's own Fig. 7 / Table III efficiency device, promoted from
scoring time to training time): epoch cost tracks the batch size, not the
graph size, while scoring still covers the full graph.

This demo builds a Table III-scale social graph with the repo's generator,
trains UMGAD both ways, and compares per-epoch cost and detection quality.

Run:
    python examples/large_graph_training.py
"""

import numpy as np

from repro import UMGAD, UMGADConfig, load_dataset, roc_auc


def fit_and_report(name, graph, labels, config):
    model = UMGAD(config)
    model.fit(graph)
    state = model.train_state
    per_epoch = np.mean(state.epoch_seconds[1:] or state.epoch_seconds)
    auc = roc_auc(labels, model.decision_scores())
    print(f"{name:>10s}: {state.epochs_run} epochs, "
          f"{per_epoch * 1e3:7.1f} ms/epoch, "
          f"total {state.total_seconds:6.2f}s, AUC {auc:.3f} "
          f"({state.stop_reason})")
    return model


def main():
    # A T-Social-like generator graph — big enough that full-batch epochs
    # visibly drag (scale up further to make the gap dramatic).
    dataset = load_dataset("tsocial", scale=0.2, num_features=24, seed=7)
    graph = dataset.graph
    print(f"dataset: {graph}\n")

    base = dict(epochs=12, seed=0, structure_score_mode="sampled",
                early_stop_patience=0)

    # 1. The historical behavior: every epoch is one full-graph pass.
    fit_and_report("full", graph, dataset.labels,
                   UMGADConfig(batch="full", **base))

    # 2. Sampled minibatches: each optimisation step trains on an
    #    RWR-sampled ~512-node sub-multiplex. Per-relation propagators are
    #    built on the sampled block only; batch sampling is reseeded
    #    deterministically per epoch, so reruns are reproducible.
    fit_and_report("subgraph", graph, dataset.labels,
                   UMGADConfig(batch="subgraph", batch_size=512,
                               batches_per_epoch=2, **base))

    # The same switch is available from the CLI:
    #   python -m repro.cli detect --dataset tsocial --scale 0.2 \
    #       --batch subgraph --batch-size 512 --batches-per-epoch 2
    # and for the paper experiments via the "sampled" profile:
    #   python -m repro.cli experiment table3 --profile sampled


if __name__ == "__main__":
    main()
