"""Review-spam detection on an Amazon-like network, comparing methods.

Reproduces the paper's core comparison in miniature: UMGAD vs one
representative baseline per family (Radar / TAM / GRADATE / DOMINANT /
AnomMAN) on a review network with organic fraud rings, under BOTH
evaluation protocols — the real-unsupervised threshold and the
ground-truth-leakage top-k threshold (Table II vs Table V).

Run:
    python examples/review_spam.py
"""

from repro import UMGAD, UMGADConfig, load_dataset
from repro.baselines import make_baseline
from repro.eval import evaluate_gt_leakage, evaluate_unsupervised

REPRESENTATIVES = ["Radar", "TAM", "GRADATE", "DOMINANT", "AnomMAN"]


def main():
    dataset = load_dataset("amazon", scale=0.5, seed=7)
    print(f"review network: {dataset.graph}")
    print(f"fraud rate: {dataset.info.anomaly_rate:.1%} "
          f"({dataset.num_anomalies} fraudsters)\n")

    detectors = {name: make_baseline(name, seed=0, epochs=30)
                 for name in REPRESENTATIVES}
    detectors["UMGAD"] = UMGAD(UMGADConfig(
        epochs=40, mask_ratio=0.4, encoder_layers=2, seed=0))

    header = (f"{'method':10s} {'AUC':>7s} {'F1 (unsup.)':>12s} "
              f"{'F1 (leak)':>10s} {'flagged':>8s}")
    print(header)
    print("-" * len(header))
    for name, detector in detectors.items():
        detector.fit(dataset.graph)
        scores = detector.decision_scores()
        unsup = evaluate_unsupervised(dataset.labels, scores)
        leak = evaluate_gt_leakage(dataset.labels, scores)
        print(f"{name:10s} {unsup.auc:7.3f} {unsup.macro_f1:12.3f} "
              f"{leak.macro_f1:10.3f} {unsup.num_predicted:8d}")

    print(f"\n(true anomaly count: {dataset.num_anomalies}; the unsupervised "
          f"column used no labels at all)")


if __name__ == "__main__":
    main()
