"""Grad-mode semantics and grad-free kernel parity.

The load-bearing guarantees of the inference engine:

* ``no_grad()`` / ``enable_grad()`` nest, restore on exceptions, work as
  decorators, and actually stop the tape (no parents, no closures, no
  ``requires_grad`` propagation);
* ``backward()`` raises cleanly on tape-free tensors;
* every grad-free kernel — bincount segment ops, the CSR GAT attention
  kernel, block-diagonal batched masked scoring, the fast sampled
  structure scorer — is **bitwise identical** to the recording path it
  replaces.
"""

import numpy as np
import pytest

from repro import autograd
from repro.autograd import (
    Tensor,
    enable_grad,
    is_grad_enabled,
    no_grad,
    ops,
    set_grad_enabled,
    spmm,
    tensor,
)
from repro.core.gmae import GMAE
from repro.core.scoring import structure_errors_sampled
from repro.graphs import random_multiplex
from repro.graphs.graph import RelationGraph
from repro.nn import GATConv, Module, Parameter


@pytest.fixture(autouse=True)
def _grad_mode_reset():
    # Every test starts and ends with gradients enabled.
    assert is_grad_enabled()
    yield
    set_grad_enabled(True)


def _graph(rng, n=60, avg_degree=4.0, name="rel"):
    m = int(n * avg_degree / 2)
    edges = rng.integers(0, n, size=(m, 2))
    return RelationGraph(n, edges, name=name)


# ---------------------------------------------------------------------------
# Mode semantics
# ---------------------------------------------------------------------------

class TestGradModeSemantics:
    def test_default_enabled(self):
        assert is_grad_enabled()

    def test_no_grad_disables_and_restores(self):
        with no_grad():
            assert not is_grad_enabled()
        assert is_grad_enabled()

    def test_nesting(self):
        with no_grad():
            with no_grad():
                assert not is_grad_enabled()
            assert not is_grad_enabled()
            with enable_grad():
                assert is_grad_enabled()
                with no_grad():
                    assert not is_grad_enabled()
                assert is_grad_enabled()
            assert not is_grad_enabled()
        assert is_grad_enabled()

    def test_exception_safety(self):
        with pytest.raises(ValueError):
            with no_grad():
                raise ValueError("boom")
        assert is_grad_enabled()
        set_grad_enabled(False)
        with pytest.raises(ValueError):
            with enable_grad():
                raise ValueError("boom")
        assert not is_grad_enabled()
        set_grad_enabled(True)

    def test_decorator_form(self):
        @no_grad()
        def scorer():
            return is_grad_enabled()

        @enable_grad()
        def refit():
            return is_grad_enabled()

        assert scorer() is False
        with no_grad():
            assert refit() is True
        assert is_grad_enabled()

    def test_set_grad_enabled_returns_previous(self):
        assert set_grad_enabled(False) is True
        assert set_grad_enabled(True) is False

    def test_context_manager_reusable(self):
        ctx = no_grad()
        with ctx:
            with ctx:  # re-entrant on the same object
                assert not is_grad_enabled()
            assert not is_grad_enabled()
        assert is_grad_enabled()


# ---------------------------------------------------------------------------
# Ops honor the mode
# ---------------------------------------------------------------------------

class TestOpsHonorMode:
    def test_no_parents_no_closures_no_requires_grad(self):
        a = tensor(np.random.default_rng(0).normal(size=(4, 3)),
                   requires_grad=True)
        b = tensor(np.random.default_rng(1).normal(size=(3, 2)),
                   requires_grad=True)
        with no_grad():
            out = ops.matmul(a, b)
            summed = ops.sum(ops.relu(out))
        for t in (out, summed):
            assert not t.requires_grad
            assert t._parents == ()
            assert t._backward is None

    def test_values_identical_under_both_modes(self):
        rng = np.random.default_rng(3)
        a = tensor(rng.normal(size=(5, 4)), requires_grad=True)
        recorded = ops.softmax(ops.tanh(a))
        with no_grad():
            free = ops.softmax(ops.tanh(a))
        assert np.array_equal(recorded.data, free.data)

    def test_spmm_honors_mode(self):
        import scipy.sparse as sp

        mat = sp.random(6, 6, density=0.4, random_state=0, format="csr")
        dense = tensor(np.random.default_rng(0).normal(size=(6, 2)),
                       requires_grad=True)
        with no_grad():
            out = spmm(mat, dense)
        assert not out.requires_grad and out._backward is None
        assert np.array_equal(out.data, spmm(mat, dense).data)

    def test_parameter_stays_leaf_with_grad_flag(self):
        p = Parameter(np.ones((2, 2)))
        with no_grad():
            out = ops.mul(p, 2.0)
        assert p.requires_grad          # the leaf itself is untouched
        assert not out.requires_grad

    def test_reenabled_after_context(self):
        p = Parameter(np.ones(3))
        with no_grad():
            pass
        loss = ops.sum(ops.mul(p, p))
        loss.backward()
        assert np.allclose(p.grad, 2.0 * np.ones(3))


# ---------------------------------------------------------------------------
# backward() on tape-free tensors
# ---------------------------------------------------------------------------

class TestBackwardErrors:
    def test_no_grad_result_raises(self):
        p = Parameter(np.ones(3))
        with no_grad():
            out = ops.sum(ops.mul(p, p))
        with pytest.raises(RuntimeError, match="no_grad|tape"):
            out.backward()

    def test_constant_raises(self):
        with pytest.raises(RuntimeError, match="does not require grad"):
            Tensor(1.5).backward()

    def test_detached_raises(self):
        p = Parameter(np.ones(3))
        out = ops.sum(ops.mul(p, p)).detach()
        with pytest.raises(RuntimeError):
            out.backward()

    def test_leaf_parameter_still_accumulates(self):
        p = Parameter(np.asarray(2.0))
        p.backward()
        assert p.grad == pytest.approx(1.0)


# ---------------------------------------------------------------------------
# Grad-free kernels are bitwise-identical
# ---------------------------------------------------------------------------

class TestSegmentKernelParity:
    @pytest.mark.parametrize("shape", [(500,), (500, 1), (500, 7),
                                       (500, 2, 5)])
    def test_segment_add_data_matches_add_at(self, shape):
        rng = np.random.default_rng(5)
        values = rng.normal(size=shape)
        ids = rng.integers(0, 40, size=shape[0])
        expected = np.zeros((40,) + shape[1:])
        np.add.at(expected, ids, values)
        assert np.array_equal(
            ops.segment_add_data(values, ids, 40), expected)

    def test_segment_add_data_float32_fallback(self):
        rng = np.random.default_rng(6)
        values = rng.normal(size=(300, 3)).astype(np.float32)
        ids = rng.integers(0, 20, size=300)
        expected = np.zeros((20, 3), dtype=np.float32)
        np.add.at(expected, ids, values)
        out = ops.segment_add_data(values, ids, 20)
        assert out.dtype == np.float32
        assert np.array_equal(out, expected)

    def test_segment_ops_same_bits_under_no_grad(self):
        rng = np.random.default_rng(7)
        values = tensor(rng.normal(size=(400, 4)), requires_grad=True)
        scores = tensor(rng.normal(size=(400, 2)), requires_grad=True)
        ids = rng.integers(0, 37, size=400)
        recorded_sum = ops.segment_sum(values, ids, 37)
        recorded_soft = ops.segment_softmax(scores, ids, 37)
        with no_grad():
            free_sum = ops.segment_sum(values, ids, 37)
            free_soft = ops.segment_softmax(scores, ids, 37)
        assert np.array_equal(recorded_sum.data, free_sum.data)
        assert np.array_equal(recorded_soft.data, free_soft.data)


class TestGATInferenceKernelParity:
    @pytest.mark.parametrize("heads,concat", [(1, False), (2, True),
                                              (3, False)])
    def test_inference_forward_matches_recording(self, heads, concat):
        rng = np.random.default_rng(11)
        graph = _graph(rng, n=50)
        layer = GATConv(8, 6, rng, heads=heads, concat_heads=concat)
        x = tensor(rng.normal(size=(50, 8)))
        src, dst = graph.directed_pairs()
        recorded = layer(x, src, dst, num_nodes=50)
        with no_grad():
            fast = layer.inference_forward(
                x, graph.gat_scatter(1, layer.add_self_loops))
            dispatched = layer(x, src, dst, num_nodes=50,
                               scatter=graph.gat_scatter(
                                   1, layer.add_self_loops))
        assert np.array_equal(recorded.data, fast.data)
        assert np.array_equal(recorded.data, dispatched.data)

    def test_scatter_ignored_while_recording(self):
        rng = np.random.default_rng(12)
        graph = _graph(rng, n=30)
        layer = GATConv(5, 4, rng)
        x = tensor(rng.normal(size=(30, 5)), requires_grad=True)
        src, dst = graph.directed_pairs()
        out = layer(x, src, dst, num_nodes=30,
                    scatter=graph.gat_scatter(1, True))
        assert out.requires_grad      # recording path was used

    def test_block_propagator_tiles_base(self):
        rng = np.random.default_rng(13)
        graph = _graph(rng, n=25)
        base = graph.sym_propagator()
        block = graph.block_propagator(3)
        assert block.shape == (75, 75)
        dense = rng.normal(size=(25, 4))
        stacked = np.tile(dense, (3, 1))
        wide = block @ stacked
        narrow = base @ dense
        for j in range(3):
            assert np.array_equal(wide[j * 25:(j + 1) * 25], narrow)
        assert graph.block_propagator(3) is block      # cached
        assert graph.block_propagator(1) is base

    def test_gat_scatter_cached_and_consistent(self):
        rng = np.random.default_rng(14)
        graph = _graph(rng, n=20)
        s1 = graph.gat_scatter(2, True)
        assert graph.gat_scatter(2, True) is s1
        assert s1.num_nodes == 40
        # loops included, both directions of every edge, per copy
        assert s1.src.size == 2 * (2 * graph.num_edges) + 40
        assert np.array_equal(s1.indices, s1.src[s1.perm])
        assert s1.indptr[-1] == s1.src.size


class TestImputeGroupedParity:
    def _model_bank(self, rng, kind, layers=1, decoder_propagation=1):
        return GMAE(10, 6, rng, encoder=kind, encoder_layers=layers,
                    decoder_propagation=decoder_propagation)

    @pytest.mark.parametrize("kind,layers,dec_prop", [
        ("gat", 1, 1), ("gat", 2, 1), ("sgc", 1, 1), ("sgc", 2, 2),
    ])
    def test_matches_sequential_masked_forwards(self, kind, layers, dec_prop):
        rng = np.random.default_rng(21)
        graph = _graph(rng, n=48)
        gmae = self._model_bank(rng, kind, layers, dec_prop)
        x = tensor(rng.normal(size=(48, 10)))
        perm = rng.permutation(48)
        groups = [g for g in np.array_split(perm, 3) if g.size]

        with no_grad():
            expected = np.zeros((48, 10))
            for group in groups:
                rec = gmae.forward(x, graph, masked_nodes=group).data
                expected[group] = rec[group]
            batched = gmae.impute_grouped(x, graph, groups)
        assert np.array_equal(batched, expected)

    def test_multi_head_gat_matches_sequential(self):
        rng = np.random.default_rng(23)
        graph = _graph(rng, n=36)
        gmae = GMAE(10, 6, rng, encoder="gat", gat_heads=2)
        x = tensor(rng.normal(size=(36, 10)))
        groups = [g for g in np.array_split(rng.permutation(36), 4) if g.size]
        with no_grad():
            expected = np.zeros((36, 10))
            for group in groups:
                rec = gmae.forward(x, graph, masked_nodes=group).data
                expected[group] = rec[group]
            batched = gmae.impute_grouped(x, graph, groups)
        assert np.array_equal(batched, expected)

    def test_requires_no_grad(self):
        rng = np.random.default_rng(22)
        graph = _graph(rng, n=20)
        gmae = self._model_bank(rng, "sgc")
        x = tensor(rng.normal(size=(20, 10)))
        with pytest.raises(RuntimeError, match="no_grad"):
            gmae.impute_grouped(x, graph, [np.arange(10)])


class TestStructureScorerParity:
    def test_fast_matches_legacy_bitwise(self):
        rng = np.random.default_rng(31)
        graph = _graph(rng, n=120, avg_degree=5.0)
        decoded = rng.normal(size=(120, 9))
        legacy = structure_errors_sampled(
            decoded, graph, np.random.default_rng(3), negatives_per_node=15)
        fast = structure_errors_sampled(
            decoded, graph, np.random.default_rng(3), negatives_per_node=15,
            fast=True)
        assert np.array_equal(legacy, fast)

    def test_fast_matches_legacy_no_edges(self):
        graph = RelationGraph(30, np.empty((0, 2), dtype=np.int64))
        decoded = np.random.default_rng(4).normal(size=(30, 5))
        legacy = structure_errors_sampled(
            decoded, graph, np.random.default_rng(5))
        fast = structure_errors_sampled(
            decoded, graph, np.random.default_rng(5), fast=True)
        assert np.array_equal(legacy, fast)


# ---------------------------------------------------------------------------
# Training still works around / inside the mode
# ---------------------------------------------------------------------------

class TestTrainingInteraction:
    def test_trainer_enables_grad_inside_no_grad(self):
        from repro.core import UMGAD, UMGADConfig

        rng = np.random.default_rng(41)
        graph = random_multiplex(30, 2, 6, rng, avg_degree=3.0)
        with no_grad():
            model = UMGAD(UMGADConfig(epochs=2, seed=0)).fit(graph)
        assert len(model.loss_history) == 2
        assert model.loss_history[1] < model.loss_history[0]
        assert model.decision_scores().shape == (30,)

    def test_module_mode_flags_recurse(self):
        class Outer(Module):
            def __init__(self):
                super().__init__()
                rng = np.random.default_rng(0)
                self.inner = GATConv(3, 2, rng)

        outer = Outer()
        assert outer.training and outer.inner.training
        outer.eval()
        assert not outer.training and not outer.inner.training
        outer.train()
        assert outer.training and outer.inner.training

    def test_networks_back_in_train_mode_after_scoring(self):
        from repro.core import UMGAD, UMGADConfig

        rng = np.random.default_rng(42)
        graph = random_multiplex(24, 2, 5, rng, avg_degree=3.0)
        model = UMGAD(UMGADConfig(epochs=1, seed=0)).fit(graph)
        assert model.networks.training
        model.score_graph(graph)
        assert model.networks.training
        model.networks.eval()
        model.score_graph(graph)
        assert not model.networks.training
