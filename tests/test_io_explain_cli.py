"""Graph I/O, anomaly explanations, and the CLI."""

import numpy as np
import pytest

from repro.cli import main as cli_main
from repro.core import AnomalyExplainer
from repro.graphs import (
    MultiplexGraph,
    RelationGraph,
    from_edge_dict,
    load_multiplex,
    read_edge_list,
    save_multiplex,
    write_edge_list,
)


class TestGraphIO:
    def test_npz_roundtrip(self, tiny_multiplex, tmp_path):
        path = tmp_path / "graph.npz"
        labels = np.zeros(tiny_multiplex.num_nodes, dtype=np.int64)
        labels[:3] = 1
        save_multiplex(path, tiny_multiplex, labels)
        loaded, loaded_labels = load_multiplex(path)
        np.testing.assert_allclose(loaded.x, tiny_multiplex.x)
        assert loaded.relation_names == tiny_multiplex.relation_names
        for name in loaded.relation_names:
            np.testing.assert_array_equal(loaded[name].edges,
                                          tiny_multiplex[name].edges)
        np.testing.assert_array_equal(loaded_labels, labels)

    def test_npz_without_labels(self, tiny_multiplex, tmp_path):
        path = tmp_path / "graph.npz"
        save_multiplex(path, tiny_multiplex)
        _, labels = load_multiplex(path)
        assert labels is None

    def test_label_length_validation(self, tiny_multiplex, tmp_path):
        with pytest.raises(ValueError, match="labels length"):
            save_multiplex(tmp_path / "g.npz", tiny_multiplex, np.zeros(3))

    def test_load_rejects_non_archive(self, tmp_path):
        path = tmp_path / "bogus.npz"
        np.savez(path, foo=np.zeros(3))
        with pytest.raises(ValueError, match="missing 'x'"):
            load_multiplex(path)

    def test_edge_list_roundtrip(self, tiny_relation, tmp_path):
        path = tmp_path / "edges.tsv"
        write_edge_list(path, tiny_relation)
        loaded = read_edge_list(path, tiny_relation.num_nodes, name="tiny")
        np.testing.assert_array_equal(loaded.edges, tiny_relation.edges)

    def test_edge_list_rejects_out_of_range_ids_with_line_number(
            self, tmp_path):
        path = tmp_path / "edges.tsv"
        path.write_text("# relation=bad\n0\t1\n2\t99\n")
        with pytest.raises(ValueError, match=r"edges\.tsv:3.*out of range"):
            read_edge_list(path, num_nodes=10)

    def test_edge_list_rejects_malformed_lines(self, tmp_path):
        path = tmp_path / "edges.tsv"
        path.write_text("0\t1\t2\n")
        with pytest.raises(ValueError, match=r"edges\.tsv:1.*two columns"):
            read_edge_list(path, num_nodes=10)
        path.write_text("0\tseven\n")
        with pytest.raises(ValueError, match=r"edges\.tsv:1.*non-integer"):
            read_edge_list(path, num_nodes=10)

    def test_edge_list_skips_comments_and_blanks(self, tmp_path):
        path = tmp_path / "edges.tsv"
        path.write_text("# header\n\n0\t1\n\n2\t3\n")
        loaded = read_edge_list(path, num_nodes=5, name="ok")
        assert loaded.num_edges == 2

    def test_from_edge_dict(self, rng):
        graph = from_edge_dict(
            10, {"a": np.array([[0, 1], [1, 2]]), "b": np.array([[3, 4]])},
            x=rng.normal(size=(10, 4)))
        assert graph.num_relations == 2
        assert graph["a"].num_edges == 2


class TestExplainer:
    def test_requires_fitted_model(self, tiny_dataset):
        from repro.core import UMGAD, UMGADConfig

        with pytest.raises(RuntimeError, match="fit"):
            AnomalyExplainer(UMGAD(UMGADConfig()), tiny_dataset.graph)

    def test_explanation_fields(self, fitted_umgad, tiny_dataset):
        explainer = AnomalyExplainer(fitted_umgad, tiny_dataset.graph)
        explanation = explainer.explain(0)
        assert explanation.node == 0
        assert 0.0 <= explanation.score_percentile <= 100.0
        assert set(explanation.structure_errors) == set(
            tiny_dataset.graph.relation_names)
        assert len(explanation.top_deviant_features) == 5
        assert sum(explanation.relation_weights.values()) == pytest.approx(1.0)

    def test_node_bounds(self, fitted_umgad, tiny_dataset):
        explainer = AnomalyExplainer(fitted_umgad, tiny_dataset.graph)
        with pytest.raises(IndexError):
            explainer.explain(10**6)

    def test_top_anomalies_sorted(self, fitted_umgad, tiny_dataset):
        explainer = AnomalyExplainer(fitted_umgad, tiny_dataset.graph)
        top = explainer.top_anomalies(k=5)
        assert len(top) == 5
        scores = [e.score for e in top]
        assert scores == sorted(scores, reverse=True)

    def test_summary_is_text(self, fitted_umgad, tiny_dataset):
        explainer = AnomalyExplainer(fitted_umgad, tiny_dataset.graph)
        text = explainer.explain(1).summary()
        assert "node 1" in text and "structure[" in text


class TestCLI:
    def test_datasets_command(self, capsys):
        assert cli_main(["datasets"]) == 0
        out = capsys.readouterr().out
        assert "retail" in out and "tsocial" in out

    def test_detect_on_builtin(self, capsys):
        code = cli_main(["detect", "--dataset", "retail", "--scale", "0.12",
                         "--epochs", "3", "--top", "5"])
        assert code == 0
        out = capsys.readouterr().out
        assert "threshold" in out and "AUC=" in out

    def test_detect_on_saved_graph_with_explain(self, tiny_multiplex,
                                                tmp_path, capsys):
        path = tmp_path / "g.npz"
        save_multiplex(path, tiny_multiplex)
        code = cli_main(["detect", "--graph", str(path), "--epochs", "2",
                         "--explain", "2"])
        assert code == 0
        out = capsys.readouterr().out
        assert "relation importance" in out
        assert "structure[" in out  # explanation block present

    def test_experiment_command(self, capsys):
        code = cli_main(["experiment", "table1", "--profile", "fast"])
        assert code == 0
        assert "retail" in capsys.readouterr().out

    def test_invalid_experiment_rejected(self):
        with pytest.raises(SystemExit):
            cli_main(["experiment", "table99"])

    def test_detect_requires_source(self):
        with pytest.raises(SystemExit):
            cli_main(["detect"])
