"""Failure injection: degenerate inputs must work or fail loudly."""

import numpy as np
import pytest

from repro.core import UMGAD, UMGADConfig
from repro.graphs import MultiplexGraph, RelationGraph
from repro.baselines import make_baseline


def micro_cfg(**kw):
    base = dict(epochs=2, mask_repeats=1, hidden_dim=4, seed=0,
                num_subgraphs=1, subgraph_size=3)
    base.update(kw)
    return UMGADConfig(**base)


def build_graph(n, edges_per_rel, f=6, seed=0):
    rng = np.random.default_rng(seed)
    relations = {}
    for i, edges in enumerate(edges_per_rel):
        relations[f"r{i}"] = RelationGraph(n, np.asarray(edges).reshape(-1, 2),
                                           name=f"r{i}")
    return MultiplexGraph(x=rng.normal(size=(n, f)), relations=relations)


class TestDegenerateGraphs:
    def test_one_empty_relation(self):
        graph = build_graph(20, [
            [[i, (i + 1) % 20] for i in range(20)],
            [],  # empty relation
        ])
        model = UMGAD(micro_cfg()).fit(graph)
        assert np.all(np.isfinite(model.decision_scores()))

    def test_many_isolated_nodes(self):
        # only 4 of 30 nodes have any edges
        graph = build_graph(30, [[[0, 1], [2, 3]]])
        model = UMGAD(micro_cfg()).fit(graph)
        scores = model.decision_scores()
        assert np.all(np.isfinite(scores))

    def test_single_relation(self):
        graph = build_graph(15, [[[i, (i + 1) % 15] for i in range(15)]])
        model = UMGAD(micro_cfg()).fit(graph)
        assert len(model.relation_importance) == 1

    def test_constant_features(self):
        rng = np.random.default_rng(0)
        edges = rng.integers(0, 20, size=(40, 2))
        graph = MultiplexGraph(x=np.ones((20, 5)),
                               relations={"r": RelationGraph(20, edges)})
        model = UMGAD(micro_cfg()).fit(graph)
        assert np.all(np.isfinite(model.decision_scores()))

    def test_dense_graph(self):
        n = 12
        iu, iv = np.triu_indices(n, k=1)
        graph = build_graph(n, [np.stack([iu, iv], axis=1)])
        model = UMGAD(micro_cfg()).fit(graph)
        assert np.all(np.isfinite(model.decision_scores()))

    def test_two_node_components(self):
        edges = [[2 * i, 2 * i + 1] for i in range(10)]
        graph = build_graph(20, [edges])
        model = UMGAD(micro_cfg()).fit(graph)
        assert np.all(np.isfinite(model.decision_scores()))


class TestBaselineRobustness:
    @pytest.mark.parametrize("name", ["GADAM", "TAM", "RAND", "PREM",
                                      "DOMINANT", "Radar"])
    def test_isolated_nodes(self, name):
        graph = build_graph(25, [[[0, 1], [1, 2], [3, 4]]])
        det = make_baseline(name, seed=0, epochs=3)
        det.fit(graph)
        assert np.all(np.isfinite(det.decision_scores()))

    @pytest.mark.parametrize("name", ["AnomMAN", "DualGAD"])
    def test_multiview_with_empty_relation(self, name):
        graph = build_graph(20, [
            [[i, (i + 1) % 20] for i in range(20)],
            [[0, 1]],
        ])
        det = make_baseline(name, seed=0, epochs=3)
        det.fit(graph)
        assert np.all(np.isfinite(det.decision_scores()))


class TestMaskEdgeCases:
    def test_mask_ratio_extremes(self):
        graph = build_graph(30, [[[i, (i + 1) % 30] for i in range(30)]])
        for ratio in (0.05, 0.9):
            model = UMGAD(micro_cfg(mask_ratio=ratio)).fit(graph)
            assert np.all(np.isfinite(model.decision_scores()))

    def test_subgraph_bigger_than_graph(self):
        graph = build_graph(10, [[[i, (i + 1) % 10] for i in range(10)]])
        model = UMGAD(micro_cfg(subgraph_size=50, num_subgraphs=3)).fit(graph)
        assert np.all(np.isfinite(model.decision_scores()))

    def test_large_mask_repeats(self):
        graph = build_graph(15, [[[i, (i + 1) % 15] for i in range(15)]])
        model = UMGAD(micro_cfg(mask_repeats=4)).fit(graph)
        assert len(model.loss_history) == 2
