"""Utilities: RNG threading and timers."""

import time

import numpy as np
import pytest

from repro.utils import Timer, ensure_rng, spawn


class TestRng:
    def test_ensure_rng_from_int(self):
        a, b = ensure_rng(7), ensure_rng(7)
        assert a.random() == b.random()

    def test_ensure_rng_passthrough(self):
        rng = np.random.default_rng(1)
        assert ensure_rng(rng) is rng

    def test_ensure_rng_none(self):
        assert isinstance(ensure_rng(None), np.random.Generator)

    def test_spawn_independent(self):
        children = spawn(ensure_rng(0), 3)
        assert len(children) == 3
        vals = [c.random() for c in children]
        assert len(set(vals)) == 3


class TestTimer:
    def test_measure_accumulates(self):
        timer = Timer()
        for _ in range(3):
            with timer.measure("op"):
                time.sleep(0.001)
        assert timer.count("op") == 3
        assert timer.total("op") >= 0.003
        assert timer.mean("op") == pytest.approx(timer.total("op") / 3)

    def test_unknown_span_zero(self):
        timer = Timer()
        assert timer.total("nope") == 0.0
        assert timer.mean("nope") == 0.0
        assert timer.count("nope") == 0

    def test_exception_still_recorded(self):
        timer = Timer()
        with pytest.raises(RuntimeError):
            with timer.measure("op"):
                raise RuntimeError("boom")
        assert timer.count("op") == 1
