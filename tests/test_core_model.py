"""UMGAD model: training behaviour, scoring contract, ablations, modes."""

import numpy as np
import pytest

from repro.core import UMGAD, UMGADConfig, ablation_config
from repro.eval import roc_auc


def tiny_cfg(**overrides):
    base = dict(epochs=3, mask_repeats=1, hidden_dim=8, seed=0,
                num_subgraphs=2, subgraph_size=4)
    base.update(overrides)
    return UMGADConfig(**base)


class TestFitContract:
    def test_scores_shape_and_finite(self, fitted_umgad, tiny_dataset):
        scores = fitted_umgad.decision_scores()
        assert scores.shape == (tiny_dataset.graph.num_nodes,)
        assert np.all(np.isfinite(scores))

    def test_scores_before_fit_raises(self):
        with pytest.raises(RuntimeError, match="before fit"):
            UMGAD(tiny_cfg()).decision_scores()

    def test_loss_history_recorded(self, fitted_umgad):
        assert len(fitted_umgad.loss_history) == fitted_umgad.config.epochs
        assert all(np.isfinite(v) for v in fitted_umgad.loss_history)

    def test_loss_components_recorded(self, fitted_umgad):
        parts = fitted_umgad.loss_components[-1]
        assert {"L_O", "L_A_Aug", "L_S_Aug", "L_CL"} <= set(parts)

    def test_loss_decreases(self, tiny_dataset):
        model = UMGAD(tiny_cfg(epochs=15)).fit(tiny_dataset.graph)
        first = np.mean(model.loss_history[:3])
        last = np.mean(model.loss_history[-3:])
        assert last < first

    def test_timer_tracks_epochs(self, fitted_umgad):
        assert fitted_umgad.timer.count("epoch") == fitted_umgad.config.epochs
        assert fitted_umgad.timer.total("scoring") > 0

    def test_relation_importance(self, fitted_umgad, tiny_dataset):
        importance = fitted_umgad.relation_importance
        assert set(importance) == set(tiny_dataset.graph.relation_names)
        assert sum(importance.values()) == pytest.approx(1.0)

    def test_relation_importance_before_fit_raises(self):
        with pytest.raises(RuntimeError):
            UMGAD(tiny_cfg()).relation_importance

    def test_deterministic_given_seed(self, tiny_dataset):
        s1 = UMGAD(tiny_cfg()).fit(tiny_dataset.graph).decision_scores()
        s2 = UMGAD(tiny_cfg()).fit(tiny_dataset.graph).decision_scores()
        np.testing.assert_allclose(s1, s2)

    def test_predict_binary(self, fitted_umgad, tiny_dataset):
        pred = fitted_umgad.predict()
        assert set(np.unique(pred)) <= {0, 1}
        assert pred.shape == (tiny_dataset.graph.num_nodes,)

    def test_predict_with_known_count(self, fitted_umgad, tiny_dataset):
        pred = fitted_umgad.predict_with_known_count(tiny_dataset.num_anomalies)
        assert pred.sum() == tiny_dataset.num_anomalies


class TestAblations:
    @pytest.mark.parametrize("name", ["w/o M", "w/o O", "w/o A", "w/o NA",
                                      "w/o SA", "w/o DCL"])
    def test_every_variant_runs(self, name, tiny_dataset):
        cfg = ablation_config(tiny_cfg(), name)
        model = UMGAD(cfg).fit(tiny_dataset.graph)
        scores = model.decision_scores()
        assert np.all(np.isfinite(scores))

    def test_wo_mask_uses_unmasked_eval(self, tiny_dataset):
        cfg = tiny_cfg(use_mask=False)
        model = UMGAD(cfg).fit(tiny_dataset.graph)
        assert np.all(np.isfinite(model.decision_scores()))

    def test_everything_off_raises(self, tiny_dataset):
        cfg = tiny_cfg(use_original=False, use_augmented=False,
                       use_contrastive=False)
        with pytest.raises(RuntimeError, match="nothing to score"):
            UMGAD(cfg).fit(tiny_dataset.graph)


class TestModes:
    @pytest.mark.parametrize("mode", ["att", "str", "sub"])
    def test_pruned_modes_run(self, mode, tiny_dataset):
        model = UMGAD(tiny_cfg(mode=mode)).fit(tiny_dataset.graph)
        assert np.all(np.isfinite(model.decision_scores()))

    def test_att_mode_skips_structure_losses(self, tiny_dataset):
        model = UMGAD(tiny_cfg(mode="att")).fit(tiny_dataset.graph)
        # subgraph view is disabled in att mode
        assert "L_S_Aug" not in model.loss_components[-1]


class TestExtensions:
    def test_early_stopping_halts(self, tiny_dataset):
        cfg = tiny_cfg(epochs=40, early_stop_patience=2,
                       early_stop_min_delta=10.0)  # impossible improvement
        model = UMGAD(cfg).fit(tiny_dataset.graph)
        assert len(model.loss_history) < 40
        assert np.all(np.isfinite(model.decision_scores()))

    def test_early_stopping_off_by_default(self, tiny_dataset):
        model = UMGAD(tiny_cfg(epochs=4)).fit(tiny_dataset.graph)
        assert len(model.loss_history) == 4

    def test_uniform_fusion(self, tiny_dataset):
        cfg = tiny_cfg(relation_fusion="uniform")
        model = UMGAD(cfg).fit(tiny_dataset.graph)
        weights = list(model.relation_importance.values())
        assert all(w == pytest.approx(weights[0]) for w in weights)

    def test_invalid_fusion_rejected(self):
        with pytest.raises(ValueError, match="relation_fusion"):
            tiny_cfg(relation_fusion="attention")

    def test_negative_patience_rejected(self):
        with pytest.raises(ValueError, match="patience"):
            tiny_cfg(early_stop_patience=-1)


class TestDetectionQuality:
    def test_beats_random_on_injected_data(self, tiny_dataset):
        model = UMGAD(tiny_cfg(epochs=12)).fit(tiny_dataset.graph)
        auc = roc_auc(tiny_dataset.labels, model.decision_scores())
        assert auc > 0.6  # tiny budget, but must clearly beat chance

    def test_sampled_structure_mode(self, tiny_dataset):
        cfg = tiny_cfg(structure_score_mode="sampled")
        model = UMGAD(cfg).fit(tiny_dataset.graph)
        assert np.all(np.isfinite(model.decision_scores()))
