"""Fault injection, graceful degradation, and crash recovery, end to end.

The acceptance criteria of the resilience work, asserted directly:

* SIGKILL mid-batch → restart from WAL + snapshot → the recovered
  fingerprint is bitwise-identical to an uninterrupted run;
* an injected batcher-worker crash leaves ``/healthz`` green and loses
  zero accepted requests;
* a poisoned request returns 500 while herd-mates score normally, and a
  streak of failures trips the per-fingerprint breaker into degraded
  stale-cache answers that heal through a half-open probe;
* deadlines propagate (`X-Repro-Deadline-Ms` → 504) and overload/timeout
  responses carry ``Retry-After``;
* a failed hot-swap leaves the old model active;
* with every resilience feature enabled but idle, responses are
  byte-identical to a plain run (no ``degraded`` key, same scores).
"""

import http.client
import json
import os
import signal
import subprocess
import sys
import textwrap
import threading
import time
from pathlib import Path

import numpy as np
import pytest

from repro import chaos
from repro.detection import BaseDetector
from repro.graphs import graph_fingerprint, random_multiplex
from repro.serve import DetectorService, ModelRegistry
from repro.server import (
    DEADLINE_HEADER,
    CircuitBreaker,
    DeadlineExceeded,
    Gateway,
    MicroBatcher,
    ServerClient,
    ServerClientError,
    ServerThread,
)
from repro.server import batcher as batcher_mod
from repro.server.protocol import graph_payload

_SRC = str(Path(__file__).resolve().parents[1] / "src")


@pytest.fixture(autouse=True)
def _clean_chaos():
    chaos.reset()
    yield
    chaos.reset()


class _CheapDetector(BaseDetector):
    """score = ||x|| — deterministic, instant, scores any graph."""

    def fit(self, graph):
        self._graph = graph
        self._scores = np.linalg.norm(graph.x, axis=1)
        return self

    def score_graph(self, graph):
        return np.linalg.norm(graph.x, axis=1)


class _SlowDetector(_CheapDetector):
    def __init__(self, delay):
        self.delay = delay

    def score_graph(self, graph):
        time.sleep(self.delay)
        return super().score_graph(graph)


def _gateway(rng, **kwargs):
    graph = random_multiplex(24, 2, 4, rng)
    service = DetectorService(_CheapDetector().fit(graph))
    defaults = dict(linger_ms=1.0, request_timeout=10.0)
    defaults.update(kwargs)
    return Gateway(service, **defaults)


@pytest.fixture
def served(rng):
    """A resilience-tuned live server: fast breaker, short reset."""
    gateway = _gateway(rng, breaker_failures=2, breaker_reset_seconds=0.25)
    with ServerThread(gateway) as server:
        with ServerClient(port=server.port) as client:
            yield server, client, gateway
    gateway.close()


# ---------------------------------------------------------------------------
# Circuit breaker state machine (unit)
# ---------------------------------------------------------------------------

class TestCircuitBreaker:
    def _breaker(self, **kwargs):
        self.now = [0.0]
        defaults = dict(failure_threshold=3, reset_timeout=10.0,
                        clock=lambda: self.now[0])
        defaults.update(kwargs)
        return CircuitBreaker(**defaults)

    def test_trips_after_consecutive_failures(self):
        breaker = self._breaker()
        for _ in range(2):
            breaker.record_failure("k")
            assert breaker.allow("k")
        breaker.record_failure("k")
        assert breaker.state("k") == "open"
        assert not breaker.allow("k")
        assert breaker.snapshot()["trips"] == 1
        assert breaker.snapshot()["rejections"] == 1

    def test_success_resets_the_streak(self):
        breaker = self._breaker()
        breaker.record_failure("k")
        breaker.record_failure("k")
        breaker.record_success("k")
        breaker.record_failure("k")
        breaker.record_failure("k")
        assert breaker.state("k") == "closed"

    def test_half_open_admits_exactly_one_probe(self):
        breaker = self._breaker()
        for _ in range(3):
            breaker.record_failure("k")
        assert not breaker.allow("k")
        self.now[0] = 10.1                  # reset timeout elapsed
        assert breaker.allow("k")           # the probe
        assert breaker.state("k") == "half_open"
        assert not breaker.allow("k")       # herd held back during probe
        breaker.record_success("k")
        assert breaker.state("k") == "closed"
        assert breaker.allow("k")

    def test_failed_probe_reopens_with_fresh_timer(self):
        breaker = self._breaker()
        for _ in range(3):
            breaker.record_failure("k")
        self.now[0] = 10.1
        assert breaker.allow("k")
        breaker.record_failure("k")         # probe failed
        assert breaker.state("k") == "open"
        self.now[0] = 15.0                  # timer restarted at 10.1
        assert not breaker.allow("k")
        self.now[0] = 20.3
        assert breaker.allow("k")

    def test_keys_are_independent(self):
        breaker = self._breaker()
        for _ in range(3):
            breaker.record_failure("bad")
        assert not breaker.allow("bad")
        assert breaker.allow("good")

    def test_lru_bound(self):
        breaker = self._breaker(max_keys=4)
        for i in range(10):
            breaker.record_failure(f"k{i}")
        assert breaker.snapshot()["keys"] <= 4


# ---------------------------------------------------------------------------
# Batcher: worker crashes, watchdog, deadlines, stuck shutdown
# ---------------------------------------------------------------------------

@pytest.mark.filterwarnings(
    "ignore::pytest.PytestUnhandledThreadExceptionWarning")
class TestBatcherResilience:
    """Injected worker crashes print their tracebacks via the thread
    excepthook — deliberate visibility, so the warning filter only mutes
    pytest's meta-warning about them."""

    def _batcher(self, rng, service=None, **kwargs):
        graph = random_multiplex(24, 2, 4, rng)
        if service is None:
            service = DetectorService(_CheapDetector().fit(graph))
        defaults = dict(workers=1, linger_ms=1.0)
        defaults.update(kwargs)
        return graph, MicroBatcher(service, **defaults)

    def test_crash_rescues_request_and_respawns_worker(self, rng):
        graph, batcher = self._batcher(rng)
        chaos.configure("batcher.worker", mode="error", count=1)
        try:
            future = batcher.submit(graph)
            scores = future.result(timeout=10.0)
            assert scores.size == graph.num_nodes
            stats = batcher.stats
            assert stats.worker_crashes == 1
            assert stats.rescued == 1
            # the watchdog put a fresh worker in the dead one's slot
            deadline = time.monotonic() + 5.0
            while stats.worker_respawns == 0 \
                    and time.monotonic() < deadline:
                time.sleep(0.01)
            assert stats.worker_respawns >= 1
        finally:
            batcher.close()
        assert batcher.stats.leaked_workers == 0

    def test_crash_loses_zero_accepted_requests(self, rng):
        """Every accepted request is answered across a worker crash, and
        the gateway's health stays green throughout."""
        gateway = _gateway(rng, workers=2)
        try:
            graphs = [random_multiplex(16 + i, 2, 4, rng)
                      for i in range(6)]
            chaos.configure("batcher.worker", mode="error", count=1)
            futures = [gateway.batcher.submit(g) for g in graphs]
            for graph, future in zip(graphs, futures):
                assert future.result(timeout=10.0).size == graph.num_nodes
            assert gateway.batcher.stats.worker_crashes == 1
            assert gateway.health()["status"] == "ok"
        finally:
            gateway.close()

    def test_repeated_crashes_fail_the_group_not_the_process(self, rng):
        graph, batcher = self._batcher(rng)
        chaos.configure("batcher.worker", mode="error", count=None)
        try:
            future = batcher.submit(graph)
            with pytest.raises(chaos.ChaosError):
                future.result(timeout=10.0)
            # bounded requeues: initial attempt + _MAX_REQUEUES rescues
            assert batcher.stats.worker_crashes == 4
            assert batcher.queue_depth == 0
        finally:
            chaos.reset()       # let the close sentinels through
            batcher.close()

    def test_expired_deadline_is_rejected_at_admission(self, rng):
        graph, batcher = self._batcher(rng)
        try:
            with pytest.raises(DeadlineExceeded):
                batcher.submit(graph, deadline=time.monotonic() - 1.0)
        finally:
            batcher.close()

    def test_queued_request_expires_before_scoring(self, rng):
        graph, batcher = self._batcher(
            rng, service=DetectorService(_SlowDetector(0.3).fit(
                random_multiplex(24, 2, 4, rng))),
            workers=1, linger_ms=1.0)
        try:
            # occupy the only worker, then queue a request whose deadline
            # lapses while it waits
            first = batcher.submit(graph)
            doomed = batcher.submit(
                random_multiplex(12, 2, 4, rng),
                deadline=time.monotonic() + 0.05)
            assert first.result(timeout=10.0).size == graph.num_nodes
            with pytest.raises(DeadlineExceeded):
                doomed.result(timeout=10.0)
            assert batcher.stats.expired == 1
        finally:
            batcher.close()

    def test_close_reports_stuck_worker(self, rng, monkeypatch):
        monkeypatch.setattr(batcher_mod, "_JOIN_TIMEOUT", 0.2)
        release = threading.Event()

        class _Blocking:
            def is_warm(self, fingerprint):
                return True

            def scores(self, graph, fingerprint=None):
                release.wait(timeout=30.0)
                return np.zeros(graph.num_nodes)

        graph = random_multiplex(12, 2, 4, rng)
        batcher = MicroBatcher(_Blocking(), workers=1, linger_ms=1.0)
        future = batcher.submit(graph)
        deadline = time.monotonic() + 5.0
        while batcher.queue_depth and time.monotonic() < deadline:
            time.sleep(0.01)
        batcher.close()                    # join times out: worker is stuck
        assert batcher.stats.leaked_workers == 1
        release.set()                      # unstick; the thread drains out
        assert future.result(timeout=10.0).size == graph.num_nodes


# ---------------------------------------------------------------------------
# HTTP: poisoned requests, breaker degradation, deadlines, Retry-After
# ---------------------------------------------------------------------------

class TestPoisonAndDegradation:
    def test_poisoned_request_fails_alone(self, served, rng):
        """A request whose scoring keeps failing gets a 500; herd-mates
        sharing the server score normally before, during, and after."""
        _server, client, _gateway = served
        healthy = random_multiplex(20, 2, 4, rng)
        poisoned = random_multiplex(21, 2, 4, rng)
        chaos.configure("service.score", mode="error", count=None,
                        key=graph_fingerprint(poisoned))
        assert client.score(healthy)["num_nodes"] == 20
        with pytest.raises(ServerClientError) as err:
            client.score(poisoned)
        assert err.value.status == 500
        assert client.score(healthy)["num_nodes"] == 20

    def test_breaker_opens_then_serves_stale_then_heals(self, served, rng):
        _server, client, gateway = served
        graph = random_multiplex(20, 2, 4, rng)
        fingerprint = graph_fingerprint(graph)

        # 1. a healthy pass caches known-good scores (the stale answer)
        good = client.score(graph)
        assert "degraded" not in good

        # 2. poison this fingerprint; flush the service cache so scoring
        #    actually re-runs (and fails) instead of hitting the cache
        chaos.configure("service.score", mode="error", count=None,
                        key=fingerprint)
        gateway.service.clear_cache()
        for _ in range(2):                  # breaker_failures=2
            gateway.service.clear_cache()
            with pytest.raises(ServerClientError) as err:
                client.score(graph)
            assert err.value.status == 500

        # 3. breaker open: answered from the stale cache, marked degraded
        degraded = client.score(graph)
        assert degraded["degraded"] is True
        assert degraded["scores"] == good["scores"]
        assert gateway.breaker.state(fingerprint) == "open"

        # 4. fault cleared + reset timeout elapsed: the half-open probe
        #    succeeds and the breaker closes again
        chaos.reset()
        time.sleep(0.3)
        healed = client.score(graph)
        assert "degraded" not in healed
        assert healed["scores"] == good["scores"]
        assert gateway.breaker.state(fingerprint) == "closed"

    def test_open_breaker_without_stale_scores_is_503(self, served, rng):
        _server, client, gateway = served
        graph = random_multiplex(22, 2, 4, rng)
        fingerprint = graph_fingerprint(graph)
        chaos.configure("service.score", mode="error", count=None,
                        key=fingerprint)
        for _ in range(2):
            gateway.service.clear_cache()
            with pytest.raises(ServerClientError):
                client.score(graph)
        with pytest.raises(ServerClientError) as err:
            client.score(graph)
        assert err.value.status == 503
        assert "circuit open" in str(err.value)
        # 503s advertise when to come back
        assert client.last_headers.get("Retry-After") == "1"

    def test_degradation_is_visible_in_health_and_metrics(self, served,
                                                          rng):
        _server, client, gateway = served
        graph = random_multiplex(23, 2, 4, rng)
        chaos.configure("service.score", mode="error", count=None,
                        key=graph_fingerprint(graph))
        for _ in range(2):
            gateway.service.clear_cache()
            with pytest.raises(ServerClientError):
                client.score(graph)
        health = client.healthz(deep=True)
        assert health["components"]["breaker"]["open"] == 1
        metrics = client.metrics()
        assert "repro_breaker_trips_total 1" in metrics
        assert "repro_chaos_triggers_total" in metrics

    def test_deadline_header_expires_request_with_504(self, served, rng):
        server, _client, _gateway = served
        graph = random_multiplex(20, 2, 4, rng)
        conn = http.client.HTTPConnection("127.0.0.1", server.port,
                                          timeout=10.0)
        try:
            body = json.dumps({"graph": graph_payload(graph)})
            conn.request("POST", "/v1/score", body=body,
                         headers={"Content-Type": "application/json",
                                  DEADLINE_HEADER: "0.0001"})
            response = conn.getresponse()
            payload = json.loads(response.read())
            assert response.status == 504
            assert "deadline" in payload["error"]
        finally:
            conn.close()

    def test_malformed_deadline_header_is_ignored(self, served, rng):
        server, _client, _gateway = served
        graph = random_multiplex(20, 2, 4, rng)
        conn = http.client.HTTPConnection("127.0.0.1", server.port,
                                          timeout=10.0)
        try:
            body = json.dumps({"graph": graph_payload(graph)})
            conn.request("POST", "/v1/score", body=body,
                         headers={"Content-Type": "application/json",
                                  DEADLINE_HEADER: "not-a-number"})
            response = conn.getresponse()
            payload = json.loads(response.read())
            assert response.status == 200
            assert payload["num_nodes"] == 20
        finally:
            conn.close()

    def test_scoring_timeout_503_carries_retry_after(self, rng):
        fitted = random_multiplex(16, 2, 4, rng)
        # score a graph the detector was NOT fitted on: the fitted
        # graph's scores are warm in the service cache and would answer
        # instantly instead of timing out
        graph = random_multiplex(18, 2, 4, rng)
        service = DetectorService(_SlowDetector(0.5).fit(fitted))
        gateway = Gateway(service, linger_ms=1.0, request_timeout=0.05)
        try:
            with ServerThread(gateway) as server:
                conn = http.client.HTTPConnection("127.0.0.1",
                                                  server.port,
                                                  timeout=10.0)
                try:
                    body = json.dumps({"graph": graph_payload(graph)})
                    conn.request(
                        "POST", "/v1/score", body=body,
                        headers={"Content-Type": "application/json"})
                    response = conn.getresponse()
                    assert response.status == 503
                    assert response.headers.get("Retry-After") == "1"
                finally:
                    conn.close()
        finally:
            gateway.close()


# ---------------------------------------------------------------------------
# Failed hot-swap leaves the old model active
# ---------------------------------------------------------------------------

class TestFailedHotSwap:
    def test_failed_activate_keeps_old_model(self, fitted_umgad,
                                             tiny_dataset, tmp_path):
        registry = ModelRegistry(tmp_path / "models")
        registry.save("base", fitted_umgad, graph=tiny_dataset.graph)
        registry.save("next", fitted_umgad, graph=tiny_dataset.graph)
        service = DetectorService(registry.path("base"), match_dtype=False)
        gateway = Gateway(service, registry=registry, active_model="base",
                          linger_ms=1.0)
        try:
            with ServerThread(gateway) as server:
                with ServerClient(port=server.port) as client:
                    chaos.configure("checkpoint.load", mode="ioerror",
                                    count=1)
                    with pytest.raises(ServerClientError) as err:
                        client.activate("next")
                    assert err.value.status == 409
                    # the swap never happened: old model still active and
                    # still answering
                    assert gateway.active_model == "base"
                    assert client.health()["active_model"] == "base"
                    response = client.score(tiny_dataset.graph)
                    assert response["num_nodes"] == \
                        tiny_dataset.graph.num_nodes
                    # fault cleared: the same activate now succeeds
                    assert client.activate("next")["activated"] == "next"
                    assert gateway.active_model == "next"
        finally:
            gateway.close()


# ---------------------------------------------------------------------------
# Client-side resilience over a live socket
# ---------------------------------------------------------------------------

class TestClientResilience:
    def test_dead_keepalive_reconnects_idempotent_request(self, served,
                                                          rng):
        _server, client, _gateway = served
        graph = random_multiplex(20, 2, 4, rng)
        client.health()                       # establish the keep-alive
        chaos.configure("http.reset", mode="reset", count=1, key="score")
        response = client.score(graph)        # transparently resent
        assert response["num_nodes"] == 20
        assert client.reconnects == 1
        assert client.retries_taken == 0

    def test_non_idempotent_request_surfaces_the_reset(self, served):
        _server, client, _gateway = served
        client.health()
        chaos.configure("http.reset", mode="reset", count=1, key="events")
        with pytest.raises((http.client.HTTPException, OSError)):
            client.events([{"op": "add_edge", "relation": "r0",
                            "src": 0, "dst": 1}])
        assert client.reconnects == 0

    def test_fresh_connection_reset_is_retried_with_backoff(self, served,
                                                            rng):
        server, _default_client, _gateway = served
        graph = random_multiplex(20, 2, 4, rng)
        with ServerClient(port=server.port, retries=2,
                          backoff_base=0.01) as client:
            # no keep-alive yet: the reconnect budget doesn't apply, so
            # this burns a counted retry instead
            chaos.configure("http.reset", mode="reset", count=1,
                            key="score")
            response = client.score(graph)
            assert response["num_nodes"] == 20
            assert client.retries_taken == 1

    def test_zero_retry_client_surfaces_errors(self, served, rng):
        server, _default_client, _gateway = served
        graph = random_multiplex(20, 2, 4, rng)
        with ServerClient(port=server.port) as client:
            assert client.retries == 0
            chaos.configure("http.reset", mode="reset", count=1,
                            key="score")
            with pytest.raises((http.client.HTTPException, OSError)):
                client.score(graph)

    def test_retry_after_header_raises_the_delay(self, served):
        _server, client, _gateway = served
        assert client._retry_delay(0, "0.5") >= 0.5
        # bounded: a hostile header cannot park the client for minutes
        assert client._retry_delay(0, "9999") <= 30.0
        # malformed values fall back to the computed backoff
        assert client._retry_delay(0, "soon") < 0.5


# ---------------------------------------------------------------------------
# Idle parity: resilience features enabled, nothing injected
# ---------------------------------------------------------------------------

class TestIdleParity:
    def test_scores_bitwise_identical_with_features_idle(self, served,
                                                         rng):
        _server, client, gateway = served
        graph = random_multiplex(26, 2, 4, rng)
        expected = gateway.service.detector.score_graph(graph)
        response = client.score(graph)
        assert "degraded" not in response
        np.testing.assert_array_equal(
            np.asarray(response["scores"]), expected)
        assert not chaos.active()
        snapshot = gateway.breaker.snapshot()
        assert snapshot["trips"] == 0
        assert snapshot["rejections"] == 0


# ---------------------------------------------------------------------------
# SIGKILL mid-batch → recover → bitwise-identical state (the tentpole)
# ---------------------------------------------------------------------------

_CRASH_SCRIPT = textwrap.dedent("""\
    import os, signal, sys
    import numpy as np

    from repro.detection import BaseDetector
    from repro.graphs import random_multiplex
    from repro.serve import DetectorService
    from repro.stream import (IncrementalGraphBuilder, StreamMonitor,
                              WriteAheadLog, synthesize_stream)

    class NormDetector(BaseDetector):
        def fit(self, graph):
            self._graph = graph
            self._scores = np.linalg.norm(graph.x, axis=1)
            return self

        def score_graph(self, graph):
            return np.linalg.norm(graph.x, axis=1)

    wal_dir, kill_at = sys.argv[1], int(sys.argv[2])
    graph = random_multiplex(40, 2, 4, np.random.default_rng(0),
                             avg_degree=3.0)
    events, _ = synthesize_stream(graph, 200, np.random.default_rng(7))
    monitor = StreamMonitor(
        DetectorService(NormDetector().fit(graph)),
        IncrementalGraphBuilder.from_graph(graph),
        window=20, top_k=5, snapshot_every=3,
        wal=WriteAheadLog(wal_dir))
    monitor.process(events[:kill_at])
    # no close(), no checkpoint(): die the hard way, mid-batch
    os.kill(os.getpid(), signal.SIGKILL)
""")


class TestSigkillRecovery:
    def test_recovered_state_matches_uninterrupted_run(self, tmp_path):
        from repro.stream import (IncrementalGraphBuilder, StreamMonitor,
                                  WriteAheadLog, synthesize_stream,
                                  verify_parity)

        kill_at = 73        # 3 scored windows + 13 buffered: mid-batch
        script = tmp_path / "crashy.py"
        script.write_text(_CRASH_SCRIPT)
        wal_dir = tmp_path / "wal"
        env = dict(os.environ, PYTHONPATH=_SRC)
        proc = subprocess.run(
            [sys.executable, str(script), str(wal_dir), str(kill_at)],
            env=env, capture_output=True, text=True, timeout=120)
        assert proc.returncode == -signal.SIGKILL, proc.stderr

        # the same deterministic world, never crashed
        graph = random_multiplex(40, 2, 4, np.random.default_rng(0),
                                 avg_degree=3.0)
        events, _ = synthesize_stream(graph, 200,
                                      np.random.default_rng(7))
        reference = StreamMonitor(
            DetectorService(_CheapDetector().fit(graph)),
            IncrementalGraphBuilder.from_graph(graph),
            window=20, top_k=5)
        reference.process(events)

        wal = WriteAheadLog(wal_dir)
        resumed = StreamMonitor.recover(
            DetectorService(_CheapDetector().fit(graph)), wal,
            window=20, top_k=5, snapshot_every=3)
        assert resumed.recovered
        # every accepted event survived the SIGKILL: scored or pending
        skip = resumed.events_consumed + resumed.buffered
        assert skip == kill_at
        resumed.process(events[skip:])
        assert resumed.builder.fingerprint() == \
            reference.builder.fingerprint()
        assert resumed.windows_scored == reference.windows_scored
        assert resumed.events_consumed == reference.events_consumed
        assert verify_parity(resumed.builder)
        wal.close()
