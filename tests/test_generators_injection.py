"""Synthetic generators and the Ding et al. anomaly-injection protocol."""

import numpy as np
import pytest

from repro.anomalies import (
    inject_anomalies,
    inject_attribute_anomalies,
    inject_structural_anomalies,
)
from repro.graphs import behavior_multiplex, review_multiplex, social_multiplex
from repro.utils.rng import ensure_rng


@pytest.fixture
def clean_graph(rng):
    return behavior_multiplex(
        num_users=70, num_items=30,
        edge_counts={"View": 300, "Cart": 60, "Buy": 40},
        num_features=8, rng=rng)


class TestBehaviorGenerator:
    def test_nested_relation_ordering(self, clean_graph):
        view = clean_graph["View"].num_edges
        cart = clean_graph["Cart"].num_edges
        buy = clean_graph["Buy"].num_edges
        assert view > cart > 0 and cart >= buy > 0

    def test_bipartite_base_relation(self, clean_graph):
        # View edges connect users [0, 70) with items [70, 100).
        edges = clean_graph["View"].edges
        lo = np.minimum(edges[:, 0], edges[:, 1])
        hi = np.maximum(edges[:, 0], edges[:, 1])
        assert np.all(lo < 70) and np.all(hi >= 70)

    def test_deterministic_given_seed(self):
        g1 = behavior_multiplex(20, 10, {"V": 40}, 4, ensure_rng(5))
        g2 = behavior_multiplex(20, 10, {"V": 40}, 4, ensure_rng(5))
        np.testing.assert_allclose(g1.x, g2.x)
        np.testing.assert_array_equal(g1["V"].edges, g2["V"].edges)


class TestReviewGenerator:
    def test_labels_match_rate(self, rng):
        graph, labels = review_multiplex(
            400, {"a": 500, "b": 3000, "c": 1000}, 8, fraud_rate=0.1, rng=rng)
        assert labels.sum() == 40
        assert graph.num_nodes == 400

    def test_density_ordering_preserved(self, rng):
        graph, _ = review_multiplex(
            400, {"a": 500, "b": 3000, "c": 1000}, 8, fraud_rate=0.05, rng=rng)
        assert graph["b"].num_edges > graph["c"].num_edges > graph["a"].num_edges

    def test_fraud_has_camouflage_edges(self, rng):
        graph, labels = review_multiplex(
            300, {"a": 400, "b": 2000, "c": 700}, 8, fraud_rate=0.1, rng=rng)
        fraud = np.flatnonzero(labels)
        merged = graph.merged()
        deg = merged.degrees()
        # fraudsters should be at least as connected as the average node
        assert deg[fraud].mean() >= deg.mean()


class TestSocialGenerator:
    def test_extreme_imbalance(self, rng):
        graph, labels = social_multiplex(
            2000, {"a": 2000, "b": 800, "c": 600}, 8, fraud_rate=0.004, rng=rng)
        assert 0 < labels.sum() <= 0.02 * 2000

    def test_minimum_one_ring(self, rng):
        _, labels = social_multiplex(
            500, {"a": 400}, 8, fraud_rate=0.0001, rng=rng)
        assert labels.sum() >= 1


class TestStructuralInjection:
    def test_cliques_fully_connected_somewhere(self, clean_graph, rng):
        graph, nodes, cliques, rels_used = inject_structural_anomalies(
            clean_graph, clique_size=4, num_cliques=2, rng=rng)
        assert nodes.size == 8
        assert len(cliques) == 2
        for clique, rels in zip(cliques, rels_used):
            for rel in rels:
                adj = graph[rel].adjacency()
                for i in clique:
                    for j in clique:
                        if i != j:
                            assert adj[i, j] == 1

    def test_edge_count_increases(self, clean_graph, rng):
        graph, *_ = inject_structural_anomalies(clean_graph, 4, 2, rng)
        assert graph.total_edges() > clean_graph.total_edges()

    def test_exclude_respected(self, clean_graph, rng):
        exclude = np.arange(50)
        _, nodes, _, _ = inject_structural_anomalies(
            clean_graph, 4, 2, rng, exclude=exclude)
        assert not set(nodes.tolist()) & set(exclude.tolist())

    def test_insufficient_nodes_raises(self, clean_graph, rng):
        with pytest.raises(ValueError, match="not enough"):
            inject_structural_anomalies(clean_graph, 60, 2, rng)


class TestAttributeInjection:
    def test_attributes_changed_to_existing_rows(self, clean_graph, rng):
        graph, nodes = inject_attribute_anomalies(clean_graph, 5, rng)
        for i in nodes:
            assert not np.allclose(graph.x[i], clean_graph.x[i])
            # swapped value must equal some original row
            matches = np.isclose(clean_graph.x, graph.x[i]).all(axis=1)
            assert matches.any()

    def test_structure_untouched(self, clean_graph, rng):
        graph, _ = inject_attribute_anomalies(clean_graph, 5, rng)
        for name in clean_graph.relation_names:
            np.testing.assert_array_equal(graph[name].edges,
                                          clean_graph[name].edges)

    def test_count_validation(self, clean_graph, rng):
        with pytest.raises(ValueError, match="not enough"):
            inject_attribute_anomalies(clean_graph, 1000, rng)


class TestFullInjection:
    def test_labels_and_report(self, clean_graph, rng):
        graph, labels, report = inject_anomalies(
            clean_graph, clique_size=4, num_cliques=2, rng=rng,
            attribute_count=6)
        assert labels.sum() == report.num_anomalies == 8 + 6
        assert np.all(labels[report.structural_nodes] == 1)
        assert np.all(labels[report.attribute_nodes] == 1)
        # two anomaly sets are disjoint
        assert not (set(report.structural_nodes.tolist())
                    & set(report.attribute_nodes.tolist()))

    def test_default_attribute_count(self, clean_graph, rng):
        _, labels, report = inject_anomalies(clean_graph, 3, 2, rng)
        assert report.attribute_nodes.size == 6
        assert labels.sum() == 12

    def test_original_graph_untouched(self, clean_graph, rng):
        x_before = clean_graph.x.copy()
        edges_before = clean_graph["View"].num_edges
        inject_anomalies(clean_graph, 3, 2, rng)
        np.testing.assert_allclose(clean_graph.x, x_before)
        assert clean_graph["View"].num_edges == edges_before
