"""Tensor mechanics: construction, graph bookkeeping, backward rules."""

import numpy as np
import pytest

from repro.autograd import Tensor, ops, tensor, zeros, ones, ensure_tensor
from repro.autograd.tensor import unbroadcast


class TestConstruction:
    def test_from_list(self):
        t = tensor([1.0, 2.0, 3.0])
        assert t.shape == (3,)
        assert t.dtype == np.float64

    def test_int_promoted_to_float(self):
        t = tensor(np.array([1, 2, 3]))
        assert t.dtype.kind == "f"

    def test_requires_grad_default_false(self):
        assert not tensor([1.0]).requires_grad

    def test_zeros_ones(self):
        assert np.all(zeros((2, 3)).data == 0)
        assert np.all(ones((2, 3)).data == 1)

    def test_ensure_tensor_passthrough(self):
        t = tensor([1.0])
        assert ensure_tensor(t) is t

    def test_ensure_tensor_wraps_scalar(self):
        t = ensure_tensor(2.5)
        assert float(t.data) == 2.5

    def test_repr_mentions_shape(self):
        assert "shape=(2,)" in repr(tensor([1.0, 2.0]))

    def test_len(self):
        assert len(tensor([1.0, 2.0, 3.0])) == 3

    def test_detach_cuts_graph(self):
        a = tensor([1.0, 2.0], requires_grad=True)
        b = ops.mul(a, 2.0).detach()
        assert not b.requires_grad

    def test_item_scalar(self):
        assert tensor(3.5).item() == 3.5

    def test_transpose_property(self):
        a = tensor(np.arange(6.0).reshape(2, 3))
        assert a.T.shape == (3, 2)


class TestBackward:
    def test_scalar_backward_default_grad(self):
        a = tensor([1.0, 2.0, 3.0], requires_grad=True)
        ops.sum(a).backward()
        np.testing.assert_allclose(a.grad, np.ones(3))

    def test_nonscalar_backward_requires_grad_arg(self):
        a = tensor([1.0, 2.0], requires_grad=True)
        out = ops.mul(a, 2.0)
        with pytest.raises(ValueError, match="non-scalar"):
            out.backward()

    def test_explicit_gradient(self):
        a = tensor([1.0, 2.0], requires_grad=True)
        out = ops.mul(a, 3.0)
        out.backward(np.array([1.0, 10.0]))
        np.testing.assert_allclose(a.grad, [3.0, 30.0])

    def test_gradient_shape_mismatch_raises(self):
        a = tensor([1.0, 2.0], requires_grad=True)
        out = ops.mul(a, 3.0)
        with pytest.raises(ValueError, match="shape"):
            out.backward(np.array([1.0]))

    def test_gradient_accumulates_across_uses(self):
        a = tensor([2.0], requires_grad=True)
        out = ops.add(ops.mul(a, 3.0), ops.mul(a, 4.0))
        out.backward(np.array([1.0]))
        np.testing.assert_allclose(a.grad, [7.0])

    def test_zero_grad(self):
        a = tensor([1.0], requires_grad=True)
        ops.sum(a).backward()
        a.zero_grad()
        assert a.grad is None

    def test_no_grad_for_constants(self):
        a = tensor([1.0, 2.0])
        b = tensor([1.0, 2.0], requires_grad=True)
        ops.sum(ops.mul(a, b)).backward()
        assert a.grad is None
        np.testing.assert_allclose(b.grad, [1.0, 2.0])

    def test_deep_chain_no_recursion_error(self):
        a = tensor([1.0], requires_grad=True)
        out = a
        for _ in range(3000):
            out = ops.add(out, 1.0)
        ops.sum(out).backward()
        np.testing.assert_allclose(a.grad, [1.0])

    def test_diamond_graph(self):
        a = tensor([2.0], requires_grad=True)
        b = ops.mul(a, 3.0)
        c = ops.add(b, b)  # both branches through b
        ops.sum(c).backward()
        np.testing.assert_allclose(a.grad, [6.0])


class TestUnbroadcast:
    def test_no_change_for_same_shape(self):
        g = np.ones((2, 3))
        assert unbroadcast(g, (2, 3)).shape == (2, 3)

    def test_sums_leading_axis(self):
        g = np.ones((4, 2, 3))
        np.testing.assert_allclose(unbroadcast(g, (2, 3)), 4 * np.ones((2, 3)))

    def test_sums_kept_axis(self):
        g = np.ones((2, 3))
        out = unbroadcast(g, (2, 1))
        np.testing.assert_allclose(out, 3 * np.ones((2, 1)))

    def test_scalar_target(self):
        g = np.ones((2, 3))
        np.testing.assert_allclose(unbroadcast(g, ()), 6.0)


class TestOperatorSugar:
    def test_add_radd(self):
        a = tensor([1.0], requires_grad=True)
        np.testing.assert_allclose((1.0 + a).data, [2.0])
        np.testing.assert_allclose((a + 1.0).data, [2.0])

    def test_sub_rsub(self):
        a = tensor([1.0])
        np.testing.assert_allclose((a - 3.0).data, [-2.0])
        np.testing.assert_allclose((3.0 - a).data, [2.0])

    def test_mul_div(self):
        a = tensor([4.0])
        np.testing.assert_allclose((a * 2.0).data, [8.0])
        np.testing.assert_allclose((a / 2.0).data, [2.0])
        np.testing.assert_allclose((2.0 / a).data, [0.5])

    def test_neg_pow(self):
        a = tensor([2.0])
        np.testing.assert_allclose((-a).data, [-2.0])
        np.testing.assert_allclose((a ** 2).data, [4.0])

    def test_matmul_operator(self):
        a = tensor(np.eye(2))
        b = tensor([[1.0, 2.0], [3.0, 4.0]])
        np.testing.assert_allclose((a @ b).data, b.data)

    def test_getitem(self):
        a = tensor([1.0, 2.0, 3.0])
        np.testing.assert_allclose(a[1].data, 2.0)

    def test_method_reductions(self):
        a = tensor([[1.0, 2.0], [3.0, 4.0]])
        assert a.sum().item() == 10.0
        assert a.mean().item() == 2.5
        assert a.reshape(4).shape == (4,)
        assert a.norm().item() == pytest.approx(np.sqrt(30.0))
