"""HTTP serving gateway (repro.server): batcher, gateway, HTTP round-trips.

The module-scoped server fixture boots a real :class:`ThreadingHTTPServer`
on an ephemeral port and every HTTP test talks to it through the stdlib
client — request framing, keep-alive, admission control and error mapping
are all exercised over an actual socket.
"""

import threading
import time

import numpy as np
import pytest

from repro.detection import BaseDetector
from repro.graphs import graph_fingerprint, random_multiplex
from repro.serve import DetectorService, ModelRegistry
from repro.server import (
    AdmissionError,
    Gateway,
    GatewayError,
    MetricsRegistry,
    MicroBatcher,
    ProtocolError,
    ServerClient,
    ServerClientError,
    ServerThread,
    graph_from_payload,
    graph_payload,
)
from repro.stream import synthesize_stream


class CountingDetector(BaseDetector):
    """A detector that counts scoring passes (and can be slowed down)."""

    def __init__(self, num_nodes=24, delay=0.0):
        self.num_nodes = num_nodes
        self.delay = delay
        self.calls = 0
        self._call_lock = threading.Lock()
        self._scores = np.linspace(0.0, 1.0, num_nodes)
        self._relation_names = ["a", "b"]
        self._num_features = 4

    def score_graph(self, graph):
        with self._call_lock:
            self.calls += 1
        if self.delay:
            time.sleep(self.delay)
        rng = np.random.default_rng(graph.num_nodes)
        return rng.random(graph.num_nodes)


@pytest.fixture
def counting_service():
    return DetectorService(CountingDetector())


# ---------------------------------------------------------------------------
# Protocol
# ---------------------------------------------------------------------------

class TestProtocol:
    def test_graph_payload_round_trip(self, tiny_multiplex):
        rebuilt = graph_from_payload(graph_payload(tiny_multiplex))
        assert graph_fingerprint(rebuilt) == graph_fingerprint(tiny_multiplex)

    @pytest.mark.parametrize("payload", [
        "not a dict",
        {},
        {"x": [[1.0, 2.0]]},
        {"x": [[1.0]], "relations": {}},
        {"x": "nope", "relations": {"a": []}},
        {"x": [1.0, 2.0], "relations": {"a": []}},
        {"x": [[1.0], [2.0]], "relations": {"a": [[0, 5]]}},  # out of range
        {"x": [[1.0], [2.0]], "relations": {"a": [[0]]}},     # bad shape
        # weighted triples / flat pair lists must NOT be silently
        # reinterpreted as a different set of (u, v) pairs
        {"x": [[1.0]] * 6, "relations": {"a": [[0, 1, 2], [3, 4, 5]]}},
        {"x": [[1.0]] * 4, "relations": {"a": [0, 1, 2, 3]}},
    ])
    def test_malformed_graph_payloads(self, payload):
        with pytest.raises(ProtocolError):
            graph_from_payload(payload)

    def test_empty_edge_list_is_a_valid_relation(self):
        graph = graph_from_payload(
            {"x": [[1.0], [2.0]], "relations": {"a": [[0, 1]], "b": []}})
        assert graph["b"].num_edges == 0
        assert graph["a"].num_edges == 1

    def test_metrics_renderer(self):
        registry = MetricsRegistry(prefix="t")
        registry.counter("hits_total", "Hits.", 3)
        registry.gauge("depth", "Depth.", 1.5, labels={"pool": "a"})
        text = registry.render()
        assert "# TYPE t_hits_total counter" in text
        assert "t_hits_total 3" in text
        assert 't_depth{pool="a"} 1.5' in text
        assert text.endswith("\n")


# ---------------------------------------------------------------------------
# Micro-batcher
# ---------------------------------------------------------------------------

class TestMicroBatcher:
    def test_coalesces_same_fingerprint(self, counting_service, rng):
        graph = random_multiplex(24, 2, 4, rng)
        batcher = MicroBatcher(counting_service, workers=2, linger_ms=25.0)
        futures = [batcher.submit(graph) for _ in range(10)]
        results = [f.result(timeout=10.0) for f in futures]
        batcher.close()
        assert all(np.array_equal(results[0], r) for r in results)
        # one scoring pass answered all ten requests
        assert counting_service.detector.calls == 1
        assert batcher.stats.batches >= 1
        assert batcher.stats.coalesced >= 1
        assert batcher.stats.completed == 10
        assert batcher.stats.largest_batch >= 2

    def test_distinct_fingerprints_get_distinct_batches(
            self, counting_service, rng):
        graphs = [random_multiplex(20 + i, 2, 4, rng) for i in range(3)]
        batcher = MicroBatcher(counting_service, workers=2, linger_ms=5.0)
        futures = [batcher.submit(g) for g in graphs]
        sizes = {f.result(timeout=10.0).size for f in futures}
        batcher.close()
        assert sizes == {20, 21, 22}
        assert batcher.stats.batches == 3

    def test_admission_queue_full_raises_429(self, rng):
        service = DetectorService(CountingDetector(delay=0.2))
        batcher = MicroBatcher(service, workers=1, max_queue=2,
                               linger_ms=0.0)
        graphs = [random_multiplex(10 + i, 2, 4, rng) for i in range(6)]
        admitted, rejected = [], []
        for graph in graphs:
            try:
                admitted.append(batcher.submit(graph))
            except AdmissionError as exc:
                rejected.append(exc)
        assert rejected and all(exc.status == 429 for exc in rejected)
        assert len(admitted) == 2
        for future in admitted:  # admitted work still completes
            assert future.result(timeout=10.0) is not None
        batcher.close()
        assert batcher.stats.rejected == len(rejected)

    def test_closed_batcher_rejects_with_503(self, counting_service, rng):
        batcher = MicroBatcher(counting_service)
        batcher.close()
        with pytest.raises(AdmissionError) as excinfo:
            batcher.submit(random_multiplex(10, 2, 4, rng))
        assert excinfo.value.status == 503

    def test_close_drains_admitted_work(self, rng):
        service = DetectorService(CountingDetector(delay=0.05))
        batcher = MicroBatcher(service, workers=1, linger_ms=0.0)
        futures = [batcher.submit(random_multiplex(10 + i, 2, 4, rng))
                   for i in range(3)]
        batcher.close(wait=True)
        for future in futures:
            assert future.result(timeout=1.0).size >= 10

    def test_scoring_failure_propagates_to_futures(self, rng):
        class BrokenDetector(CountingDetector):
            def score_graph(self, graph):
                raise RuntimeError("boom")

        batcher = MicroBatcher(DetectorService(BrokenDetector()),
                               linger_ms=0.0)
        future = batcher.submit(random_multiplex(10, 2, 4, rng))
        with pytest.raises(RuntimeError, match="boom"):
            future.result(timeout=10.0)
        batcher.close()
        assert batcher.stats.failed == 1

    @pytest.mark.parametrize("kwargs", [
        {"workers": 0}, {"max_queue": 0}, {"linger_ms": -1.0},
        {"max_batch": 0},
    ])
    def test_rejects_bad_knobs(self, counting_service, kwargs):
        with pytest.raises(ValueError):
            MicroBatcher(counting_service, **kwargs)


# ---------------------------------------------------------------------------
# Thread-safety of the underlying service (the server's foundation)
# ---------------------------------------------------------------------------

class TestDetectorServiceConcurrency:
    def test_concurrent_same_graph_computes_once(self, rng):
        detector = CountingDetector(delay=0.02)
        service = DetectorService(detector)
        graph = random_multiplex(24, 2, 4, rng)
        fingerprint = graph_fingerprint(graph)
        results, errors = [], []
        barrier = threading.Barrier(8)

        def request():
            try:
                barrier.wait(timeout=5.0)
                results.append(service.scores(graph, fingerprint))
            except Exception as exc:  # pragma: no cover - failure reporting
                errors.append(exc)

        threads = [threading.Thread(target=request) for _ in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=10.0)
        assert not errors
        assert len(results) == 8
        # dog-pile protection: one scoring pass, everyone shares it
        assert detector.calls == 1
        assert all(np.array_equal(results[0], r) for r in results)
        assert service.stats.misses == 1
        assert service.stats.hits == 7
        assert service.stats.requests == 8

    def test_concurrent_distinct_graphs(self, rng):
        detector = CountingDetector(delay=0.005)
        service = DetectorService(detector, cache_size=16)
        graphs = [random_multiplex(12 + i, 2, 4, rng) for i in range(6)]
        errors = []

        def request(graph):
            try:
                for _ in range(3):
                    service.scores(graph)
            except Exception as exc:  # pragma: no cover
                errors.append(exc)

        threads = [threading.Thread(target=request, args=(g,))
                   for g in graphs]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=10.0)
        assert not errors
        assert detector.calls == 6          # one pass per distinct graph
        assert service.stats.misses == 6
        assert service.stats.hits == 12

    def test_hot_swap_race_does_not_poison_cache(self, rng):
        """A pass started before replace_detector must not land in the
        new detector's cache."""
        first = CountingDetector(delay=0.05)
        second = CountingDetector()
        service = DetectorService(first)
        graph = random_multiplex(24, 2, 4, rng)
        fingerprint = graph_fingerprint(graph)

        started = threading.Event()

        class SignallingDetector(CountingDetector):
            def score_graph(self, inner_graph):
                started.set()
                return first.score_graph(inner_graph)

        service.detector = SignallingDetector(delay=0.05)
        worker = threading.Thread(
            target=lambda: service.scores(graph, fingerprint))
        worker.start()
        assert started.wait(timeout=5.0)
        service.replace_detector(second)
        worker.join(timeout=10.0)
        # the stale pass was discarded: the new detector's cache is empty
        assert len(service) == 0
        fresh = service.scores(graph, fingerprint)
        assert second.calls == 1
        assert fresh.size == graph.num_nodes

    def test_concurrent_registry_saves_and_deletes(self, fitted_umgad,
                                                   tiny_dataset, tmp_path):
        registry = ModelRegistry(tmp_path / "models")
        errors = []

        def churn(index):
            name = f"model-{index % 3}"
            try:
                for _ in range(5):
                    registry.save(name, fitted_umgad,
                                  graph=tiny_dataset.graph, overwrite=True)
                    registry.names()
                    try:
                        registry.delete(name)
                    except KeyError:
                        pass  # another thread deleted it first
            except Exception as exc:  # pragma: no cover
                errors.append(exc)

        threads = [threading.Thread(target=churn, args=(i,))
                   for i in range(6)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=30.0)
        assert not errors


# ---------------------------------------------------------------------------
# The HTTP server, end to end over a real socket
# ---------------------------------------------------------------------------

@pytest.fixture(scope="module")
def served(fitted_umgad, tiny_dataset, tmp_path_factory):
    """(server, client, registry) booted once for all read-only HTTP tests."""
    root = tmp_path_factory.mktemp("server-models")
    registry = ModelRegistry(root)
    registry.save("base", fitted_umgad, graph=tiny_dataset.graph)
    service = DetectorService(registry.path("base"), match_dtype=False)
    gateway = Gateway(service, registry=registry, active_model="base",
                      base_graph=tiny_dataset.graph, linger_ms=1.0,
                      window=30)
    with ServerThread(gateway) as server:
        client = ServerClient(port=server.port)
        yield server, client, registry
        client.close()


class TestHTTPEndpoints:
    def test_healthz(self, served):
        _server, client, _registry = served
        health = client.health()
        assert health["status"] == "ok"
        assert health["detector"] == "UMGAD"
        assert health["uptime_seconds"] >= 0.0

    def test_score_round_trip_is_bitwise_identical(self, served,
                                                   fitted_umgad, rng):
        """The parity pin: HTTP-served scores == UMGAD.score_graph, bit
        for bit — JSON must not lose float precision anywhere."""
        _server, client, _registry = served
        graph = random_multiplex(28, 3, 16, rng)
        response = client.score(graph)
        served_scores = np.asarray(response["scores"])
        direct = fitted_umgad.score_graph(graph)
        assert served_scores.dtype == np.float64
        assert np.array_equal(served_scores, direct)
        assert response["fingerprint"] == graph_fingerprint(graph)
        assert response["num_nodes"] == 28

    def test_score_subset_top_k_and_threshold(self, served, rng):
        _server, client, _registry = served
        graph = random_multiplex(26, 3, 16, rng)
        response = client.score(graph, nodes=[0, 3, 5], top_k=4,
                                threshold=True)
        assert [row["node"] for row in response["scores"]] == [0, 3, 5]
        assert len(response["top"]) == 4
        top_scores = [row["score"] for row in response["top"]]
        assert top_scores == sorted(top_scores, reverse=True)
        assert "threshold" in response and "flagged" in response
        threshold = response["threshold"]["threshold"]
        full = np.asarray(client.score(graph)["scores"])
        assert response["flagged"] == np.flatnonzero(
            full >= threshold).tolist()

    def test_score_by_fingerprint_hits_cache(self, served, rng):
        _server, client, _registry = served
        graph = random_multiplex(22, 3, 16, rng)
        first = client.score(graph)
        second = client.score(fingerprint=first["fingerprint"])
        assert second["scores"] == first["scores"]

    def test_trained_fingerprint_needs_no_payload(self, served, fitted_umgad,
                                                  tiny_dataset):
        _server, client, _registry = served
        fingerprint = graph_fingerprint(tiny_dataset.graph)
        response = client.score(fingerprint=fingerprint)
        assert np.array_equal(np.asarray(response["scores"]),
                              fitted_umgad.decision_scores())

    def test_unknown_fingerprint_404(self, served):
        _server, client, _registry = served
        with pytest.raises(ServerClientError) as excinfo:
            client.score(fingerprint="0" * 64)
        assert excinfo.value.status == 404

    def test_malformed_payloads_400(self, served):
        _server, client, _registry = served
        cases = [
            {},                                           # neither key
            {"graph": {"x": [[1.0]], "relations": {}}},   # bad graph
            {"graph": {"x": [[1.0], [2.0]],
                       "relations": {"a": [[0, 1]]}},
             "nodes": [99]},                              # node out of range
            {"graph": {"x": [[1.0], [2.0]],
                       "relations": {"a": [[0, 1]]}},
             "top_k": 0},                                 # bad top_k
        ]
        for payload in cases:
            with pytest.raises(ServerClientError) as excinfo:
                client._request("POST", "/v1/score", payload)
            assert excinfo.value.status == 400, payload

    def test_schema_mismatch_graph_is_409(self, served, rng):
        """A well-formed graph the loaded model cannot answer (wrong
        feature width) is a 409 client error, not a 500."""
        _server, client, _registry = served
        wrong_features = random_multiplex(20, 3, 5, rng)
        with pytest.raises(ServerClientError) as excinfo:
            client.score(wrong_features)
        assert excinfo.value.status == 409
        assert "features" in excinfo.value.message

    def test_oversized_body_is_400_and_framing_survives(self, served):
        """An over-limit Content-Length is refused without reading the
        body, and the connection is closed so the unread bytes cannot
        masquerade as the next request; the client reconnects."""
        import http.client as http_client

        server, _client, _registry = served
        connection = http_client.HTTPConnection("127.0.0.1", server.port,
                                                timeout=10.0)
        connection.request(
            "POST", "/v1/score", body=b"x",
            headers={"Content-Type": "application/json",
                     "Content-Length": str(200 * 1024 * 1024)})
        response = connection.getresponse()
        assert response.status == 400
        assert response.headers.get("Connection") == "close"
        response.read()
        connection.close()
        # the server is still healthy for new connections
        with ServerClient(port=server.port) as fresh:
            assert fresh.health()["status"] == "ok"

    def test_unknown_routes_404(self, served):
        _server, client, _registry = served
        for method, path in [("GET", "/nope"), ("POST", "/v1/nope")]:
            with pytest.raises(ServerClientError) as excinfo:
                client._request(method, path, {} if method == "POST" else None)
            assert excinfo.value.status == 404

    def test_events_round_trip(self, served, tiny_dataset, rng):
        _server, client, _registry = served
        events, _truth = synthesize_stream(tiny_dataset.graph, 45, rng,
                                           burst_every=0)
        response = client.events(events[:45], flush=True)
        assert response["accepted"] == 45
        assert response["reports"], "45 events >= window 30: a report fired"
        report = response["reports"][0]
        assert report["num_nodes"] >= tiny_dataset.graph.num_nodes
        assert response["monitor"]["events_consumed"] >= 45
        assert response["monitor"]["buffered"] == 0  # flush drained it

    def test_events_bad_payloads_400(self, served):
        _server, client, _registry = served
        for payload in [{}, {"events": []}, {"events": [{"op": "bogus"}]}]:
            with pytest.raises(ServerClientError) as excinfo:
                client._request("POST", "/v1/events", payload)
            assert excinfo.value.status == 400

    def test_models_listing_and_activate(self, served, fitted_umgad,
                                         tiny_dataset):
        server, client, registry = served
        registry.save("candidate", fitted_umgad, graph=tiny_dataset.graph,
                      overwrite=True)
        listing = client.models()
        names = {model["name"] for model in listing["models"]}
        assert {"base", "candidate"} <= names
        response = client.activate("candidate")
        assert response["activated"] == "candidate"
        assert client.models()["active"] == "candidate"
        assert client.health()["active_model"] == "candidate"
        # and scoring still works after the hot swap
        fingerprint = graph_fingerprint(tiny_dataset.graph)
        assert client.score(fingerprint=fingerprint)["num_nodes"] == \
            tiny_dataset.graph.num_nodes

    def test_activate_unknown_model_404(self, served):
        _server, client, _registry = served
        with pytest.raises(ServerClientError) as excinfo:
            client.activate("missing")
        assert excinfo.value.status == 404

    def test_metrics_exposition(self, served):
        _server, client, _registry = served
        client.health()  # guarantee at least one counted request
        text = client.metrics()
        assert "# TYPE repro_server_requests_total counter" in text
        assert "repro_service_cache_hits_total" in text
        assert "repro_batcher_batches_total" in text
        assert 'endpoint="healthz",status="200"' in text
        # monitor metrics appear once events have flowed (earlier test)
        assert "repro_monitor_events_total" in text

    def test_keep_alive_connection_reuse(self, served):
        """Many requests over one connection: framing must stay intact."""
        server, _client, _registry = served
        with ServerClient(port=server.port) as client:
            for _ in range(5):
                assert client.health()["status"] == "ok"
                client.activate("base")
                assert "repro_server_uptime_seconds" in client.metrics()


class TestOverloadAndShutdown:
    def test_overload_returns_429_and_recovers(self, rng):
        service = DetectorService(CountingDetector(delay=0.15))
        gateway = Gateway(service, workers=1, max_queue=2, linger_ms=0.0)
        graphs = [random_multiplex(10 + i, 2, 4, rng) for i in range(8)]
        statuses = []
        lock = threading.Lock()
        with ServerThread(gateway) as server:
            def hit(graph):
                with ServerClient(port=server.port, timeout=30.0) as client:
                    try:
                        client.score(graph)
                        status = 200
                    except ServerClientError as exc:
                        status = exc.status
                with lock:
                    statuses.append(status)

            threads = [threading.Thread(target=hit, args=(g,))
                       for g in graphs]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join(timeout=60.0)
            assert len(statuses) == len(graphs), "a request hung or died"
            assert 429 in statuses, f"no overload rejection in {statuses}"
            assert statuses.count(200) >= 1
            assert set(statuses) <= {200, 429}
            # the server recovers: a fresh request succeeds afterwards
            with ServerClient(port=server.port) as client:
                assert client.health()["queue_depth"] == 0
                assert client.score(graphs[0])["num_nodes"] == 10
                metrics = client.metrics()
        assert "repro_batcher_rejected_total" in metrics

    def test_draining_gateway_returns_503(self, counting_service, rng):
        gateway = Gateway(counting_service, linger_ms=0.0)
        with ServerThread(gateway) as server:
            gateway.batcher.close()   # drain mode: admission refuses
            with ServerClient(port=server.port) as client:
                with pytest.raises(ServerClientError) as excinfo:
                    client.score(random_multiplex(10, 2, 4, rng))
                assert excinfo.value.status == 503
                # non-scoring endpoints still answer while draining
                assert client.health()["status"] == "ok"


class TestGatewayWithoutExtras:
    def test_no_registry_is_409(self, counting_service):
        gateway = Gateway(counting_service)
        with pytest.raises(GatewayError) as excinfo:
            gateway.list_models()
        assert excinfo.value.status == 409
        gateway.close()

    def test_events_without_schema_is_409(self, rng):
        class Schemaless(BaseDetector):
            def __init__(self):
                self._scores = np.ones(4)

        gateway = Gateway(DetectorService(Schemaless()))
        with pytest.raises(GatewayError) as excinfo:
            gateway.ingest_events({"events": [
                {"op": "add_edge", "rel": "a", "u": 0, "v": 1}]})
        assert excinfo.value.status == 409
        gateway.close()

    def test_events_schema_from_detector(self, counting_service):
        """No base graph: the builder bootstraps from the detector schema."""
        gateway = Gateway(counting_service, window=4)
        response = gateway.ingest_events({"events": [
            {"op": "add_node", "x": [0.0, 0.0, 0.0, 0.0]},
            {"op": "add_node", "x": [1.0, 1.0, 1.0, 1.0]},
            {"op": "add_edge", "rel": "a", "u": 0, "v": 1},
        ], "flush": True})
        assert response["accepted"] == 3
        assert response["monitor"]["num_nodes"] == 2
        gateway.close()


class TestServeCLI:
    def test_serve_requires_a_model_source(self, capsys):
        from repro.cli import main as cli_main

        assert cli_main(["serve", "--registry", "/tmp/nowhere-models"]) == 1
        assert "serve needs --model" in capsys.readouterr().err
