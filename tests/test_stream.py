"""Streaming ingestion + online monitoring (repro.stream)."""

import json

import numpy as np
import pytest

from repro.cli import main as cli_main
from repro.detection import BaseDetector
from repro.graphs import (
    MultiplexGraph,
    RelationGraph,
    graph_fingerprint,
    random_multiplex,
    save_multiplex,
)
from repro.serve import DetectorService
from repro.stream import (
    AddEdge,
    AddNode,
    DriftAlert,
    IncrementalGraphBuilder,
    RefitAlert,
    RemoveEdge,
    ScoreJump,
    StreamMonitor,
    TopKEntrant,
    UpdateAttr,
    bootstrap_events,
    ks_statistic,
    parse_event,
    psi,
    read_events,
    synthesize_stream,
    write_events,
)


# ---------------------------------------------------------------------------
# Helpers
# ---------------------------------------------------------------------------

class _NormDetector(BaseDetector):
    """score = ||x|| — cheap, deterministic, scores any graph."""

    def fit(self, graph):
        self._graph = graph
        self._scores = np.linalg.norm(graph.x, axis=1)
        return self

    def score_graph(self, graph):
        return np.linalg.norm(graph.x, axis=1)


def _naive_replay(graph, events):
    """Independent (set-based) event application, for cross-checking."""
    edge_sets = {name: {tuple(edge) for edge in graph[name].edges}
                 for name in graph.relation_names}
    rows = [row.copy() for row in graph.x]
    for event in events:
        if isinstance(event, AddEdge):
            edge_sets[event.relation].add((event.u, event.v))
        elif isinstance(event, RemoveEdge):
            edge_sets[event.relation].discard((event.u, event.v))
        elif isinstance(event, AddNode):
            rows.append(event.x.copy())
        elif isinstance(event, UpdateAttr):
            rows[event.node] = event.x.copy()
    x = np.stack(rows)
    relations = {
        name: RelationGraph(
            x.shape[0],
            np.array(sorted(pairs), dtype=np.int64).reshape(-1, 2),
            name=name)
        for name, pairs in edge_sets.items()
    }
    return MultiplexGraph(x=x, relations=relations)


# ---------------------------------------------------------------------------
# Events + JSONL log
# ---------------------------------------------------------------------------

class TestEvents:
    def test_edge_events_canonicalise_endpoints(self):
        assert (AddEdge("r", 5, 2).u, AddEdge("r", 5, 2).v) == (2, 5)
        assert (RemoveEdge("r", 9, 0).u, RemoveEdge("r", 9, 0).v) == (0, 9)

    def test_self_loop_rejected(self):
        with pytest.raises(ValueError, match="self-loop"):
            AddEdge("r", 3, 3)

    def test_negative_ids_rejected(self):
        with pytest.raises(ValueError, match="non-negative"):
            AddEdge("r", -1, 2)
        with pytest.raises(ValueError, match="non-negative"):
            UpdateAttr(-1, [0.0])

    def test_parse_unknown_op(self):
        with pytest.raises(ValueError, match="unknown event op"):
            parse_event({"op": "explode"})

    def test_jsonl_roundtrip_is_exact(self, tmp_path, rng):
        events = [
            AddEdge("view", 1, 2),
            RemoveEdge("buy", 7, 3),
            AddNode(rng.normal(size=4)),
            UpdateAttr(5, rng.normal(size=4)),
        ]
        path = tmp_path / "events.jsonl"
        assert write_events(path, events) == 4
        replayed = list(read_events(path))
        assert [e.op for e in replayed] == [e.op for e in events]
        # float64 must round-trip bitwise (repr-based JSON floats)
        np.testing.assert_array_equal(replayed[2].x, events[2].x)
        np.testing.assert_array_equal(replayed[3].x, events[3].x)
        assert (replayed[0].relation, replayed[0].u, replayed[0].v) == \
            ("view", 1, 2)

    def test_array_events_compare_by_value(self):
        assert AddNode([1.0, 2.0]) == AddNode([1.0, 2.0])
        assert AddNode([1.0, 2.0]) != AddNode([1.0, 3.0])
        assert UpdateAttr(3, [0.5]) == UpdateAttr(3, [0.5])
        assert UpdateAttr(3, [0.5]) != UpdateAttr(4, [0.5])
        assert parse_event(AddNode([1.0]).to_dict()) == AddNode([1.0])

    def test_write_events_append_mode(self, tmp_path):
        path = tmp_path / "log.jsonl"
        write_events(path, [AddEdge("r", 0, 1)])
        write_events(path, [AddEdge("r", 1, 2)], append=True)
        assert [e.to_dict() for e in read_events(path)] == [
            AddEdge("r", 0, 1).to_dict(), AddEdge("r", 1, 2).to_dict()]
        write_events(path, [AddEdge("r", 2, 3)])   # default overwrites
        assert len(list(read_events(path))) == 1

    def test_read_events_reports_line_numbers(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"op": "add_edge", "rel": "r", "u": 0, "v": 1}\n'
                        '{"op": "nope"}\n')
        with pytest.raises(ValueError, match="bad.jsonl:2"):
            list(read_events(path))


# ---------------------------------------------------------------------------
# IncrementalGraphBuilder
# ---------------------------------------------------------------------------

class TestBuilder:
    def test_bootstrap_replay_matches_static_fingerprint(self, tiny_multiplex):
        builder = IncrementalGraphBuilder(
            relation_names=tiny_multiplex.relation_names,
            num_features=tiny_multiplex.num_features)
        builder.apply(bootstrap_events(tiny_multiplex))
        assert builder.fingerprint() == graph_fingerprint(tiny_multiplex)
        snapshot = builder.snapshot()
        np.testing.assert_array_equal(snapshot.x, tiny_multiplex.x)
        for name in tiny_multiplex.relation_names:
            np.testing.assert_array_equal(snapshot[name].edges,
                                          tiny_multiplex[name].edges)

    def test_snapshot_mutation_refreshes_relation_caches(self, rng):
        # RelationGraph memoizes degrees/propagators; the builder must hand
        # out a *new* relation object (fresh caches) once edges mutate, while
        # untouched relations keep sharing the previous snapshot's object
        # (and its warm caches).
        graph = random_multiplex(40, 2, 6, rng, avg_degree=3.0)
        names = graph.relation_names
        builder = IncrementalGraphBuilder.from_graph(graph)
        snap1 = builder.snapshot()
        deg_before = {n: snap1[n].degrees().copy() for n in names}

        u, v = snap1[names[0]].edges[0]
        builder.apply(RemoveEdge(names[0], int(u), int(v)))
        snap2 = builder.snapshot()

        assert snap2[names[0]] is not snap1[names[0]]
        assert snap2[names[1]] is snap1[names[1]]      # cache reuse
        np.testing.assert_array_equal(snap1[names[0]].degrees(),
                                      deg_before[names[0]])  # old stays valid
        expected = deg_before[names[0]].copy()
        expected[[u, v]] -= 1
        np.testing.assert_array_equal(snap2[names[0]].degrees(), expected)

    def test_snapshot_node_growth_resizes_degrees(self, rng):
        graph = random_multiplex(20, 2, 4, rng, avg_degree=3.0)
        builder = IncrementalGraphBuilder.from_graph(graph)
        name = graph.relation_names[0]
        before = builder.snapshot()[name].degrees()
        builder.apply(AddNode(np.zeros(4)))
        after = builder.snapshot()[name].degrees()
        assert before.size == 20 and after.size == 21
        np.testing.assert_array_equal(after[:20], before)
        assert after[20] == 0

    def test_full_stream_replay_matches_static_build(self, rng):
        graph = random_multiplex(60, 3, 8, rng, avg_degree=4.0)
        events, _truth = synthesize_stream(
            graph, 800, np.random.default_rng(1), burst_every=200)
        builder = IncrementalGraphBuilder.from_graph(graph)
        builder.apply(events)
        static = _naive_replay(graph, events)
        assert builder.fingerprint() == graph_fingerprint(static)
        assert builder.fingerprint() == graph_fingerprint(builder.snapshot())

    def test_jsonl_replay_matches_direct_replay(self, rng, tmp_path):
        graph = random_multiplex(40, 2, 6, rng, avg_degree=3.0)
        events, _ = synthesize_stream(graph, 300, np.random.default_rng(2),
                                      burst_every=120)
        direct = IncrementalGraphBuilder.from_graph(graph)
        direct.apply(events)
        path = tmp_path / "events.jsonl"
        write_events(path, events)
        from_log = IncrementalGraphBuilder.from_graph(graph)
        from_log.apply(read_events(path))
        assert from_log.fingerprint() == direct.fingerprint()

    def test_snapshots_are_immutable_under_further_apply(self, tiny_multiplex):
        builder = IncrementalGraphBuilder.from_graph(tiny_multiplex)
        first = builder.snapshot()
        fp_first = builder.fingerprint()
        builder.apply([AddEdge(tiny_multiplex.relation_names[0], 0, 1),
                       UpdateAttr(0, np.zeros(tiny_multiplex.num_features))])
        second = builder.snapshot()
        assert graph_fingerprint(first) == fp_first
        assert graph_fingerprint(second) == builder.fingerprint()
        assert builder.fingerprint() != fp_first

    def test_unchanged_relations_shared_between_snapshots(self, tiny_multiplex):
        builder = IncrementalGraphBuilder.from_graph(tiny_multiplex)
        names = tiny_multiplex.relation_names
        first = builder.snapshot()
        u, v = next((u, v) for u in range(tiny_multiplex.num_nodes)
                    for v in range(u + 1, tiny_multiplex.num_nodes)
                    if not builder.has_edge(names[0], u, v))
        builder.apply(AddEdge(names[0], u, v))
        second = builder.snapshot()
        assert second[names[1]] is first[names[1]]   # untouched: shared
        assert second[names[0]] is not first[names[0]]

    def test_remove_edge_until_relation_empty(self):
        builder = IncrementalGraphBuilder(relation_names=["r"], num_features=2)
        builder.apply([AddNode([0.0, 1.0]), AddNode([1.0, 0.0]),
                       AddEdge("r", 0, 1)])
        builder.apply(RemoveEdge("r", 0, 1))
        snapshot = builder.snapshot()
        assert snapshot["r"].num_edges == 0
        static = MultiplexGraph(
            x=snapshot.x,
            relations={"r": RelationGraph(2, np.empty((0, 2)), name="r")})
        assert builder.fingerprint() == graph_fingerprint(static)

    def test_duplicate_add_is_counted_noop(self):
        builder = IncrementalGraphBuilder(relation_names=["r"], num_features=1)
        builder.apply([AddNode([0.0]), AddNode([1.0]), AddEdge("r", 0, 1)])
        before = builder.fingerprint()
        stats = builder.apply([AddEdge("r", 0, 1), AddEdge("r", 1, 0)])
        assert stats.added_edges == 0
        assert stats.redundant_adds == 2
        assert builder.fingerprint() == before

    def test_missing_remove_is_counted_noop(self):
        builder = IncrementalGraphBuilder(relation_names=["r"], num_features=1)
        builder.apply([AddNode([0.0]), AddNode([1.0])])
        stats = builder.apply(RemoveEdge("r", 0, 1))
        assert stats.removed_edges == 0
        assert stats.missing_removes == 1

    def test_unknown_relation_raises_without_corrupting_state(
            self, tiny_multiplex):
        builder = IncrementalGraphBuilder.from_graph(tiny_multiplex)
        before = builder.fingerprint()
        with pytest.raises(ValueError, match="unknown relation"):
            builder.apply(AddEdge("no-such-relation", 0, 1))
        assert builder.fingerprint() == before
        assert builder.total_edges() == tiny_multiplex.total_edges()

    def test_out_of_range_node_raises(self, tiny_multiplex):
        builder = IncrementalGraphBuilder.from_graph(tiny_multiplex)
        name = tiny_multiplex.relation_names[0]
        with pytest.raises(ValueError, match="out of range"):
            builder.apply(AddEdge(name, 0, tiny_multiplex.num_nodes + 5))
        with pytest.raises(ValueError, match="out of range"):
            builder.apply(UpdateAttr(tiny_multiplex.num_nodes,
                                     np.zeros(tiny_multiplex.num_features)))

    def test_wrong_attribute_width_raises(self):
        builder = IncrementalGraphBuilder(relation_names=["r"], num_features=3)
        with pytest.raises(ValueError, match="width"):
            builder.apply(AddNode([1.0, 2.0]))
        builder.apply(AddNode([1.0, 2.0, 3.0]))
        with pytest.raises(ValueError, match="width"):
            builder.apply(UpdateAttr(0, [1.0]))

    def test_batch_prefix_applied_before_error(self):
        builder = IncrementalGraphBuilder(relation_names=["r"], num_features=1)
        builder.apply([AddNode([0.0]), AddNode([1.0])])
        with pytest.raises(ValueError, match="unknown relation"):
            builder.apply([AddEdge("r", 0, 1), AddEdge("bogus", 0, 1)])
        # the valid prefix landed; state is consistent, not rolled back
        assert builder.num_edges("r") == 1
        builder.snapshot()

    def test_capacity_doubling_growth(self):
        builder = IncrementalGraphBuilder(relation_names=["r"], num_features=2)
        n = 200
        builder.apply([AddNode([float(i), 0.0]) for i in range(n)])
        builder.apply([AddEdge("r", i, i + 1) for i in range(n - 1)])
        assert builder.num_nodes == n
        assert builder.num_edges("r") == n - 1
        static = MultiplexGraph(
            x=builder.attributes().copy(),
            relations={"r": RelationGraph(
                n, np.stack([np.arange(n - 1), np.arange(1, n)], axis=1),
                name="r")})
        assert builder.fingerprint() == graph_fingerprint(static)

    def test_empty_builder_snapshot_rejected(self):
        builder = IncrementalGraphBuilder(relation_names=["r"], num_features=1)
        with pytest.raises(ValueError, match="empty graph"):
            builder.snapshot()

    def test_attributes_view_is_read_only(self, tiny_multiplex):
        builder = IncrementalGraphBuilder.from_graph(tiny_multiplex)
        view = builder.attributes()
        with pytest.raises(ValueError):
            view[0, 0] = 99.0


class TestSyntheticStream:
    def test_deterministic_given_seed(self, tiny_multiplex):
        a, _ = synthesize_stream(tiny_multiplex, 200,
                                 np.random.default_rng(9), burst_every=80)
        b, _ = synthesize_stream(tiny_multiplex, 200,
                                 np.random.default_rng(9), burst_every=80)
        assert [e.to_dict() for e in a] == [e.to_dict() for e in b]

    def test_bursts_recorded_with_kinds_and_ranges(self, tiny_multiplex):
        events, truth = synthesize_stream(
            tiny_multiplex, 400, np.random.default_rng(5), burst_every=150)
        assert len(truth.bursts) >= 2
        kinds = [b.kind for b in truth.bursts]
        assert "structural" in kinds and "attribute" in kinds
        for burst in truth.bursts:
            assert 0 <= burst.start <= burst.stop <= len(events)
        labels = truth.labels(10**6)
        assert labels.sum() == truth.anomaly_nodes.size

    def test_structural_truth_covers_only_perturbed_nodes(self):
        # complete graph: a structural burst cannot add anything, so it
        # must not label untouched nodes as anomalies
        n = 5
        pairs = np.array([(u, v) for u in range(n) for v in range(u + 1, n)])
        complete = MultiplexGraph(
            x=np.eye(n), relations={"r": RelationGraph(n, pairs, name="r")})
        _events, truth = synthesize_stream(
            complete, 30, np.random.default_rng(0), burst_every=5,
            clique_size=4, remove_fraction=0.0, attr_fraction=1.0)
        structural = [b for b in truth.bursts if b.kind == "structural"]
        assert not structural
        for burst in truth.bursts:
            assert burst.stop > burst.start

    def test_stream_is_valid_no_noop_events(self, tiny_multiplex):
        events, _ = synthesize_stream(
            tiny_multiplex, 500, np.random.default_rng(6), burst_every=200)
        builder = IncrementalGraphBuilder.from_graph(tiny_multiplex)
        stats = builder.apply(events)
        assert stats.redundant_adds == 0
        assert stats.missing_removes == 0
        assert stats.applied == len(events)


# ---------------------------------------------------------------------------
# Drift statistics
# ---------------------------------------------------------------------------

class TestDriftStats:
    def test_psi_zero_for_identical_samples(self, rng):
        scores = rng.normal(size=500)
        assert psi(scores, scores) == pytest.approx(0.0, abs=1e-6)

    def test_psi_grows_with_shift(self, rng):
        base = rng.normal(size=500)
        assert psi(base, base + 0.1) < psi(base, base + 2.0)
        assert psi(base, base + 2.0) > 0.25

    def test_ks_bounds(self, rng):
        base = rng.normal(size=400)
        assert ks_statistic(base, base) == pytest.approx(0.0)
        assert ks_statistic(base, base + 100.0) == pytest.approx(1.0)

    def test_empty_samples_rejected(self):
        with pytest.raises(ValueError):
            psi(np.empty(0), np.ones(3))
        with pytest.raises(ValueError):
            ks_statistic(np.ones(3), np.empty(0))


# ---------------------------------------------------------------------------
# StreamMonitor
# ---------------------------------------------------------------------------

class TestMonitor:
    def _monitor(self, graph, **kwargs):
        detector = _NormDetector().fit(graph)
        service = DetectorService(detector)
        builder = IncrementalGraphBuilder.from_graph(graph)
        defaults = dict(window=20, top_k=5, psi_threshold=0.25)
        defaults.update(kwargs)
        return StreamMonitor(service, builder, **defaults), service

    def test_score_jump_and_topk_alerts(self, rng):
        graph = random_multiplex(60, 2, 6, rng, avg_degree=4.0)
        monitor, _ = self._monitor(graph)
        quiet = [UpdateAttr(i % 60, graph.x[i % 60]) for i in range(40)]
        spike = [UpdateAttr(7, np.full(6, 50.0))] + \
                [UpdateAttr((i + 8) % 60, graph.x[(i + 8) % 60])
                 for i in range(19)]
        reports = monitor.process(quiet + spike)
        assert len(reports) == 3
        assert not reports[0].alerts
        jumpers = [a.node for a in reports[2].alerts
                   if isinstance(a, ScoreJump)]
        entrants = [a.node for a in reports[2].alerts
                    if isinstance(a, TopKEntrant)]
        assert jumpers == [7]
        assert entrants == [7]

    def test_drift_alert_fires_on_distribution_shift(self, rng):
        graph = random_multiplex(50, 2, 4, rng, avg_degree=3.0)
        monitor, _ = self._monitor(graph, window=50)
        quiet = [UpdateAttr(i, graph.x[i]) for i in range(50)]
        shift = [UpdateAttr(i, graph.x[i] + 10.0) for i in range(50)]
        reports = monitor.process(quiet + shift)
        assert reports[0].psi is None          # reference window
        drift = [a for a in reports[1].alerts if isinstance(a, DriftAlert)]
        assert drift and drift[0].psi > 0.25
        assert reports[1].ks is not None

    def test_drift_triggers_refit_policy(self, rng):
        graph = random_multiplex(50, 2, 4, rng, avg_degree=3.0)
        refits = []

        def refit(snapshot):
            refits.append(snapshot)
            return _NormDetector().fit(snapshot)

        monitor, service = self._monitor(graph, window=50, refit=refit,
                                         refit_cooldown=1)
        old_detector = service.detector
        quiet = [UpdateAttr(i, graph.x[i]) for i in range(50)]
        shift = [UpdateAttr(i, graph.x[i] + 10.0) for i in range(50)]
        reports = monitor.process(quiet + shift)
        assert len(refits) == 1
        assert service.detector is not old_detector
        assert reports[1].refit
        assert any(isinstance(a, RefitAlert) for a in reports[1].alerts)
        # the swapped detector serves the refitted graph from its cache
        assert service.trained_fingerprint == reports[1].fingerprint
        # the refit-window report is internally consistent: ranking and
        # stats all come from the NEW detector's scores, and ranking-based
        # alerts are suppressed (old ranking is not a meaningful baseline)
        assert reports[1].top[0][1] == pytest.approx(reports[1].score_max)
        assert not any(isinstance(a, (TopKEntrant, ScoreJump))
                       for a in reports[1].alerts)

    def test_trajectories_track_scores_across_windows(self, rng):
        graph = random_multiplex(30, 2, 4, rng, avg_degree=3.0)
        monitor, _ = self._monitor(graph, window=10)
        events = [UpdateAttr(0, graph.x[0] * (1 + k)) for k in range(30)]
        monitor.process(events)
        trajectory = monitor.trajectory(0)
        assert [w for w, _ in trajectory] == [0, 1, 2]
        scores = [s for _, s in trajectory]
        assert scores == sorted(scores)

    def test_flush_scores_partial_tail(self, rng):
        graph = random_multiplex(30, 2, 4, rng, avg_degree=3.0)
        monitor, _ = self._monitor(graph, window=10)
        reports = monitor.process(
            [UpdateAttr(0, graph.x[0]) for _ in range(15)])
        assert len(reports) == 1
        tail = monitor.flush()
        assert tail is not None and tail.index == 1
        assert monitor.flush() is None
        assert monitor.events_consumed == 15

    def test_monitor_uses_builder_fingerprint_not_rehash(self, rng):
        graph = random_multiplex(30, 2, 4, rng, avg_degree=3.0)
        monitor, service = self._monitor(graph, window=10)
        reports = monitor.process(
            [UpdateAttr(0, graph.x[0]) for _ in range(10)])
        assert reports[0].fingerprint == graph_fingerprint(monitor.builder.snapshot())
        assert service.stats.misses == 1

    def test_report_dict_is_jsonable(self, rng):
        graph = random_multiplex(30, 2, 4, rng, avg_degree=3.0)
        monitor, _ = self._monitor(graph, window=10)
        reports = monitor.process(
            [UpdateAttr(0, np.full(4, 9.0)) for _ in range(20)])
        for report in reports:
            payload = json.loads(json.dumps(report.to_dict(), default=float))
            assert payload["window"] == report.index
            assert payload["events"]["updated_attrs"] == 10

    def test_sliding_stride_scores_more_often_but_compares_across_window(
            self, rng):
        graph = random_multiplex(40, 2, 4, rng, avg_degree=3.0)
        quiet = [UpdateAttr(i % 40, graph.x[i % 40]) for i in range(30)]
        spike = [UpdateAttr(5, np.full(4, 80.0))] + \
                [UpdateAttr((i + 6) % 40, graph.x[(i + 6) % 40])
                 for i in range(9)]

        sliding, _ = self._monitor(graph, window=20, stride=10)
        reports = sliding.process(quiet + spike)
        assert len(reports) == 4            # cadence = stride, not window
        # the spike lands in snapshot 3; the jump is measured against the
        # snapshot ~window (= 2 strides) back
        jumps = [a for a in reports[3].alerts if isinstance(a, ScoreJump)]
        assert [j.node for j in jumps] == [5]
        assert jumps[0].previous == pytest.approx(
            float(np.linalg.norm(graph.x[5])))

    def test_stride_must_not_exceed_window(self, rng):
        graph = random_multiplex(20, 2, 4, rng, avg_degree=3.0)
        detector = _NormDetector().fit(graph)
        service = DetectorService(detector)
        builder = IncrementalGraphBuilder.from_graph(graph)
        with pytest.raises(ValueError, match="stride"):
            StreamMonitor(service, builder, window=10, stride=20)


# ---------------------------------------------------------------------------
# CLI
# ---------------------------------------------------------------------------

class TestStreamCLI:
    @pytest.fixture()
    def checkpoint(self, fitted_umgad, tiny_dataset, tmp_path):
        path = tmp_path / "model.npz"
        fitted_umgad.save(path, graph=tiny_dataset.graph)
        return path

    def test_stream_json_output(self, checkpoint, tiny_dataset, tmp_path,
                                capsys):
        graph_path = tmp_path / "base.npz"
        save_multiplex(graph_path, tiny_dataset.graph)
        events, _ = synthesize_stream(
            tiny_dataset.graph, 120, np.random.default_rng(0), burst_every=60)
        events_path = tmp_path / "events.jsonl"
        write_events(events_path, events)

        code = cli_main(["stream", "--events", str(events_path),
                         "--model", str(checkpoint),
                         "--graph", str(graph_path),
                         "--window", "60", "--output", "json"])
        assert code == 0
        lines = [line for line in
                 capsys.readouterr().out.strip().splitlines() if line]
        payloads = [json.loads(line) for line in lines]
        assert len(payloads) >= 2
        assert payloads[0]["window"] == 0
        assert "alerts" in payloads[0] and "fingerprint" in payloads[0]

    def test_stream_bootstrap_from_model_schema(self, checkpoint,
                                                tiny_dataset, tmp_path,
                                                capsys):
        events = bootstrap_events(tiny_dataset.graph)
        events_path = tmp_path / "bootstrap.jsonl"
        write_events(events_path, events)
        code = cli_main(["stream", "--events", str(events_path),
                         "--model", str(checkpoint),
                         "--window", str(len(events))])
        assert code == 0
        out = capsys.readouterr().out
        assert "window   0" in out
        assert "stream done" in out

    def test_stream_missing_events_file_is_one_line_error(
            self, checkpoint, capsys):
        code = cli_main(["stream", "--events", "/no/such/file.jsonl",
                         "--model", str(checkpoint)])
        assert code == 1
        assert "error:" in capsys.readouterr().err
