"""Observability subsystem (repro.obs): tracing, histograms, promlint.

Covers the PR-6 contracts end to end:

* span nesting / attributes / cross-thread adoption, the no-op fast path
  (including the **zero-allocation** guarantee when nothing is traced),
  and the ``TraceStore`` ring;
* trace propagation across micro-batcher coalescing — the batch span
  lands in the *leader* request's trace, followers link to it;
* Prometheus histogram semantics (inclusive ``le``, cumulative buckets,
  ``+Inf``) and the renderer conventions (``_total`` suffix,
  non-scientific floats), linted by the pure-python exposition validator
  which is itself tested against known-bad payloads;
* traced scoring is bitwise-identical to untraced scoring;
* the HTTP surface: ``X-Repro-Trace-Id`` round-trip, ``GET /v1/traces``
  span trees, and a lint of the live ``/metrics`` payload.
"""

import io
import json
import math
import threading
import time
import tracemalloc

import numpy as np
import pytest

import repro.obs.trace as trace_mod
from repro.core import UMGAD, UMGADConfig
from repro.detection import BaseDetector
from repro.graphs import graph_fingerprint, random_multiplex
from repro.obs import (
    BATCH_SIZE_BOUNDS,
    DURATION_BOUNDS,
    Histogram,
    NOOP_SPAN,
    Trace,
    TraceStore,
    aggregate_spans,
    annotate,
    assert_valid_exposition,
    configure,
    current_span,
    current_trace,
    get_logger,
    log_spaced_bounds,
    parse_families,
    render_profile,
    render_trace_tree,
    sanitize_trace_id,
    set_tracing,
    span,
    start_trace,
    tracing_enabled,
    use_span,
    validate_exposition,
)
from repro.serve import DetectorService
from repro.server import (
    Gateway,
    MetricsRegistry,
    MicroBatcher,
    ServerClient,
    ServerClientError,
    ServerThread,
)


class StubDetector(BaseDetector):
    """Deterministic per-graph scores, optionally slowed down."""

    def __init__(self, delay=0.0):
        self.delay = delay
        self.calls = 0
        self._lock = threading.Lock()

    def score_graph(self, graph):
        with self._lock:
            self.calls += 1
        if self.delay:
            time.sleep(self.delay)
        rng = np.random.default_rng(graph.num_nodes)
        return rng.random(graph.num_nodes)


@pytest.fixture
def small_graph(rng):
    return random_multiplex(24, 2, 4, rng, avg_degree=3.0)


# ---------------------------------------------------------------------------
# Spans, traces, the no-op fast path
# ---------------------------------------------------------------------------
class TestTracing:
    def test_span_nesting_attributes_and_snapshot(self):
        store = TraceStore(4)
        with start_trace("op", trace_id="fixed-id", store=store) as trace:
            assert trace.trace_id == "fixed-id"
            assert current_trace() is trace
            with span("outer") as outer:
                outer.set("k", "v").set("n", 2)
                with span("inner"):
                    annotate("deep", True)
        payload = store.get("fixed-id")
        assert payload is not None
        assert payload["duration_ms"] is not None
        by_name = {s["name"]: s for s in payload["spans"]}
        assert set(by_name) == {"op", "outer", "inner"}
        root, outer, inner = by_name["op"], by_name["outer"], by_name["inner"]
        assert root["parent_id"] is None
        assert outer["parent_id"] == root["span_id"]
        assert inner["parent_id"] == outer["span_id"]
        assert outer["attributes"] == {"k": "v", "n": 2}
        assert inner["attributes"] == {"deep": True}
        # children cannot outlast the root
        for child in (outer, inner):
            assert child["wall_ms"] <= payload["duration_ms"] + 1e-6

    def test_trace_published_even_on_exception(self):
        store = TraceStore(4)
        with pytest.raises(RuntimeError):
            with start_trace("boom", store=store):
                with span("failing"):
                    raise RuntimeError("nope")
        (payload,) = store.last()
        by_name = {s["name"]: s for s in payload["spans"]}
        assert by_name["failing"]["attributes"]["error"] == "RuntimeError"
        assert by_name["boom"]["attributes"]["error"] == "RuntimeError"

    def test_max_spans_counts_dropped(self):
        with start_trace("tight", max_spans=3) as trace:
            for _ in range(10):
                with span("s"):
                    pass
        payload = trace.to_dict()
        # 3 retained (the cap), the rest counted; the root itself was
        # dropped too, having finished after the cap filled.
        assert len(payload["spans"]) == 3
        assert payload["dropped"] == 8

    def test_untraced_span_is_the_shared_noop(self):
        assert current_span() is None
        assert span("a") is NOOP_SPAN
        assert span("b") is NOOP_SPAN
        with span("c") as noop:
            assert noop is NOOP_SPAN
            assert noop.set("k", 1) is NOOP_SPAN
            assert not noop.recording
        annotate("ignored", 1)     # must not raise
        assert current_trace() is None

    def test_untraced_span_allocates_nothing(self):
        """The disabled fast path: no object creation at all."""
        assert current_span() is None
        with span("warmup") as noop:    # warm any lazy interning
            noop.set("k", 0)
        tracemalloc.start(10)
        before = tracemalloc.take_snapshot()
        for _ in range(500):
            with span("hot") as sp_:
                sp_.set("key", 1)
            annotate("also", 2)
        after = tracemalloc.take_snapshot()
        tracemalloc.stop()
        filters = [tracemalloc.Filter(True, trace_mod.__file__)]
        diff = after.filter_traces(filters).compare_to(
            before.filter_traces(filters), "lineno")
        grown = [stat for stat in diff if stat.size_diff > 0]
        assert not grown, [str(stat) for stat in grown]

    def test_disabled_tracing_yields_none(self):
        assert tracing_enabled()
        set_tracing(False)
        try:
            store = TraceStore(4)
            with start_trace("off", store=store) as trace:
                assert trace is None
                assert span("inside") is NOOP_SPAN
            assert len(store) == 0
        finally:
            set_tracing(True)

    def test_sanitize_trace_id(self):
        assert sanitize_trace_id("abc-123_ok.id") == "abc-123_ok.id"
        assert sanitize_trace_id("  padded  ") == "padded"
        assert sanitize_trace_id(None) is None
        assert sanitize_trace_id("") is None
        assert sanitize_trace_id("has spaces") is None
        assert sanitize_trace_id("new\nline") is None
        assert sanitize_trace_id("x" * 65) is None

    def test_trace_store_is_a_ring(self):
        store = TraceStore(2)
        for name in ("a", "b", "c"):
            with start_trace(name, trace_id=f"id-{name}", store=store):
                pass
        assert len(store) == 2
        assert [t["trace_id"] for t in store.last()] == ["id-c", "id-b"]
        assert [t["trace_id"] for t in store.last(1)] == ["id-c"]
        assert store.get("id-a") is None          # evicted
        assert store.get("id-b")["name"] == "b"
        with pytest.raises(ValueError):
            TraceStore(0)

    def test_use_span_adopts_across_threads(self):
        seen = {}

        def worker(parent):
            # a fresh thread has no ambient span of its own
            assert current_span() is None
            with use_span(parent), span("work") as sp_:
                seen["trace_id"] = sp_.trace_id
                seen["parent_id"] = sp_.parent_id

        with start_trace("cross") as trace:
            parent = current_span()
            thread = threading.Thread(target=worker, args=(parent,))
            thread.start()
            thread.join()
        names = {s["name"] for s in trace.to_dict()["spans"]}
        assert "work" in names
        assert seen["trace_id"] == trace.trace_id
        assert seen["parent_id"] == parent.span_id

    def test_use_span_with_none_is_a_noop(self):
        with use_span(None):
            assert current_span() is None
        with use_span(NOOP_SPAN):
            assert current_span() is None


# ---------------------------------------------------------------------------
# Trace propagation across micro-batcher coalescing
# ---------------------------------------------------------------------------
class TestBatcherPropagation:
    def test_batch_span_lands_in_leader_trace_follower_links(self,
                                                             small_graph):
        detector = StubDetector(delay=0.02)
        service = DetectorService(detector)
        batcher = MicroBatcher(service, workers=1, linger_ms=250.0)
        fingerprint = graph_fingerprint(small_graph)
        store = TraceStore(8)
        leader_done = {}

        def leader():
            with start_trace("leader", trace_id="lead-1",
                             store=store) as trace:
                future = batcher.submit(small_graph, fingerprint)
                leader_done["scores"] = future.result(timeout=20.0)
            leader_done["trace"] = trace.to_dict()

        thread = threading.Thread(target=leader)
        try:
            thread.start()
            time.sleep(0.05)       # inside the 250 ms linger window
            with start_trace("follower", trace_id="follow-1",
                             store=store) as follower:
                future = batcher.submit(small_graph, fingerprint)
                scores = future.result(timeout=20.0)
            thread.join(timeout=20.0)
        finally:
            batcher.close()

        assert detector.calls == 1                 # one pass for both
        assert np.array_equal(scores, leader_done["scores"])

        leader_payload = leader_done["trace"]
        by_name = {s["name"]: s for s in leader_payload["spans"]}
        batch = by_name["batcher.batch"]
        assert batch["attributes"]["batch_size"] == 2
        assert batch["attributes"]["coalesced"] == 1
        assert "service.scores" in by_name         # nested scoring span
        assert by_name["service.scores"]["attributes"]["cache"] == "miss"
        # the batch span hangs off the leader's root span
        assert batch["parent_id"] == by_name["leader"]["span_id"]

        follower_payload = follower.to_dict()
        assert {s["name"] for s in follower_payload["spans"]} == {"follower"}
        (link,) = follower_payload["links"]
        assert link["kind"] == "coalesced_into"
        assert link["trace_id"] == "lead-1"
        assert link["span_id"] == by_name["leader"]["span_id"]

        # future metadata mirrors the span attributes
        assert len(store) == 2

    def test_untraced_submissions_stay_untraced(self, small_graph):
        service = DetectorService(StubDetector())
        batcher = MicroBatcher(service, workers=1, linger_ms=0.0)
        try:
            future = batcher.submit(small_graph)
            scores = future.result(timeout=20.0)
            assert scores.shape == (small_graph.num_nodes,)
            assert future.obs_batch["batch_size"] == 1
        finally:
            batcher.close()


# ---------------------------------------------------------------------------
# Histograms
# ---------------------------------------------------------------------------
class TestHistogram:
    def test_log_spaced_bounds(self):
        bounds = log_spaced_bounds(0.001, 1.0)
        assert bounds[0] == 0.001 and bounds[-1] == 1.0
        assert 0.025 in bounds and 0.5 in bounds
        assert list(bounds) == sorted(bounds)
        with pytest.raises(ValueError):
            log_spaced_bounds(1.0, 0.5)
        with pytest.raises(ValueError):
            log_spaced_bounds(0.0, 1.0)

    def test_default_bounds_cover_the_service_range(self):
        assert DURATION_BOUNDS[0] == 0.0005
        assert DURATION_BOUNDS[-1] == 25.0     # last 1/2.5/5 rung <= 30s
        assert BATCH_SIZE_BOUNDS == (1.0, 2.0, 4.0, 8.0, 16.0, 32.0,
                                     64.0, 128.0)

    def test_observe_inclusive_le_and_cumulative_snapshot(self):
        hist = Histogram((0.1, 1.0))
        for value in (0.05, 0.1, 0.5, 5.0):   # 0.1 lands IN le=0.1
            hist.observe(value)
        snap = hist.snapshot()
        assert snap.bounds == (0.1, 1.0)
        assert snap.cumulative == (2, 3, 4)   # le=0.1, le=1.0, +Inf
        assert snap.count == 4
        assert snap.sum == pytest.approx(5.65)
        assert hist.count == 4

    def test_rejects_bad_bounds(self):
        with pytest.raises(ValueError):
            Histogram(())
        with pytest.raises(ValueError):
            Histogram((1.0, 1.0))
        with pytest.raises(ValueError):
            Histogram((1.0, math.inf))


# ---------------------------------------------------------------------------
# The exposition validator (promlint) — known-good and known-bad payloads
# ---------------------------------------------------------------------------
VALID_EXPOSITION = (
    '# HELP t_requests_total Requests answered.\n'
    '# TYPE t_requests_total counter\n'
    't_requests_total{endpoint="score",status="200"} 3\n'
    '# HELP t_depth Queue depth.\n'
    '# TYPE t_depth gauge\n'
    't_depth 0.5\n'
    '# HELP t_latency_seconds Request latency.\n'
    '# TYPE t_latency_seconds histogram\n'
    't_latency_seconds_bucket{le="0.1"} 1\n'
    't_latency_seconds_bucket{le="+Inf"} 2\n'
    't_latency_seconds_sum 0.35\n'
    't_latency_seconds_count 2\n'
)


class TestPromlint:
    def test_valid_exposition_is_clean(self):
        assert validate_exposition(VALID_EXPOSITION) == []
        assert_valid_exposition(VALID_EXPOSITION)

    def test_assert_raises_with_problem_list(self):
        with pytest.raises(AssertionError, match="_total"):
            assert_valid_exposition(
                "# HELP t_hits Hits.\n# TYPE t_hits counter\nt_hits 1\n")

    @pytest.mark.parametrize("payload, needle", [
        # counter family without the _total suffix
        ("# HELP t_hits Hits.\n# TYPE t_hits counter\nt_hits 1\n",
         "_total"),
        # negative counter value
        ("# HELP t_x_total X.\n# TYPE t_x_total counter\nt_x_total -1\n",
         "non-monotonic"),
        # no trailing newline
        ("# HELP t_d D.\n# TYPE t_d gauge\nt_d 1", "newline"),
        # duplicate sample (same name + labels)
        ("# HELP t_d D.\n# TYPE t_d gauge\nt_d 1\nt_d 2\n", "duplicate"),
        # HELP/TYPE after the family's samples
        ("t_d 1\n# HELP t_d D.\n# TYPE t_d gauge\n", "after"),
        # unknown TYPE
        ("# HELP t_d D.\n# TYPE t_d sparkline\nt_d 1\n", "unknown type"),
        # missing HELP
        ("# TYPE t_d gauge\nt_d 1\n", "missing # HELP"),
        # illegal label escape
        ('# HELP t_d D.\n# TYPE t_d gauge\nt_d{k="a\\q"} 1\n',
         "invalid escape"),
        # unparseable value
        ("# HELP t_d D.\n# TYPE t_d gauge\nt_d banana\n", "unparseable"),
        # histogram without the +Inf bucket
        ('# HELP t_h H.\n# TYPE t_h histogram\n'
         't_h_bucket{le="1"} 1\nt_h_sum 1\nt_h_count 1\n', "+Inf"),
        # non-cumulative buckets
        ('# HELP t_h H.\n# TYPE t_h histogram\n'
         't_h_bucket{le="1"} 5\nt_h_bucket{le="+Inf"} 2\n'
         't_h_sum 1\nt_h_count 2\n', "cumulative"),
        # _count disagreeing with the +Inf bucket
        ('# HELP t_h H.\n# TYPE t_h histogram\n'
         't_h_bucket{le="1"} 1\nt_h_bucket{le="+Inf"} 2\n'
         't_h_sum 1\nt_h_count 9\n', "_count"),
        # bucket series missing the le label
        ('# HELP t_h H.\n# TYPE t_h histogram\n'
         't_h_bucket 1\nt_h_sum 1\nt_h_count 1\n', "le"),
    ])
    def test_broken_expositions_are_flagged(self, payload, needle):
        problems = validate_exposition(payload)
        assert problems, f"expected problems for {payload!r}"
        assert any(needle in problem for problem in problems), problems

    def test_total_suffix_check_can_be_relaxed(self):
        payload = "# HELP t_hits Hits.\n# TYPE t_hits counter\nt_hits 1\n"
        assert validate_exposition(payload,
                                   require_total_suffix=False) == []

    @pytest.mark.parametrize("name", [
        "t_latency_ms", "t_duration_milliseconds", "t_size_kb",
        "t_heap_mb", "t_age_minutes", "t_share_percent",
    ])
    def test_non_base_unit_suffixes_are_flagged(self, name):
        payload = (f"# HELP {name} X.\n# TYPE {name} gauge\n{name} 1\n")
        problems = validate_exposition(payload)
        assert any("non-base unit" in problem for problem in problems), \
            problems

    def test_base_unit_suffixes_are_clean(self):
        for name in ("t_latency_seconds", "t_heap_bytes", "t_share_ratio"):
            payload = f"# HELP {name} X.\n# TYPE {name} gauge\n{name} 1\n"
            assert validate_exposition(payload) == []

    def test_total_on_non_counter_is_flagged(self):
        payload = ("# HELP t_x_total X.\n# TYPE t_x_total gauge\n"
                   "t_x_total 1\n")
        problems = validate_exposition(payload)
        assert any("reserved for counters" in problem
                   for problem in problems), problems
        # counters stay exempt: the unit check looks before their _total
        counter = ("# HELP t_busy_seconds_total X.\n"
                   "# TYPE t_busy_seconds_total counter\n"
                   "t_busy_seconds_total 1\n")
        assert validate_exposition(counter) == []

    def test_unit_check_can_be_relaxed(self):
        payload = "# HELP t_lat_ms X.\n# TYPE t_lat_ms gauge\nt_lat_ms 1\n"
        assert any("non-base unit" in p
                   for p in validate_exposition(payload))
        assert validate_exposition(payload, check_units=False) == []

    def test_parse_families_structure(self):
        families = parse_families(VALID_EXPOSITION)
        assert set(families) == {"t_requests_total", "t_depth",
                                 "t_latency_seconds"}
        counter = families["t_requests_total"]
        assert counter["type"] == "counter"
        assert counter["help"] == "Requests answered."
        assert counter["samples"] == [{
            "name": "t_requests_total",
            "labels": {"endpoint": "score", "status": "200"},
            "value": 3.0,
        }]
        # histogram child series group under the base family name
        hist_samples = families["t_latency_seconds"]["samples"]
        assert {s["name"] for s in hist_samples} == {
            "t_latency_seconds_bucket", "t_latency_seconds_sum",
            "t_latency_seconds_count"}

    def test_parse_families_rejects_broken_text(self):
        with pytest.raises(ValueError, match="unparseable"):
            parse_families("# HELP t_d D.\n# TYPE t_d gauge\nt_d banana\n")


# ---------------------------------------------------------------------------
# The metrics renderer honours the naming/format conventions
# ---------------------------------------------------------------------------
class TestMetricsRenderer:
    def test_counter_gets_total_suffix(self):
        registry = MetricsRegistry(prefix="t")
        registry.counter("hits", "Cache hits.", 3)
        registry.counter("misses_total", "Cache misses.", 1)
        text = registry.render()
        assert "t_hits_total 3" in text
        assert "t_misses_total 1" in text
        assert "t_misses_total_total" not in text
        assert_valid_exposition(text)

    def test_small_floats_render_non_scientific(self):
        registry = MetricsRegistry(prefix="t")
        registry.gauge("tiny", "A sub-1e-4 value.", 1e-05)
        registry.gauge("huge", "A past-1e16 value.", 2.5e17)
        text = registry.render()
        assert "t_tiny 0.00001\n" in text
        huge_line = next(line for line in text.splitlines()
                         if line.startswith("t_huge "))
        assert huge_line == "t_huge 250000000000000000"
        assert_valid_exposition(text)

    def test_special_values_render_prometheus_style(self):
        registry = MetricsRegistry(prefix="t")
        registry.gauge("up", "inf", math.inf)
        registry.gauge("down", "-inf", -math.inf)
        registry.gauge("unknown", "nan", math.nan)
        text = registry.render()
        assert "t_up +Inf" in text
        assert "t_down -Inf" in text
        assert "t_unknown NaN" in text
        assert_valid_exposition(text)

    def test_histogram_family_renders_cumulative_with_inf(self):
        hist = Histogram((0.1, 1.0))
        for value in (0.05, 0.5, 5.0):
            hist.observe(value)
        registry = MetricsRegistry(prefix="t")
        registry.histogram("latency_seconds", "Latency.", hist)
        text = registry.render()
        assert 't_latency_seconds_bucket{le="0.1"} 1' in text
        assert 't_latency_seconds_bucket{le="1.0"} 2' in text
        assert 't_latency_seconds_bucket{le="+Inf"} 3' in text
        assert "t_latency_seconds_count 3" in text
        assert "t_latency_seconds_sum 5.55" in text
        assert_valid_exposition(text)

    def test_labelled_histogram_series(self):
        fast, slow = Histogram((0.1,)), Histogram((0.1,))
        fast.observe(0.01)
        slow.observe(3.0)
        registry = MetricsRegistry(prefix="t")
        registry.histogram("stage_seconds", "Per-stage latency.",
                           [({"stage": "fast"}, fast.snapshot()),
                            ({"stage": "slow"}, slow.snapshot())])
        text = registry.render()
        assert 't_stage_seconds_bucket{stage="fast",le="0.1"} 1' in text
        assert 't_stage_seconds_bucket{stage="slow",le="0.1"} 0' in text
        assert 't_stage_seconds_count{stage="slow"} 1' in text
        assert_valid_exposition(text)

    def test_rejects_unknown_kind(self):
        registry = MetricsRegistry(prefix="t")
        with pytest.raises(ValueError):
            registry.add("x", "summary", "no", [(None, 1)])


# ---------------------------------------------------------------------------
# Structured logging carries trace/span ids
# ---------------------------------------------------------------------------
class TestStructLog:
    def test_records_are_json_and_trace_stamped(self):
        buffer = io.StringIO()
        configure(stream=buffer, level="debug")
        try:
            logger = get_logger("repro.test")
            logger.info("outside", n=1)
            with start_trace("logged") as trace:
                with span("stage") as sp_:
                    logger.warning("inside", detail="x")
            lines = buffer.getvalue().splitlines()
            outside, inside = (json.loads(line) for line in lines)
            assert outside["event"] == "outside" and outside["n"] == 1
            assert "trace_id" not in outside
            assert inside["trace_id"] == trace.trace_id
            assert inside["span_id"] == sp_.span_id
            assert inside["level"] == "warning"
            assert inside["logger"] == "repro.test"
        finally:
            configure(stream=None)

    def test_level_filtering(self):
        buffer = io.StringIO()
        configure(stream=buffer, level="error")
        try:
            logger = get_logger("repro.test.levels")
            logger.info("dropped")
            logger.error("kept")
            lines = buffer.getvalue().splitlines()
            assert len(lines) == 1
            assert json.loads(lines[0])["event"] == "kept"
        finally:
            configure(stream=None)
        with pytest.raises(ValueError):
            configure(level="loud")

    def test_get_logger_is_cached(self):
        assert get_logger("same") is get_logger("same")


# ---------------------------------------------------------------------------
# Profile / trace-tree rendering
# ---------------------------------------------------------------------------
class TestProfileRendering:
    def _sample_trace(self):
        with start_trace("cli.detect") as trace:
            for _ in range(2):
                with span("train.epoch"):
                    time.sleep(0.001)
            with span("score.view") as sp_:
                sp_.set("view", "original")
        return trace

    def test_aggregate_spans_groups_by_name(self):
        rows = aggregate_spans(self._sample_trace())
        by_name = {row["name"]: row for row in rows}
        assert by_name["train.epoch"]["count"] == 2
        assert by_name["score.view"]["count"] == 1
        assert rows[0]["name"] == "cli.detect"       # longest wall first
        assert 0 < by_name["train.epoch"]["share"] <= 1.0

    def test_render_profile_table(self):
        text = render_profile(self._sample_trace())
        assert "profile: cli.detect" in text
        assert "train.epoch" in text and "score.view" in text
        assert "wall ms" in text and "share" in text

    def test_render_trace_tree_indents_and_shows_links(self):
        trace = self._sample_trace()
        trace.link("coalesced_into", "other-trace", "7")
        text = render_trace_tree(trace.to_dict())
        lines = text.splitlines()
        assert lines[0].startswith(f"trace {trace.trace_id}")
        assert any("~ coalesced_into -> other-trace/7" in line
                   for line in lines)
        assert any(line.strip().startswith("- train.epoch")
                   for line in lines)
        assert any("view=original" in line for line in lines)
        # children indent one level deeper than the root span
        root_indent = next(line for line in lines
                           if "- cli.detect" in line).index("-")
        child_indent = next(line for line in lines
                            if "- score.view" in line).index("-")
        assert child_indent == root_indent + 2

    def test_renderers_accept_empty_traces(self):
        trace = Trace("empty")
        assert "(no spans recorded)" in render_profile(trace)
        assert render_trace_tree(trace).startswith("trace ")


# ---------------------------------------------------------------------------
# Tracing must not perturb scores
# ---------------------------------------------------------------------------
def test_traced_scores_bitwise_identical(rng):
    graph = random_multiplex(40, 2, 8, rng, avg_degree=3.0)
    model = UMGAD(UMGADConfig(epochs=2, seed=0)).fit(graph)
    fresh = random_multiplex(36, 2, 8, rng, avg_degree=3.0)

    untraced = model.score_graph(fresh)
    with start_trace("parity") as trace:
        traced = model.score_graph(fresh)
    assert np.array_equal(untraced, traced)

    names = {s["name"] for s in trace.to_dict()["spans"]}
    # at least four distinct pipeline stages were traced along the way
    expected = {"score.view", "score.aggregate", "score.structure",
                "score.attributes"}
    assert expected <= names, names


# ---------------------------------------------------------------------------
# HTTP surface: header round-trip, /v1/traces, /metrics lint
# ---------------------------------------------------------------------------
@pytest.fixture
def obs_server():
    gateway = Gateway(DetectorService(StubDetector()), linger_ms=1.0,
                      trace_capacity=16)
    with ServerThread(gateway) as server:
        client = ServerClient(port=server.port)
        yield gateway, client
        client.close()


class TestHTTPObservability:
    def test_trace_header_round_trip_and_span_tree(self, obs_server,
                                                   small_graph):
        _gateway, client = obs_server
        response = client.score(small_graph, trace_id="obs-rt-0001")
        assert client.last_trace_id == "obs-rt-0001"
        assert client.last_headers.get("X-Repro-Trace-Id") == "obs-rt-0001"
        assert response["fingerprint"] == graph_fingerprint(small_graph)

        payload = client.traces(trace_id="obs-rt-0001")
        (trace,) = payload["traces"]
        assert trace["trace_id"] == "obs-rt-0001"
        assert trace["name"] == "http.score"
        by_name = {s["name"]: s for s in trace["spans"]}
        # the request trace holds the nested pipeline stages
        for stage in ("http.score", "batcher.wait", "batcher.batch",
                      "service.scores"):
            assert stage in by_name, sorted(by_name)
        root = by_name["http.score"]
        assert root["parent_id"] is None
        assert root["attributes"]["endpoint"] == "score"
        assert root["attributes"]["status"] == 200
        assert root["attributes"]["batch_size"] >= 1
        for span_dict in trace["spans"]:
            assert span_dict["wall_ms"] <= trace["duration_ms"] + 1e-6

    def test_server_mints_ids_and_rejects_hostile_ones(self, obs_server,
                                                       small_graph):
        _gateway, client = obs_server
        client.score(small_graph)
        minted = client.last_trace_id
        assert minted and len(minted) == 16
        # spaces survive http.client but fail sanitization server-side,
        # so the gateway mints a fresh id instead of echoing the input
        client.score(small_graph, trace_id="bad id with spaces")
        assert client.last_trace_id is not None
        assert client.last_trace_id != "bad id with spaces"

    def test_traces_endpoint_errors(self, obs_server):
        _gateway, client = obs_server
        with pytest.raises(ServerClientError) as excinfo:
            client.traces(trace_id="never-seen")
        assert excinfo.value.status == 404
        with pytest.raises(ServerClientError) as excinfo:
            client.traces(last=0)
        assert excinfo.value.status == 400

    def test_traces_listing_newest_first(self, obs_server, small_graph):
        _gateway, client = obs_server
        client.score(small_graph, trace_id="older")
        client.score(small_graph, trace_id="newer")
        payload = client.traces(last=2)
        ids = [t["trace_id"] for t in payload["traces"]]
        assert ids[0] == "newer" and "older" in ids
        assert payload["capacity"] == 16
        assert payload["stored"] >= 2

    def test_live_metrics_pass_the_validator(self, obs_server, small_graph):
        _gateway, client = obs_server
        client.score(small_graph)
        client.health()
        text = client.metrics()
        # reading telemetry is itself untraced
        assert client.last_trace_id is None
        assert_valid_exposition(text)
        for family in ("repro_http_request_duration_seconds_bucket",
                       "repro_stage_duration_seconds_bucket",
                       "repro_batcher_queue_wait_seconds_bucket",
                       "repro_batcher_batch_size_bucket",
                       "repro_server_requests_total"):
            assert family in text, family
        assert 'stage="batcher.batch"' in text
        assert 'endpoint="score"' in text

    def test_disabled_tracing_omits_header(self, obs_server, small_graph):
        _gateway, client = obs_server
        set_tracing(False)
        try:
            client.score(small_graph)
            assert client.last_trace_id is None
        finally:
            set_tracing(True)
        # traces endpoint shows nothing new from the disabled window
        payload = client.traces()
        assert all(t["trace_id"] for t in payload["traces"])
