"""End-to-end integration: generate → inject → fit → threshold → evaluate."""

import numpy as np
import pytest

from repro import (
    UMGAD,
    UMGADConfig,
    load_dataset,
    macro_f1,
    roc_auc,
    select_threshold,
)
from repro.anomalies import inject_anomalies
from repro.baselines import make_baseline
from repro.eval import evaluate_gt_leakage, evaluate_unsupervised
from repro.graphs import behavior_multiplex
from repro.utils.rng import ensure_rng


class TestEndToEnd:
    def test_full_pipeline_from_scratch(self):
        rng = ensure_rng(42)
        clean = behavior_multiplex(
            num_users=120, num_items=60,
            edge_counts={"View": 600, "Cart": 120, "Buy": 80},
            num_features=16, rng=rng)
        graph, labels, report = inject_anomalies(
            clean, clique_size=4, num_cliques=2, rng=rng, attribute_count=8)
        assert labels.sum() == 16

        model = UMGAD(UMGADConfig(epochs=12, hidden_dim=16, mask_repeats=1,
                                  seed=0)).fit(graph)
        scores = model.decision_scores()
        auc = roc_auc(labels, scores)
        assert auc > 0.65

        result = select_threshold(scores)
        predictions = (scores >= result.threshold).astype(int)
        assert 0 < predictions.sum() < graph.num_nodes
        assert macro_f1(labels, predictions) > 0.4

    def test_umgad_beats_weak_baseline_on_retail(self, tiny_dataset):
        umgad = UMGAD(UMGADConfig(epochs=12, hidden_dim=16, mask_repeats=1,
                                  seed=0)).fit(tiny_dataset.graph)
        weak = make_baseline("CoLA", seed=0, epochs=8).fit(tiny_dataset.graph)
        auc_umgad = roc_auc(tiny_dataset.labels, umgad.decision_scores())
        auc_weak = roc_auc(tiny_dataset.labels, weak.decision_scores())
        assert auc_umgad > auc_weak - 0.05  # never dramatically worse

    def test_protocols_disagree_only_on_f1(self, fitted_umgad, tiny_dataset):
        scores = fitted_umgad.decision_scores()
        unsup = evaluate_unsupervised(tiny_dataset.labels, scores)
        leak = evaluate_gt_leakage(tiny_dataset.labels, scores)
        assert unsup.auc == pytest.approx(leak.auc)

    def test_public_api_surface(self):
        import repro

        for name in repro.__all__:
            assert hasattr(repro, name), name

    def test_multi_dataset_generation_distinct(self):
        retail = load_dataset("retail", scale=0.12, seed=1)
        amazon = load_dataset("amazon", scale=0.12, seed=1)
        assert retail.info.kind == "injected"
        assert amazon.info.kind == "real"
        assert retail.graph.relation_names != amazon.graph.relation_names

    def test_threshold_number_tracks_anomalies_on_easy_data(self):
        """Fig. 2's headline property on an easy synthetic curve."""
        rng = np.random.default_rng(0)
        labels = np.zeros(800, dtype=int)
        labels[:40] = 1
        scores = labels * 2.0 + rng.random(800) * 0.5
        result = select_threshold(scores)
        assert abs(result.num_anomalies - 40) <= 15
