"""Sampling and masking primitives (RWR, attribute/edge/subgraph masks)."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.graphs import (
    RelationGraph,
    attribute_mask,
    attribute_swap,
    edge_mask,
    edges_touching,
    edges_within,
    random_walk_with_restart,
    sample_edges,
    sample_nodes,
    sample_rwr_subgraphs,
    subgraph_mask,
)


@pytest.fixture
def path_graph():
    """0-1-2-...-19 path: deterministic connectivity for RWR tests."""
    edges = np.array([(i, i + 1) for i in range(19)])
    return RelationGraph(20, edges)


class TestSampling:
    def test_sample_nodes_distinct(self, rng):
        out = sample_nodes(50, 20, rng)
        assert len(np.unique(out)) == 20

    def test_sample_nodes_capped(self, rng):
        assert sample_nodes(5, 100, rng).size == 5

    def test_sample_edges_ratio(self, path_graph, rng):
        idx = sample_edges(path_graph, 0.5, rng)
        assert idx.size == round(0.5 * path_graph.num_edges)
        assert len(np.unique(idx)) == idx.size

    def test_sample_edges_zero(self, path_graph, rng):
        assert sample_edges(path_graph, 0.0, rng).size == 0

    def test_rwr_includes_start_and_connected(self, path_graph, rng):
        nodes = random_walk_with_restart(path_graph, 10, 5, rng)
        assert 10 in nodes
        assert nodes.size <= 5
        # Path graph: all visited nodes are within distance `steps` of start.
        assert np.all(np.abs(nodes - 10) <= 19)

    def test_rwr_isolated_node(self, rng):
        g = RelationGraph(5, np.array([[0, 1]]))
        nodes = random_walk_with_restart(g, 4, 3, rng)
        np.testing.assert_array_equal(nodes, [4])

    def test_rwr_subgraphs_count(self, path_graph, rng):
        subs = sample_rwr_subgraphs(path_graph, 3, 4, rng)
        assert len(subs) == 3
        for s in subs:
            assert 1 <= s.size <= 4

    def test_edges_within(self, path_graph):
        idx = edges_within(path_graph, np.array([0, 1, 2]))
        got = {tuple(e) for e in path_graph.edges[idx]}
        assert got == {(0, 1), (1, 2)}

    def test_edges_touching(self, path_graph):
        idx = edges_touching(path_graph, np.array([5]))
        got = {tuple(e) for e in path_graph.edges[idx]}
        assert got == {(4, 5), (5, 6)}

    @settings(max_examples=20, deadline=None)
    @given(st.integers(4, 30), st.integers(2, 8), st.integers(0, 9999))
    def test_rwr_size_bound_property(self, n, size, seed):
        rng = np.random.default_rng(seed)
        edges = rng.integers(0, n, size=(n * 2, 2))
        g = RelationGraph(n, edges)
        start = int(rng.integers(0, n))
        nodes = random_walk_with_restart(g, start, size, rng)
        assert nodes.size <= size or nodes.size == 1
        assert start in nodes


class TestMasking:
    def test_attribute_mask_ratio(self, rng):
        m = attribute_mask(100, 0.3, rng)
        assert m.count == 30
        assert len(np.unique(m.nodes)) == 30

    def test_attribute_mask_at_least_one(self, rng):
        assert attribute_mask(10, 0.01, rng).count == 1

    def test_edge_mask_splits_graph(self, path_graph, rng):
        em = edge_mask(path_graph, 0.4, rng)
        assert em.masked_edges.shape[0] == em.edge_idx.size
        assert em.remaining.num_edges + em.edge_idx.size == path_graph.num_edges
        # masked edges are absent from the remaining graph
        remaining = {tuple(e) for e in em.remaining.edges}
        for e in em.masked_edges:
            assert tuple(e) not in remaining

    def test_attribute_swap(self, rng):
        x = rng.normal(size=(50, 4))
        swapped, nodes = attribute_swap(x, 0.2, rng)
        assert nodes.size == 10
        changed = np.flatnonzero(np.any(swapped != x, axis=1))
        assert set(changed).issubset(set(nodes.tolist()))
        # swapped rows come from other rows of the original matrix
        for i in nodes:
            assert any(np.allclose(swapped[i], x[j]) for j in range(50) if j != i)

    def test_attribute_swap_does_not_mutate(self, rng):
        x = rng.normal(size=(20, 3))
        before = x.copy()
        attribute_swap(x, 0.3, rng)
        np.testing.assert_allclose(x, before)

    def test_subgraph_mask(self, path_graph, rng):
        sm = subgraph_mask(path_graph, 2, 4, rng)
        assert len(sm.node_sets) == 2
        assert sm.remaining.num_edges + sm.edge_idx.size == path_graph.num_edges
        # induced edges all have both endpoints in the node union
        members = set(sm.nodes.tolist())
        for u, v in sm.masked_edges:
            assert u in members and v in members

    def test_subgraph_mask_empty_graph(self, rng):
        g = RelationGraph(5, np.empty((0, 2)))
        sm = subgraph_mask(g, 2, 3, rng)
        assert sm.edge_idx.size == 0
