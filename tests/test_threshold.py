"""Unsupervised threshold selection (Sec. IV-E, Eqs. 20-23)."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core import default_window, moving_average, select_threshold
from repro.core.threshold import predict_with_threshold


def knee_curve(n_anomalies=20, n_normal=500, gap=2.0, noise=0.02, seed=0):
    """Scores with a sharp knee after n_anomalies entries."""
    rng = np.random.default_rng(seed)
    high = gap + rng.random(n_anomalies) * 0.5
    low = rng.random(n_normal) * 0.3
    scores = np.concatenate([high, low])
    return scores + rng.normal(0, noise, scores.size)


class TestMovingAverage:
    def test_window_one_identity(self):
        x = np.array([3.0, 1.0, 2.0])
        np.testing.assert_allclose(moving_average(x, 1), x)

    def test_known_values(self):
        x = np.array([1.0, 2.0, 3.0, 4.0])
        np.testing.assert_allclose(moving_average(x, 2), [1.5, 2.5, 3.5])

    def test_window_too_large_raises(self):
        with pytest.raises(ValueError, match="larger"):
            moving_average(np.ones(3), 5)

    def test_window_nonpositive_raises(self):
        with pytest.raises(ValueError, match=">= 1"):
            moving_average(np.ones(3), 0)

    def test_length(self):
        out = moving_average(np.arange(100.0), 7)
        assert out.size == 100 - 7 + 1


class TestDefaultWindow:
    def test_small_floor(self):
        assert default_window(100) == 5
        assert default_window(49_999) == 5

    def test_paper_formula_large(self):
        assert default_window(1_000_000) == 100


class TestSelectThreshold:
    def test_finds_sharp_knee(self):
        scores = knee_curve(n_anomalies=25, n_normal=600)
        result = select_threshold(scores)
        assert 10 <= result.num_anomalies <= 60  # near the true 25

    def test_predictions_match_threshold(self):
        scores = knee_curve()
        result = select_threshold(scores)
        predictions = predict_with_threshold(scores, result)
        assert predictions.sum() == result.num_anomalies
        assert np.all(scores[predictions == 1] >= result.threshold)

    def test_order_invariance(self):
        scores = knee_curve(seed=3)
        shuffled = np.random.default_rng(0).permutation(scores)
        assert select_threshold(scores).threshold == pytest.approx(
            select_threshold(shuffled).threshold)

    def test_minimum_length(self):
        with pytest.raises(ValueError, match="at least"):
            select_threshold(np.arange(5.0))

    def test_custom_window(self):
        scores = knee_curve()
        result = select_threshold(scores, window=11)
        assert result.window == 11

    def test_tie_tolerance_validation(self):
        with pytest.raises(ValueError, match="tie_tolerance"):
            select_threshold(knee_curve(), tie_tolerance=0.0)

    def test_threshold_inside_score_range(self):
        scores = knee_curve(seed=5)
        result = select_threshold(scores)
        assert scores.min() <= result.threshold <= scores.max()

    def test_minority_guard(self):
        """Never flags the majority of nodes (documented deviation)."""
        rng = np.random.default_rng(1)
        scores = rng.random(500)  # no structure at all
        result = select_threshold(scores)
        assert result.num_anomalies <= 300

    def test_smoothed_curve_returned(self):
        scores = knee_curve()
        result = select_threshold(scores)
        assert result.smoothed.size == scores.size - result.window + 1
        # smoothed curve of a descending sort is non-increasing-ish
        assert result.smoothed[0] >= result.smoothed[-1]

    @settings(max_examples=20, deadline=None)
    @given(st.integers(5, 60), st.integers(0, 10_000))
    def test_knee_recovery_property(self, k, seed):
        """Property: with a clean two-level curve the flagged count is
        within a factor of ~3 of the true anomaly count."""
        scores = knee_curve(n_anomalies=k, n_normal=500, gap=3.0,
                            noise=0.01, seed=seed)
        result = select_threshold(scores)
        assert result.num_anomalies <= 4 * k + 10
        assert result.num_anomalies >= max(1, k // 4)

    @settings(max_examples=15, deadline=None)
    @given(st.integers(0, 10_000))
    def test_scale_shift_invariance(self, seed):
        """Property: affine-transforming scores moves the threshold with
        them (same flagged set)."""
        scores = knee_curve(seed=seed)
        r1 = select_threshold(scores)
        r2 = select_threshold(scores * 3.0 + 10.0)
        assert r1.num_anomalies == r2.num_anomalies
