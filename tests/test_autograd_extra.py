"""Second-round autograd coverage: edge cases the models rely on."""

import numpy as np
import pytest

from repro.autograd import Tensor, check_gradients, numeric_gradient, ops


def arr(shape, seed=0):
    return np.random.default_rng(seed).normal(size=shape)


class TestIndexingVariants:
    def test_boolean_mask_index(self):
        a = Tensor(arr((6, 3), 1), requires_grad=True)
        mask = np.array([True, False, True, False, False, True])
        out = ops.index(a, mask)
        assert out.shape == (3, 3)
        ops.sum(out).backward()
        np.testing.assert_allclose(a.grad[mask], 1.0)
        np.testing.assert_allclose(a.grad[~mask], 0.0)

    def test_integer_scalar_index(self):
        a = Tensor(arr((4, 2), 2), requires_grad=True)
        ops.sum(ops.index(a, 2)).backward()
        np.testing.assert_allclose(a.grad[2], 1.0)
        assert a.grad[0].sum() == 0

    def test_tuple_index(self):
        a = Tensor(arr((4, 5), 3), requires_grad=True)
        out = ops.index(a, (slice(None), 1))
        assert out.shape == (4,)
        ops.sum(out).backward()
        np.testing.assert_allclose(a.grad[:, 1], 1.0)

    def test_clip_one_sided(self):
        check_gradients(lambda a: ops.clip(a, None, 0.5), [arr((5,), 4)])
        check_gradients(lambda a: ops.clip(a, -0.5, None), [arr((5,), 5)])

    def test_stack_axis1(self):
        check_gradients(lambda a, b: ops.stack([a, b], axis=1),
                        [arr((3, 2), 6), arr((3, 2), 7)])

    def test_concat_three_parts(self):
        check_gradients(
            lambda a, b, c: ops.concat([a, b, c], axis=0),
            [arr((2, 3), 8), arr((1, 3), 9), arr((4, 3), 10)])


class TestSegmentOpsEdgeCases:
    def test_segment_sum_empty_segment(self):
        vals = Tensor(np.ones((3, 2)))
        out = ops.segment_sum(vals, np.array([0, 0, 2]), 4)
        np.testing.assert_allclose(out.data[1], 0.0)
        np.testing.assert_allclose(out.data[3], 0.0)

    def test_segment_softmax_single_member_segments(self):
        scores = Tensor(arr((4,), 11))
        out = ops.segment_softmax(scores, np.array([0, 1, 2, 3]), 4)
        np.testing.assert_allclose(out.data, np.ones(4))

    def test_segment_softmax_extreme_logits(self):
        scores = Tensor(np.array([1e3, -1e3, 1e3]))
        out = ops.segment_softmax(scores, np.array([0, 0, 1]), 2)
        assert np.all(np.isfinite(out.data))
        assert out.data[0] == pytest.approx(1.0)

    def test_gather_rows_empty(self):
        a = Tensor(arr((5, 3), 12), requires_grad=True)
        out = ops.gather_rows(a, np.empty(0, dtype=np.int64))
        assert out.shape == (0, 3)


class TestNumericGradientHelper:
    def test_matches_known_derivative(self):
        g = numeric_gradient(lambda a: ops.mul(a, a), [np.array([3.0])])
        np.testing.assert_allclose(g, [6.0], rtol=1e-5)

    def test_wrt_selects_input(self):
        g0 = numeric_gradient(lambda a, b: ops.mul(a, b),
                              [np.array([2.0]), np.array([5.0])], wrt=0)
        g1 = numeric_gradient(lambda a, b: ops.mul(a, b),
                              [np.array([2.0]), np.array([5.0])], wrt=1)
        np.testing.assert_allclose(g0, [5.0], rtol=1e-5)
        np.testing.assert_allclose(g1, [2.0], rtol=1e-5)


class TestLongCompositions:
    def test_mlp_like_chain(self):
        check_gradients(
            lambda x, w1, w2: ops.matmul(ops.tanh(ops.matmul(x, w1)), w2),
            [arr((4, 3), 13), arr((3, 5), 14), arr((5, 2), 15)])

    def test_normalized_attention_chain(self):
        def fn(q, k):
            logits = ops.matmul(q, ops.transpose(k))
            att = ops.softmax(logits, axis=-1)
            return ops.matmul(att, k)

        check_gradients(fn, [arr((3, 4), 16), arr((3, 4), 17)])

    def test_loss_like_scalar_chain(self):
        def fn(a, b):
            cos = ops.cosine_similarity(a, b)
            return ops.mean(ops.power(ops.clip(ops.sub(1.0, cos), 0.0, 2.0), 2.0))

        check_gradients(fn, [arr((6, 4), 18), arr((6, 4), 19)])

    def test_gradient_accumulation_reuse(self):
        # One tensor used in three branches of the loss.
        a = Tensor(arr((4, 4), 20), requires_grad=True)
        loss = ops.add(ops.add(ops.sum(ops.relu(a)), ops.sum(ops.sigmoid(a))),
                       ops.mean(ops.mul(a, a)))
        loss.backward()
        expected = ((a.data > 0).astype(float)
                    + (1 / (1 + np.exp(-a.data))) * (1 - 1 / (1 + np.exp(-a.data)))
                    + 2 * a.data / a.data.size)
        np.testing.assert_allclose(a.grad, expected, rtol=1e-9)
