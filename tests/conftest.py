"""Shared fixtures: RNGs, tiny graphs, and a tiny fitted UMGAD model."""

import numpy as np
import pytest

from repro.core import UMGAD, UMGADConfig
from repro.datasets import load_dataset
from repro.graphs import MultiplexGraph, RelationGraph, random_multiplex


@pytest.fixture
def rng():
    return np.random.default_rng(0)


@pytest.fixture
def tiny_relation(rng):
    """A ~30-node connected-ish relation graph."""
    edges = []
    for i in range(29):
        edges.append((i, i + 1))
    extra = rng.integers(0, 30, size=(15, 2))
    edges = np.concatenate([np.array(edges), extra])
    return RelationGraph(30, edges, name="tiny")


@pytest.fixture
def tiny_multiplex(rng):
    """3-relation multiplex graph with 40 nodes, 8 features."""
    return random_multiplex(40, 3, 8, rng, avg_degree=4.0)


@pytest.fixture(scope="session")
def tiny_dataset():
    """Small retail dataset reused across tests (read-only)."""
    return load_dataset("retail", scale=0.15, num_features=16, seed=11)


@pytest.fixture(scope="session")
def fitted_umgad(tiny_dataset):
    """A UMGAD model fitted with a minimal budget (read-only)."""
    cfg = UMGADConfig(epochs=4, mask_repeats=1, hidden_dim=16, seed=0)
    return UMGAD(cfg).fit(tiny_dataset.graph)
