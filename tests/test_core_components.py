"""UMGAD core components: GMAE, losses, scoring, config."""

import numpy as np
import pytest

from repro.autograd import Tensor, ops
from repro.core import GMAE, UMGADConfig, ablation_config
from repro.core.losses import (
    dual_view_contrastive,
    masked_edge_loss,
    scaled_cosine_error,
)
from repro.core.scoring import (
    attribute_errors,
    combine_view_score,
    minmax_normalize,
    structure_errors,
    structure_errors_exact,
    structure_errors_sampled,
)
from repro.graphs import RelationGraph


class TestConfig:
    def test_defaults_valid(self):
        cfg = UMGADConfig()
        assert cfg.mode == "full"

    @pytest.mark.parametrize("field,value", [
        ("alpha", 0.0), ("alpha", 1.5), ("beta", -0.1), ("mask_ratio", 1.0),
        ("eta", 0.5), ("mode", "bogus"), ("structure_score_mode", "bogus"),
        ("mask_repeats", 0), ("attr_score_metric", "bogus"),
    ])
    def test_invalid_rejected(self, field, value):
        with pytest.raises(ValueError):
            UMGADConfig(**{field: value})

    def test_variant_copies(self):
        cfg = UMGADConfig()
        v = cfg.variant(alpha=0.7)
        assert v.alpha == 0.7 and cfg.alpha == 0.5

    def test_ablation_config_switches(self):
        base = UMGADConfig()
        assert not ablation_config(base, "w/o M").use_mask
        assert not ablation_config(base, "w/o O").use_original
        woa = ablation_config(base, "w/o A")
        assert not woa.use_augmented and not woa.use_contrastive
        assert not ablation_config(base, "w/o NA").use_attr_aug
        assert not ablation_config(base, "w/o SA").use_subgraph_aug
        assert not ablation_config(base, "w/o DCL").use_contrastive
        assert ablation_config(base, "full") == base

    def test_ablation_unknown_raises(self):
        with pytest.raises(KeyError, match="unknown ablation"):
            ablation_config(UMGADConfig(), "w/o X")


class TestGMAE:
    @pytest.mark.parametrize("kind", ["gat", "sgc"])
    def test_roundtrip_shapes(self, kind, tiny_relation, rng):
        gmae = GMAE(8, 16, rng, encoder=kind)
        x = Tensor(rng.normal(size=(30, 8)))
        out = gmae(x, tiny_relation)
        assert out.shape == (30, 8)

    def test_mask_token_applied(self, tiny_relation, rng):
        gmae = GMAE(8, 16, rng)
        x = Tensor(rng.normal(size=(30, 8)))
        masked = gmae.apply_mask(x, np.array([0, 5]))
        np.testing.assert_allclose(masked.data[0], gmae.mask_token.data[0])
        np.testing.assert_allclose(masked.data[1], x.data[1])

    def test_mask_token_is_trainable(self, tiny_relation, rng):
        gmae = GMAE(8, 16, rng)
        x = Tensor(rng.normal(size=(30, 8)))
        out = gmae(x, tiny_relation, masked_nodes=np.array([0, 1, 2]))
        ops.sum(ops.mul(out, out)).backward()
        assert gmae.mask_token.grad is not None
        assert np.any(gmae.mask_token.grad != 0)

    def test_unknown_encoder_raises(self, rng):
        with pytest.raises(ValueError, match="encoder"):
            GMAE(4, 8, rng, encoder="mlp")

    def test_encoder_depth(self, rng):
        shallow = GMAE(8, 16, rng, encoder_layers=1)
        deep = GMAE(8, 16, rng, encoder_layers=3)
        assert len(deep.encoder) == 3 and len(shallow.encoder) == 1


class TestLosses:
    def test_cosine_error_zero_for_identical(self, rng):
        x = Tensor(rng.normal(size=(10, 4)))
        loss = scaled_cosine_error(x, x, np.arange(10), eta=2.0)
        assert float(loss.data) == pytest.approx(0.0, abs=1e-12)

    def test_cosine_error_positive_for_different(self, rng):
        a = Tensor(rng.normal(size=(10, 4)))
        b = Tensor(rng.normal(size=(10, 4)))
        assert float(scaled_cosine_error(a, b, np.arange(10), 2.0).data) > 0

    def test_cosine_error_empty_mask(self, rng):
        a = Tensor(rng.normal(size=(5, 3)))
        assert float(scaled_cosine_error(a, a, np.empty(0, dtype=int), 1.0).data) == 0

    def test_eta_sharpens(self, rng):
        a = Tensor(rng.normal(size=(20, 6)))
        b = Tensor(a.data + 0.1 * rng.normal(size=(20, 6)))
        # small errors shrink when eta grows
        l1 = float(scaled_cosine_error(a, b, np.arange(20), 1.0).data)
        l3 = float(scaled_cosine_error(a, b, np.arange(20), 3.0).data)
        assert l3 < l1

    def test_masked_edge_loss_prefers_true_edges(self, rng):
        # Embeddings engineered so connected pairs align.
        z = np.zeros((6, 4))
        z[0] = z[1] = [1, 0, 0, 0]
        z[2] = z[3] = [0, 1, 0, 0]
        z[4] = z[5] = [0, 0, 1, 0]
        edges = np.array([[0, 1], [2, 3], [4, 5]])
        good = masked_edge_loss(Tensor(z), edges, 6, np.random.default_rng(0))
        bad_edges = np.array([[0, 2], [1, 4], [3, 5]])
        bad = masked_edge_loss(Tensor(z), bad_edges, 6, np.random.default_rng(0))
        assert float(good.data) < float(bad.data)

    def test_masked_edge_loss_empty(self, rng):
        z = Tensor(rng.normal(size=(5, 3)))
        loss = masked_edge_loss(z, np.empty((0, 2)), 5, rng)
        assert float(loss.data) == 0.0

    def test_contrastive_prefers_aligned_views(self, rng):
        z = rng.normal(size=(30, 8))
        aligned = dual_view_contrastive(
            Tensor(z), Tensor(z + 0.01 * rng.normal(size=z.shape)),
            np.random.default_rng(1))
        random = dual_view_contrastive(
            Tensor(z), Tensor(rng.normal(size=z.shape)),
            np.random.default_rng(1))
        assert float(aligned.data) < float(random.data)

    def test_contrastive_gradient_flows(self, rng):
        a = Tensor(rng.normal(size=(10, 4)), requires_grad=True)
        b = Tensor(rng.normal(size=(10, 4)))
        dual_view_contrastive(a, b, rng).backward()
        assert a.grad is not None


class TestScoring:
    def test_minmax(self):
        out = minmax_normalize(np.array([2.0, 4.0, 6.0]))
        np.testing.assert_allclose(out, [0.0, 0.5, 1.0])
        np.testing.assert_allclose(minmax_normalize(np.ones(4)), np.zeros(4))

    def test_attribute_errors_euclidean(self, rng):
        x = rng.normal(size=(5, 3))
        err = attribute_errors(x, x, metric="euclidean")
        np.testing.assert_allclose(err, 0.0)

    def test_attribute_errors_cosine_scale_invariant(self, rng):
        x = rng.normal(size=(5, 3))
        err = attribute_errors(3.0 * x, x, metric="cosine")
        np.testing.assert_allclose(err, 0.0, atol=1e-9)

    def test_attribute_errors_unknown_metric(self, rng):
        with pytest.raises(ValueError, match="metric"):
            attribute_errors(rng.normal(size=(2, 2)), rng.normal(size=(2, 2)),
                             metric="hamming")

    def test_structure_exact_detects_bad_embeddings(self, rng):
        # Two cliques; good embeddings separate them, scrambled ones don't.
        edges = [(i, j) for i in range(4) for j in range(i + 1, 4)]
        edges += [(i, j) for i in range(4, 8) for j in range(i + 1, 8)]
        g = RelationGraph(8, np.array(edges))
        good = np.zeros((8, 2))
        good[:4] = [5, 0]
        good[4:] = [-5, 0]  # antipodal: cross-clique pairs predict ~0
        bad = rng.normal(size=(8, 2))
        assert structure_errors_exact(good, g).mean() < \
            structure_errors_exact(bad, g).mean()

    def test_structure_sampled_close_to_exact_ordering(self, tiny_relation, rng):
        z = rng.normal(size=(30, 6))
        exact = structure_errors_exact(z, tiny_relation)
        sampled = structure_errors_sampled(z, tiny_relation,
                                           np.random.default_rng(0),
                                           negatives_per_node=25)
        # same rough ordering: rank correlation positive
        re = np.argsort(np.argsort(exact)).astype(float)
        rs = np.argsort(np.argsort(sampled)).astype(float)
        corr = np.corrcoef(re, rs)[0, 1]
        assert corr > 0.2

    def test_structure_dispatch_auto(self, tiny_relation, rng):
        z = rng.normal(size=(30, 4))
        exact = structure_errors(z, tiny_relation, "auto",
                                 np.random.default_rng(0), exact_max_nodes=100)
        np.testing.assert_allclose(exact,
                                   structure_errors_exact(z, tiny_relation))

    def test_structure_dispatch_invalid(self, tiny_relation, rng):
        with pytest.raises(ValueError, match="mode"):
            structure_errors(rng.normal(size=(30, 4)), tiny_relation, "bogus",
                             rng)

    def test_combine_view_score_mixing(self, rng):
        attr = rng.random(20)
        struct = [rng.random(20), rng.random(20)]
        out = combine_view_score(attr, struct, epsilon=0.5)
        assert out.shape == (20,)
        assert np.all(out >= 0) and np.all(out <= 1.0 + 1e-9)

    def test_combine_single_term(self, rng):
        out = combine_view_score(rng.random(10), [], epsilon=0.5)
        assert out.max() == pytest.approx(1.0)

    def test_combine_nothing_raises(self):
        with pytest.raises(ValueError, match="no score"):
            combine_view_score(None, [], 0.5)
