"""Evaluation protocols, runner, and the experiment modules (micro scale)."""

import numpy as np
import pytest

from repro.eval import (
    EvalResult,
    RunResult,
    evaluate_gt_leakage,
    evaluate_unsupervised,
    format_table,
    run_detector,
)
from repro.experiments import (
    ExperimentProfile,
    clear_dataset_cache,
    fig2,
    fig3,
    fig4,
    fig5,
    fig6,
    fig7,
    table1,
    table2,
    table3,
    table4,
    table5,
)
from repro.experiments.common import umgad_config, umgad_factory, baseline_factory


MICRO = ExperimentProfile(
    name="micro", dataset_scale=0.12, large_scale=0.1, seeds=(0,),
    umgad_epochs=3, baseline_epochs=3, num_features=12, data_seed=3,
)


@pytest.fixture(autouse=True, scope="module")
def _fresh_cache():
    clear_dataset_cache()
    yield
    clear_dataset_cache()


def knee_scores(labels, quality=3.0, seed=0):
    rng = np.random.default_rng(seed)
    return labels * quality + rng.random(labels.size)


class TestProtocols:
    def test_unsupervised(self):
        labels = np.zeros(200, dtype=int)
        labels[:12] = 1
        result = evaluate_unsupervised(labels, knee_scores(labels))
        assert isinstance(result, EvalResult)
        assert result.auc == 1.0
        assert result.macro_f1 > 0.7
        assert result.threshold is not None

    def test_gt_leakage_flags_exactly_k(self):
        labels = np.zeros(100, dtype=int)
        labels[:9] = 1
        result = evaluate_gt_leakage(labels, knee_scores(labels))
        assert result.num_predicted == 9
        assert result.macro_f1 == 1.0

    def test_leakage_geq_unsupervised_on_clean_data(self):
        labels = np.zeros(300, dtype=int)
        labels[:20] = 1
        scores = knee_scores(labels, quality=2.0, seed=4)
        assert (evaluate_gt_leakage(labels, scores).macro_f1
                >= evaluate_unsupervised(labels, scores).macro_f1 - 1e-9)


class TestRunner:
    def test_run_detector_aggregates(self):
        ds = table1  # placeholder to avoid unused import warnings
        from repro.experiments.common import get_dataset

        dataset = get_dataset("retail", MICRO)
        result = run_detector("UMGAD", umgad_factory("retail", MICRO),
                              dataset, seeds=[0, 1])
        assert isinstance(result, RunResult)
        assert len(result.per_seed) == 2
        assert 0.0 <= result.auc_mean <= 1.0
        assert result.auc_std >= 0.0
        assert "±" in result.cell("auc")

    def test_unknown_protocol(self):
        from repro.experiments.common import get_dataset

        dataset = get_dataset("retail", MICRO)
        with pytest.raises(KeyError, match="protocol"):
            run_detector("X", umgad_factory("retail", MICRO), dataset,
                         seeds=[0], protocol="bogus")

    def test_format_table_renders(self):
        from repro.experiments.common import get_dataset

        dataset = get_dataset("retail", MICRO)
        rows = [run_detector("GADAM", baseline_factory("GADAM", MICRO),
                             dataset, seeds=[0])]
        text = format_table(rows)
        assert "GADAM" in text and "retail" in text


class TestExperimentModules:
    def test_table1(self):
        rows = table1.run(MICRO)
        assert len(rows) == 18  # 6 datasets x 3 relations
        assert "paper_edges" in rows[0]
        assert "retail" in table1.render(rows)

    def test_umgad_config_overrides(self):
        cfg = umgad_config("yelpchi", MICRO)
        assert cfg.mask_ratio == 0.6 and cfg.encoder_layers == 2
        cfg2 = umgad_config("retail", MICRO, alpha=0.7)
        assert cfg2.alpha == 0.7 and cfg2.mask_ratio == 0.2

    def test_table2_micro(self):
        rows = table2.run(MICRO, datasets=["retail"], methods=["GADAM", "PREM"])
        methods = {r.method for r in rows}
        assert methods == {"GADAM", "PREM", "UMGAD"}
        text = table2.render(rows)
        assert "UMGAD improvement" in text

    def test_table3_micro(self):
        rows = table3.run(MICRO, datasets=["dgfin"], methods=["GADAM"])
        assert {r.method for r in rows} == {"GADAM", "UMGAD"}

    def test_table4_micro(self):
        rows = table4.run(MICRO, datasets=["retail"],
                          ablations=("w/o M", "full"))
        variants = {r["variant"] for r in rows}
        assert variants == {"w/o M", "UMGAD"}
        assert "w/o M" in table4.render(rows)

    def test_table5_micro(self):
        rows = table5.run(MICRO, datasets=["retail"], methods=["PREM"])
        assert all(r.protocol == "gt_leakage" for r in rows)

    def test_fig2_micro(self):
        rows = fig2.run(MICRO, datasets=["retail"])
        assert len(rows) == 5  # UMGAD + 4 baselines
        for r in rows:
            assert len(r["curve_x"]) == len(r["curve_y"])
            assert r["true_anomalies"] > 0
        assert "flagged@inflection" in fig2.render(rows)

    def test_fig3_micro(self):
        rows = fig3.run(MICRO, datasets=["retail"], lambdas=(0.3,),
                        mus=(0.3,), thetas=(0.1,))
        assert len(rows) == 2  # one grid point + one theta point
        assert "best" in fig3.render(rows)

    def test_fig4_micro(self):
        rows = fig4.run(MICRO, datasets=["retail"], mask_ratios=(0.2, 0.4),
                        subgraph_sizes=(4,))
        assert len(rows) == 2
        assert "rm=" in fig4.render(rows)

    def test_fig5_micro(self):
        rows = fig5.run(MICRO, datasets=["retail"], values=(0.3, 0.6))
        assert len(rows) == 4  # 2 params x 2 values
        assert "alpha" in fig5.render(rows)

    def test_fig6_micro(self):
        rows = fig6.run(MICRO, datasets=["retail"])
        variants = {r["variant"] for r in rows}
        assert variants == {"full", "att", "str", "sub"}
        kinds = {r["anomaly_kind"] for r in rows}
        assert kinds == {"attribute", "structural"}
        assert "runtime" in fig6.render(rows)

    def test_fig7_micro(self):
        result = fig7.run(MICRO, datasets=["retail"], methods=("GADAM",))
        methods = {r["method"] for r in result["timings"]}
        assert methods == {"GADAM", "UMGAD"}
        assert "retail" in result["umgad_loss"]
        assert "per-epoch" in fig7.render(result)
