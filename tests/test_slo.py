"""SLO tracking, runtime telemetry, and SLO-aware health (PR 7).

Covers the three layers the observability loop closes through:

* :mod:`repro.server.slo` — rolling/tumbling window math, burn
  detection, the ok/degraded/failing rollup;
* :mod:`repro.obs.runtime` — process sampling and the background
  sampler lifecycle;
* the gateway/HTTP surface — ``/healthz?deep=1`` component health, 503
  on sustained burn, the new ``slo_*``/runtime/cache metric families,
  and the client's ``healthz(deep=True)`` / ``metrics_parsed()``.
"""

import threading
import time

import numpy as np
import pytest

from repro.detection import BaseDetector
from repro.graphs import random_multiplex
from repro.obs import assert_valid_exposition
from repro.obs.runtime import (
    RuntimeSampler,
    capture_sample,
    peak_rss_bytes,
    rss_bytes,
)
from repro.serve import DetectorService
from repro.server import (
    Gateway,
    MicroBatcher,
    ServerClient,
    ServerThread,
    SLOObjective,
    SLOTracker,
)
from repro.server.gateway import SLO_ENDPOINTS
from repro.server.slo import nearest_rank


class FlatDetector(BaseDetector):
    """Deterministic detector for gateway plumbing tests."""

    def __init__(self, num_nodes=16):
        self._scores = np.linspace(0.0, 1.0, num_nodes)
        self._relation_names = ["a"]
        self._num_features = 4

    def score_graph(self, graph):
        return np.linspace(0.0, 1.0, graph.num_nodes)


def _gateway(**overrides):
    defaults = dict(linger_ms=0.0, sample_interval=60.0,
                    slo_window=4, slo_p99_seconds=0.5,
                    slo_error_ratio=0.25, slo_sustain=2)
    defaults.update(overrides)
    return Gateway(DetectorService(FlatDetector()), **defaults)


# ---------------------------------------------------------------------------
# nearest_rank + SLOTracker
# ---------------------------------------------------------------------------

class TestNearestRank:
    def test_known_quantiles(self):
        values = [0.1, 0.2, 0.3, 0.4, 0.5]
        assert nearest_rank(values, 0.50) == 0.3
        assert nearest_rank(values, 0.99) == 0.5
        assert nearest_rank(values, 0.0) == 0.1
        assert nearest_rank([7.0], 0.99) == 7.0

    def test_rejects_bad_input(self):
        with pytest.raises(ValueError):
            nearest_rank([], 0.5)
        with pytest.raises(ValueError):
            nearest_rank([1.0], 1.5)


class TestSLOTracker:
    def test_window_completion_and_summary(self):
        tracker = SLOTracker(window=4, objective=SLOObjective(
            p99_seconds=1.0, error_ratio=0.5))
        assert tracker.observe("score", 0.1) is None
        assert tracker.observe("score", 0.2) is None
        assert tracker.observe("score", 0.3, error=True) is None
        summary = tracker.observe("score", 0.4)
        assert summary is not None
        assert summary.index == 1
        assert summary.samples == 4
        assert summary.p50_seconds == 0.2     # nearest rank of 4 values
        assert summary.p99_seconds == 0.4
        assert summary.error_ratio == 0.25
        assert summary.compliant
        assert tracker.status() == "ok"

    def test_burn_needs_sustained_violation(self):
        tracker = SLOTracker(window=2, sustain=2,
                             objective=SLOObjective(p99_seconds=0.1))
        tracker.observe("score", 1.0)
        tracker.observe("score", 1.0)          # window 1: violating
        assert tracker.status() == "degraded"  # one bad window ≠ failing
        assert not tracker.endpoint_status("score").burning
        tracker.observe("score", 1.0)
        tracker.observe("score", 1.0)          # window 2: violating
        assert tracker.endpoint_status("score").burning
        assert tracker.status() == "failing"

    def test_recovery_clears_burn(self):
        tracker = SLOTracker(window=2, sustain=2, min_samples=2,
                             objective=SLOObjective(p99_seconds=0.1))
        for _ in range(4):
            tracker.observe("score", 1.0)
        assert tracker.status() == "failing"
        for _ in range(4):
            tracker.observe("score", 0.01)     # two clean windows
        assert tracker.status() == "ok"
        status = tracker.endpoint_status("score")
        assert status.windows == 4 and status.burn_windows == 2

    def test_error_ratio_burns_independently_of_latency(self):
        tracker = SLOTracker(window=4, sustain=1, objective=SLOObjective(
            p99_seconds=10.0, error_ratio=0.25))
        for _ in range(3):
            tracker.observe("score", 0.01, error=True)
        summary = tracker.observe("score", 0.01, error=False)
        assert summary.error_ratio == 0.75
        assert not summary.compliant
        assert tracker.status() == "failing"   # sustain=1

    def test_min_samples_gates_live_judgement(self):
        tracker = SLOTracker(window=100, min_samples=20,
                             objective=SLOObjective(p99_seconds=0.1))
        for _ in range(5):
            tracker.observe("score", 9.9)      # violating but unjudged
        status = tracker.endpoint_status("score")
        assert not status.judged and status.compliant
        assert tracker.status() == "ok"
        for _ in range(15):
            tracker.observe("score", 9.9)
        status = tracker.endpoint_status("score")
        assert status.judged and not status.compliant
        assert tracker.status() == "degraded"

    def test_snapshot_shape(self):
        tracker = SLOTracker(window=2)
        for _ in range(4):
            tracker.observe("score", 0.01)
        tracker.observe("events", 0.02)
        snap = tracker.snapshot()
        assert snap["status"] == "ok"
        assert snap["window"] == 2 and snap["sustain"] == 2
        assert set(snap["endpoints"]) == {"score", "events"}
        assert len(snap["windows"]) == 2
        assert snap["objective"] == {"p99_seconds": 2.5,
                                     "error_ratio": 0.02}

    def test_windows_merged_across_endpoints_with_limit(self):
        tracker = SLOTracker(window=1, history=4)
        for endpoint in ("score", "events", "score"):
            tracker.observe(endpoint, 0.01)
        merged = tracker.windows()
        assert [w.endpoint for w in merged].count("score") == 2
        assert len(tracker.windows(limit=2)) == 2

    def test_constructor_validation(self):
        for kwargs in ({"window": 0}, {"sustain": 0}, {"history": 0}):
            with pytest.raises(ValueError):
                SLOTracker(**kwargs)

    def test_thread_safety_smoke(self):
        tracker = SLOTracker(window=10)

        def hammer():
            for _ in range(200):
                tracker.observe("score", 0.01)

        threads = [threading.Thread(target=hammer) for _ in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        status = tracker.endpoint_status("score")
        assert status.windows == 80            # 800 observations / 10


# ---------------------------------------------------------------------------
# Runtime telemetry
# ---------------------------------------------------------------------------

class TestRuntime:
    def test_process_probes(self):
        rss = rss_bytes()
        assert rss is not None and rss > 1_000_000   # a numpy process
        peak = peak_rss_bytes()
        assert peak is not None and peak >= rss // 2

    def test_capture_sample_fields(self):
        sample = capture_sample()
        payload = sample.to_dict()
        assert payload["rss_bytes"] > 0
        assert payload["threads"] >= 1
        assert payload["open_fds"] >= 3       # stdin/stdout/stderr at least
        assert len(payload["gc"]) == 3
        assert all("collections" in gen for gen in payload["gc"])

    def test_sampler_lifecycle(self):
        with RuntimeSampler(interval=0.02) as sampler:
            assert sampler.running
            first = sampler.latest()          # immediate sample on start
            assert first.rss_bytes > 0
            time.sleep(0.1)
            assert sampler.samples_taken >= 2
            assert sampler.sample_seconds > 0.0
            forced = sampler.refresh()
            assert forced.unix_time >= first.unix_time
        assert not sampler.running

    def test_latest_without_start_captures_synchronously(self):
        sampler = RuntimeSampler(interval=60.0)
        assert sampler.latest().rss_bytes > 0
        assert sampler.samples_taken == 1
        sampler.close()


# ---------------------------------------------------------------------------
# Gateway + HTTP surface
# ---------------------------------------------------------------------------

class TestGatewaySLO:
    def test_record_feeds_only_slo_endpoints(self):
        gateway = _gateway()
        try:
            gateway.record("score", 200, seconds=0.01)
            gateway.record("metrics", 200, seconds=0.01)
            gateway.record("healthz", 200, seconds=0.01)
            assert set(gateway.slo.statuses()) == {"score"}
            assert "metrics" not in SLO_ENDPOINTS
        finally:
            gateway.close()

    def test_4xx_does_not_burn_5xx_does(self):
        gateway = _gateway(slo_window=4, slo_sustain=1,
                           slo_error_ratio=0.25)
        try:
            for _ in range(4):
                gateway.record("score", 429, seconds=0.01)
            assert gateway.slo.last_window("score").compliant
            for _ in range(4):
                gateway.record("score", 500, seconds=0.01)
            assert not gateway.slo.last_window("score").compliant
            assert gateway.health()["status"] == "failing"
        finally:
            gateway.close()

    def test_deep_health_components(self):
        gateway = _gateway()
        try:
            shallow = gateway.health()
            assert "components" not in shallow
            deep = gateway.health(deep=True)
            comps = deep["components"]
            assert set(comps) == {"service", "batcher", "runtime", "slo",
                                  "breaker"}
            assert comps["batcher"]["workers"] == 2
            assert comps["batcher"]["utilization"] >= 0.0
            assert comps["runtime"]["rss_bytes"] > 0
            assert comps["slo"]["status"] == "ok"
            assert comps["service"]["cache_capacity"] > 0
        finally:
            gateway.close()

    def test_healthz_503_on_sustained_burn_over_http(self):
        gateway = _gateway(slo_window=3, slo_p99_seconds=0.05,
                           slo_sustain=2)
        with ServerThread(gateway) as server:
            with ServerClient(port=server.port) as client:
                assert client.healthz()["status"] == "ok"
                assert client.last_status == 200
                # drive two violating tumbling windows through record()
                for _ in range(6):
                    gateway.record("score", 200, seconds=1.0)
                payload = client.healthz(deep=True)
                assert client.last_status == 503
                assert payload["status"] == "failing"
                slo = payload["components"]["slo"]
                assert slo["endpoints"]["score"]["burning"]
                assert not slo["windows"][-1]["compliant"]
                # shallow healthz reports the same failing status
                assert client.healthz()["status"] == "failing"
                assert client.last_status == 503

    def test_metrics_families_and_parsed_client(self):
        gateway = _gateway(slo_window=2)
        rng = np.random.default_rng(0)
        with ServerThread(gateway) as server:
            with ServerClient(port=server.port) as client:
                client.score(random_multiplex(12, 1, 4, rng))
                client.score(random_multiplex(13, 1, 4, rng))
                text = client.metrics()
                assert_valid_exposition(text)
                families = client.metrics_parsed()
                assert families["repro_process_resident_memory_bytes"][
                    "type"] == "gauge"
                assert families["repro_slo_windows_total"][
                    "type"] == "counter"
                slo_samples = families["repro_slo_window_samples"]["samples"]
                assert any(s["labels"] == {"endpoint": "score"}
                           for s in slo_samples)
                util = families["repro_batcher_utilization_ratio"][
                    "samples"][0]["value"]
                assert 0.0 <= util <= 1.0
                entries = families["repro_service_cache_entries"][
                    "samples"][0]["value"]
                assert entries == 2.0

    def test_batcher_busy_seconds_accumulate(self):
        service = DetectorService(FlatDetector())
        batcher = MicroBatcher(service, workers=1, linger_ms=0.0)
        try:
            assert batcher.workers == 1
            assert batcher.busy_seconds == 0.0
            rng = np.random.default_rng(1)
            graph = random_multiplex(10, 1, 4, rng)
            from repro.graphs import graph_fingerprint
            batcher.submit(graph, graph_fingerprint(graph)).result(
                timeout=10.0)
            assert batcher.busy_seconds > 0.0
        finally:
            batcher.close()

    def test_cache_info_accounting(self):
        service = DetectorService(FlatDetector(), cache_size=4)
        rng = np.random.default_rng(2)
        empty = service.cache_info()
        assert empty["entries"] == 0 and empty["bytes"] == 0
        service.scores(random_multiplex(20, 1, 4, rng))
        info = service.cache_info()
        assert info["entries"] == 1
        assert info["bytes"] > 0
        assert info["capacity"] == 4 and info["inflight"] == 0
