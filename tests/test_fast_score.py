"""Bitwise parity of the grad-free scoring engine vs the seed path.

``tests/fixtures/score_parity.json`` pins ``decision_scores`` recorded by
the sequential tape-recording path (``REPRO_DISABLE_FAST_SCORE=1``) for
UMGAD — every Fig. 6 mode plus the w/o-M ablation — and a sample of
baselines, so neither path drifts from the seed behaviour. The in-process
tests additionally assert the two paths are **bit-identical** to each
other, which is the fast engine's contract.
"""

import json
import pathlib

import numpy as np
import pytest

from repro.baselines import make_baseline
from repro.core import UMGAD, UMGADConfig
from repro.core.config import ablation_config
from repro.core.model import fast_score_enabled
from repro.datasets import load_dataset
from repro.graphs import random_multiplex

FIXTURES = pathlib.Path(__file__).parent / "fixtures" / "score_parity.json"


@pytest.fixture(scope="module")
def parity():
    return json.loads(FIXTURES.read_text())


@pytest.fixture(scope="module")
def parity_dataset(parity):
    spec = parity["dataset"]
    return load_dataset(spec["name"], scale=spec["scale"],
                        num_features=spec["num_features"], seed=spec["seed"])


def _variant_config(name: str) -> UMGADConfig:
    base = UMGADConfig(epochs=6, seed=0)
    if name == "full":
        return base
    if name == "wo_mask":
        return ablation_config(base, "w/o M")
    return base.variant(mode=name)


class TestFlag:
    def test_default_on(self, monkeypatch):
        monkeypatch.delenv("REPRO_DISABLE_FAST_SCORE", raising=False)
        assert fast_score_enabled()
        monkeypatch.setenv("REPRO_DISABLE_FAST_SCORE", "0")
        assert fast_score_enabled()

    def test_env_disables(self, monkeypatch):
        monkeypatch.setenv("REPRO_DISABLE_FAST_SCORE", "1")
        assert not fast_score_enabled()

    def test_flag_holds_inside_ambient_no_grad(self, monkeypatch):
        # The escape hatch must disable the batched kernels even when the
        # caller wraps scoring in their own no_grad() — the model checks
        # the flag, not just the grad state.
        from unittest import mock

        from repro.autograd import no_grad
        from repro.core.gmae import GMAE

        rng = np.random.default_rng(12)
        graph = random_multiplex(30, 2, 5, rng, avg_degree=3.0)
        model = UMGAD(UMGADConfig(epochs=1, seed=0)).fit(graph)
        monkeypatch.setenv("REPRO_DISABLE_FAST_SCORE", "1")
        with mock.patch.object(GMAE, "impute_grouped",
                               side_effect=AssertionError(
                                   "batched kernel ran despite the flag")):
            with no_grad():
                scores = model.score_graph(graph)
        assert scores.shape == (30,)


class TestUMGADParity:
    @pytest.mark.parametrize("variant", ["full", "att", "str", "sub",
                                         "wo_mask"])
    def test_fast_equals_legacy_and_fixture(self, variant, parity,
                                            parity_dataset, monkeypatch):
        graph = parity_dataset.graph
        cfg = _variant_config(variant)

        monkeypatch.setenv("REPRO_DISABLE_FAST_SCORE", "1")
        legacy = UMGAD(cfg).fit(graph).decision_scores()
        monkeypatch.delenv("REPRO_DISABLE_FAST_SCORE")
        fast = UMGAD(cfg).fit(graph).decision_scores()

        # the two paths agree bit for bit on this machine...
        assert np.array_equal(legacy, fast)
        # ...and neither drifted from the recorded seed behaviour
        pinned = parity["umgad"][variant]
        assert legacy.tolist() == pytest.approx(pinned, rel=1e-12)

    def test_score_graph_deterministic_and_matches_fit(self, parity_dataset):
        graph = parity_dataset.graph
        model = UMGAD(UMGADConfig(epochs=4, seed=0)).fit(graph)
        first = model.score_graph(graph)
        second = model.score_graph(graph)
        assert np.array_equal(first, second)

    def test_fast_equals_legacy_on_random_multiplex(self, monkeypatch):
        rng = np.random.default_rng(9)
        graph = random_multiplex(70, 3, 8, rng, avg_degree=4.0)
        cfg = UMGADConfig(epochs=3, seed=1, encoder_layers=2,
                          structure_score_mode="sampled")
        monkeypatch.setenv("REPRO_DISABLE_FAST_SCORE", "1")
        legacy = UMGAD(cfg).fit(graph).decision_scores()
        monkeypatch.delenv("REPRO_DISABLE_FAST_SCORE")
        fast = UMGAD(cfg).fit(graph).decision_scores()
        assert np.array_equal(legacy, fast)

    def test_float32_parity(self, monkeypatch):
        from repro.autograd import get_default_dtype, set_default_dtype

        previous = get_default_dtype()
        try:
            set_default_dtype(np.float32)
            rng = np.random.default_rng(10)
            graph = random_multiplex(40, 2, 6, rng, avg_degree=3.0)
            cfg = UMGADConfig(epochs=2, seed=0)
            monkeypatch.setenv("REPRO_DISABLE_FAST_SCORE", "1")
            legacy = UMGAD(cfg).fit(graph).decision_scores()
            monkeypatch.delenv("REPRO_DISABLE_FAST_SCORE")
            fast = UMGAD(cfg).fit(graph).decision_scores()
            assert np.array_equal(legacy, fast)
        finally:
            set_default_dtype(previous)


class TestBaselineParity:
    @pytest.mark.parametrize("method", ["DOMINANT", "CoLA"])
    def test_scores_match_fixture(self, method, parity, parity_dataset):
        det = make_baseline(method, seed=0, epochs=6).fit(parity_dataset.graph)
        pinned = parity["baselines"][method]
        assert det.decision_scores().tolist() == pytest.approx(pinned,
                                                               rel=1e-12)


class TestServingParity:
    def test_service_scores_identical_both_paths(self, parity_dataset,
                                                 tmp_path, monkeypatch):
        from repro.serve import DetectorService

        graph = parity_dataset.graph
        model = UMGAD(UMGADConfig(epochs=3, seed=0)).fit(graph)
        path = model.save(tmp_path / "model.npz", graph=graph)

        fresh = random_multiplex(graph.num_nodes, graph.num_relations,
                                 graph.num_features,
                                 np.random.default_rng(77), avg_degree=3.0)

        monkeypatch.setenv("REPRO_DISABLE_FAST_SCORE", "1")
        legacy = DetectorService(path).scores(fresh).copy()
        monkeypatch.delenv("REPRO_DISABLE_FAST_SCORE")
        fast = DetectorService(path).scores(fresh).copy()
        assert np.array_equal(legacy, fast)
