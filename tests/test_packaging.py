"""Packaging metadata: pyproject.toml must produce an installable dist.

The original ``setup.py`` was a bare ``setup()`` with zero metadata, so
``pip install .`` produced an empty distribution — no packages, no entry
point. These tests pin the fix without running pip: the declared src
layout must actually contain the package, and the declared console script
must resolve to a callable.
"""

import pathlib
import sys

import pytest

# stdlib from 3.11; on the older interpreters requires-python still
# admits, skip the metadata tests rather than breaking collection
tomllib = pytest.importorskip("tomllib")

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent


@pytest.fixture(scope="module")
def pyproject() -> dict:
    path = REPO_ROOT / "pyproject.toml"
    assert path.exists(), "pyproject.toml is missing"
    with open(path, "rb") as handle:
        return tomllib.load(handle)


class TestProjectMetadata:
    def test_core_fields(self, pyproject):
        project = pyproject["project"]
        assert project["name"]
        assert project["version"]
        assert project["description"]
        assert "numpy" in project["dependencies"]
        assert "scipy" in project["dependencies"]

    def test_version_matches_the_package(self, pyproject):
        import repro

        assert pyproject["project"]["version"] == repro.__version__

    def test_build_system_is_setuptools(self, pyproject):
        build = pyproject["build-system"]
        assert build["build-backend"] == "setuptools.build_meta"

    def test_src_layout_points_at_the_package(self, pyproject):
        where = pyproject["tool"]["setuptools"]["packages"]["find"]["where"]
        assert where == ["src"]
        assert (REPO_ROOT / "src" / "repro" / "__init__.py").exists()


class TestConsoleScript:
    def test_entry_point_declared(self, pyproject):
        assert pyproject["project"]["scripts"]["repro"] == "repro.cli:main"

    def test_entry_point_resolves_to_a_callable(self, pyproject):
        """Resolve the declared entry point exactly as installers do."""
        target = pyproject["project"]["scripts"]["repro"]
        module_name, _, attribute = target.partition(":")
        __import__(module_name)
        function = getattr(sys.modules[module_name], attribute)
        assert callable(function)

    def test_entry_point_is_the_cli(self, capsys):
        from repro.cli import main

        with pytest.raises(SystemExit):
            main(["--help"])
        out = capsys.readouterr().out
        assert "serve" in out and "detect" in out
