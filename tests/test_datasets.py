"""Dataset registry: all six builders, scaling behaviour, metadata."""

import numpy as np
import pytest

from repro.datasets import (
    LARGE_DATASETS,
    PAPER_STATS,
    SMALL_DATASETS,
    available_datasets,
    load_dataset,
)


class TestRegistry:
    def test_available_names(self):
        assert set(available_datasets()) == {
            "retail", "alibaba", "amazon", "yelpchi", "dgfin", "tsocial"}
        assert set(SMALL_DATASETS) | set(LARGE_DATASETS) == set(available_datasets())

    def test_unknown_name_raises(self):
        with pytest.raises(KeyError, match="unknown dataset"):
            load_dataset("imaginary")

    @pytest.mark.parametrize("name", ["retail", "alibaba", "amazon", "yelpchi"])
    def test_small_datasets_load(self, name):
        ds = load_dataset(name, scale=0.15, num_features=12, seed=1)
        assert ds.graph.num_nodes == ds.labels.size
        assert ds.graph.num_features == 12
        assert ds.graph.num_relations == 3
        assert 0 < ds.num_anomalies < ds.graph.num_nodes
        assert ds.info.name == name

    @pytest.mark.parametrize("name", ["dgfin", "tsocial"])
    def test_large_datasets_load(self, name):
        ds = load_dataset(name, scale=0.1, seed=1)
        assert ds.graph.num_nodes >= 1000
        assert 0 < ds.num_anomalies

    def test_injected_have_report(self):
        ds = load_dataset("retail", scale=0.15, seed=2)
        assert ds.injection is not None
        assert ds.injection.num_anomalies == ds.num_anomalies
        assert ds.info.kind == "injected"

    def test_real_have_no_report(self):
        ds = load_dataset("amazon", scale=0.2, seed=2)
        assert ds.injection is None
        assert ds.info.kind == "real"

    def test_anomaly_rate_tracks_paper(self):
        for name in ("amazon", "yelpchi"):
            ds = load_dataset(name, scale=0.3, seed=3)
            paper_rate = (PAPER_STATS[name]["anomalies"]
                          / PAPER_STATS[name]["nodes"])
            assert abs(ds.info.anomaly_rate - paper_rate) < 0.25 * paper_rate

    def test_relation_ratio_tracks_paper(self):
        ds = load_dataset("retail", scale=0.4, seed=4)
        repo = np.array(list(ds.info.relation_edges.values()), dtype=float)
        paper = np.array(list(PAPER_STATS["retail"]["relations"].values()),
                         dtype=float)
        # injected cliques perturb counts slightly; compare the dominance
        # ordering and rough ratio of the biggest relation
        assert np.argmax(repo) == np.argmax(paper)
        assert repo.max() / repo.sum() > 0.5

    def test_scale_changes_size(self):
        small = load_dataset("alibaba", scale=0.15, seed=5)
        large = load_dataset("alibaba", scale=0.3, seed=5)
        assert large.graph.num_nodes > small.graph.num_nodes

    def test_deterministic_per_seed(self):
        a = load_dataset("retail", scale=0.15, seed=6)
        b = load_dataset("retail", scale=0.15, seed=6)
        np.testing.assert_allclose(a.graph.x, b.graph.x)
        np.testing.assert_array_equal(a.labels, b.labels)

    def test_different_seeds_differ(self):
        a = load_dataset("retail", scale=0.15, seed=6)
        b = load_dataset("retail", scale=0.15, seed=7)
        assert not np.allclose(a.graph.x, b.graph.x)

    def test_info_paper_fields(self):
        ds = load_dataset("yelpchi", scale=0.2, seed=8)
        assert ds.info.paper_nodes == 45_954
        assert ds.info.paper_anomalies == 6_674
        assert ds.info.paper_relation_edges["R-S-R"] == 3_402_743
