"""Gradient checks and semantics for every differentiable op."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.autograd import Tensor, check_gradients, ops


def arrays(shape, seed=0, scale=1.0):
    return scale * np.random.default_rng(seed).normal(size=shape)


class TestElementwiseGradients:
    @pytest.mark.parametrize("fn", [
        lambda a, b: ops.add(a, b),
        lambda a, b: ops.sub(a, b),
        lambda a, b: ops.mul(a, b),
    ])
    def test_binary_same_shape(self, fn):
        check_gradients(fn, [arrays((3, 4), 1), arrays((3, 4), 2)])

    def test_div(self):
        b = np.abs(arrays((3, 4), 2)) + 1.0
        check_gradients(lambda a, b: ops.div(a, b), [arrays((3, 4), 1), b])

    @pytest.mark.parametrize("shapes", [((3, 1), (3, 4)), ((4,), (3, 4)), ((1,), (2, 2))])
    def test_broadcasting(self, shapes):
        check_gradients(lambda a, b: ops.mul(a, b),
                        [arrays(shapes[0], 1), arrays(shapes[1], 2)])

    def test_neg(self):
        check_gradients(lambda a: ops.neg(a), [arrays((5,), 3)])

    def test_power(self):
        x = np.abs(arrays((4,), 4)) + 0.5
        check_gradients(lambda a: ops.power(a, 2.5), [x])

    def test_exp_log(self):
        check_gradients(lambda a: ops.exp(a), [arrays((4,), 5, 0.5)])
        check_gradients(lambda a: ops.log(a), [np.abs(arrays((4,), 6)) + 0.5])

    def test_sqrt(self):
        check_gradients(lambda a: ops.sqrt(a), [np.abs(arrays((4,), 7)) + 0.5])

    def test_absolute(self):
        x = arrays((6,), 8)
        x[np.abs(x) < 0.1] = 0.5  # keep away from the kink
        check_gradients(lambda a: ops.absolute(a), [x])

    def test_clip_gradient_masked(self):
        a = Tensor(np.array([-2.0, 0.5, 2.0]), requires_grad=True)
        ops.sum(ops.clip(a, -1.0, 1.0)).backward()
        np.testing.assert_allclose(a.grad, [0.0, 1.0, 0.0])

    def test_maximum(self):
        a = arrays((5,), 9)
        b = arrays((5,), 10)
        b += (np.abs(a - b) < 0.1) * 0.5  # avoid ties
        check_gradients(lambda x, y: ops.maximum(x, y), [a, b])


class TestActivationGradients:
    @pytest.mark.parametrize("fn", [
        lambda a: ops.relu(a),
        lambda a: ops.leaky_relu(a, 0.1),
        lambda a: ops.elu(a),
        lambda a: ops.sigmoid(a),
        lambda a: ops.tanh(a),
    ])
    def test_unary(self, fn):
        x = arrays((4, 3), 11)
        x[np.abs(x) < 0.05] = 0.3  # avoid relu kink
        check_gradients(fn, [x])

    def test_softmax(self):
        check_gradients(lambda a: ops.softmax(a, axis=-1), [arrays((3, 5), 12)])

    def test_log_softmax(self):
        check_gradients(lambda a: ops.log_softmax(a, axis=-1), [arrays((3, 5), 13)])

    def test_softmax_rows_sum_to_one(self):
        out = ops.softmax(Tensor(arrays((4, 6), 14)), axis=-1)
        np.testing.assert_allclose(out.data.sum(axis=-1), np.ones(4))

    def test_sigmoid_saturation_no_overflow(self):
        out = ops.sigmoid(Tensor(np.array([-1e4, 1e4])))
        np.testing.assert_allclose(out.data, [0.0, 1.0], atol=1e-12)

    def test_row_normalize(self):
        check_gradients(lambda a: ops.row_normalize(a), [arrays((4, 3), 15)])
        out = ops.row_normalize(Tensor(arrays((4, 3), 15)))
        np.testing.assert_allclose(np.linalg.norm(out.data, axis=1), np.ones(4))

    def test_cosine_similarity_range(self):
        a, b = arrays((10, 4), 16), arrays((10, 4), 17)
        sim = ops.cosine_similarity(Tensor(a), Tensor(b)).data
        assert np.all(sim <= 1.0 + 1e-9) and np.all(sim >= -1.0 - 1e-9)

    def test_cosine_similarity_gradient(self):
        check_gradients(lambda a, b: ops.cosine_similarity(a, b),
                        [arrays((4, 3), 18), arrays((4, 3), 19)])


class TestLinearAlgebra:
    def test_matmul_grad(self):
        check_gradients(lambda a, b: ops.matmul(a, b),
                        [arrays((3, 4), 20), arrays((4, 2), 21)])

    def test_matmul_value(self):
        a, b = arrays((2, 3), 22), arrays((3, 2), 23)
        np.testing.assert_allclose(ops.matmul(Tensor(a), Tensor(b)).data, a @ b)

    def test_transpose_grad(self):
        check_gradients(lambda a: ops.transpose(a), [arrays((3, 4), 24)])

    def test_transpose_axes(self):
        a = arrays((2, 3, 4), 25)
        out = ops.transpose(Tensor(a), (2, 0, 1))
        assert out.shape == (4, 2, 3)
        check_gradients(lambda t: ops.transpose(t, (2, 0, 1)), [a])

    def test_reshape_grad(self):
        check_gradients(lambda a: ops.reshape(a, (2, 6)), [arrays((3, 4), 26)])

    def test_concat_grad(self):
        check_gradients(lambda a, b: ops.concat([a, b], axis=0),
                        [arrays((2, 3), 27), arrays((4, 3), 28)])
        check_gradients(lambda a, b: ops.concat([a, b], axis=1),
                        [arrays((2, 3), 29), arrays((2, 2), 30)])

    def test_stack_grad(self):
        check_gradients(lambda a, b: ops.stack([a, b], axis=0),
                        [arrays((2, 3), 31), arrays((2, 3), 32)])


class TestReductions:
    @pytest.mark.parametrize("axis,keepdims", [(None, False), (0, False), (1, True)])
    def test_sum(self, axis, keepdims):
        check_gradients(lambda a: ops.sum(a, axis=axis, keepdims=keepdims),
                        [arrays((3, 4), 33)])

    @pytest.mark.parametrize("axis,keepdims", [(None, False), (0, False), (1, True)])
    def test_mean(self, axis, keepdims):
        check_gradients(lambda a: ops.mean(a, axis=axis, keepdims=keepdims),
                        [arrays((3, 4), 34)])

    def test_norm_l2(self):
        check_gradients(lambda a: ops.norm(a, axis=1), [arrays((4, 3), 35)])

    def test_norm_l1(self):
        x = arrays((4, 3), 36)
        x[np.abs(x) < 0.1] = 0.5
        check_gradients(lambda a: ops.norm(a, axis=1, ord=1), [x])

    def test_norm_unsupported_order(self):
        with pytest.raises(ValueError, match="unsupported"):
            ops.norm(Tensor(arrays((3,), 37)), ord=3)

    def test_max_reduce(self):
        x = arrays((4, 5), 38)
        check_gradients(lambda a: ops.max_reduce(a, axis=1), [x])


class TestIndexingScatter:
    def test_index_slice(self):
        check_gradients(lambda a: ops.index(a, (slice(1, 3), slice(None))),
                        [arrays((4, 3), 39)])

    def test_gather_rows_duplicates(self):
        idx = np.array([0, 0, 2, 2, 2])
        check_gradients(lambda a: ops.gather_rows(a, idx), [arrays((4, 3), 40)])

    def test_set_rows_value_and_grads(self):
        check_gradients(lambda a, v: ops.set_rows(a, np.array([0, 2]), v),
                        [arrays((4, 3), 41), arrays((1, 3), 42)])
        a = Tensor(arrays((4, 3), 43))
        v = Tensor(np.zeros((1, 3)))
        out = ops.set_rows(a, np.array([1]), v)
        np.testing.assert_allclose(out.data[1], 0.0)
        np.testing.assert_allclose(out.data[0], a.data[0])

    def test_segment_sum_values(self):
        vals = Tensor(np.array([[1.0], [2.0], [3.0]]))
        out = ops.segment_sum(vals, np.array([0, 0, 1]), 2)
        np.testing.assert_allclose(out.data, [[3.0], [3.0]])

    def test_segment_sum_grad(self):
        check_gradients(
            lambda a: ops.segment_sum(a, np.array([0, 1, 1, 2, 0]), 3),
            [arrays((5, 2), 44)])

    def test_segment_softmax_sums_to_one_per_segment(self):
        seg = np.array([0, 0, 1, 1, 1])
        out = ops.segment_softmax(Tensor(arrays((5,), 45)), seg, 2).data
        assert out[:2].sum() == pytest.approx(1.0)
        assert out[2:].sum() == pytest.approx(1.0)

    def test_segment_softmax_grad(self):
        check_gradients(
            lambda a: ops.segment_softmax(a, np.array([0, 0, 1, 1, 2, 2]), 3),
            [arrays((6, 2), 46)])

    def test_dropout_eval_identity(self):
        a = Tensor(arrays((5, 5), 47))
        out = ops.dropout(a, 0.5, np.random.default_rng(0), training=False)
        assert out is a

    def test_dropout_scales_kept_values(self):
        rng = np.random.default_rng(0)
        a = Tensor(np.ones((1000,)))
        out = ops.dropout(a, 0.5, rng, training=True).data
        kept = out[out > 0]
        np.testing.assert_allclose(kept, 2.0)
        assert 0.35 < (out > 0).mean() < 0.65


@settings(max_examples=25, deadline=None)
@given(st.integers(2, 6), st.integers(2, 6), st.integers(0, 10_000))
def test_matmul_grad_property(n, m, seed):
    """Property: matmul gradients match finite differences for random sizes."""
    a = arrays((n, m), seed)
    b = arrays((m, n), seed + 1)
    check_gradients(lambda x, y: ops.matmul(x, y), [a, b])


@settings(max_examples=25, deadline=None)
@given(st.integers(2, 30), st.integers(1, 4), st.integers(0, 10_000))
def test_segment_softmax_partition_property(n, cols, seed):
    """Property: per-segment attention always sums to one."""
    rng = np.random.default_rng(seed)
    seg = np.sort(rng.integers(0, 5, size=n))
    scores = rng.normal(size=(n, cols))
    out = ops.segment_softmax(Tensor(scores), seg, 5).data
    for s in np.unique(seg):
        np.testing.assert_allclose(out[seg == s].sum(axis=0), np.ones(cols),
                                   rtol=1e-9)
