"""Tests for the unified training engine (repro.engine).

The load-bearing guarantees:

* ``FullGraphBatches`` training is loss-history-identical to the
  pre-engine training loops (fixtures recorded from the seed code) for
  UMGAD and one baseline per family;
* ``SubgraphBatches`` is deterministic per seed and actually trains on
  node-induced sub-multiplexes;
* callbacks (early stopping, grad clip, LR schedule) behave like the
  historical inline implementations they replaced;
* serving refits report engine telemetry.
"""

import json
import pathlib

import numpy as np
import pytest

from repro.autograd import get_default_dtype, set_default_dtype
from repro.autograd.tensor import Tensor
from repro.baselines import make_baseline
from repro.core import UMGAD, UMGADConfig
from repro.datasets import load_dataset
from repro.engine import (
    EarlyStopping,
    FullGraphBatches,
    GradClip,
    GraphBatch,
    LRSchedule,
    SubgraphBatches,
    Trainer,
    TrainState,
    make_batch_strategy,
)
from repro.graphs import random_multiplex
from repro.graphs.sampling import induced_multiplex
from repro.nn import Adam, Linear, Module

FIXTURES = pathlib.Path(__file__).parent / "fixtures" / "engine_parity.json"


@pytest.fixture(scope="module")
def parity():
    return json.loads(FIXTURES.read_text())


@pytest.fixture(scope="module")
def parity_dataset(parity):
    spec = parity["dataset"]
    return load_dataset(spec["name"], scale=spec["scale"],
                        num_features=spec["num_features"], seed=spec["seed"])


# ---------------------------------------------------------------------------
# Full-batch parity with the pre-engine loops
# ---------------------------------------------------------------------------

class TestFullBatchParity:
    def test_umgad_loss_history_matches_seed_loop(self, parity, parity_dataset):
        model = UMGAD(UMGADConfig(epochs=6, seed=0)).fit(parity_dataset.graph)
        assert model.loss_history == pytest.approx(parity["UMGAD"], rel=1e-12)
        assert model.train_state is not None
        assert model.train_state.epochs_run == 6
        assert model.train_state.stop_reason == "completed"

    @pytest.mark.parametrize("method", ["DOMINANT", "CoLA", "ComGA", "AnomMAN"])
    def test_baseline_loss_history_matches_seed_loop(self, method, parity,
                                                     parity_dataset):
        detector = make_baseline(method, seed=0, epochs=6)
        detector.fit(parity_dataset.graph)
        assert detector.loss_history == pytest.approx(parity[method], rel=1e-12)
        # engine telemetry travels with every baseline, so serving refits
        # can report epochs/seconds for baselines too
        assert detector.train_state.epochs_run == len(detector.loss_history)
        assert detector.train_state.total_seconds > 0.0

    def test_multi_stage_baseline_merges_train_states(self, parity_dataset):
        detector = make_baseline("ADA-GAD", seed=0, epochs=6)
        detector.fit(parity_dataset.graph)
        state = detector.train_state
        # pre (epochs//3 floored at 5) + stage1 (epochs) + stage2 (epochs//2
        # floored at 5) epochs, all telemetry concatenated
        assert state.epochs_run == len(detector.loss_history) == 5 + 6 + 5
        assert len(state.epoch_seconds) == state.epochs_run

    def test_baseline_refit_reports_telemetry(self, rng):
        from repro.serve import DetectorService

        graph = random_multiplex(40, 2, 6, rng, avg_degree=3.0)
        service = DetectorService(
            make_baseline("DOMINANT", seed=0, epochs=3).fit(graph))
        service.replace_detector(
            make_baseline("DOMINANT", seed=1, epochs=5).fit(graph))
        assert service.stats.refit_epochs == 5
        assert service.stats.refit_seconds > 0.0


# ---------------------------------------------------------------------------
# Subgraph minibatches
# ---------------------------------------------------------------------------

class TestSubgraphBatches:
    def _graph(self, seed=3):
        return random_multiplex(80, 3, 8, np.random.default_rng(seed),
                                avg_degree=4.0)

    def test_batches_are_induced_submultiplexes(self):
        graph = self._graph()
        strategy = SubgraphBatches(batch_size=24, batches_per_epoch=3, seed=0)
        batches = list(strategy.batches(graph, epoch=0))
        assert len(batches) == 3
        for batch in batches:
            assert not batch.is_full
            assert 2 <= batch.num_nodes <= 24
            assert batch.graph.num_relations == graph.num_relations
            # relabeled edges stay within the block, and attribute rows
            # match the original nodes they were sliced from
            for _name, rel in batch.graph:
                if rel.num_edges:
                    assert rel.edges.max() < batch.num_nodes
            np.testing.assert_array_equal(batch.graph.x,
                                          graph.x[batch.nodes])

    def test_deterministic_per_seed_and_epoch(self):
        graph = self._graph()
        a = SubgraphBatches(batch_size=20, seed=7)
        b = SubgraphBatches(batch_size=20, seed=7)
        for epoch in range(3):
            nodes_a = [bt.nodes for bt in a.batches(graph, epoch)]
            nodes_b = [bt.nodes for bt in b.batches(graph, epoch)]
            for x, y in zip(nodes_a, nodes_b):
                np.testing.assert_array_equal(x, y)
        # different epochs sample different blocks
        first = next(iter(a.batches(graph, 0))).nodes
        second = next(iter(a.batches(graph, 1))).nodes
        assert not (first.size == second.size
                    and np.array_equal(first, second))

    def test_umgad_subgraph_training_is_reproducible(self, parity_dataset):
        cfg = dict(epochs=3, seed=0, batch="subgraph", batch_size=48,
                   batches_per_epoch=2)
        m1 = UMGAD(UMGADConfig(**cfg)).fit(parity_dataset.graph)
        m2 = UMGAD(UMGADConfig(**cfg)).fit(parity_dataset.graph)
        assert m1.loss_history == m2.loss_history
        assert m1.train_state.batch_counts == [2, 2, 2]
        # scoring still covers the FULL graph
        assert m1.decision_scores().shape == (parity_dataset.graph.num_nodes,)
        np.testing.assert_allclose(m1.decision_scores(), m2.decision_scores())

    def test_induced_multiplex_keeps_only_internal_edges(self):
        graph = self._graph()
        nodes = np.arange(0, 30)
        sub = induced_multiplex(graph, nodes)
        assert sub.num_nodes == 30
        for name, rel in sub:
            original = graph[name]
            member = np.zeros(graph.num_nodes, dtype=bool)
            member[nodes] = True
            expected = original.edges[member[original.edges[:, 0]]
                                      & member[original.edges[:, 1]]]
            np.testing.assert_array_equal(rel.edges, expected)

    def test_strategy_validation(self):
        with pytest.raises(ValueError):
            SubgraphBatches(batch_size=1)
        with pytest.raises(ValueError):
            SubgraphBatches(batches_per_epoch=0)
        with pytest.raises(ValueError):
            make_batch_strategy("bogus")
        assert isinstance(make_batch_strategy("full"), FullGraphBatches)
        assert isinstance(make_batch_strategy("subgraph"), SubgraphBatches)

    def test_config_validation(self):
        with pytest.raises(ValueError):
            UMGADConfig(batch="bogus")
        with pytest.raises(ValueError):
            UMGADConfig(batch_size=1)
        with pytest.raises(ValueError):
            UMGADConfig(batches_per_epoch=0)


# ---------------------------------------------------------------------------
# Trainer mechanics + callbacks
# ---------------------------------------------------------------------------

class _Quadratic(Module):
    """Minimise ||w||^2 — a transparent objective for loop mechanics."""

    def __init__(self, n=4):
        super().__init__()
        from repro.nn import Parameter

        self.w = Parameter(np.arange(1.0, n + 1.0), name="w")


class TestTrainer:
    def _trainer(self, model, lr=0.1, **kwargs):
        return Trainer(model, Adam(model.parameters(), lr=lr), **kwargs)

    def test_zero_arg_loss_fn_and_history(self):
        model = _Quadratic()
        state = self._trainer(model).fit(
            None, lambda: (model.w * model.w).sum(), epochs=5)
        assert len(state.loss_history) == 5
        assert state.loss_history[-1] < state.loss_history[0]
        assert state.batch_counts == [1] * 5
        assert state.stop_reason == "completed"

    def test_batch_aware_loss_fn_receives_batches(self, rng):
        graph = random_multiplex(30, 2, 4, rng, avg_degree=3.0)
        model = _Quadratic()
        seen = []

        def loss_fn(batch):
            seen.append(batch)
            return (model.w * model.w).sum()

        state = self._trainer(model).fit(graph, loss_fn, epochs=2)
        assert state.epochs_run == 2
        assert all(isinstance(b, GraphBatch) for b in seen)
        assert all(b.graph is graph and b.is_full for b in seen)

    def test_minibatch_requires_graph(self):
        model = _Quadratic()
        trainer = self._trainer(model,
                                batch_strategy=SubgraphBatches(batch_size=4))
        with pytest.raises(ValueError, match="graph"):
            trainer.fit(None, lambda b: (model.w * model.w).sum(), epochs=1)

    def test_minibatch_rejects_zero_arg_loss_fn(self, rng):
        # A zero-arg closure captured the full graph: running it under a
        # subgraph strategy would silently train full-batch.
        graph = random_multiplex(30, 2, 4, rng, avg_degree=3.0)
        model = _Quadratic()
        trainer = self._trainer(model,
                                batch_strategy=SubgraphBatches(batch_size=8))
        with pytest.raises(ValueError, match="batch-aware"):
            trainer.fit(graph, lambda: (model.w * model.w).sum(), epochs=1)

    def test_loss_components_recorded(self):
        model = _Quadratic()

        def loss_fn():
            loss = (model.w * model.w).sum()
            return loss, {"l2": float(loss.data)}

        state = self._trainer(model).fit(None, loss_fn, epochs=3)
        assert len(state.loss_components) == 3
        assert state.loss_components[0]["l2"] == pytest.approx(
            state.loss_history[0])

    def test_early_stopping_matches_historical_rule(self):
        model = _Quadratic()
        # Constant loss: epoch 0 "improves" from inf, then `patience`
        # stale epochs trigger the stop — 1 + patience epochs total, the
        # same schedule the historical UMGAD.fit loop produced.
        state = self._trainer(model, callbacks=[
            EarlyStopping(patience=3, min_delta=1e-3)
        ]).fit(None, lambda: Tensor(1.0), epochs=50)
        assert state.epochs_run == 4
        assert state.stop
        assert "early stop" in state.stop_reason

    def test_grad_clip_bounds_update(self):
        model = _Quadratic()
        huge = 1e6

        def loss_fn():
            return (model.w * model.w).sum() * huge

        before = model.w.data.copy()
        self._trainer(model, lr=0.1, callbacks=[GradClip(1.0)]).fit(
            None, loss_fn, epochs=1)
        # Adam normalises step size anyway; check the clip actually ran by
        # observing the gradient left on the parameter
        assert float(np.sqrt((model.w.grad ** 2).sum())) <= 1.0 + 1e-9
        assert not np.array_equal(before, model.w.data)

    def test_lr_schedule_sets_optimizer_lr(self):
        model = _Quadratic()
        optimizer = Adam(model.parameters(), lr=0.5)
        trainer = Trainer(model, optimizer, callbacks=[
            LRSchedule(lambda epoch, base: base * (0.1 ** epoch))
        ])
        trainer.fit(None, lambda: (model.w * model.w).sum(), epochs=3)
        assert optimizer.lr == pytest.approx(0.5 * 0.01)

    def test_state_to_dict_is_jsonable(self):
        model = _Quadratic()
        state = self._trainer(model).fit(
            None, lambda: (model.w * model.w).sum(), epochs=2)
        payload = json.loads(json.dumps(state.to_dict()))
        assert payload["epochs_run"] == 2
        assert payload["batches"] == 2
        assert payload["total_seconds"] >= 0.0


# ---------------------------------------------------------------------------
# Engine telemetry in serving refits
# ---------------------------------------------------------------------------

class TestServingRefitTelemetry:
    def test_replace_detector_reports_engine_epochs(self, rng):
        from repro.serve import DetectorService

        graph = random_multiplex(40, 2, 6, rng, avg_degree=3.0)
        first = UMGAD(UMGADConfig(epochs=3, seed=0)).fit(graph)
        service = DetectorService(first)
        refit = UMGAD(UMGADConfig(epochs=4, seed=1)).fit(graph)
        service.replace_detector(refit)
        assert service.stats.refits == 1
        assert service.stats.refit_epochs == 4
        assert service.stats.refit_seconds > 0.0
        payload = service.stats.to_dict()
        assert payload["refits"] == 1
        assert payload["refit_epochs"] == 4

    def test_stream_refit_alert_carries_epochs(self, rng):
        from repro.serve import DetectorService
        from repro.stream import IncrementalGraphBuilder, StreamMonitor
        from repro.stream.events import UpdateAttr
        from repro.stream.monitor import RefitAlert, alert_dict

        graph = random_multiplex(50, 2, 4, rng, avg_degree=3.0)
        base = UMGAD(UMGADConfig(epochs=2, seed=0)).fit(graph)
        service = DetectorService(base)
        builder = IncrementalGraphBuilder.from_graph(graph)

        def refit(snapshot):
            return UMGAD(UMGADConfig(epochs=2, seed=0)).fit(snapshot)

        monitor = StreamMonitor(service, builder, window=50, refit=refit,
                                refit_cooldown=1)
        quiet = [UpdateAttr(i, graph.x[i]) for i in range(50)]
        shift = [UpdateAttr(i, graph.x[i] + 10.0) for i in range(50)]
        reports = monitor.process(quiet + shift)
        refit_alerts = [a for r in reports for a in r.alerts
                        if isinstance(a, RefitAlert)]
        assert refit_alerts
        assert refit_alerts[0].epochs == 2
        assert refit_alerts[0].seconds > 0.0
        assert alert_dict(refit_alerts[0])["kind"] == "refit"


# ---------------------------------------------------------------------------
# dtype plumbing (--dtype satellite)
# ---------------------------------------------------------------------------

class TestDtype:
    @pytest.fixture(autouse=True)
    def _restore_dtype(self):
        saved = get_default_dtype()
        yield
        set_default_dtype(saved)

    def test_float32_flows_through_training(self):
        set_default_dtype("float32")
        graph = random_multiplex(30, 2, 6, np.random.default_rng(0),
                                 avg_degree=3.0)
        assert graph.x.dtype == np.float32
        model = UMGAD(UMGADConfig(epochs=2, seed=0)).fit(graph)
        assert all(v.dtype == np.float32
                   for v in model.state_dict().values())

    def test_checkpoint_roundtrip_preserves_dtype(self, tmp_path):
        set_default_dtype("float32")
        graph = random_multiplex(30, 2, 6, np.random.default_rng(0),
                                 avg_degree=3.0)
        model = UMGAD(UMGADConfig(epochs=2, seed=0)).fit(graph)
        path = model.save(tmp_path / "f32.npz", graph=graph)

        from repro.serve.checkpoint import load_checkpoint, read_header

        loaded = load_checkpoint(path)
        assert all(v.dtype == np.float32
                   for v in loaded.state_dict().values())
        np.testing.assert_array_equal(loaded.decision_scores(),
                                      model.decision_scores())
        # the header records the TRAINING precision (scores are float64 —
        # the scoring pipeline upcasts), so serving commands can default
        # to the right --dtype without opening the payload
        assert read_header(path)["dtype"] == "float32"

    def test_loading_checkpoint_adopts_training_precision(self, tmp_path):
        set_default_dtype("float32")
        graph = random_multiplex(30, 2, 6, np.random.default_rng(0),
                                 avg_degree=3.0)
        model = UMGAD(UMGADConfig(epochs=2, seed=0)).fit(graph)
        path = model.save(tmp_path / "f32.npz", graph=graph)

        from repro.serve import DetectorService

        # A fresh float64 process serving this checkpoint would build
        # float64 graphs whose fingerprints never match the trained graph;
        # loading adopts the recorded precision so the stored-scores fast
        # path stays alive.
        set_default_dtype("float64")
        service = DetectorService(path)
        assert get_default_dtype() == np.float32
        rebuilt = graph.with_features(np.asarray(graph.x))
        assert service.trained_fingerprint is not None
        np.testing.assert_array_equal(service.scores(rebuilt),
                                      model.decision_scores())

        # opt-out leaves the process default untouched
        set_default_dtype("float64")
        DetectorService(path, match_dtype=False)
        assert get_default_dtype() == np.float64


# ---------------------------------------------------------------------------
# spmm CSR hot-path contract
# ---------------------------------------------------------------------------

class TestSpmmCsrContract:
    def test_debug_mode_rejects_non_csr(self, monkeypatch):
        import scipy.sparse as sp

        from repro.autograd import sparse as sparse_mod

        monkeypatch.setattr(sparse_mod, "DEBUG_ASSERT_CSR", True)
        coo = sp.coo_matrix(np.eye(3))
        with pytest.raises(TypeError, match="CSR"):
            sparse_mod.spmm(coo, Tensor(np.ones((3, 2))))
        # CSR passes
        out = sparse_mod.spmm(coo.tocsr(), Tensor(np.ones((3, 2))))
        np.testing.assert_array_equal(out.data, np.ones((3, 2)))

    def test_propagators_are_csr_with_cached_transpose(self, tiny_relation):
        prop = tiny_relation.sym_propagator()
        assert prop.format == "csr"
        assert prop._spmm_transpose is prop
        adj = tiny_relation.adjacency()
        assert adj._spmm_transpose is adj

    def test_symmetric_backward_matches_explicit_transpose(self, tiny_relation):
        from repro.autograd import spmm

        prop = tiny_relation.sym_propagator()
        x = Tensor(np.random.default_rng(0).normal(
            size=(tiny_relation.num_nodes, 3)), requires_grad=True)
        out = spmm(prop, x)
        out.backward(np.ones_like(out.data))
        expected = prop.T.tocsr() @ np.ones_like(out.data)
        np.testing.assert_allclose(x.grad, expected)
