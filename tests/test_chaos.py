"""Deterministic fault injection (repro.chaos).

The chaos layer is itself load-bearing test infrastructure — the
resilience suite (tests/test_resilience.py) trusts it to fire exactly
when asked — so its counting, keying, env parsing and idle-cost
contracts get their own coverage here.
"""

import time

import pytest

from repro import chaos


@pytest.fixture(autouse=True)
def _clean_chaos():
    chaos.reset()
    yield
    chaos.reset()


class TestConfigure:
    def test_counted_fault_fires_exactly_n_times(self):
        chaos.configure("unit.point", mode="error", count=2)
        for _ in range(2):
            with pytest.raises(chaos.ChaosError):
                chaos.fail_point("unit.point")
        # spent: reached but never fires again
        chaos.fail_point("unit.point")
        chaos.fail_point("unit.point")

    def test_unlimited_fault_never_disarms(self):
        chaos.configure("unit.point", mode="error", count=None)
        for _ in range(5):
            with pytest.raises(chaos.ChaosError):
                chaos.fail_point("unit.point")

    def test_error_modes_raise_matching_exceptions(self):
        chaos.configure("a", mode="error")
        with pytest.raises(chaos.ChaosError):
            chaos.fail_point("a")
        chaos.configure("b", mode="ioerror")
        with pytest.raises(OSError):
            chaos.fail_point("b")
        chaos.configure("c", mode="reset")
        with pytest.raises(ConnectionResetError):
            chaos.fail_point("c")

    def test_latency_mode_sleeps_instead_of_raising(self):
        chaos.configure("slow", mode="latency", count=None, seconds=0.05)
        started = time.monotonic()
        chaos.fail_point("slow")
        assert time.monotonic() - started >= 0.04

    def test_key_prefix_scopes_the_fault(self):
        chaos.configure("scored", mode="error", count=None, key="abc")
        chaos.fail_point("scored", key="zzz-other")       # no match
        chaos.fail_point("scored")                        # keyless call
        with pytest.raises(chaos.ChaosError):
            chaos.fail_point("scored", key="abcdef0123")  # prefix match

    def test_custom_message(self):
        chaos.configure("msg", message="boom goes the dependency")
        with pytest.raises(chaos.ChaosError, match="boom goes"):
            chaos.fail_point("msg")

    def test_validation(self):
        with pytest.raises(ValueError):
            chaos.configure("x", mode="nope")
        with pytest.raises(ValueError):
            chaos.configure("x", count=0)
        with pytest.raises(ValueError):
            chaos.configure("x", mode="latency", seconds=-1.0)


class TestIdleContract:
    def test_unarmed_fail_point_is_a_no_op(self):
        assert not chaos.active()
        chaos.fail_point("anything", key="whatever")

    def test_reset_disarms_everything(self):
        chaos.configure("p1")
        chaos.configure("p2")
        assert chaos.active()
        chaos.reset()
        assert not chaos.active()
        chaos.fail_point("p1")
        chaos.fail_point("p2")

    def test_unrelated_point_does_not_fire(self):
        chaos.configure("only.this")
        chaos.fail_point("some.other.point")


class TestStats:
    def test_hits_vs_triggered(self):
        chaos.configure("s", mode="error", count=1, key="match")
        chaos.fail_point("s", key="nope")
        with pytest.raises(chaos.ChaosError):
            chaos.fail_point("s", key="match-123")
        info = chaos.stats()["s"]
        assert info["hits"] == 2
        assert info["triggered"] == 1
        assert info["armed"] == 1

    def test_triggered_totals_survive_reset(self):
        chaos.configure("mono")
        with pytest.raises(chaos.ChaosError):
            chaos.fail_point("mono")
        chaos.reset()
        info = chaos.stats()["mono"]
        assert info["triggered"] == 1      # monotonic for /metrics
        assert info["armed"] == 0


class TestEnvSpec:
    def test_spec_parsing(self):
        armed = chaos.install_from_env(
            "checkpoint.load:ioerror:2, gateway.score:latency:0.001;"
            "batcher.worker:error:inf")
        assert armed == 3
        with pytest.raises(OSError):
            chaos.fail_point("checkpoint.load")
        with pytest.raises(OSError):
            chaos.fail_point("checkpoint.load")
        chaos.fail_point("checkpoint.load")     # count=2 spent
        chaos.fail_point("gateway.score")       # latency: returns
        for _ in range(3):
            with pytest.raises(chaos.ChaosError):
                chaos.fail_point("batcher.worker")   # inf: never disarms

    def test_default_count_is_one(self):
        chaos.install_from_env("one.shot:error")
        with pytest.raises(chaos.ChaosError):
            chaos.fail_point("one.shot")
        chaos.fail_point("one.shot")

    def test_malformed_entry_raises(self):
        with pytest.raises(ValueError, match="bad REPRO_CHAOS entry"):
            chaos.install_from_env("justapoint")

    def test_empty_spec_arms_nothing(self):
        assert chaos.install_from_env("") == 0
        assert chaos.install_from_env(" , ; ") == 0
        assert not chaos.active()
