"""All 22 baselines: contract compliance and basic detection power."""

import numpy as np
import pytest

from repro.baselines import (
    BASELINE_REGISTRY,
    LARGE_SCALE_BASELINES,
    available_baselines,
    baseline_category,
    make_baseline,
)
from repro.detection import BaseDetector
from repro.eval import roc_auc

ALL = available_baselines()


class TestRegistry:
    def test_count_matches_paper(self):
        assert len(ALL) == 22

    def test_categories(self):
        categories = {baseline_category(m) for m in ALL}
        assert categories == {"Trad.", "MPI", "CL", "GAE", "MV"}

    def test_large_scale_subset(self):
        assert set(LARGE_SCALE_BASELINES) <= set(ALL)

    def test_unknown_raises(self):
        with pytest.raises(KeyError, match="unknown baseline"):
            make_baseline("NotAMethod")

    def test_factory_seed_and_epochs(self):
        det = make_baseline("DOMINANT", seed=3, epochs=7)
        assert det.seed == 3 and det.epochs == 7

    def test_epochs_ignored_for_non_trained(self):
        det = make_baseline("Radar", seed=1, epochs=99)
        assert isinstance(det, BaseDetector)


@pytest.mark.parametrize("name", ALL)
class TestEveryBaseline:
    def test_fit_and_scores(self, name, tiny_dataset):
        det = make_baseline(name, seed=0, epochs=4)
        det.fit(tiny_dataset.graph)
        scores = det.decision_scores()
        assert scores.shape == (tiny_dataset.graph.num_nodes,)
        assert np.all(np.isfinite(scores))
        assert scores.std() > 0  # non-constant

    def test_scores_before_fit_raises(self, name):
        with pytest.raises(RuntimeError, match="before fit"):
            make_baseline(name).decision_scores()

    def test_predict_protocols(self, name, tiny_dataset):
        det = make_baseline(name, seed=0, epochs=4)
        det.fit(tiny_dataset.graph)
        unsup = det.predict()
        leak = det.predict_with_known_count(tiny_dataset.num_anomalies)
        assert set(np.unique(unsup)) <= {0, 1}
        assert leak.sum() == tiny_dataset.num_anomalies


@pytest.mark.parametrize("name", ["GADAM", "TAM", "PREM", "DOMINANT",
                                  "AnomMAN", "GRADATE"])
def test_representative_baselines_beat_chance(name, tiny_dataset):
    """The stronger methods should be clearly better than random even
    with a tiny training budget."""
    det = make_baseline(name, seed=0, epochs=10)
    det.fit(tiny_dataset.graph)
    assert roc_auc(tiny_dataset.labels, det.decision_scores()) > 0.55


def test_deterministic_given_seed(tiny_dataset):
    a = make_baseline("DOMINANT", seed=5, epochs=4).fit(tiny_dataset.graph)
    b = make_baseline("DOMINANT", seed=5, epochs=4).fit(tiny_dataset.graph)
    np.testing.assert_allclose(a.decision_scores(), b.decision_scores())
