"""Graph substrate: RelationGraph, MultiplexGraph, normalisation invariants."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.graphs import MultiplexGraph, RelationGraph, canonical_edges, random_multiplex


class TestCanonicalEdges:
    def test_dedupes_and_orients(self):
        edges = np.array([[1, 0], [0, 1], [2, 3], [3, 2], [2, 3]])
        out = canonical_edges(edges, 5)
        np.testing.assert_array_equal(out, [[0, 1], [2, 3]])

    def test_drops_self_loops(self):
        out = canonical_edges(np.array([[1, 1], [0, 2]]), 3)
        np.testing.assert_array_equal(out, [[0, 2]])

    def test_empty(self):
        assert canonical_edges(np.empty((0, 2)), 4).shape == (0, 2)

    def test_out_of_range_raises(self):
        with pytest.raises(ValueError, match="out of range"):
            canonical_edges(np.array([[0, 9]]), 5)

    @settings(max_examples=30, deadline=None)
    @given(st.integers(2, 40), st.integers(0, 10_000))
    def test_property_canonical(self, n, seed):
        rng = np.random.default_rng(seed)
        edges = rng.integers(0, n, size=(50, 2))
        out = canonical_edges(edges, n)
        if out.size:
            assert np.all(out[:, 0] < out[:, 1])            # oriented
            keys = out[:, 0] * n + out[:, 1]
            assert len(np.unique(keys)) == len(keys)        # unique
            assert np.all(np.diff(keys) > 0)                # sorted


class TestRelationGraph:
    def test_adjacency_symmetric(self, tiny_relation):
        adj = tiny_relation.adjacency()
        assert (adj != adj.T).nnz == 0

    def test_degrees_match_adjacency(self, tiny_relation):
        np.testing.assert_array_equal(
            tiny_relation.degrees(),
            np.asarray(tiny_relation.adjacency().sum(axis=1)).ravel())

    def test_directed_pairs_double_edges(self, tiny_relation):
        src, dst = tiny_relation.directed_pairs()
        assert len(src) == 2 * tiny_relation.num_edges

    def test_degrees_memoized(self, tiny_relation):
        first = tiny_relation.degrees()
        assert tiny_relation.degrees() is first

    def test_directed_pairs_memoized(self, tiny_relation):
        assert tiny_relation.directed_pairs()[0] is \
            tiny_relation.directed_pairs()[0]

    def test_functional_updates_do_not_share_degree_cache(self, tiny_relation):
        # remove/keep/add return fresh graphs with fresh caches — the
        # original's memoized degrees must not leak into the derived graph
        tiny_relation.degrees()
        smaller = tiny_relation.remove_edges(np.array([0]))
        np.testing.assert_array_equal(
            smaller.degrees(),
            np.asarray(smaller.adjacency().sum(axis=1)).ravel())
        assert smaller.degrees().sum() == tiny_relation.degrees().sum() - 2

    def test_propagator_normalisation(self, tiny_relation):
        prop = tiny_relation.sym_propagator()
        # Symmetric normalisation: entries in [0, 1], symmetric matrix,
        # spectral radius <= 1 (checked by power iteration).
        assert prop.max() <= 1.0 + 1e-9
        assert prop.min() >= 0.0
        assert abs(prop - prop.T).max() < 1e-12
        v = np.ones(tiny_relation.num_nodes)
        for _ in range(30):
            v = prop @ v
            v /= np.linalg.norm(v) + 1e-12
        radius = float(v @ (prop @ v))
        assert radius <= 1.0 + 1e-6

    def test_propagator_cached(self, tiny_relation):
        assert tiny_relation.sym_propagator() is tiny_relation.sym_propagator()

    def test_remove_edges(self, tiny_relation):
        out = tiny_relation.remove_edges(np.array([0, 1, 2]))
        assert out.num_edges == tiny_relation.num_edges - 3

    def test_keep_edges(self, tiny_relation):
        out = tiny_relation.keep_edges(np.array([0, 3]))
        assert out.num_edges == 2

    def test_add_edges_dedupes(self, tiny_relation):
        out = tiny_relation.add_edges(tiny_relation.edges[:5])
        assert out.num_edges == tiny_relation.num_edges

    def test_immutability_of_source(self, tiny_relation):
        before = tiny_relation.num_edges
        tiny_relation.remove_edges(np.arange(3))
        assert tiny_relation.num_edges == before

    def test_neighbors(self):
        g = RelationGraph(4, np.array([[0, 1], [0, 2]]))
        np.testing.assert_array_equal(np.sort(g.neighbors(0)), [1, 2])
        assert g.neighbors(3).size == 0

    def test_empty_graph(self):
        g = RelationGraph(5, np.empty((0, 2)))
        assert g.num_edges == 0
        src, dst = g.directed_pairs()
        assert src.size == 0
        assert np.all(g.degrees() == 0)


class TestMultiplexGraph:
    def test_basic_properties(self, tiny_multiplex):
        assert tiny_multiplex.num_nodes == 40
        assert tiny_multiplex.num_features == 8
        assert tiny_multiplex.num_relations == 3
        assert len(tiny_multiplex.relation_names) == 3

    def test_node_count_validation(self, rng):
        rel = RelationGraph(5, np.array([[0, 1]]))
        with pytest.raises(ValueError, match="nodes"):
            MultiplexGraph(x=rng.normal(size=(6, 4)), relations={"r": rel})

    def test_feature_ndim_validation(self, rng):
        rel = RelationGraph(5, np.array([[0, 1]]))
        with pytest.raises(ValueError, match="2-D"):
            MultiplexGraph(x=rng.normal(size=5), relations={"r": rel})

    def test_merged_is_union(self, tiny_multiplex):
        merged = tiny_multiplex.merged()
        assert merged.num_edges <= tiny_multiplex.total_edges()
        # every relation edge must exist in the merged adjacency
        adj = merged.adjacency()
        for _, rel in tiny_multiplex:
            for u, v in rel.edges[:10]:
                assert adj[u, v] == 1

    def test_merged_cached(self, tiny_multiplex):
        assert tiny_multiplex.merged() is tiny_multiplex.merged()

    def test_with_features(self, tiny_multiplex, rng):
        new_x = rng.normal(size=(40, 8))
        out = tiny_multiplex.with_features(new_x)
        assert out is not tiny_multiplex
        np.testing.assert_allclose(out.x, new_x)
        assert out.relations == tiny_multiplex.relations

    def test_with_features_validates_rows(self, tiny_multiplex, rng):
        with pytest.raises(ValueError, match="rows"):
            tiny_multiplex.with_features(rng.normal(size=(10, 8)))

    def test_stats_keys(self, tiny_multiplex):
        stats = tiny_multiplex.stats()
        assert stats["nodes"] == 40
        assert any(k.startswith("edges[") for k in stats)

    def test_getitem(self, tiny_multiplex):
        name = tiny_multiplex.relation_names[0]
        assert tiny_multiplex[name].name == name

    def test_random_multiplex_shapes(self, rng):
        g = random_multiplex(25, 2, 6, rng)
        assert g.num_nodes == 25 and g.num_relations == 2 and g.num_features == 6
