"""Model persistence + serving subsystem (repro.serve)."""

import json

import numpy as np
import pytest

import repro.core.threshold as threshold_mod
from repro.baselines import BASELINE_REGISTRY, make_baseline
from repro.cli import main as cli_main
from repro.core import UMGAD, UMGADConfig
from repro.graphs import graph_fingerprint, random_multiplex, save_multiplex
from repro.serve import (
    FORMAT_VERSION,
    CheckpointError,
    DetectorService,
    ModelRegistry,
    ServiceError,
    load_checkpoint,
    read_header,
    run_serve_bench,
    save_checkpoint,
)
from repro.serve.checkpoint import _HEADER_KEY


@pytest.fixture(scope="module")
def checkpoint(fitted_umgad, tiny_dataset, tmp_path_factory):
    """A saved UMGAD checkpoint shared across read-only tests."""
    path = tmp_path_factory.mktemp("ckpt") / "umgad.npz"
    save_checkpoint(path, fitted_umgad, graph=tiny_dataset.graph)
    return path


class TestConfigSerialization:
    def test_round_trip(self):
        cfg = UMGADConfig(epochs=7, mask_ratio=0.3, mode="att", seed=5)
        assert UMGADConfig.from_dict(cfg.to_dict()) == cfg

    def test_unknown_keys_tolerated_unless_strict(self):
        payload = UMGADConfig().to_dict()
        payload["future_knob"] = 42
        assert UMGADConfig.from_dict(payload) == UMGADConfig()
        with pytest.raises(ValueError, match="future_knob"):
            UMGADConfig.from_dict(payload, strict=True)


class TestUMGADRoundTrip:
    def test_scores_bitwise_identical(self, fitted_umgad, checkpoint):
        loaded = load_checkpoint(checkpoint)
        assert isinstance(loaded, UMGAD)
        np.testing.assert_array_equal(loaded.decision_scores(),
                                      fitted_umgad.decision_scores())

    def test_threshold_and_importance_survive(self, fitted_umgad, checkpoint):
        loaded = load_checkpoint(checkpoint)
        orig, restored = fitted_umgad.threshold(), loaded.threshold()
        assert restored.threshold == orig.threshold
        assert restored.num_anomalies == orig.num_anomalies
        assert loaded.relation_importance == fitted_umgad.relation_importance
        assert loaded.config == fitted_umgad.config

    def test_state_dict_round_trip(self, fitted_umgad, checkpoint):
        loaded = load_checkpoint(checkpoint)
        for name, value in fitted_umgad.state_dict().items():
            np.testing.assert_array_equal(loaded.state_dict()[name], value)

    def test_score_graph_matches_across_load(self, fitted_umgad, checkpoint,
                                             tiny_dataset):
        loaded = load_checkpoint(checkpoint)
        a = fitted_umgad.score_graph(tiny_dataset.graph)
        b = loaded.score_graph(tiny_dataset.graph)
        np.testing.assert_array_equal(a, b)
        # deterministic across repeated calls too
        np.testing.assert_array_equal(b, loaded.score_graph(tiny_dataset.graph))

    def test_score_graph_validates_shape(self, fitted_umgad, rng):
        with pytest.raises(ValueError, match="features"):
            fitted_umgad.score_graph(random_multiplex(30, 3, 8, rng))
        with pytest.raises(ValueError, match="relations"):
            fitted_umgad.score_graph(random_multiplex(30, 2, 16, rng))

    def test_unfitted_model_refuses_save(self, tmp_path):
        with pytest.raises(CheckpointError, match="fit"):
            save_checkpoint(tmp_path / "x.npz", UMGAD())

    def test_detector_save_method(self, fitted_umgad, tmp_path):
        path = fitted_umgad.save(tmp_path / "via_method.npz")
        loaded = load_checkpoint(path)
        np.testing.assert_array_equal(loaded.decision_scores(),
                                      fitted_umgad.decision_scores())


class TestBaselineRoundTrips:
    @pytest.mark.parametrize("name", sorted(BASELINE_REGISTRY))
    def test_every_baseline_round_trips(self, name, tiny_dataset, tmp_path):
        det = make_baseline(name, seed=0, epochs=2).fit(tiny_dataset.graph)
        path = save_checkpoint(tmp_path / "b.npz", det,
                               graph=tiny_dataset.graph)
        loaded = load_checkpoint(path)
        assert type(loaded).__name__ == type(det).__name__
        np.testing.assert_array_equal(loaded.decision_scores(),
                                      det.decision_scores())
        assert loaded.threshold().threshold == det.threshold().threshold
        np.testing.assert_array_equal(loaded.predict(), det.predict())


class TestCheckpointErrors:
    def test_missing_file(self, tmp_path):
        with pytest.raises(CheckpointError, match="no such checkpoint"):
            load_checkpoint(tmp_path / "nope.npz")

    def test_garbage_file(self, tmp_path):
        path = tmp_path / "junk.npz"
        path.write_bytes(b"definitely not a zip archive")
        with pytest.raises(CheckpointError, match="unreadable"):
            load_checkpoint(path)

    def test_non_checkpoint_npz(self, tiny_multiplex, tmp_path):
        path = tmp_path / "graph.npz"
        save_multiplex(path, tiny_multiplex)
        with pytest.raises(CheckpointError, match="not a detector checkpoint"):
            load_checkpoint(path)

    def test_corrupted_payload(self, checkpoint, tmp_path):
        with np.load(checkpoint, allow_pickle=False) as archive:
            payload = {name: archive[name] for name in archive.files}
        scores_key = "array::_scores"
        payload[scores_key] = payload[scores_key] + 1.0  # silent tamper
        tampered = tmp_path / "tampered.npz"
        np.savez_compressed(tampered, **payload)
        with pytest.raises(CheckpointError, match="checksum mismatch"):
            load_checkpoint(tampered)

    def test_truncated_file(self, checkpoint, tmp_path):
        """A partial write/download (lost zip central directory)."""
        raw = checkpoint.read_bytes()
        truncated = tmp_path / "truncated.npz"
        truncated.write_bytes(raw[:len(raw) // 2])
        with pytest.raises(CheckpointError, match="unreadable|corrupted"):
            load_checkpoint(truncated)
        with pytest.raises(CheckpointError):
            read_header(truncated)

    def test_single_bit_flip(self, checkpoint, tmp_path):
        """One flipped bit anywhere must yield a typed error, never a
        numpy traceback — whichever layer (zip CRC, zlib stream, or the
        payload checksum) catches it first."""
        raw = bytearray(checkpoint.read_bytes())
        flips = [len(raw) // 4, len(raw) // 2, (3 * len(raw)) // 4]
        for offset in flips:
            corrupted = bytearray(raw)
            corrupted[offset] ^= 0x10
            path = tmp_path / f"bitflip-{offset}.npz"
            path.write_bytes(bytes(corrupted))
            try:
                load_checkpoint(path)
            except CheckpointError:
                continue  # the required clean, typed failure
            except Exception as exc:  # pragma: no cover - the regression
                pytest.fail(f"bit flip at {offset} leaked "
                            f"{type(exc).__name__}: {exc}")
            # A flip inside zip metadata padding can go unnoticed — fine,
            # as long as nothing untyped escaped.

    def test_payload_entry_corruption_behind_valid_header(self, checkpoint,
                                                          tmp_path):
        """Header parses, but a payload array's compressed bytes are
        damaged: the error must still be CheckpointError."""
        import zipfile as zipfile_mod

        damaged = tmp_path / "damaged.npz"
        with zipfile_mod.ZipFile(checkpoint) as src, \
                zipfile_mod.ZipFile(damaged, "w",
                                    zipfile_mod.ZIP_DEFLATED) as dst:
            for item in src.infolist():
                data = src.read(item.filename)
                if item.filename.startswith("param::"):
                    data = data[:-8]  # drop the array's trailing bytes
                dst.writestr(item, data)
        with pytest.raises(CheckpointError):
            load_checkpoint(damaged)

    def test_missing_scores_entry(self, checkpoint, tmp_path):
        """A checkpoint stripped of its stored scores is incomplete."""
        with np.load(checkpoint, allow_pickle=False) as archive:
            payload = {name: archive[name] for name in archive.files
                       if name != "array::_scores"}
        header = json.loads(str(payload[_HEADER_KEY]))
        from repro.serve.checkpoint import _payload_checksum

        arrays = {k: v for k, v in payload.items() if k != _HEADER_KEY}
        header["checksum"] = _payload_checksum(arrays)
        payload[_HEADER_KEY] = np.array(json.dumps(header))
        stripped = tmp_path / "stripped.npz"
        np.savez_compressed(stripped, **payload)
        with pytest.raises(CheckpointError, match="no stored scores"):
            load_checkpoint(stripped)

    def test_missing_scores_entry_baseline(self, tiny_dataset, tmp_path):
        """The incompleteness guard covers baselines, not just UMGAD."""
        from repro.serve.checkpoint import _payload_checksum

        det = make_baseline("Radar", seed=0).fit(tiny_dataset.graph)
        path = save_checkpoint(tmp_path / "radar.npz", det,
                               graph=tiny_dataset.graph)
        with np.load(path, allow_pickle=False) as archive:
            payload = {name: archive[name] for name in archive.files
                       if name != "array::_scores"}
        header = json.loads(str(payload[_HEADER_KEY]))
        arrays = {k: v for k, v in payload.items() if k != _HEADER_KEY}
        header["checksum"] = _payload_checksum(arrays)
        payload[_HEADER_KEY] = np.array(json.dumps(header))
        stripped = tmp_path / "radar-stripped.npz"
        np.savez_compressed(stripped, **payload)
        with pytest.raises(CheckpointError, match="no stored scores"):
            load_checkpoint(stripped)

    def test_version_mismatch(self, checkpoint, tmp_path):
        with np.load(checkpoint, allow_pickle=False) as archive:
            payload = {name: archive[name] for name in archive.files}
        header = json.loads(str(payload[_HEADER_KEY]))
        header["format_version"] = FORMAT_VERSION + 1
        payload[_HEADER_KEY] = np.array(json.dumps(header))
        future = tmp_path / "future.npz"
        np.savez_compressed(future, **payload)
        with pytest.raises(CheckpointError, match="format version"):
            load_checkpoint(future)

    def test_read_header_metadata(self, checkpoint, tiny_dataset):
        header = read_header(checkpoint)
        assert header["detector"] == "UMGAD"
        assert header["format_version"] == FORMAT_VERSION
        assert header["graph_fingerprint"] == \
            graph_fingerprint(tiny_dataset.graph)


class TestThresholdDeduplication:
    def test_predict_reuses_cached_threshold(self, fitted_umgad, monkeypatch):
        calls = {"n": 0}
        real = threshold_mod.select_threshold

        def counting(*args, **kwargs):
            calls["n"] += 1
            return real(*args, **kwargs)

        monkeypatch.setattr(threshold_mod, "select_threshold", counting)
        fitted_umgad._threshold_cache = None
        first = fitted_umgad.threshold()
        fitted_umgad.predict()
        fitted_umgad.predict()
        assert fitted_umgad.threshold() is first
        assert calls["n"] == 1

    def test_window_change_invalidates(self, fitted_umgad):
        fitted_umgad._threshold_cache = None
        default = fitted_umgad.threshold()
        windowed = fitted_umgad.threshold(window=7)
        assert windowed.window == 7
        assert windowed is not default


class TestDetectorService:
    def test_cache_hits_and_bitwise_scores(self, checkpoint, fitted_umgad,
                                           tiny_dataset):
        service = DetectorService(checkpoint, cache_size=4)
        first = service.scores(tiny_dataset.graph)
        second = service.scores(tiny_dataset.graph)
        assert first is second  # same cached array, no recompute
        np.testing.assert_array_equal(first, fitted_umgad.decision_scores())
        assert service.stats.hits == 1 and service.stats.misses == 1
        assert 0.0 < service.stats.hit_rate <= 1.0

    def test_serves_unseen_graph_via_score_graph(self, checkpoint,
                                                 fitted_umgad, rng):
        other = random_multiplex(30, 3, 16, rng)
        service = DetectorService(checkpoint)
        np.testing.assert_array_equal(service.scores(other),
                                      fitted_umgad.score_graph(other))

    def test_lru_eviction(self, checkpoint, tiny_dataset, rng):
        service = DetectorService(checkpoint, cache_size=1)
        service.scores(tiny_dataset.graph)
        service.scores(random_multiplex(30, 3, 16, rng))
        assert len(service) == 1
        assert service.stats.evictions == 1
        # original graph was evicted: next request is a miss again
        service.scores(tiny_dataset.graph)
        assert service.stats.misses == 3

    def test_node_topk_predict_and_threshold(self, checkpoint, tiny_dataset,
                                             fitted_umgad):
        service = DetectorService(checkpoint)
        graph = tiny_dataset.graph
        scores = fitted_umgad.decision_scores()
        best = int(np.argmax(scores))
        top = service.top_k(graph, 5)
        assert top[0][0] == best
        assert service.score_node(graph, best) == float(scores[best])
        assert service.threshold(graph).threshold == \
            fitted_umgad.threshold().threshold
        np.testing.assert_array_equal(service.predict(graph),
                                      fitted_umgad.predict())
        with pytest.raises(IndexError):
            service.score_node(graph, graph.num_nodes + 1)

    def test_explain(self, checkpoint, tiny_dataset):
        service = DetectorService(checkpoint)
        node, score = service.top_k(tiny_dataset.graph, 1)[0]
        explanation = service.explain(tiny_dataset.graph, node)
        assert explanation.node == node
        assert explanation.score == pytest.approx(score)

    def test_baseline_service_limits(self, tiny_dataset, tmp_path, rng):
        det = make_baseline("Radar", seed=0).fit(tiny_dataset.graph)
        path = save_checkpoint(tmp_path / "radar.npz", det,
                               graph=tiny_dataset.graph)
        service = DetectorService(path)
        np.testing.assert_array_equal(service.scores(tiny_dataset.graph),
                                      det.decision_scores())
        with pytest.raises(ServiceError, match="fitted on"):
            service.scores(random_multiplex(30, 3, 16, rng))
        with pytest.raises(ServiceError, match="UMGAD"):
            service.explain(tiny_dataset.graph, 0)

    def test_in_memory_detector(self, fitted_umgad, tiny_dataset):
        service = DetectorService(fitted_umgad)
        np.testing.assert_array_equal(service.scores(tiny_dataset.graph),
                                      fitted_umgad.decision_scores())
        assert service.stats.misses == 1

    def test_rejects_bad_cache_size(self, fitted_umgad):
        with pytest.raises(ValueError, match="cache_size"):
            DetectorService(fitted_umgad, cache_size=0)

    def test_stats_to_dict(self, fitted_umgad, tiny_dataset):
        service = DetectorService(fitted_umgad)
        service.scores(tiny_dataset.graph)
        service.scores(tiny_dataset.graph)
        payload = service.stats.to_dict()
        assert payload == {"hits": 1, "misses": 1, "evictions": 0,
                           "requests": 2, "hit_rate": 0.5,
                           "refits": 0, "refit_epochs": 0,
                           "refit_seconds": 0.0}
        json.dumps(payload)

    def test_precomputed_fingerprint_skips_rehash(self, fitted_umgad,
                                                  tiny_dataset, monkeypatch):
        import repro.serve.service as service_mod

        service = DetectorService(fitted_umgad)
        fingerprint = graph_fingerprint(tiny_dataset.graph)
        first = service.scores(tiny_dataset.graph, fingerprint=fingerprint)

        def boom(_graph):  # the whole point: no rehash when the key is known
            raise AssertionError("graph_fingerprint should not be called")

        monkeypatch.setattr(service_mod, "graph_fingerprint", boom)
        second = service.scores(tiny_dataset.graph, fingerprint=fingerprint)
        assert first is second
        assert service.stats.hits == 1

    def test_replace_detector_clears_cache(self, fitted_umgad, tiny_dataset,
                                           rng):
        other_graph = random_multiplex(30, 3, 16, rng)
        replacement = UMGAD(UMGADConfig(epochs=2, mask_repeats=1,
                                        hidden_dim=8, seed=1))
        replacement.fit(other_graph)

        service = DetectorService(fitted_umgad)
        service.scores(tiny_dataset.graph)
        assert len(service) == 1
        service.replace_detector(replacement)
        assert len(service) == 0
        assert service.trained_fingerprint == graph_fingerprint(other_graph)
        np.testing.assert_array_equal(service.scores(other_graph),
                                      replacement.decision_scores())
        with pytest.raises(TypeError, match="BaseDetector"):
            service.replace_detector("not a detector")


class TestModelRegistry:
    def test_save_load_list_delete(self, fitted_umgad, tiny_dataset, tmp_path):
        registry = ModelRegistry(tmp_path / "models")
        registry.save("retail-v1", fitted_umgad, graph=tiny_dataset.graph)
        assert "retail-v1" in registry and len(registry) == 1
        loaded = registry.load("retail-v1")
        np.testing.assert_array_equal(loaded.decision_scores(),
                                      fitted_umgad.decision_scores())
        info = registry.describe("retail-v1")
        assert info.detector == "UMGAD"
        assert info.num_nodes == tiny_dataset.graph.num_nodes
        assert "UMGAD" in info.describe()
        assert [i.name for i in registry.list_models()] == ["retail-v1"]
        registry.delete("retail-v1")
        assert len(registry) == 0

    def test_overwrite_protection(self, fitted_umgad, tmp_path):
        registry = ModelRegistry(tmp_path / "models")
        registry.save("m", fitted_umgad)
        with pytest.raises(FileExistsError, match="overwrite"):
            registry.save("m", fitted_umgad)
        registry.save("m", fitted_umgad, overwrite=True)

    def test_invalid_names_and_missing_models(self, fitted_umgad, tmp_path):
        registry = ModelRegistry(tmp_path / "models")
        with pytest.raises(ValueError, match="invalid model name"):
            registry.save("../escape", fitted_umgad)
        with pytest.raises(KeyError, match="no model"):
            registry.load("ghost")
        with pytest.raises(KeyError, match="no model"):
            registry.service("ghost")
        with pytest.raises(KeyError, match="no model"):
            registry.delete("ghost")

    def test_service_from_registry(self, fitted_umgad, tiny_dataset, tmp_path):
        registry = ModelRegistry(tmp_path / "models")
        registry.save("m", fitted_umgad, graph=tiny_dataset.graph)
        service = registry.service("m", cache_size=2)
        assert service.scores(tiny_dataset.graph).size == \
            tiny_dataset.graph.num_nodes


class TestServeBench:
    def test_warm_faster_than_cold(self, checkpoint, tiny_dataset):
        result = run_serve_bench(checkpoint, tiny_dataset.graph, requests=3,
                                 fit_seconds=1.0)
        assert result.warm_seconds <= result.cold_seconds
        assert result.warm_speedup_vs_fit > 1.0
        payload = result.to_dict()
        assert payload["warm_requests"] == 3
        assert "warm request" in result.render()
        # cache telemetry rides along: 1 cold miss + 3 warm hits
        assert payload["cache"]["misses"] == 1
        assert payload["cache"]["hits"] == 3
        assert "hit_rate" in result.render() or "cache" in result.render()

    def test_rejects_zero_requests(self, checkpoint, tiny_dataset):
        with pytest.raises(ValueError, match="requests"):
            run_serve_bench(checkpoint, tiny_dataset.graph, requests=0)


class TestServeCLI:
    def test_save_then_score_round_trip(self, tmp_path, capsys):
        model = tmp_path / "model.npz"
        assert cli_main(["save", "--dataset", "retail", "--scale", "0.12",
                         "--epochs", "2", "--out", str(model)]) == 0
        assert "saved checkpoint" in capsys.readouterr().out
        assert cli_main(["score", "--model", str(model), "--dataset",
                         "retail", "--scale", "0.12", "--top", "3"]) == 0
        out = capsys.readouterr().out
        assert "threshold" in out and "top-3 nodes" in out

    def test_detect_save_flag_and_json(self, tmp_path, capsys):
        model = tmp_path / "model.npz"
        assert cli_main(["detect", "--dataset", "retail", "--scale", "0.12",
                         "--epochs", "2", "--save", str(model),
                         "--output", "json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["checkpoint"] == str(model)
        assert len(payload["scores"]) == payload["num_nodes"]
        assert payload["threshold"]["num_anomalies"] == len(payload["flagged"])
        assert model.exists()

    def test_score_json_and_node_lookup(self, tmp_path, capsys):
        model = tmp_path / "model.npz"
        cli_main(["save", "--dataset", "retail", "--scale", "0.12",
                  "--epochs", "2", "--out", str(model)])
        capsys.readouterr()
        assert cli_main(["score", "--model", str(model), "--dataset",
                         "retail", "--scale", "0.12",
                         "--output", "json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert set(payload) >= {"scores", "threshold", "flagged", "top",
                                "relation_importance"}
        assert cli_main(["score", "--model", str(model), "--dataset",
                         "retail", "--scale", "0.12", "--node", "0",
                         "--output", "json"]) == 0
        node_payload = json.loads(capsys.readouterr().out)
        assert node_payload["node"] == 0
        assert node_payload["score"] == payload["scores"][0]

    def test_score_explain(self, tmp_path, capsys):
        model = tmp_path / "model.npz"
        cli_main(["save", "--dataset", "retail", "--scale", "0.12",
                  "--epochs", "2", "--out", str(model)])
        capsys.readouterr()
        assert cli_main(["score", "--model", str(model), "--dataset",
                         "retail", "--scale", "0.12", "--explain", "2"]) == 0
        assert "structure[" in capsys.readouterr().out
        # --explain carries into json output and --node lookups too
        assert cli_main(["score", "--model", str(model), "--dataset",
                         "retail", "--scale", "0.12", "--explain", "2",
                         "--output", "json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert len(payload["explanations"]) == 2
        assert payload["explanations"][0]["node"] == payload["top"][0]["node"]
        assert cli_main(["score", "--model", str(model), "--dataset",
                         "retail", "--scale", "0.12", "--node", "0",
                         "--explain", "1", "--output", "json"]) == 0
        node_payload = json.loads(capsys.readouterr().out)
        assert node_payload["explanation"]["node"] == 0

    def test_score_errors_are_clean(self, tmp_path, capsys):
        assert cli_main(["score", "--model", str(tmp_path / "ghost.npz"),
                         "--dataset", "retail", "--scale", "0.12"]) == 1
        assert "no such checkpoint" in capsys.readouterr().err

    def test_serve_bench_command(self, tmp_path, capsys):
        model = tmp_path / "model.npz"
        cli_main(["save", "--dataset", "retail", "--scale", "0.12",
                  "--epochs", "2", "--out", str(model)])
        capsys.readouterr()
        assert cli_main(["serve-bench", "--model", str(model), "--dataset",
                         "retail", "--scale", "0.12", "--requests", "3",
                         "--output", "json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["warm_requests"] == 3
        assert payload["warm_seconds"] > 0
        assert payload["cache"]["hits"] == 3
        assert payload["cache"]["hit_rate"] == pytest.approx(0.75)
