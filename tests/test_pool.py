"""Process-pool execution tier: shm lifecycle, parity, crash rescue.

The contracts under test (ISSUE PR 10):

* :class:`repro.pool.SharedCheckpoint` — publish/attach round-trips every
  payload array zero-copy and read-only; close/unlink leave nothing in
  ``/dev/shm``.
* :class:`repro.pool.SharedModelStore` — a hot swap retires the old
  generation but keeps its segments **attachable until the last in-flight
  reference drains**; the drain unlinks them.
* :func:`repro.pool.reclaim_stale_segments` — startup unlinks segments
  whose embedded owner pid is dead, and leaves live owners' segments
  alone.
* :class:`repro.pool.ProcessPool` — bitwise parity with the thread tier,
  SIGKILLed workers are respawned with zero requests lost and zero
  leaked segments, shutdown reports what did not die cleanly.
* Gateway integration — ``exec_tier="process"`` end to end: HTTP parity,
  ``pool_*`` metrics, deep health, activate hot-swap, automatic thread
  fallback when shm is unavailable.
"""

import os
import signal
import time

import numpy as np
import pytest

from repro.core import UMGAD, UMGADConfig
from repro.graphs import random_multiplex
from repro.graphs.io import graph_fingerprint
from repro.pool import (
    PoolUnavailable,
    ProcessPool,
    SharedCheckpoint,
    SharedMemoryError,
    SharedModelStore,
    list_segments,
    reclaim_stale_segments,
    segment_name,
    shm_available,
)
from repro.serve.checkpoint import checkpoint_payload
from repro.serve.service import DetectorService
from repro.server.batcher import MicroBatcher

pytestmark = pytest.mark.skipif(
    not shm_available(), reason="POSIX shared memory unavailable")


def _tiny_payload():
    header = {"detector": "Fake", "checksum": "n/a"}
    payload = {
        "array::a": np.arange(12, dtype=np.float64).reshape(3, 4),
        "array::b": np.array([True, False, True]),
        "array::empty": np.empty((0, 2), dtype=np.int64),
    }
    return header, payload


# ---------------------------------------------------------------------------
# SharedCheckpoint
# ---------------------------------------------------------------------------

class TestSharedCheckpoint:
    def test_publish_attach_roundtrip(self):
        header, payload = _tiny_payload()
        published = SharedCheckpoint.publish(header, payload, generation=1)
        try:
            attached = SharedCheckpoint.attach(published.manifest)
            try:
                for name, value in payload.items():
                    np.testing.assert_array_equal(attached.arrays()[name],
                                                  value)
                assert attached.generation == 1
                assert attached.header["detector"] == "Fake"
                assert attached.num_segments == len(payload)
            finally:
                attached.close()
        finally:
            published.unlink()

    def test_views_are_read_only(self):
        header, payload = _tiny_payload()
        published = SharedCheckpoint.publish(header, payload, generation=1)
        try:
            attached = SharedCheckpoint.attach(published.manifest)
            try:
                with pytest.raises(ValueError):
                    attached.arrays()["array::a"][0, 0] = 99.0
                with pytest.raises(ValueError):
                    published.arrays()["array::a"][0, 0] = 99.0
            finally:
                attached.close()
        finally:
            published.unlink()

    def test_attach_is_zero_copy(self):
        """Attached views alias the shm buffer — no private copy."""
        header, payload = _tiny_payload()
        published = SharedCheckpoint.publish(header, payload, generation=1)
        try:
            attached = SharedCheckpoint.attach(published.manifest)
            try:
                view = attached.arrays()["array::a"]
                assert view.base is not None  # borrows the segment buffer
            finally:
                attached.close()
        finally:
            published.unlink()

    def test_unlink_removes_segments(self):
        header, payload = _tiny_payload()
        published = SharedCheckpoint.publish(header, payload, generation=7)
        names = [entry["segment"]
                 for entry in published.manifest["arrays"].values()]
        assert all(name in list_segments() for name in names)
        published.unlink()
        remaining = list_segments()
        assert not any(name in remaining for name in names)

    def test_only_owner_unlinks(self):
        header, payload = _tiny_payload()
        published = SharedCheckpoint.publish(header, payload, generation=1)
        try:
            attached = SharedCheckpoint.attach(published.manifest)
            with pytest.raises(SharedMemoryError):
                attached.unlink()
            attached.close()
        finally:
            published.unlink()

    def test_attach_missing_segment_fails(self):
        manifest = {
            "prefix": "repro-pool", "pid": os.getpid(), "generation": 1,
            "header": {},
            "arrays": {"x": {"segment": segment_name(os.getpid(), 999, 0),
                             "dtype": "float64", "shape": [2]}},
        }
        with pytest.raises(SharedMemoryError):
            SharedCheckpoint.attach(manifest)

    def test_arrays_after_close_fail(self):
        header, payload = _tiny_payload()
        published = SharedCheckpoint.publish(header, payload, generation=1)
        manifest = published.manifest
        attached = SharedCheckpoint.attach(manifest)
        attached.close()
        with pytest.raises(SharedMemoryError):
            attached.arrays()
        published.unlink()


# ---------------------------------------------------------------------------
# SharedModelStore: hot-swap generation refcounting
# ---------------------------------------------------------------------------

class TestSharedModelStore:
    def test_hot_swap_keeps_old_generation_until_drained(self):
        """A mid-flight batch pins the old generation across a swap."""
        store = SharedModelStore()
        try:
            header, payload = _tiny_payload()
            store.publish(header, payload)
            old_manifest = store.manifest()
            held = store.acquire()          # an in-flight batch
            assert held == 1

            header2, payload2 = _tiny_payload()
            store.publish(header2, payload2)
            assert store.current_generation == 2
            # Old generation retired but still attachable: its segments
            # must stay readable until the in-flight reference drains.
            assert store.generations_live == 2
            attached = SharedCheckpoint.attach(old_manifest)
            np.testing.assert_array_equal(
                attached.arrays()["array::a"], payload["array::a"])
            attached.close()

            store.release(held)             # the batch drains
            assert store.generations_live == 1
            with pytest.raises(SharedMemoryError):
                SharedCheckpoint.attach(old_manifest)
        finally:
            store.close()

    def test_swap_with_no_refs_unlinks_immediately(self):
        store = SharedModelStore()
        try:
            header, payload = _tiny_payload()
            store.publish(header, payload)
            old_manifest = store.manifest()
            store.publish(*_tiny_payload())
            assert store.generations_live == 1
            with pytest.raises(SharedMemoryError):
                SharedCheckpoint.attach(old_manifest)
        finally:
            store.close()

    def test_acquire_dead_generation_fails(self):
        store = SharedModelStore()
        try:
            store.publish(*_tiny_payload())
            with pytest.raises(SharedMemoryError):
                store.acquire(42)
        finally:
            store.close()

    def test_close_unlinks_everything(self):
        store = SharedModelStore()
        store.publish(*_tiny_payload())
        names = [entry["segment"]
                 for entry in store.manifest()["arrays"].values()]
        store.close()
        remaining = list_segments()
        assert not any(name in remaining for name in names)

    def test_stats_shape(self):
        store = SharedModelStore()
        try:
            store.publish(*_tiny_payload())
            stats = store.stats()
            assert stats["generation"] == 1
            assert stats["generations_live"] == 1
            assert stats["segments"] == 3
            assert stats["bytes"] > 0
            assert stats["refs"] == 0
        finally:
            store.close()


# ---------------------------------------------------------------------------
# Stale-segment reclamation at startup
# ---------------------------------------------------------------------------

class TestReclaimStaleSegments:
    def _dead_pid(self):
        """A pid that is certainly not running (freshly exited child)."""
        pid = os.fork()
        if pid == 0:
            os._exit(0)
        os.waitpid(pid, 0)
        return pid

    def test_dead_owner_segments_reclaimed(self):
        from multiprocessing import shared_memory
        dead = self._dead_pid()
        name = segment_name(dead, 1, 0)
        segment = shared_memory.SharedMemory(name=name, create=True, size=16)
        segment.close()
        assert name in list_segments()
        reclaimed = reclaim_stale_segments()
        assert name in reclaimed
        assert name not in list_segments()

    def test_live_owner_segments_kept(self):
        header, payload = _tiny_payload()
        published = SharedCheckpoint.publish(header, payload, generation=1)
        try:
            assert reclaim_stale_segments() == []
            names = [entry["segment"]
                     for entry in published.manifest["arrays"].values()]
            assert all(name in list_segments() for name in names)
        finally:
            published.unlink()


# ---------------------------------------------------------------------------
# ProcessPool
# ---------------------------------------------------------------------------

@pytest.fixture(scope="module")
def pool_model(tiny_dataset):
    cfg = UMGADConfig(epochs=4, mask_repeats=1, hidden_dim=16, seed=0)
    return UMGAD(cfg).fit(tiny_dataset.graph)


@pytest.fixture()
def pool(pool_model):
    pool = ProcessPool(pool_model, workers=2)
    yield pool
    pool.close()


class TestProcessPool:
    def test_bitwise_parity_with_thread_tier(self, pool, pool_model,
                                             tiny_dataset):
        service = DetectorService(pool_model, cache_size=8)
        rng = np.random.default_rng(3)
        fresh = random_multiplex(40, 3, 16, rng, avg_degree=4.0)
        for graph in (tiny_dataset.graph, fresh):
            fingerprint = graph_fingerprint(graph)
            expected = service.scores(graph, fingerprint)
            got = pool.score(graph, fingerprint)
            assert got.dtype == expected.dtype
            np.testing.assert_array_equal(got, expected)  # bitwise

    def test_sigkill_worker_respawns_and_serves(self, pool, pool_model,
                                                tiny_dataset):
        graph = tiny_dataset.graph
        fingerprint = graph_fingerprint(graph)
        expected = pool.score(graph, fingerprint)
        before = {info["worker"]: info["pid"]
                  for info in pool.worker_infos()}
        for info in pool.worker_infos():
            os.kill(info["pid"], signal.SIGKILL)
        # The dispatch path (or the watchdog) must respawn and answer.
        got = pool.score(graph, fingerprint)
        np.testing.assert_array_equal(got, expected)
        deadline = time.monotonic() + 10.0
        while time.monotonic() < deadline:
            infos = pool.worker_infos()
            if all(info["alive"] for info in infos):
                break
            time.sleep(0.05)
        infos = {info["worker"]: info for info in pool.worker_infos()}
        assert all(info["alive"] for info in infos.values())
        assert all(infos[wid]["pid"] != pid for wid, pid in before.items())
        assert pool.stats()["worker_deaths"] >= 2

    def test_sigkill_leaks_no_segments(self, pool_model, tiny_dataset):
        pool = ProcessPool(pool_model, workers=2)
        mine = f"-{os.getpid()}-"
        try:
            os.kill(pool.worker_infos()[0]["pid"], signal.SIGKILL)
            time.sleep(0.1)
        finally:
            report = pool.close()
        assert report["leaked_segments"] == []
        assert not any(mine in name for name in list_segments())

    def test_hot_swap_changes_scores(self, pool, tiny_dataset):
        graph = tiny_dataset.graph
        fingerprint = graph_fingerprint(graph)
        baseline = pool.score(graph, fingerprint)
        replacement = UMGAD(UMGADConfig(epochs=2, mask_repeats=1,
                                        hidden_dim=16, seed=9)
                            ).fit(graph)
        generation = pool.publish_detector(replacement)
        assert generation == 2
        assert all(info["generation"] == 2
                   for info in pool.worker_infos())
        swapped = pool.score(graph, fingerprint)
        expected = DetectorService(replacement, cache_size=8).scores(
            graph, fingerprint)
        np.testing.assert_array_equal(swapped, expected)
        assert not np.array_equal(swapped, baseline)

    def test_worker_error_rebuilt_typed(self, pool):
        # A graph whose feature width disagrees with the model must come
        # back as the same exception type the thread tier raises.
        rng = np.random.default_rng(0)
        bad = random_multiplex(10, 3, 4, rng, avg_degree=2.0)
        with pytest.raises(ValueError):
            pool.score(bad, graph_fingerprint(bad))
        # and the pool still serves afterwards
        assert pool.stats()["workers_alive"] == 2

    def test_close_reports_and_is_idempotent(self, pool_model):
        pool = ProcessPool(pool_model, workers=1)
        report = pool.close()
        assert report["workers_stopped"] == 1
        assert report["workers_killed"] == 0
        assert report["leaked_segments"] == []
        again = pool.close()
        assert again["workers_stopped"] == 0
        with pytest.raises(PoolUnavailable):
            pool.score(None, "x")

    def test_dispatch_chaos_point(self, pool, tiny_dataset):
        from repro import chaos
        graph = tiny_dataset.graph
        fingerprint = graph_fingerprint(graph)
        chaos.configure("pool.dispatch", "error", count=1, key=fingerprint)
        try:
            with pytest.raises(chaos.ChaosError):
                pool.score(graph, fingerprint)
            # one-shot fault: the next dispatch succeeds
            assert pool.score(graph, fingerprint) is not None
        finally:
            chaos.reset()


# ---------------------------------------------------------------------------
# MicroBatcher executor plumbing + close report
# ---------------------------------------------------------------------------

class TestBatcherExecutor:
    def test_cold_groups_dispatch_to_executor(self, pool_model,
                                              tiny_dataset):
        class Recorder:
            def __init__(self, service):
                self.service = service
                self.calls = []

            def score(self, graph, fingerprint):
                self.calls.append(fingerprint)
                return self.service.scores(graph, fingerprint)

        service = DetectorService(pool_model, cache_size=8)
        shadow = DetectorService(pool_model, cache_size=8)
        recorder = Recorder(shadow)
        batcher = MicroBatcher(service, workers=1, executor=recorder)
        try:
            rng = np.random.default_rng(5)
            graph = random_multiplex(40, 3, 16, rng, avg_degree=4.0)
            fingerprint = graph_fingerprint(graph)
            scores = batcher.submit(graph, fingerprint).result(timeout=60)
            assert recorder.calls == [fingerprint]
            # the leader seeded its own cache: a warm re-submit answers
            # in-process without another executor dispatch
            again = batcher.submit(graph, fingerprint).result(timeout=60)
            assert recorder.calls == [fingerprint]
            np.testing.assert_array_equal(scores, again)
        finally:
            batcher.close()

    def test_close_returns_report(self, pool_model):
        service = DetectorService(pool_model, cache_size=2)
        batcher = MicroBatcher(service, workers=2)
        report = batcher.close()
        assert report == {"workers_joined": 2, "leaked_workers": [],
                          "pending_at_close": 0}
        assert batcher.close() == report  # idempotent, same report


# ---------------------------------------------------------------------------
# Gateway integration (HTTP end to end)
# ---------------------------------------------------------------------------

class TestGatewayProcessTier:
    @pytest.fixture()
    def gateway(self, pool_model):
        from repro.server import Gateway
        service = DetectorService(pool_model, cache_size=8)
        gateway = Gateway(service, exec_tier="process", worker_procs=2,
                          sample_interval=60.0)
        yield gateway
        gateway.close()

    def test_http_score_parity_and_telemetry(self, gateway, pool_model):
        from repro.server.app import ServerThread
        from repro.server.client import ServerClient

        assert gateway.exec_tier == "process"
        reference = DetectorService(pool_model, cache_size=8)
        rng = np.random.default_rng(11)
        graph = random_multiplex(40, 3, 16, rng, avg_degree=4.0)
        expected = reference.scores(graph, graph_fingerprint(graph))
        with ServerThread(gateway) as server:
            client = ServerClient(port=server.port)
            response = client.score(graph=graph)
            np.testing.assert_allclose(np.asarray(response["scores"]),
                                       expected, rtol=0, atol=0)
            health = client.healthz(deep=True)
            assert health["exec_tier"] == "process"
            pool_health = health["components"]["pool"]
            assert pool_health["workers_alive"] == 2
            assert pool_health["shm_bytes"] > 0
            metrics = client.metrics()
            for family in ("repro_pool_workers_alive",
                           "repro_pool_dispatches_total",
                           "repro_pool_shm_bytes",
                           "repro_pool_worker_resident_memory_bytes"):
                assert family in metrics
            report = server.stop()
        assert report["pool"]["leaked_segments"] == []
        assert report["batcher"]["leaked_workers"] == []

    def test_activate_bumps_pool_generation(self, pool_model, tiny_dataset,
                                            tmp_path):
        from repro.serve.registry import ModelRegistry
        from repro.server import Gateway

        registry = ModelRegistry(tmp_path)
        registry.save("first", pool_model)
        replacement = UMGAD(UMGADConfig(epochs=2, mask_repeats=1,
                                        hidden_dim=16, seed=9)
                            ).fit(tiny_dataset.graph)
        registry.save("second", replacement)
        service = DetectorService(pool_model, cache_size=8)
        gateway = Gateway(service, registry=registry, active_model="first",
                          exec_tier="process", worker_procs=1,
                          sample_interval=60.0)
        try:
            response = gateway.activate("second")
            assert response["pool_generation"] == 2
            graph = tiny_dataset.graph
            fingerprint = graph_fingerprint(graph)
            expected = DetectorService(replacement, cache_size=8).scores(
                graph, fingerprint)
            got = gateway.pool.score(graph, fingerprint)
            np.testing.assert_array_equal(got, expected)
        finally:
            gateway.close()

    def test_fallback_to_threads_when_shm_unavailable(self, pool_model,
                                                      monkeypatch):
        import repro.pool.executor as executor_module
        from repro.server import Gateway

        monkeypatch.setattr(executor_module, "shm_available", lambda: False)
        service = DetectorService(pool_model, cache_size=8)
        gateway = Gateway(service, exec_tier="process", worker_procs=2,
                          sample_interval=60.0)
        try:
            assert gateway.exec_tier == "thread"
            assert gateway.pool is None
            assert "shared memory" in gateway.pool_fallback_reason
            health = gateway.health(deep=True)
            assert health["exec_tier"] == "thread"
            assert health["components"]["pool"]["fallback"] == "thread"
        finally:
            gateway.close()

    def test_invalid_exec_tier_rejected(self, pool_model):
        from repro.server import Gateway
        service = DetectorService(pool_model, cache_size=8)
        with pytest.raises(ValueError):
            Gateway(service, exec_tier="fiber")


# ---------------------------------------------------------------------------
# CLI surface
# ---------------------------------------------------------------------------

class TestServeCliFlags:
    def _parse(self, *argv):
        from repro.cli import _build_parser
        return _build_parser().parse_args(list(argv))

    def test_worker_threads_flag(self):
        args = self._parse("serve", "--model", "m.npz",
                           "--worker-threads", "5")
        assert args.workers == 5

    def test_workers_alias_still_accepted(self):
        args = self._parse("serve", "--model", "m.npz", "--workers", "3")
        assert args.workers == 3

    def test_exec_tier_and_procs(self):
        args = self._parse("serve", "--model", "m.npz",
                           "--exec-tier", "process", "--worker-procs", "4")
        assert args.exec_tier == "process"
        assert args.worker_procs == 4

    def test_defaults(self):
        args = self._parse("serve", "--model", "m.npz")
        assert args.exec_tier == "thread"
        assert args.worker_procs == 2
        assert args.workers == 2

    def test_help_mentions_deprecated_alias(self):
        from repro.cli import _build_parser
        parser = _build_parser()
        serve = parser._subparsers._group_actions[0].choices["serve"]
        help_text = " ".join(serve.format_help().split())
        assert "--worker-threads" in help_text
        assert "deprecated alias" in help_text
        assert "--exec-tier" in help_text
