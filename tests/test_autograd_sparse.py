"""spmm: sparse-dense product correctness and gradients."""

import numpy as np
import pytest
import scipy.sparse as sp

from repro.autograd import Tensor, check_gradients, ops, spmm


@pytest.fixture
def sparse_mat():
    return sp.random(6, 6, density=0.4, random_state=1, format="csr")


class TestSpmm:
    def test_value_matches_dense(self, sparse_mat):
        x = np.random.default_rng(0).normal(size=(6, 3))
        out = spmm(sparse_mat, Tensor(x))
        np.testing.assert_allclose(out.data, sparse_mat.toarray() @ x)

    def test_gradient(self, sparse_mat):
        x = np.random.default_rng(1).normal(size=(6, 3))
        check_gradients(lambda t: spmm(sparse_mat, t), [x])

    def test_rectangular(self):
        m = sp.random(4, 7, density=0.5, random_state=2, format="csr")
        x = np.random.default_rng(2).normal(size=(7, 2))
        out = spmm(m, Tensor(x))
        assert out.shape == (4, 2)
        check_gradients(lambda t: spmm(m, t), [x])

    def test_rejects_dense_matrix(self):
        with pytest.raises(TypeError, match="sparse"):
            spmm(np.eye(3), Tensor(np.ones((3, 2))))

    def test_constant_input_no_graph(self, sparse_mat):
        out = spmm(sparse_mat, Tensor(np.ones((6, 2))))
        assert not out.requires_grad

    def test_chained_through_graph(self, sparse_mat):
        x = Tensor(np.random.default_rng(3).normal(size=(6, 3)), requires_grad=True)
        out = ops.sum(ops.relu(spmm(sparse_mat, x)))
        out.backward()
        assert x.grad is not None
        assert x.grad.shape == (6, 3)
