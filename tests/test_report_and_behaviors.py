"""Report driver + targeted per-mechanism behavioural tests."""

import numpy as np
import pytest

from repro.baselines import make_baseline
from repro.eval import roc_auc
from repro.experiments import ExperimentProfile, clear_dataset_cache, report
from repro.graphs import MultiplexGraph, RelationGraph
from repro.utils.rng import ensure_rng


MICRO = ExperimentProfile(
    name="micro", dataset_scale=0.12, large_scale=0.1, seeds=(0,),
    umgad_epochs=2, baseline_epochs=2, num_features=10, data_seed=5,
)


@pytest.fixture(autouse=True, scope="module")
def _fresh_cache():
    clear_dataset_cache()
    yield
    clear_dataset_cache()


class TestReport:
    def test_single_section(self):
        text = report.generate(MICRO, sections=["dataset statistics"])
        assert "# UMGAD reproduction report" in text
        assert "Table I" in text
        assert "Table II" not in text

    def test_multiple_sections(self):
        text = report.generate(MICRO, sections=["Fig. 4", "Fig. 5"])
        assert "Fig. 4" in text and "Fig. 5" in text

    def test_cli_entrypoint_writes_file(self, tmp_path):
        out = tmp_path / "report.md"
        code = report.main(["--profile", "fast", "--out", str(out),
                            "--only", "Table I"])
        assert code == 0
        assert "Table I" in out.read_text()


def _two_community_graph(n=120, f=12, seed=0):
    """Clean homophilous two-relation graph for behaviour probes."""
    rng = ensure_rng(seed)
    community = rng.integers(0, 2, size=n)
    centroids = rng.normal(size=(2, f)) * 2.0
    x = centroids[community] + rng.normal(0, 0.3, (n, f))

    def edges(count):
        a = rng.integers(0, n, size=count * 3)
        b = rng.integers(0, n, size=count * 3)
        keep = community[a] == community[b]
        return np.stack([a[keep][:count], b[keep][:count]], axis=1)

    relations = {"r0": RelationGraph(n, edges(300)),
                 "r1": RelationGraph(n, edges(200))}
    return MultiplexGraph(x=x, relations=relations), community, rng


class TestMechanismBehaviours:
    """Each family's core mechanism fires on its target anomaly type."""

    def test_attribute_methods_catch_feature_outliers(self):
        graph, _, rng = _two_community_graph()
        x = graph.x.copy()
        outliers = np.array([3, 40, 77, 101])
        x[outliers] = rng.normal(0, 5.0, (outliers.size, x.shape[1]))
        graph = graph.with_features(x)
        labels = np.zeros(graph.num_nodes, dtype=int)
        labels[outliers] = 1
        for name in ("GADAM", "Radar"):
            det = make_baseline(name, seed=0, epochs=10).fit(graph)
            auc = roc_auc(labels, det.decision_scores())
            assert auc > 0.8, f"{name} missed blatant feature outliers ({auc})"

    def test_structure_methods_catch_cliques(self):
        graph, _, rng = _two_community_graph()
        clique = np.array([5, 30, 60, 90, 110])
        iu, iv = np.triu_indices(clique.size, k=1)
        new_r0 = graph["r0"].add_edges(np.stack([clique[iu], clique[iv]], axis=1))
        graph = graph.with_relations({"r0": new_r0, "r1": graph["r1"]})
        labels = np.zeros(graph.num_nodes, dtype=int)
        labels[clique] = 1
        det = make_baseline("ARISE", seed=0, epochs=10).fit(graph)
        auc = roc_auc(labels, det.decision_scores())
        assert auc > 0.7, f"ARISE missed a planted clique ({auc})"

    def test_tam_truncates_heterophilous_edges(self):
        graph, community, rng = _two_community_graph()
        # a node wired across communities with mismatched features
        victim = 0
        other = np.flatnonzero(community != community[victim])[:8]
        new_r0 = graph["r0"].add_edges(
            np.stack([np.full(8, victim), other], axis=1))
        graph = graph.with_relations({"r0": new_r0, "r1": graph["r1"]})
        det = make_baseline("TAM", seed=0).fit(graph)
        scores = det.decision_scores()
        assert scores[victim] > np.median(scores)

    def test_multiview_methods_use_all_relations(self):
        graph, community, rng = _two_community_graph()
        det = make_baseline("AnomMAN", seed=0, epochs=6).fit(graph)
        assert det.decision_scores().shape == (graph.num_nodes,)
