"""Performance ledger + noise-aware regression detection (repro.obs.bench).

The detector's contract, exercised on a synthetic corpus:

* injected 1.5x / 2x slowdowns on low-noise benchmarks are flagged as
  regressions (and named);
* pure re-measurement noise is NEVER flagged, across many seeds — the
  MAD-interval condition is what separates the two;
* benchmarks present in only one ledger are informational, not failures;
* ledgers round-trip through JSON unchanged;
* the ``repro bench`` CLI gates: diff exits non-zero on regression, zero
  on clean.
"""

import json

import numpy as np
import pytest

from repro.cli import main as cli_main
from repro.obs.bench import (
    BenchmarkRecord,
    Ledger,
    compare_records,
    diff_ledgers,
    environment_fingerprint,
    load_ledgers,
    render_diff,
    render_report,
)
from repro.utils import TimingResult, measure_repeated, median_mad


def _noisy_values(rng, center, noise=0.02, reps=7):
    """One benchmark measurement: ``reps`` samples around ``center``.

    Multiplicative noise (relative jitter), floored away from zero —
    the shape real timer repetitions have.
    """
    values = center * (1.0 + noise * rng.standard_normal(reps))
    return tuple(float(max(v, 1e-9)) for v in values)


def _ledger(rng, centers, noise=0.02, suite="synthetic"):
    book = Ledger(suite=suite)
    for name, center in centers.items():
        book.add(BenchmarkRecord(
            name=name, values=_noisy_values(rng, center, noise)))
    return book


BASE_CENTERS = {"alpha": 0.010, "beta": 0.100, "gamma": 1.000}


class TestRegressionDetector:
    def test_injected_slowdowns_are_flagged(self):
        rng = np.random.default_rng(0)
        base = _ledger(rng, BASE_CENTERS)
        slowed = dict(BASE_CENTERS)
        slowed["alpha"] *= 2.0          # the injected 2x slowdown
        slowed["beta"] *= 1.5
        new = _ledger(rng, slowed)
        diff = diff_ledgers(base, new)
        flagged = {c.name for c in diff.regressions}
        assert flagged == {"alpha", "beta"}
        assert not diff.clean
        # the 2x benchmark is named with its ratio in the rendered diff
        text = render_diff(diff)
        assert "! alpha: regression" in text
        assert "x2." in text

    @pytest.mark.parametrize("seed", range(20))
    def test_pure_noise_is_never_flagged(self, seed):
        rng = np.random.default_rng(seed)
        base = _ledger(rng, BASE_CENTERS, noise=0.05)
        new = _ledger(rng, BASE_CENTERS, noise=0.05)
        diff = diff_ledgers(base, new)
        assert diff.clean, [c.describe() for c in diff.regressions]
        assert not diff.improvements

    def test_large_shift_with_wide_noise_is_noise_not_regression(self):
        # median doubled, but the intervals overlap: the measurements
        # cannot distinguish the runs, so the verdict must stay "noise"
        base = BenchmarkRecord(name="t", values=(0.10, 0.05, 0.30, 0.08))
        new = BenchmarkRecord(name="t", values=(0.20, 0.10, 0.60, 0.16))
        comparison = compare_records(base, new)
        assert comparison.verdict == "noise"

    def test_clean_improvement_is_flagged_symmetrically(self):
        rng = np.random.default_rng(1)
        base = _ledger(rng, {"alpha": 0.100})
        new = _ledger(rng, {"alpha": 0.050})
        diff = diff_ledgers(base, new)
        assert diff.clean
        assert [c.name for c in diff.improvements] == ["alpha"]

    def test_added_and_removed_keys_are_informational(self):
        rng = np.random.default_rng(2)
        base = _ledger(rng, {"alpha": 0.01, "old": 0.02})
        new = _ledger(rng, {"alpha": 0.01, "fresh": 0.02})
        diff = diff_ledgers(base, new)
        assert diff.added == ["fresh"]
        assert diff.removed == ["old"]
        assert diff.clean                     # never a failure
        text = render_diff(diff)
        assert "A fresh: added" in text
        assert "R old: removed" in text

    def test_zero_baseline_regression(self):
        base = BenchmarkRecord(name="t", values=(0.0, 0.0))
        new = BenchmarkRecord(name="t", values=(0.5, 0.5))
        assert compare_records(base, new).verdict == "regression"


class TestLedgerRoundTrip:
    def test_save_load_round_trip(self, tmp_path):
        rng = np.random.default_rng(3)
        book = _ledger(rng, BASE_CENTERS)
        book.benchmarks["alpha"] = BenchmarkRecord(
            name="alpha", values=book.benchmarks["alpha"].values,
            peak_rss_bytes=123456, meta={"reps_note": "warm"})
        path = book.save(tmp_path)
        assert path.name == "synthetic.json"
        loaded = Ledger.load(path)
        assert loaded.suite == book.suite
        assert loaded.benchmarks.keys() == book.benchmarks.keys()
        assert loaded.benchmarks["alpha"] == book.benchmarks["alpha"]
        assert loaded.environment == book.environment

    def test_schema_mismatch_rejected(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text(json.dumps({"schema": 99, "suite": "bad"}))
        with pytest.raises(ValueError, match="schema"):
            Ledger.load(path)

    def test_environment_fingerprint_fields(self):
        env = environment_fingerprint()
        assert set(env) == {"python", "numpy", "platform", "machine",
                            "cpu_count", "dtype"}
        assert env["dtype"] == "float64"

    def test_record_timing_and_report(self):
        timing = measure_repeated(lambda: None, reps=3, warmup=1,
                                  name="noop")
        book = Ledger(suite="s")
        record = book.record_timing(timing, peak_rss_bytes=1024, tag="x")
        assert record.meta == {"tag": "x", "warmup": 1}
        report = render_report([book])
        assert "suite s" in report and "noop" in report

    def test_empty_values_rejected(self):
        with pytest.raises(ValueError, match="no values"):
            BenchmarkRecord(name="t", values=())

    def test_load_ledgers_missing_dir(self, tmp_path):
        assert load_ledgers(tmp_path / "nope") == {}

    def test_median_mad(self):
        assert median_mad([3.0, 1.0, 2.0]) == (2.0, 1.0)
        assert median_mad([5.0]) == (5.0, 0.0)
        with pytest.raises(ValueError):
            median_mad([])


def _write_suite(directory, centers, rng, suite="smoke"):
    _ledger(rng, centers, suite=suite).save(directory)


class TestBenchCLI:
    def test_diff_flags_injected_regression(self, tmp_path, capsys):
        rng = np.random.default_rng(4)
        base_dir, new_dir = tmp_path / "base", tmp_path / "new"
        _write_suite(base_dir, BASE_CENTERS, rng)
        slowed = dict(BASE_CENTERS, alpha=BASE_CENTERS["alpha"] * 2.0)
        _write_suite(new_dir, slowed, rng)
        code = cli_main(["bench", "diff", str(base_dir), str(new_dir)])
        out = capsys.readouterr().out
        assert code == 1
        assert "alpha: regression" in out     # the regression is named
        assert "FAIL" in out

    def test_diff_clean_back_to_back(self, tmp_path, capsys):
        rng = np.random.default_rng(5)
        base_dir, new_dir = tmp_path / "base", tmp_path / "new"
        _write_suite(base_dir, BASE_CENTERS, rng)
        _write_suite(new_dir, BASE_CENTERS, rng)
        code = cli_main(["bench", "diff", str(base_dir), str(new_dir)])
        out = capsys.readouterr().out
        assert code == 0
        assert "ok: no regressions" in out

    def test_diff_accepts_single_files(self, tmp_path, capsys):
        rng = np.random.default_rng(6)
        base = _ledger(rng, {"a": 0.01}).save(tmp_path / "base")
        new = _ledger(rng, {"a": 0.01}).save(tmp_path / "new")
        assert cli_main(["bench", "diff", str(base), str(new)]) == 0
        capsys.readouterr()

    def test_diff_missing_path_errors(self, tmp_path, capsys):
        rng = np.random.default_rng(7)
        base = _ledger(rng, {"a": 0.01}).save(tmp_path)
        code = cli_main(["bench", "diff", str(base),
                         str(tmp_path / "missing")])
        assert code == 1
        assert "no such ledger" in capsys.readouterr().err

    def test_report_renders_saved_ledgers(self, tmp_path, capsys):
        rng = np.random.default_rng(8)
        _write_suite(tmp_path, BASE_CENTERS, rng, suite="alpha_suite")
        code = cli_main(["bench", "report", "--ledger-dir", str(tmp_path)])
        out = capsys.readouterr().out
        assert code == 0
        assert "suite alpha_suite" in out
        assert "gamma" in out

    def test_report_filters_by_suite(self, tmp_path, capsys):
        rng = np.random.default_rng(9)
        _write_suite(tmp_path, {"a": 0.01}, rng, suite="one")
        _write_suite(tmp_path, {"b": 0.01}, rng, suite="two")
        code = cli_main(["bench", "report", "one",
                         "--ledger-dir", str(tmp_path)])
        out = capsys.readouterr().out
        assert code == 0
        assert "suite one" in out and "suite two" not in out
