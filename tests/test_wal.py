"""Crash-safe streaming: WAL framing, corruption corpus, snapshots, recovery.

The contract under test (repro.stream.wal): every append that returned is
replayable; a torn tail — the one damage shape a crash can legitimately
produce — is tolerated and truncated; every OTHER damage shape raises
:class:`WalCorruptionError` naming the file and byte offset; and a
recovered builder's incrementally-maintained fingerprint is
bitwise-identical to the uninterrupted run's.
"""

import json
import struct
import zlib

import numpy as np
import pytest

from repro.detection import BaseDetector
from repro.graphs import graph_fingerprint, random_multiplex
from repro.serve import DetectorService
from repro.stream import (
    IncrementalGraphBuilder,
    StreamMonitor,
    WalCorruptionError,
    WriteAheadLog,
    load_latest_snapshot,
    recover_builder,
    save_snapshot,
    snapshot_meta,
    synthesize_stream,
    verify_parity,
)

_HEADER_BYTES = 16          # magic(8) + base_seq(u64)
_FRAME = struct.Struct("<II")


class _NormDetector(BaseDetector):
    def fit(self, graph):
        self._graph = graph
        self._scores = np.linalg.norm(graph.x, axis=1)
        return self

    def score_graph(self, graph):
        return np.linalg.norm(graph.x, axis=1)


def _monitor(graph, wal=None, **kwargs):
    service = DetectorService(_NormDetector().fit(graph))
    builder = IncrementalGraphBuilder.from_graph(graph)
    defaults = dict(window=20, top_k=5)
    defaults.update(kwargs)
    return StreamMonitor(service, builder, wal=wal, **defaults)


def _fill(wal, n, start=0):
    for i in range(start, start + n):
        wal.append("events", {"events": [], "i": i})


# ---------------------------------------------------------------------------
# Framing + rotation
# ---------------------------------------------------------------------------

class TestFraming:
    def test_append_replay_round_trip(self, tmp_path):
        with WriteAheadLog(tmp_path, fsync=False) as wal:
            assert wal.append("events", {"events": [{"op": "x"}]}) == 1
            assert wal.append("window", {"fingerprint": "f"}) == 2
            records = list(wal.replay())
            assert [r["seq"] for r in records] == [1, 2]
            assert records[0]["kind"] == "events"
            assert records[1]["fingerprint"] == "f"

    def test_replay_after_seq_skips_covered_prefix(self, tmp_path):
        with WriteAheadLog(tmp_path, fsync=False) as wal:
            _fill(wal, 5)
            assert [r["seq"] for r in wal.replay(after_seq=3)] == [4, 5]

    def test_reopen_resumes_sequence(self, tmp_path):
        with WriteAheadLog(tmp_path, fsync=False) as wal:
            _fill(wal, 3)
        with WriteAheadLog(tmp_path, fsync=False) as wal:
            assert wal.last_seq == 3
            assert wal.append("events", {"events": []}) == 4

    def test_rotation_and_cross_segment_replay(self, tmp_path):
        with WriteAheadLog(tmp_path, segment_bytes=1024,
                           fsync=False) as wal:
            _fill(wal, 40)
            segments = sorted(tmp_path.glob("wal-*.seg"))
            assert len(segments) > 1
            assert [r["seq"] for r in wal.replay()] == list(range(1, 41))
        # reopen re-validates the whole chain
        with WriteAheadLog(tmp_path, segment_bytes=1024,
                           fsync=False) as wal:
            assert wal.last_seq == 40

    def test_prune_keeps_active_segment(self, tmp_path):
        with WriteAheadLog(tmp_path, segment_bytes=1024,
                           fsync=False) as wal:
            _fill(wal, 40)
            before = len(sorted(tmp_path.glob("wal-*.seg")))
            removed = wal.prune(wal.last_seq)
            assert removed == before - 1
            assert len(sorted(tmp_path.glob("wal-*.seg"))) == 1
            # sequence numbering survives pruning everything
            assert wal.append("events", {"events": []}) == 41
        with WriteAheadLog(tmp_path, segment_bytes=1024,
                           fsync=False) as wal:
            assert wal.last_seq == 41

    def test_closed_wal_refuses_appends(self, tmp_path):
        wal = WriteAheadLog(tmp_path, fsync=False)
        wal.close()
        with pytest.raises(RuntimeError, match="closed"):
            wal.append("events", {})

    def test_segment_bytes_validation(self, tmp_path):
        with pytest.raises(ValueError):
            WriteAheadLog(tmp_path, segment_bytes=10)


# ---------------------------------------------------------------------------
# Corruption corpus
# ---------------------------------------------------------------------------

class TestCorruptionCorpus:
    def _one_segment(self, tmp_path, n=6):
        with WriteAheadLog(tmp_path, fsync=False) as wal:
            _fill(wal, n)
        return sorted(tmp_path.glob("wal-*.seg"))[-1]

    def test_torn_tail_truncated_and_recovered(self, tmp_path):
        seg = self._one_segment(tmp_path)
        pristine = seg.read_bytes()
        seg.write_bytes(pristine[:-7])       # cut the last record short
        wal = WriteAheadLog(tmp_path, fsync=False)
        assert wal.stats.torn_tail_truncated == 1
        assert wal.last_seq == 5             # record 6 was torn away
        assert [r["seq"] for r in wal.replay()] == [1, 2, 3, 4, 5]
        assert wal.append("events", {"events": []}) == 6
        wal.close()

    def test_trailing_garbage_is_a_torn_tail(self, tmp_path):
        seg = self._one_segment(tmp_path)
        with open(seg, "ab") as handle:
            handle.write(b"\xde\xad\xbe\xef" * 3)
        wal = WriteAheadLog(tmp_path, fsync=False)
        assert wal.last_seq == 6
        assert wal.stats.torn_tail_truncated == 1
        wal.close()

    def test_bit_flipped_crc_names_offset(self, tmp_path):
        seg = self._one_segment(tmp_path)
        data = bytearray(seg.read_bytes())
        # flip one payload byte of the FIRST record; intact records follow,
        # so this cannot be mistaken for a torn tail
        data[_HEADER_BYTES + _FRAME.size + 2] ^= 0x40
        seg.write_bytes(bytes(data))
        with pytest.raises(WalCorruptionError) as err:
            WriteAheadLog(tmp_path, fsync=False)
        assert "CRC mismatch" in str(err.value)
        assert err.value.path == str(seg)
        assert err.value.offset == _HEADER_BYTES

    def test_bad_magic(self, tmp_path):
        seg = self._one_segment(tmp_path)
        data = bytearray(seg.read_bytes())
        data[0] ^= 0xFF
        seg.write_bytes(bytes(data))
        with pytest.raises(WalCorruptionError, match="magic"):
            WriteAheadLog(tmp_path, fsync=False)

    def test_duplicate_segment_detected(self, tmp_path):
        with WriteAheadLog(tmp_path, segment_bytes=1024,
                           fsync=False) as wal:
            _fill(wal, 40)
        segments = sorted(tmp_path.glob("wal-*.seg"))
        assert len(segments) >= 2
        # operator error: a record-bearing segment copied to the tail —
        # its base_seq cannot chain from the real last segment
        clone = tmp_path / "wal-00000099.seg"
        clone.write_bytes(segments[0].read_bytes())
        with pytest.raises(WalCorruptionError, match="does not continue"):
            WriteAheadLog(tmp_path, fsync=False)

    def test_empty_final_segment_is_clean(self, tmp_path):
        self._one_segment(tmp_path)
        (tmp_path / "wal-00000002.seg").write_bytes(b"")
        wal = WriteAheadLog(tmp_path, fsync=False)
        assert wal.last_seq == 6
        assert wal.append("events", {"events": []}) == 7
        wal.close()

    def test_empty_file_alone_is_a_fresh_log(self, tmp_path):
        (tmp_path / "wal-00000001.seg").write_bytes(b"")
        wal = WriteAheadLog(tmp_path, fsync=False)
        assert wal.last_seq == 0
        assert wal.append("events", {"events": []}) == 1
        wal.close()

    def test_short_non_final_segment_is_corruption(self, tmp_path):
        with WriteAheadLog(tmp_path, segment_bytes=1024,
                           fsync=False) as wal:
            _fill(wal, 40)
        segments = sorted(tmp_path.glob("wal-*.seg"))
        truncated = segments[0].read_bytes()[:_HEADER_BYTES + 5]
        segments[0].write_bytes(truncated)
        with pytest.raises(WalCorruptionError):
            WriteAheadLog(tmp_path, fsync=False)

    def test_sequence_break_detected(self, tmp_path):
        seg = self._one_segment(tmp_path, n=2)
        # hand-craft a record with a skipped seq and append it intact
        body = json.dumps({"seq": 9, "kind": "events"}).encode()
        frame = _FRAME.pack(len(body), zlib.crc32(body)) + body
        with open(seg, "ab") as handle:
            handle.write(frame)
        with pytest.raises(WalCorruptionError, match="sequence break"):
            WriteAheadLog(tmp_path, fsync=False)

    def test_pruned_gap_without_snapshot_detected(self, tmp_path):
        with WriteAheadLog(tmp_path, segment_bytes=1024,
                           fsync=False) as wal:
            _fill(wal, 40)
            wal.prune(wal.last_seq)
        with WriteAheadLog(tmp_path, fsync=False) as wal:
            # replaying from 0 is impossible: the prefix is gone and no
            # snapshot covers it
            with pytest.raises(WalCorruptionError, match="pruned"):
                list(wal.replay(after_seq=0))


# ---------------------------------------------------------------------------
# Snapshots
# ---------------------------------------------------------------------------

class TestSnapshots:
    def _graph(self, rng):
        return random_multiplex(30, 2, 4, rng, avg_degree=3.0)

    def test_round_trip_with_meta_and_pending(self, tmp_path, rng):
        graph = self._graph(rng)
        builder = IncrementalGraphBuilder.from_graph(graph)
        events, _ = synthesize_stream(graph, 5, rng)
        meta = snapshot_meta(builder, record_seq=7, windows_scored=2,
                             events_consumed=40, alerts_raised=1,
                             pending=events)
        save_snapshot(tmp_path, builder.snapshot(), meta)
        loaded_graph, loaded_meta = load_latest_snapshot(tmp_path)
        assert graph_fingerprint(loaded_graph) == builder.fingerprint()
        assert loaded_meta["record_seq"] == 7
        assert loaded_meta["windows_scored"] == 2
        assert len(loaded_meta["pending"]) == 5

    def test_retention_keeps_newest(self, tmp_path, rng):
        graph = self._graph(rng)
        builder = IncrementalGraphBuilder.from_graph(graph)
        for seq in (5, 10, 15, 20):
            meta = snapshot_meta(builder, record_seq=seq, windows_scored=0,
                                 events_consumed=0, alerts_raised=0,
                                 pending=[])
            save_snapshot(tmp_path, builder.snapshot(), meta, keep=2)
        names = sorted(p.name for p in tmp_path.glob("snap-*.npz"))
        assert names == ["snap-000000000015.npz", "snap-000000000020.npz"]

    def test_damaged_newest_falls_back(self, tmp_path, rng):
        graph = self._graph(rng)
        builder = IncrementalGraphBuilder.from_graph(graph)
        for seq in (1, 2):
            meta = snapshot_meta(builder, record_seq=seq, windows_scored=0,
                                 events_consumed=0, alerts_raised=0,
                                 pending=[])
            save_snapshot(tmp_path, builder.snapshot(), meta)
        newest = sorted(tmp_path.glob("snap-*.npz"))[-1]
        newest.write_bytes(b"not a zip archive")
        _graph2, meta = load_latest_snapshot(tmp_path)
        assert meta["record_seq"] == 1

    def test_all_damaged_raises(self, tmp_path, rng):
        graph = self._graph(rng)
        builder = IncrementalGraphBuilder.from_graph(graph)
        meta = snapshot_meta(builder, record_seq=1, windows_scored=0,
                             events_consumed=0, alerts_raised=0, pending=[])
        save_snapshot(tmp_path, builder.snapshot(), meta)
        for path in tmp_path.glob("snap-*.npz"):
            path.write_bytes(b"damaged")
        with pytest.raises(WalCorruptionError, match="unreadable"):
            load_latest_snapshot(tmp_path)

    def test_leftover_tmp_file_is_invisible(self, tmp_path):
        # a crash mid-snapshot leaves only the temp file, which must never
        # be considered a snapshot candidate
        (tmp_path / ".tmp-snap-000000000009.npz").write_bytes(b"partial")
        assert load_latest_snapshot(tmp_path) is None


# ---------------------------------------------------------------------------
# Recovery parity
# ---------------------------------------------------------------------------

class TestRecovery:
    def test_recovered_fingerprint_is_bitwise_identical(self, tmp_path, rng):
        graph = random_multiplex(40, 2, 4, rng, avg_degree=3.0)
        events, _ = synthesize_stream(graph, 110, rng)
        wal = WriteAheadLog(tmp_path, fsync=False)
        live = _monitor(graph, wal=wal, window=20, snapshot_every=2)
        live.process(events)
        # no checkpoint: simulate a crash by abandoning the monitor
        wal.close()

        wal2 = WriteAheadLog(tmp_path, fsync=False)
        state = recover_builder(wal2)
        assert state.recovered
        assert state.builder.fingerprint() == live.builder.fingerprint()
        assert len(state.pending) == live.buffered
        assert state.windows_scored == live.windows_scored
        assert state.events_consumed == live.events_consumed
        assert verify_parity(state.builder)
        wal2.close()

    def test_monitor_recover_continues_stream(self, tmp_path, rng):
        graph = random_multiplex(40, 2, 4, rng, avg_degree=3.0)
        events, _ = synthesize_stream(graph, 200,
                                      np.random.default_rng(5))
        # uninterrupted reference run
        reference = _monitor(graph, window=20)
        reference.process(events)

        # crashed run: first 90 events, no checkpoint
        wal = WriteAheadLog(tmp_path, fsync=False)
        first = _monitor(graph, wal=wal, window=20, snapshot_every=3)
        first.process(events[:90])
        wal.close()

        # recover, feed the remainder: final state matches the reference
        wal2 = WriteAheadLog(tmp_path, fsync=False)
        service = DetectorService(_NormDetector().fit(graph))
        resumed = StreamMonitor.recover(service, wal2, window=20,
                                        top_k=5, snapshot_every=3)
        assert resumed.recovered
        skip = resumed.events_consumed + resumed.buffered
        assert skip == 90
        resumed.process(events[skip:])
        assert resumed.builder.fingerprint() == \
            reference.builder.fingerprint()
        assert resumed.windows_scored == reference.windows_scored
        assert resumed.events_consumed == reference.events_consumed
        wal2.close()

    def test_clean_checkpoint_replays_nothing(self, tmp_path, rng):
        graph = random_multiplex(30, 2, 4, rng, avg_degree=3.0)
        events, _ = synthesize_stream(graph, 50, rng)
        wal = WriteAheadLog(tmp_path, fsync=False)
        live = _monitor(graph, wal=wal, window=20)
        live.process(events)
        live.checkpoint()
        wal.close()

        wal2 = WriteAheadLog(tmp_path, fsync=False)
        replayed_before = wal2.stats.records_replayed
        state = recover_builder(wal2)
        assert state.builder.fingerprint() == live.builder.fingerprint()
        # everything came from the snapshot; the log had nothing newer
        assert wal2.stats.records_replayed == replayed_before
        wal2.close()

    def test_marker_divergence_detected(self, tmp_path, rng):
        graph = random_multiplex(30, 2, 4, rng, avg_degree=3.0)
        wal = WriteAheadLog(tmp_path, fsync=False)
        monitor = _monitor(graph, wal=wal, window=20)
        events, _ = synthesize_stream(graph, 10, rng)
        wal.append("events", {"events": [e.to_dict() for e in events]})
        wal.append("window", {"fingerprint": "0" * 64,
                              "windows_scored": 1, "events_consumed": 10,
                              "alerts_raised": 0})
        wal.close()
        wal2 = WriteAheadLog(tmp_path, fsync=False)
        with pytest.raises(WalCorruptionError, match="diverged"):
            recover_builder(wal2)
        wal2.close()
        assert monitor is not None   # keep the seed snapshot writer alive

    def test_empty_wal_needs_schema(self, tmp_path):
        wal = WriteAheadLog(tmp_path, fsync=False)
        with pytest.raises(ValueError, match="schema|relation_names"):
            recover_builder(wal)
        state = recover_builder(wal, relation_names=["a"], num_features=3)
        assert not state.recovered
        assert state.builder.num_nodes == 0
        wal.close()
