"""nn package: Module tree, layers, optimisers, initialisers."""

import numpy as np
import pytest

from repro.autograd import Tensor, ops
from repro.nn import (
    Adam,
    GATConv,
    GCNConv,
    Linear,
    Module,
    ModuleList,
    Parameter,
    SGCConv,
    SGD,
    init,
)


@pytest.fixture
def rng():
    return np.random.default_rng(0)


class _Toy(Module):
    def __init__(self, rng):
        super().__init__()
        self.fc1 = Linear(4, 8, rng)
        self.fc2 = Linear(8, 2, rng)
        self.extra = Parameter(np.zeros(3), name="extra")
        self.stack = ModuleList([Linear(2, 2, rng)])

    def forward(self, x):
        return self.fc2(ops.relu(self.fc1(x)))


class TestModule:
    def test_parameter_discovery(self, rng):
        m = _Toy(rng)
        names = dict(m.named_parameters())
        assert "fc1.weight" in names and "fc2.bias" in names
        assert "extra" in names
        assert "stack.0.weight" in names
        # fc1 w+b, fc2 w+b, extra, stack linear w+b
        assert len(names) == 7

    def test_num_parameters(self, rng):
        m = _Toy(rng)
        expected = 4 * 8 + 8 + 8 * 2 + 2 + 3 + 2 * 2 + 2
        assert m.num_parameters() == expected

    def test_zero_grad(self, rng):
        m = _Toy(rng)
        out = ops.sum(m(Tensor(np.ones((2, 4)))))
        out.backward()
        assert m.fc1.weight.grad is not None
        m.zero_grad()
        assert m.fc1.weight.grad is None

    def test_train_eval_propagates(self, rng):
        m = _Toy(rng)
        m.eval()
        assert not m.training and not m.fc1.training
        m.train()
        assert m.training and m.stack[0].training

    def test_state_dict_roundtrip(self, rng):
        m1, m2 = _Toy(rng), _Toy(np.random.default_rng(99))
        m2.load_state_dict(m1.state_dict())
        np.testing.assert_allclose(m1.fc1.weight.data, m2.fc1.weight.data)

    def test_state_dict_mismatch_raises(self, rng):
        m = _Toy(rng)
        state = m.state_dict()
        state.pop("extra")
        with pytest.raises(KeyError, match="missing"):
            m.load_state_dict(state)

    def test_state_dict_shape_mismatch_raises(self, rng):
        m = _Toy(rng)
        state = m.state_dict()
        state["extra"] = np.zeros(5)
        with pytest.raises(ValueError, match="shape"):
            m.load_state_dict(state)

    def test_state_dict_is_copy(self, rng):
        m = _Toy(rng)
        state = m.state_dict()
        state["extra"][:] = 99.0
        assert not np.any(m.extra.data == 99.0)


class TestLayers:
    def test_linear_shapes(self, rng):
        layer = Linear(4, 6, rng)
        out = layer(Tensor(np.ones((3, 4))))
        assert out.shape == (3, 6)

    def test_linear_no_bias(self, rng):
        layer = Linear(4, 6, rng, bias=False)
        assert layer.bias is None
        assert len(layer.parameters()) == 1

    def test_gcn_conv(self, rng, tiny_relation):
        layer = GCNConv(8, 4, rng)
        x = Tensor(rng.normal(size=(30, 8)))
        out = layer(x, tiny_relation.sym_propagator())
        assert out.shape == (30, 4)

    def test_sgc_propagation_depth(self, rng, tiny_relation):
        x = Tensor(rng.normal(size=(30, 8)))
        shallow = SGCConv(8, 4, rng, propagation=1)
        deep = SGCConv(8, 4, rng, propagation=3)
        deep.weight.data = shallow.weight.data.copy()
        deep.bias.data = shallow.bias.data.copy()
        prop = tiny_relation.sym_propagator()
        assert not np.allclose(shallow(x, prop).data, deep(x, prop).data)

    def test_gat_output_shapes(self, rng):
        src = np.array([0, 1, 2, 3])
        dst = np.array([1, 2, 3, 0])
        x = Tensor(rng.normal(size=(4, 5)))
        concat = GATConv(5, 6, rng, heads=2, concat_heads=True)
        mean = GATConv(5, 6, rng, heads=2, concat_heads=False)
        assert concat(x, src, dst).shape == (4, 12)
        assert mean(x, src, dst).shape == (4, 6)

    def test_gat_gradients_flow_to_attention(self, rng):
        src = np.array([0, 1, 2])
        dst = np.array([1, 2, 0])
        layer = GATConv(3, 4, rng)
        x = Tensor(rng.normal(size=(3, 3)))
        ops.sum(ops.mul(layer(x, src, dst), 1.0)).backward()
        assert layer.att_src.grad is not None
        assert layer.att_dst.grad is not None
        assert layer.weight.grad is not None

    def test_gat_isolated_node_gets_self_loop(self, rng):
        # node 3 has no edges; with self loops output should still be finite
        src = np.array([0, 1])
        dst = np.array([1, 0])
        layer = GATConv(3, 4, rng)
        out = layer(Tensor(rng.normal(size=(4, 3))), src, dst)
        assert np.all(np.isfinite(out.data))


class TestInit:
    def test_xavier_uniform_bounds(self, rng):
        w = init.xavier_uniform((100, 50), rng)
        limit = np.sqrt(6.0 / 150)
        assert np.all(np.abs(w) <= limit)

    def test_xavier_normal_std(self, rng):
        w = init.xavier_normal((400, 400), rng)
        assert abs(w.std() - np.sqrt(2.0 / 800)) < 5e-4

    def test_zeros(self):
        assert np.all(init.zeros((3, 3)) == 0)


class TestOptimizers:
    def _quadratic_problem(self):
        target = np.array([3.0, -2.0])
        p = Parameter(np.zeros(2))

        def loss():
            diff = ops.sub(p, target)
            return ops.sum(ops.mul(diff, diff))

        return p, loss, target

    def test_sgd_converges(self):
        p, loss, target = self._quadratic_problem()
        opt = SGD([p], lr=0.1)
        for _ in range(100):
            value = loss()
            opt.zero_grad()
            value.backward()
            opt.step()
        np.testing.assert_allclose(p.data, target, atol=1e-3)

    def test_sgd_momentum_converges(self):
        p, loss, target = self._quadratic_problem()
        opt = SGD([p], lr=0.05, momentum=0.9)
        for _ in range(200):
            value = loss()
            opt.zero_grad()
            value.backward()
            opt.step()
        np.testing.assert_allclose(p.data, target, atol=2e-2)

    def test_adam_converges(self):
        p, loss, target = self._quadratic_problem()
        opt = Adam([p], lr=0.2)
        for _ in range(200):
            value = loss()
            opt.zero_grad()
            value.backward()
            opt.step()
        np.testing.assert_allclose(p.data, target, atol=1e-2)

    def test_weight_decay_shrinks(self):
        p = Parameter(np.array([10.0]))
        opt = SGD([p], lr=0.1, weight_decay=1.0)
        p.grad = np.zeros(1)
        opt.step()
        assert p.data[0] < 10.0

    def test_clip_grad_norm(self):
        p = Parameter(np.zeros(4))
        p.grad = np.ones(4) * 100.0
        opt = SGD([p], lr=0.1)
        norm = opt.clip_grad_norm(1.0)
        assert norm == pytest.approx(200.0)
        assert np.linalg.norm(p.grad) == pytest.approx(1.0, rel=1e-6)

    def test_empty_parameters_rejected(self):
        with pytest.raises(ValueError, match="empty"):
            SGD([], lr=0.1)

    def test_skips_none_grads(self):
        p = Parameter(np.ones(2))
        opt = Adam([p], lr=0.1)
        opt.step()  # no grad set; must not crash
        np.testing.assert_allclose(p.data, np.ones(2))
