"""Shared baseline building blocks: clustering, spectra, losses, loops."""

import numpy as np
import pytest

from repro.autograd import Tensor, ops
from repro.baselines.common import (
    GCNStack,
    MLP,
    attribute_mse_loss,
    cosine_rows,
    kmeans,
    merged_graph,
    minmax,
    neighbor_mean,
    reconstruction_scores,
    sigmoid,
    spectral_embedding,
    structure_bce_loss,
    train_model,
    zscore,
)
from repro.graphs import RelationGraph


class TestNumericHelpers:
    def test_minmax_bounds(self, rng):
        out = minmax(rng.normal(size=50))
        assert out.min() == 0.0 and out.max() == 1.0

    def test_minmax_constant(self):
        np.testing.assert_allclose(minmax(np.full(5, 3.0)), np.zeros(5))

    def test_zscore(self, rng):
        out = zscore(rng.normal(size=500))
        assert abs(out.mean()) < 1e-9
        assert abs(out.std() - 1.0) < 1e-9

    def test_zscore_constant(self):
        np.testing.assert_allclose(zscore(np.ones(5)), np.zeros(5))

    def test_sigmoid_range(self, rng):
        out = sigmoid(rng.normal(size=100) * 100)
        assert np.all(out >= 0) and np.all(out <= 1)

    def test_cosine_rows(self):
        a = np.array([[1.0, 0.0], [0.0, 2.0]])
        b = np.array([[2.0, 0.0], [0.0, -1.0]])
        np.testing.assert_allclose(cosine_rows(a, b), [1.0, -1.0])


class TestGraphHelpers:
    def test_neighbor_mean(self):
        g = RelationGraph(3, np.array([[0, 1], [0, 2]]))
        x = np.array([[0.0], [2.0], [4.0]])
        out = neighbor_mean(x, g)
        np.testing.assert_allclose(out, [[3.0], [0.0], [0.0]])

    def test_merged_graph(self, tiny_multiplex):
        assert merged_graph(tiny_multiplex) is tiny_multiplex.merged()


class TestClusteringSpectra:
    def test_kmeans_separable(self, rng):
        x = np.concatenate([rng.normal(0, 0.1, (30, 2)),
                            rng.normal(5, 0.1, (30, 2))])
        assign, centroids = kmeans(x, 2, rng)
        assert centroids.shape == (2, 2)
        # first 30 and last 30 get opposite clusters
        assert len(set(assign[:30])) == 1
        assert len(set(assign[30:])) == 1
        assert assign[0] != assign[-1]

    def test_kmeans_k_capped(self, rng):
        assign, centroids = kmeans(rng.normal(size=(3, 2)), 10, rng)
        assert centroids.shape[0] == 3

    def test_spectral_embedding_shape(self, tiny_relation, rng):
        emb = spectral_embedding(tiny_relation, 4, rng)
        assert emb.shape == (30, 4)
        assert np.all(np.isfinite(emb))


class TestLossesAndTraining:
    def test_attribute_mse_zero(self, rng):
        x = Tensor(rng.normal(size=(5, 3)))
        assert float(attribute_mse_loss(x, x).data) == 0.0

    def test_structure_bce_prefers_aligned(self, tiny_relation, rng):
        # embeddings where edge endpoints agree vs random
        x = rng.normal(size=(30, 8))
        agg = neighbor_mean(x, tiny_relation)
        aligned = Tensor(x + 3.0 * agg)
        random = Tensor(rng.normal(size=(30, 8)))
        l_a = float(structure_bce_loss(aligned, tiny_relation,
                                       np.random.default_rng(0)).data)
        l_r = float(structure_bce_loss(random, tiny_relation,
                                       np.random.default_rng(0)).data)
        assert np.isfinite(l_a) and np.isfinite(l_r)

    def test_train_model_reduces_loss(self, rng):
        net = MLP([4, 8, 4], rng)
        x = Tensor(rng.normal(size=(20, 4)))

        history = train_model(net, lambda: attribute_mse_loss(net(x), x),
                              epochs=40, lr=1e-2)
        assert len(history) == 40
        assert history[-1] < history[0]

    def test_gcn_stack_forward(self, tiny_relation, rng):
        stack = GCNStack([8, 16, 4], rng)
        out = stack(Tensor(rng.normal(size=(30, 8))),
                    tiny_relation.sym_propagator())
        assert out.shape == (30, 4)

    def test_reconstruction_scores_range(self, tiny_relation, rng):
        x = rng.normal(size=(30, 8))
        z = rng.normal(size=(30, 6))
        scores = reconstruction_scores(x + rng.normal(size=x.shape), x, z,
                                       tiny_relation,
                                       np.random.default_rng(0))
        assert scores.shape == (30,)
        assert np.all(scores >= 0) and np.all(scores <= 1.0 + 1e-9)
