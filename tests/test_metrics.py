"""Metrics: AUC, Macro-F1, precision@k — values, edge cases, properties."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.eval import (
    binary_f1,
    macro_f1,
    precision_at_k,
    predictions_from_topk,
    roc_auc,
)


class TestROCAUC:
    def test_perfect_ranking(self):
        labels = np.array([0, 0, 0, 1, 1])
        scores = np.array([0.1, 0.2, 0.3, 0.8, 0.9])
        assert roc_auc(labels, scores) == 1.0

    def test_inverted_ranking(self):
        labels = np.array([0, 0, 1, 1])
        scores = np.array([0.9, 0.8, 0.2, 0.1])
        assert roc_auc(labels, scores) == 0.0

    def test_random_is_half(self):
        rng = np.random.default_rng(0)
        labels = rng.integers(0, 2, size=5000)
        scores = rng.random(5000)
        assert abs(roc_auc(labels, scores) - 0.5) < 0.03

    def test_ties_give_half_credit(self):
        labels = np.array([0, 1])
        scores = np.array([0.5, 0.5])
        assert roc_auc(labels, scores) == 0.5

    def test_single_class_raises(self):
        with pytest.raises(ValueError, match="both classes"):
            roc_auc(np.zeros(5), np.arange(5.0))

    def test_shape_mismatch_raises(self):
        with pytest.raises(ValueError, match="mismatch"):
            roc_auc(np.zeros(4), np.zeros(5))

    @settings(max_examples=30, deadline=None)
    @given(st.integers(0, 10_000))
    def test_monotone_transform_invariance(self, seed):
        """Property: AUC depends only on the ranking of scores."""
        rng = np.random.default_rng(seed)
        labels = np.concatenate([np.zeros(10), np.ones(5)]).astype(int)
        scores = rng.normal(size=15)
        a1 = roc_auc(labels, scores)
        a2 = roc_auc(labels, np.exp(2.0 * scores) + 7.0)
        assert a1 == pytest.approx(a2, abs=1e-12)

    @settings(max_examples=30, deadline=None)
    @given(st.integers(0, 10_000))
    def test_complement_property(self, seed):
        """Property: negating scores gives 1 - AUC."""
        rng = np.random.default_rng(seed)
        labels = (rng.random(40) < 0.3).astype(int)
        if labels.sum() in (0, 40):
            return
        scores = rng.normal(size=40)
        assert roc_auc(labels, scores) == pytest.approx(
            1.0 - roc_auc(labels, -scores), abs=1e-12)


class TestF1:
    def test_perfect(self):
        y = np.array([0, 1, 1, 0])
        assert binary_f1(y, y) == 1.0
        assert macro_f1(y, y) == 1.0

    def test_all_wrong(self):
        y = np.array([0, 1])
        assert macro_f1(y, 1 - y) == 0.0

    def test_no_predicted_positives(self):
        labels = np.array([0, 0, 1])
        predictions = np.zeros(3, dtype=int)
        assert binary_f1(labels, predictions, positive=1) == 0.0

    def test_known_value(self):
        labels = np.array([1, 1, 1, 0, 0, 0])
        predictions = np.array([1, 1, 0, 1, 0, 0])
        # anomaly class: tp=2 fp=1 fn=1 -> f1 = 2/3
        assert binary_f1(labels, predictions) == pytest.approx(2 / 3)
        # normal class: tp=2 fp=1 fn=1 -> f1 = 2/3
        assert macro_f1(labels, predictions) == pytest.approx(2 / 3)

    def test_macro_averages_classes(self):
        labels = np.array([1, 0, 0, 0])
        predictions = np.array([1, 1, 0, 0])
        f_anom = binary_f1(labels, predictions, positive=1)
        f_norm = binary_f1(labels, predictions, positive=0)
        assert macro_f1(labels, predictions) == pytest.approx(
            0.5 * (f_anom + f_norm))


class TestTopK:
    def test_precision_at_k(self):
        labels = np.array([1, 1, 0, 0, 0])
        scores = np.array([0.9, 0.8, 0.7, 0.1, 0.0])
        assert precision_at_k(labels, scores, 2) == 1.0
        assert precision_at_k(labels, scores, 4) == 0.5

    def test_precision_k_validation(self):
        with pytest.raises(ValueError, match="positive"):
            precision_at_k(np.array([0, 1]), np.array([0.0, 1.0]), 0)

    def test_predictions_from_topk(self):
        scores = np.array([0.3, 0.9, 0.1, 0.8])
        out = predictions_from_topk(scores, 2)
        np.testing.assert_array_equal(out, [0, 1, 0, 1])

    def test_topk_zero(self):
        assert predictions_from_topk(np.arange(4.0), 0).sum() == 0

    def test_topk_exceeds_n(self):
        assert predictions_from_topk(np.arange(4.0), 10).sum() == 4

    @settings(max_examples=25, deadline=None)
    @given(st.integers(1, 30), st.integers(0, 10_000))
    def test_topk_flags_exactly_k(self, k, seed):
        scores = np.random.default_rng(seed).normal(size=50)
        assert predictions_from_topk(scores, k).sum() == min(k, 50)
