"""Global gradient mode: ``no_grad()`` / ``enable_grad()`` (torch-style).

The autograd engine records a tape — parent links plus backward closures —
on every op whose inputs require gradients. Inference never calls
``backward()``, so that tape is pure overhead: it retains every
intermediate array for the lifetime of the output and pays a closure
allocation per op. Entering :func:`no_grad` turns the tape off globally:
ops compute plain numpy forwards, record no parents and no closures, and
never propagate ``requires_grad``. Several ops additionally switch to
faster grad-free kernels under ``no_grad`` (see
:func:`repro.autograd.ops.segment_sum` and the GAT inference kernel in
:class:`repro.nn.layers.GATConv`) whose results are bitwise identical to
the recording path.

Both managers nest arbitrarily and restore the previous mode on exit,
including on exceptions; they also work as decorators::

    with no_grad():
        scores = model.score_graph(graph)      # tape-free

    @enable_grad()
    def refit(graph):                          # trains even if the caller
        return UMGAD(cfg).fit(graph)           # sits inside no_grad()

The mode is process-global (the engine is single-threaded by design; see
``tensor.py``).
"""

from __future__ import annotations

import functools

#: module-level flag read directly by the op hot path (``ops._make``)
_enabled = True


def is_grad_enabled() -> bool:
    """True when ops currently record the autodiff tape."""
    return _enabled


def set_grad_enabled(mode: bool) -> bool:
    """Set the global grad mode; returns the previous mode."""
    global _enabled
    previous = _enabled
    _enabled = bool(mode)
    return previous


class _GradMode:
    """Re-entrant context manager / decorator pinning the grad mode."""

    def __init__(self, mode: bool):
        self.mode = bool(mode)
        self._previous: list = []

    def __enter__(self) -> "_GradMode":
        self._previous.append(set_grad_enabled(self.mode))
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        set_grad_enabled(self._previous.pop())
        return False

    def __call__(self, fn):
        @functools.wraps(fn)
        def wrapped(*args, **kwargs):
            with _GradMode(self.mode):
                return fn(*args, **kwargs)

        return wrapped

    def __repr__(self) -> str:
        return f"{'enable_grad' if self.mode else 'no_grad'}()"


def no_grad() -> _GradMode:
    """Context manager / decorator disabling tape recording."""
    return _GradMode(False)


def enable_grad() -> _GradMode:
    """Context manager / decorator (re-)enabling tape recording.

    Primarily used to train inside an ambient :func:`no_grad` region —
    e.g. a drift-triggered refit running inside a scoring loop.
    """
    return _GradMode(True)
