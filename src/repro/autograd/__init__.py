"""Numpy reverse-mode autodiff engine (the PyTorch substitute).

Public surface:

* :class:`Tensor` / :func:`tensor` — the differentiable array type.
* :mod:`repro.autograd.ops` — dense ops, reductions, activations, segment ops.
* :func:`spmm` — sparse-adjacency × dense-feature product.
* :func:`no_grad` / :func:`enable_grad` / :func:`is_grad_enabled` — the
  global grad mode; inference paths run under ``no_grad()`` so no tape is
  recorded (see :mod:`repro.autograd.grad_mode`).
* :func:`numeric_gradient` — finite-difference checker used by the tests.
"""

from . import ops
from .grad_mode import enable_grad, is_grad_enabled, no_grad, set_grad_enabled
from .tensor import (
    Tensor,
    as_array,
    ensure_tensor,
    get_default_dtype,
    ones,
    set_default_dtype,
    tensor,
    zeros,
)
from .sparse import spmm
from .gradcheck import numeric_gradient, check_gradients

__all__ = [
    "Tensor",
    "as_array",
    "check_gradients",
    "enable_grad",
    "ensure_tensor",
    "get_default_dtype",
    "is_grad_enabled",
    "no_grad",
    "numeric_gradient",
    "ones",
    "ops",
    "set_default_dtype",
    "set_grad_enabled",
    "spmm",
    "tensor",
    "zeros",
]
