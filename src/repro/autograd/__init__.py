"""Numpy reverse-mode autodiff engine (the PyTorch substitute).

Public surface:

* :class:`Tensor` / :func:`tensor` — the differentiable array type.
* :mod:`repro.autograd.ops` — dense ops, reductions, activations, segment ops.
* :func:`spmm` — sparse-adjacency × dense-feature product.
* :func:`numeric_gradient` — finite-difference checker used by the tests.
"""

from . import ops
from .tensor import (
    Tensor,
    as_array,
    ensure_tensor,
    get_default_dtype,
    ones,
    set_default_dtype,
    tensor,
    zeros,
)
from .sparse import spmm
from .gradcheck import numeric_gradient, check_gradients

__all__ = [
    "Tensor",
    "as_array",
    "check_gradients",
    "ensure_tensor",
    "get_default_dtype",
    "numeric_gradient",
    "ones",
    "ops",
    "set_default_dtype",
    "spmm",
    "tensor",
    "zeros",
]
