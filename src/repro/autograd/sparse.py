"""Sparse-dense products for graph convolutions.

Graph propagation multiplies a (constant) sparse operator — typically the
symmetrically normalised adjacency — with a dense feature tensor. The sparse
matrix itself never requires gradients here, which keeps the backward rule
simple: ``d/dX (S @ X) = S^T @ grad``.

Hot-path contract: propagators should arrive in CSR form (the
:class:`~repro.graphs.graph.RelationGraph` builders pre-convert once at
construction time). Non-CSR input is converted here — a silent per-call
cost in the inner training loop — so debug mode
(``REPRO_DEBUG_SPMM=1`` or :data:`DEBUG_ASSERT_CSR`) turns it into an
error to catch regressions. Symmetric propagators can additionally carry a
pre-computed backward operator in an ``_spmm_transpose`` attribute
(:meth:`RelationGraph.sym_propagator` points it at the matrix itself), so
the backward pass never pays a ``T.tocsr()`` conversion.

Grad mode: like every op, :func:`spmm` goes through ``ops._make``, so
under :func:`~repro.autograd.grad_mode.no_grad` the product is returned
as a constant tensor with no backward closure attached.
"""

from __future__ import annotations

import os

import numpy as np
import scipy.sparse as sp

from .tensor import Tensor
from .ops import _acc, _make

#: When true, spmm raises on non-CSR input instead of converting it —
#: the conversion is wasted work on every training step, so surfacing it
#: loudly in debug runs keeps the hot path honest.
DEBUG_ASSERT_CSR = os.environ.get("REPRO_DEBUG_SPMM", "") not in ("", "0")


def spmm(matrix: sp.spmatrix, dense) -> Tensor:
    """Multiply a constant scipy sparse matrix with a dense tensor.

    Parameters
    ----------
    matrix:
        ``(n, m)`` scipy sparse matrix, ideally CSR (asserted in debug
        mode). An ``_spmm_transpose`` attribute, when present, is used as
        the backward operator without conversion.
    dense:
        ``(m, f)`` or ``(m,)`` tensor.
    """
    from .tensor import ensure_tensor

    dense = ensure_tensor(dense)
    if not sp.issparse(matrix):
        raise TypeError(f"spmm expects a scipy sparse matrix, got {type(matrix)!r}")
    if matrix.format != "csr":
        if DEBUG_ASSERT_CSR:
            raise TypeError(
                f"spmm hot path expects a CSR matrix, got {matrix.format!r}; "
                "pre-convert at propagator build time (see RelationGraph)")
        matrix = matrix.tocsr()
    out = matrix @ dense.data
    matrix_t = getattr(matrix, "_spmm_transpose", None)

    def backward(grad, grads):
        nonlocal matrix_t
        if not dense.requires_grad:
            return
        if matrix_t is None:
            matrix_t = matrix.T.tocsr()
            # Memoise on the operator: propagators are long-lived and reused
            # across every epoch, so later spmm nodes skip the transpose too.
            try:
                matrix._spmm_transpose = matrix_t
            except AttributeError:  # pragma: no cover - exotic sparse types
                pass
        _acc(grads, dense, matrix_t @ grad)

    return _make(np.asarray(out), (dense,), backward)
