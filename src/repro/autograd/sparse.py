"""Sparse-dense products for graph convolutions.

Graph propagation multiplies a (constant) sparse operator — typically the
symmetrically normalised adjacency — with a dense feature tensor. The sparse
matrix itself never requires gradients here, which keeps the backward rule
simple: ``d/dX (S @ X) = S^T @ grad``.
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp

from .tensor import Tensor
from .ops import _acc, _make


def spmm(matrix: sp.spmatrix, dense) -> Tensor:
    """Multiply a constant scipy sparse matrix with a dense tensor.

    Parameters
    ----------
    matrix:
        ``(n, m)`` scipy sparse matrix (converted to CSR once per call site;
        callers should pre-convert for hot loops).
    dense:
        ``(m, f)`` or ``(m,)`` tensor.
    """
    from .tensor import ensure_tensor

    dense = ensure_tensor(dense)
    if not sp.issparse(matrix):
        raise TypeError(f"spmm expects a scipy sparse matrix, got {type(matrix)!r}")
    out = matrix @ dense.data
    matrix_t = None

    def backward(grad, grads):
        nonlocal matrix_t
        if not dense.requires_grad:
            return
        if matrix_t is None:
            matrix_t = matrix.T.tocsr()
        _acc(grads, dense, matrix_t @ grad)

    return _make(np.asarray(out), (dense,), backward)
