"""Finite-difference gradient checking utilities.

These power the autograd test-suite: every op's analytic backward pass is
validated against a central-difference numeric estimate.
"""

from __future__ import annotations

from typing import Callable, Sequence

import numpy as np

from .tensor import Tensor


def numeric_gradient(
    fn: Callable[..., Tensor],
    inputs: Sequence[np.ndarray],
    wrt: int = 0,
    eps: float = 1e-6,
) -> np.ndarray:
    """Central-difference gradient of ``sum(fn(*inputs))`` w.r.t. one input.

    ``fn`` receives :class:`Tensor` arguments and must return a Tensor; the
    scalarised objective is the elementwise sum of its output.
    """
    base = [np.asarray(x, dtype=np.float64).copy() for x in inputs]
    grad = np.zeros_like(base[wrt])
    flat = base[wrt].reshape(-1)
    grad_flat = grad.reshape(-1)
    for i in range(flat.size):
        orig = flat[i]
        flat[i] = orig + eps
        plus = float(fn(*[Tensor(b) for b in base]).data.sum())
        flat[i] = orig - eps
        minus = float(fn(*[Tensor(b) for b in base]).data.sum())
        flat[i] = orig
        grad_flat[i] = (plus - minus) / (2.0 * eps)
    return grad


def check_gradients(
    fn: Callable[..., Tensor],
    inputs: Sequence[np.ndarray],
    atol: float = 1e-5,
    rtol: float = 1e-4,
) -> None:
    """Assert analytic and numeric gradients agree for every input.

    Raises ``AssertionError`` with a readable message on mismatch.
    """
    tensors = [Tensor(np.asarray(x, dtype=np.float64), requires_grad=True) for x in inputs]
    out = fn(*tensors)
    out.sum().backward()
    for i, t in enumerate(tensors):
        analytic = t.grad if t.grad is not None else np.zeros_like(t.data)
        numeric = numeric_gradient(fn, inputs, wrt=i)
        np.testing.assert_allclose(
            analytic,
            numeric,
            atol=atol,
            rtol=rtol,
            err_msg=f"gradient mismatch for input {i}",
        )
