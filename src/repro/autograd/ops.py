"""Differentiable operations for the numpy autodiff engine.

Each op computes its result eagerly, then (when any input requires grad
and grad mode is on — see :mod:`repro.autograd.grad_mode`) attaches a
backward closure that maps the upstream gradient to gradients of its
parents. Gradients are accumulated in a per-backward-pass dictionary
keyed by tensor identity (see :meth:`repro.autograd.tensor.Tensor.backward`).

Under :func:`~repro.autograd.grad_mode.no_grad` every op returns a plain
constant tensor — no parents, no closures, no ``requires_grad``
propagation — and the segment ops switch to faster scatter kernels
(`numpy.bincount`-based) whose per-segment accumulation order, and hence
result bits, match the recording path exactly.

The op set is intentionally scoped to what graph anomaly-detection models
need: dense linear algebra, reductions, indexing/scatter, activations, and
the segment (per-destination-node) softmax used by GAT attention.
"""

from __future__ import annotations

from typing import Optional, Sequence, Tuple, Union

import numpy as np

from . import grad_mode
from .tensor import Tensor, as_array, ensure_tensor, unbroadcast

Axis = Union[None, int, Tuple[int, ...]]


def _acc(grads: dict, parent: Tensor, grad: np.ndarray) -> None:
    """Accumulate ``grad`` for ``parent`` into the backward-pass dict."""
    if not parent.requires_grad:
        return
    grad = unbroadcast(grad, parent.data.shape)
    key = id(parent)
    if key in grads:
        grads[key] = grads[key] + grad
    else:
        grads[key] = grad


def _make(result: np.ndarray, parents: Tuple[Tensor, ...], backward) -> Tensor:
    if grad_mode._enabled and any(p.requires_grad for p in parents):
        return Tensor(result, requires_grad=True, parents=parents,
                      backward_fn=backward)
    return Tensor(result)


def segment_add_data(data: np.ndarray, segment_ids: np.ndarray,
                     num_segments: int) -> np.ndarray:
    """Grad-free segment sum of raw arrays, bitwise-equal to ``np.add.at``.

    ``np.bincount`` and ``np.add.at`` both walk the input once in index
    order, so each segment accumulates its contributions in the same
    sequential order — the float64 results are bit-identical while
    bincount's plain C loop is several times faster than the buffered
    ufunc machinery. Trailing feature axes are folded into the bin index
    (segment-major), which keeps per-(segment, feature) accumulation order
    intact. bincount only accumulates in float64, so other dtypes fall
    back to ``np.add.at`` to preserve their rounding behaviour.
    """
    out_shape = (num_segments,) + data.shape[1:]
    if data.dtype != np.float64:
        out = np.zeros(out_shape, dtype=data.dtype)
        np.add.at(out, segment_ids, data)
        return out
    flat = np.ascontiguousarray(data.reshape(data.shape[0], -1))
    width = flat.shape[1]
    if width == 1:
        out = np.bincount(segment_ids, weights=flat[:, 0],
                          minlength=num_segments)
        return out.reshape(out_shape)
    folded = (segment_ids[:, None] * width
              + np.arange(width, dtype=np.int64)[None, :]).ravel()
    out = np.bincount(folded, weights=flat.ravel(),
                      minlength=num_segments * width)
    return out.reshape(out_shape)


# ---------------------------------------------------------------------------
# Elementwise arithmetic
# ---------------------------------------------------------------------------

def add(a, b) -> Tensor:
    a, b = ensure_tensor(a), ensure_tensor(b)
    out = a.data + b.data

    def backward(grad, grads):
        _acc(grads, a, grad)
        _acc(grads, b, grad)

    return _make(out, (a, b), backward)


def sub(a, b) -> Tensor:
    a, b = ensure_tensor(a), ensure_tensor(b)
    out = a.data - b.data

    def backward(grad, grads):
        _acc(grads, a, grad)
        _acc(grads, b, -grad)

    return _make(out, (a, b), backward)


def mul(a, b) -> Tensor:
    a, b = ensure_tensor(a), ensure_tensor(b)
    out = a.data * b.data

    def backward(grad, grads):
        _acc(grads, a, grad * b.data)
        _acc(grads, b, grad * a.data)

    return _make(out, (a, b), backward)


def div(a, b) -> Tensor:
    a, b = ensure_tensor(a), ensure_tensor(b)
    out = a.data / b.data

    def backward(grad, grads):
        _acc(grads, a, grad / b.data)
        _acc(grads, b, -grad * a.data / (b.data * b.data))

    return _make(out, (a, b), backward)


def neg(a) -> Tensor:
    a = ensure_tensor(a)

    def backward(grad, grads):
        _acc(grads, a, -grad)

    return _make(-a.data, (a,), backward)


def power(a, exponent: float) -> Tensor:
    """Elementwise power with a constant (non-tensor) exponent."""
    a = ensure_tensor(a)
    exponent = float(exponent)
    out = a.data ** exponent

    def backward(grad, grads):
        _acc(grads, a, grad * exponent * a.data ** (exponent - 1.0))

    return _make(out, (a,), backward)


def exp(a) -> Tensor:
    a = ensure_tensor(a)
    out = np.exp(a.data)

    def backward(grad, grads):
        _acc(grads, a, grad * out)

    return _make(out, (a,), backward)


def log(a, eps: float = 0.0) -> Tensor:
    """Natural log; pass ``eps`` to stabilise log of near-zero values."""
    a = ensure_tensor(a)
    safe = a.data + eps if eps else a.data
    out = np.log(safe)

    def backward(grad, grads):
        _acc(grads, a, grad / safe)

    return _make(out, (a,), backward)


def sqrt(a) -> Tensor:
    return power(a, 0.5)


def absolute(a) -> Tensor:
    a = ensure_tensor(a)
    out = np.abs(a.data)

    def backward(grad, grads):
        _acc(grads, a, grad * np.sign(a.data))

    return _make(out, (a,), backward)


def clip(a, low: Optional[float], high: Optional[float]) -> Tensor:
    """Clamp values; gradient is passed through inside the active range."""
    a = ensure_tensor(a)
    out = np.clip(a.data, low, high)
    if not (grad_mode._enabled and a.requires_grad):
        return Tensor(out)
    inside = np.ones_like(a.data)
    if low is not None:
        inside = inside * (a.data >= low)
    if high is not None:
        inside = inside * (a.data <= high)

    def backward(grad, grads):
        _acc(grads, a, grad * inside)

    return _make(out, (a,), backward)


def maximum(a, b) -> Tensor:
    """Elementwise max; ties send the full gradient to ``a``."""
    a, b = ensure_tensor(a), ensure_tensor(b)
    take_a = a.data >= b.data
    out = np.where(take_a, a.data, b.data)

    def backward(grad, grads):
        _acc(grads, a, grad * take_a)
        _acc(grads, b, grad * ~take_a)

    return _make(out, (a, b), backward)


# ---------------------------------------------------------------------------
# Linear algebra
# ---------------------------------------------------------------------------

def matmul(a, b) -> Tensor:
    a, b = ensure_tensor(a), ensure_tensor(b)
    out = a.data @ b.data

    def backward(grad, grads):
        if a.requires_grad:
            if b.data.ndim == 1:
                _acc(grads, a, np.outer(grad, b.data) if a.data.ndim == 2 else grad * b.data)
            else:
                _acc(grads, a, grad @ b.data.T if grad.ndim > 1 else np.outer(grad, np.ones(1)) @ b.data.T)
        if b.requires_grad:
            if a.data.ndim == 1:
                _acc(grads, b, np.outer(a.data, grad))
            else:
                _acc(grads, b, a.data.T @ grad)

    return _make(out, (a, b), backward)


def transpose(a, axes: Optional[Sequence[int]] = None) -> Tensor:
    a = ensure_tensor(a)
    out = np.transpose(a.data, axes)
    inverse = None if axes is None else np.argsort(axes)

    def backward(grad, grads):
        _acc(grads, a, np.transpose(grad, inverse))

    return _make(out, (a,), backward)


def reshape(a, shape: Tuple[int, ...]) -> Tensor:
    a = ensure_tensor(a)
    out = a.data.reshape(shape)

    def backward(grad, grads):
        _acc(grads, a, grad.reshape(a.data.shape))

    return _make(out, (a,), backward)


def concat(tensors: Sequence, axis: int = 0) -> Tensor:
    parts = [ensure_tensor(t) for t in tensors]
    out = np.concatenate([p.data for p in parts], axis=axis)
    sizes = [p.data.shape[axis] for p in parts]
    offsets = np.cumsum([0] + sizes)

    def backward(grad, grads):
        for part, start, stop in zip(parts, offsets[:-1], offsets[1:]):
            slicer = [slice(None)] * grad.ndim
            slicer[axis] = slice(start, stop)
            _acc(grads, part, grad[tuple(slicer)])

    return _make(out, tuple(parts), backward)


def stack(tensors: Sequence, axis: int = 0) -> Tensor:
    parts = [ensure_tensor(t) for t in tensors]
    out = np.stack([p.data for p in parts], axis=axis)

    def backward(grad, grads):
        moved = np.moveaxis(grad, axis, 0)
        for i, part in enumerate(parts):
            _acc(grads, part, moved[i])

    return _make(out, tuple(parts), backward)


# ---------------------------------------------------------------------------
# Reductions
# ---------------------------------------------------------------------------

def sum(a, axis: Axis = None, keepdims: bool = False) -> Tensor:  # noqa: A001
    a = ensure_tensor(a)
    out = a.data.sum(axis=axis, keepdims=keepdims)

    def backward(grad, grads):
        g = grad
        if axis is not None and not keepdims:
            g = np.expand_dims(g, axis)
        _acc(grads, a, np.broadcast_to(g, a.data.shape))

    return _make(out, (a,), backward)


def mean(a, axis: Axis = None, keepdims: bool = False) -> Tensor:
    a = ensure_tensor(a)
    out = a.data.mean(axis=axis, keepdims=keepdims)
    if axis is None:
        count = a.data.size
    elif isinstance(axis, tuple):
        count = int(np.prod([a.data.shape[ax] for ax in axis]))
    else:
        count = a.data.shape[axis]

    def backward(grad, grads):
        g = grad
        if axis is not None and not keepdims:
            g = np.expand_dims(g, axis)
        _acc(grads, a, np.broadcast_to(g, a.data.shape) / count)

    return _make(out, (a,), backward)


def norm(a, axis: Axis = None, keepdims: bool = False, ord: int = 2, eps: float = 1e-12) -> Tensor:
    """L1 or L2 norm along ``axis`` (the two norms Eq. 19 of the paper uses)."""
    a = ensure_tensor(a)
    if ord == 2:
        sq = a.data * a.data
        total = sq.sum(axis=axis, keepdims=True)
        root = np.sqrt(total + eps)
        out = root if keepdims else np.squeeze(root, axis=axis) if axis is not None else root.reshape(())

        def backward(grad, grads):
            g = grad
            if axis is not None and not keepdims:
                g = np.expand_dims(g, axis)
            elif axis is None and not keepdims:
                g = np.asarray(g).reshape((1,) * a.data.ndim)
            _acc(grads, a, g * a.data / root)

        return _make(out, (a,), backward)
    if ord == 1:
        return sum(absolute(a), axis=axis, keepdims=keepdims)
    raise ValueError(f"unsupported norm order: {ord}")


def max_reduce(a, axis: int, keepdims: bool = False) -> Tensor:
    """Max along one axis; gradient flows only to the (first) argmax."""
    a = ensure_tensor(a)
    out = a.data.max(axis=axis, keepdims=keepdims)
    if not (grad_mode._enabled and a.requires_grad):
        return Tensor(out)
    expanded = a.data.max(axis=axis, keepdims=True)
    mask = (a.data == expanded)
    # Route gradient to the first maximum only, matching torch semantics
    # closely enough for our uses.
    first = np.cumsum(mask, axis=axis) == 1
    mask = mask & first

    def backward(grad, grads):
        g = grad if keepdims else np.expand_dims(grad, axis)
        _acc(grads, a, mask * g)

    return _make(out, (a,), backward)


# ---------------------------------------------------------------------------
# Indexing / scatter
# ---------------------------------------------------------------------------

def index(a, idx) -> Tensor:
    """General ``a[idx]``; supports int/slice/bool/integer-array indexing."""
    a = ensure_tensor(a)
    out = a.data[idx]

    def backward(grad, grads):
        if not a.requires_grad:
            return
        full = np.zeros_like(a.data)
        np.add.at(full, idx, grad)
        _acc(grads, a, full)

    return _make(out, (a,), backward)


def gather_rows(a, row_index: np.ndarray) -> Tensor:
    """Select rows ``a[row_index]`` with duplicate-safe backward scatter."""
    a = ensure_tensor(a)
    row_index = np.asarray(row_index, dtype=np.int64)
    out = a.data[row_index]

    def backward(grad, grads):
        if not a.requires_grad:
            return
        full = np.zeros_like(a.data)
        np.add.at(full, row_index, grad)
        _acc(grads, a, full)

    return _make(out, (a,), backward)


def set_rows(a, row_index: np.ndarray, value) -> Tensor:
    """Functionally overwrite ``a[row_index] = value`` (value broadcasts).

    This implements the paper's learnable ``[MASK]`` token insertion: the
    token (a ``(1, f)`` parameter) replaces the masked rows, gradient flows
    to the token for masked rows and to ``a`` elsewhere.
    """
    a, value = ensure_tensor(a), ensure_tensor(value)
    row_index = np.asarray(row_index, dtype=np.int64)
    out = a.data.copy()
    out[row_index] = value.data

    def backward(grad, grads):
        if a.requires_grad:
            ga = grad.copy()
            ga[row_index] = 0.0
            _acc(grads, a, ga)
        if value.requires_grad:
            _acc(grads, value, grad[row_index])

    return _make(out, (a, value), backward)


def segment_sum(values, segment_ids: np.ndarray, num_segments: int) -> Tensor:
    """Sum ``values`` rows into ``num_segments`` buckets by ``segment_ids``.

    The workhorse of message passing: with ``segment_ids = dst`` it reduces
    per-edge messages into per-node aggregates.
    """
    values = ensure_tensor(values)
    segment_ids = np.asarray(segment_ids, dtype=np.int64)
    if not grad_mode._enabled:
        return Tensor(segment_add_data(values.data, segment_ids, num_segments))
    out_shape = (num_segments,) + values.data.shape[1:]
    out = np.zeros(out_shape, dtype=values.data.dtype)
    np.add.at(out, segment_ids, values.data)

    def backward(grad, grads):
        _acc(grads, values, grad[segment_ids])

    return _make(out, (values,), backward)


def segment_softmax(scores, segment_ids: np.ndarray, num_segments: int) -> Tensor:
    """Softmax over groups of entries sharing a segment id.

    Used for GAT attention: ``scores`` are per-edge logits, segments are the
    destination nodes, and the result are attention coefficients that sum to
    one over each node's incoming edges. Numerically stabilised by a
    per-segment max shift.
    """
    scores = ensure_tensor(scores)
    segment_ids = np.asarray(segment_ids, dtype=np.int64)
    data = scores.data

    seg_max = np.full((num_segments,) + data.shape[1:], -np.inf, dtype=data.dtype)
    np.maximum.at(seg_max, segment_ids, data)
    shifted = data - seg_max[segment_ids]
    expd = np.exp(shifted)
    if not grad_mode._enabled:
        denom = segment_add_data(expd, segment_ids, num_segments)
        return Tensor(expd / np.maximum(denom[segment_ids], 1e-30))
    denom = np.zeros((num_segments,) + data.shape[1:], dtype=data.dtype)
    np.add.at(denom, segment_ids, expd)
    out = expd / np.maximum(denom[segment_ids], 1e-30)

    def backward(grad, grads):
        if not scores.requires_grad:
            return
        weighted = grad * out
        seg_weighted = np.zeros((num_segments,) + data.shape[1:], dtype=data.dtype)
        np.add.at(seg_weighted, segment_ids, weighted)
        _acc(grads, scores, weighted - out * seg_weighted[segment_ids])

    return _make(out, (scores,), backward)


# ---------------------------------------------------------------------------
# Activations / normalisation
# ---------------------------------------------------------------------------

def relu(a) -> Tensor:
    a = ensure_tensor(a)
    mask = a.data > 0
    out = a.data * mask

    def backward(grad, grads):
        _acc(grads, a, grad * mask)

    return _make(out, (a,), backward)


def leaky_relu(a, negative_slope: float = 0.2) -> Tensor:
    a = ensure_tensor(a)
    mask = a.data > 0
    scale = np.where(mask, 1.0, negative_slope)
    out = a.data * scale

    def backward(grad, grads):
        _acc(grads, a, grad * scale)

    return _make(out, (a,), backward)


def elu(a, alpha: float = 1.0) -> Tensor:
    a = ensure_tensor(a)
    mask = a.data > 0
    expm1 = alpha * np.expm1(np.minimum(a.data, 0.0))
    out = np.where(mask, a.data, expm1)

    def backward(grad, grads):
        _acc(grads, a, grad * np.where(mask, 1.0, expm1 + alpha))

    return _make(out, (a,), backward)


def sigmoid(a) -> Tensor:
    a = ensure_tensor(a)
    out = 1.0 / (1.0 + np.exp(-np.clip(a.data, -60.0, 60.0)))

    def backward(grad, grads):
        _acc(grads, a, grad * out * (1.0 - out))

    return _make(out, (a,), backward)


def tanh(a) -> Tensor:
    a = ensure_tensor(a)
    out = np.tanh(a.data)

    def backward(grad, grads):
        _acc(grads, a, grad * (1.0 - out * out))

    return _make(out, (a,), backward)


def softmax(a, axis: int = -1) -> Tensor:
    a = ensure_tensor(a)
    shifted = a.data - a.data.max(axis=axis, keepdims=True)
    expd = np.exp(shifted)
    out = expd / expd.sum(axis=axis, keepdims=True)

    def backward(grad, grads):
        inner = (grad * out).sum(axis=axis, keepdims=True)
        _acc(grads, a, out * (grad - inner))

    return _make(out, (a,), backward)


def log_softmax(a, axis: int = -1) -> Tensor:
    a = ensure_tensor(a)
    shifted = a.data - a.data.max(axis=axis, keepdims=True)
    log_den = np.log(np.exp(shifted).sum(axis=axis, keepdims=True))
    out = shifted - log_den
    soft = np.exp(out)

    def backward(grad, grads):
        _acc(grads, a, grad - soft * grad.sum(axis=axis, keepdims=True))

    return _make(out, (a,), backward)


def dropout(a, rate: float, rng: np.random.Generator, training: bool = True) -> Tensor:
    """Inverted dropout; identity when ``training`` is false or rate is 0."""
    a = ensure_tensor(a)
    if not training or rate <= 0.0:
        return a
    keep = 1.0 - rate
    mask = (rng.random(a.data.shape) < keep) / keep
    out = a.data * mask

    def backward(grad, grads):
        _acc(grads, a, grad * mask)

    return _make(out, (a,), backward)


def row_normalize(a, eps: float = 1e-12) -> Tensor:
    """L2-normalise each row (used before cosine similarities)."""
    a = ensure_tensor(a)
    norms = np.sqrt((a.data * a.data).sum(axis=-1, keepdims=True) + eps)
    out = a.data / norms

    def backward(grad, grads):
        if not a.requires_grad:
            return
        dot = (grad * a.data).sum(axis=-1, keepdims=True)
        _acc(grads, a, grad / norms - a.data * dot / (norms ** 3))

    return _make(out, (a,), backward)


def cosine_similarity(a, b, axis: int = -1, eps: float = 1e-12) -> Tensor:
    """Cosine similarity along ``axis`` — the attribute-reconstruction error
    kernel of Eq. (4)/(13)/(15)."""
    an = row_normalize(ensure_tensor(a), eps=eps)
    bn = row_normalize(ensure_tensor(b), eps=eps)
    return sum(mul(an, bn), axis=axis)
