"""Reverse-mode automatic differentiation on top of numpy.

This module is the neural-network substrate for the UMGAD reproduction: the
paper trains graph-masked autoencoders with PyTorch, which is unavailable
here, so we implement the minimal engine the models need — a :class:`Tensor`
wrapping a ``numpy.ndarray``, a dynamically built computation graph, and
reverse-mode backpropagation over it.

Design notes
------------
* Every differentiable operation creates a new :class:`Tensor` whose
  ``_parents`` are the input tensors and whose ``_backward`` closure
  accumulates gradients into those parents.
* Gradients are plain ``numpy.ndarray`` objects stored on ``Tensor.grad``.
* Broadcasting is supported; :func:`unbroadcast` reduces gradients back to
  the parent's shape.
* The engine is eager and single-threaded, which is all the models here
  require.
"""

from __future__ import annotations

from typing import Callable, Iterable, Optional, Sequence, Tuple, Union

import numpy as np

ArrayLike = Union[np.ndarray, float, int, Sequence]

_DEFAULT_DTYPE = np.float64


def set_default_dtype(dtype) -> None:
    """Set the dtype used when tensors are created from python data."""
    global _DEFAULT_DTYPE
    _DEFAULT_DTYPE = np.dtype(dtype)


def get_default_dtype():
    """Return the dtype used when tensors are created from python data."""
    return _DEFAULT_DTYPE


def as_array(data: ArrayLike, dtype=None) -> np.ndarray:
    """Coerce ``data`` to a float numpy array without copying when possible."""
    if isinstance(data, np.ndarray):
        if dtype is not None and data.dtype != dtype:
            return data.astype(dtype)
        if data.dtype.kind not in "fc":
            return data.astype(_DEFAULT_DTYPE)
        return data
    return np.asarray(data, dtype=dtype or _DEFAULT_DTYPE)


def unbroadcast(grad: np.ndarray, shape: Tuple[int, ...]) -> np.ndarray:
    """Sum ``grad`` down to ``shape``, undoing numpy broadcasting.

    Used by binary-op backward passes: if ``a`` of shape ``(n, 1)`` was
    broadcast against ``b`` of shape ``(n, m)``, the gradient arriving for
    ``a`` has shape ``(n, m)`` and must be summed over the broadcast axes.
    """
    if grad.shape == shape:
        return grad
    # Sum over leading axes that were added by broadcasting.
    extra = grad.ndim - len(shape)
    if extra > 0:
        grad = grad.sum(axis=tuple(range(extra)))
    # Sum over axes that were 1 in the original shape.
    axes = tuple(i for i, s in enumerate(shape) if s == 1 and grad.shape[i] != 1)
    if axes:
        grad = grad.sum(axis=axes, keepdims=True)
    return grad.reshape(shape)


class Tensor:
    """A numpy-backed tensor participating in reverse-mode autodiff.

    Parameters
    ----------
    data:
        Array-like payload. Integer input is promoted to the default float
        dtype so gradients are well-defined.
    requires_grad:
        Whether gradients should be accumulated for this tensor.
    parents:
        Input tensors of the op that produced this tensor (internal).
    backward_fn:
        Closure mapping the upstream gradient to ``None`` while writing into
        ``parent.grad`` (internal).
    name:
        Optional label used in ``repr`` for debugging.
    """

    __slots__ = ("data", "grad", "requires_grad", "_parents", "_backward", "name")

    def __init__(
        self,
        data: ArrayLike,
        requires_grad: bool = False,
        parents: Tuple["Tensor", ...] = (),
        backward_fn: Optional[Callable[[np.ndarray], None]] = None,
        name: Optional[str] = None,
    ):
        self.data = as_array(data)
        self.grad: Optional[np.ndarray] = None
        self.requires_grad = bool(requires_grad)
        self._parents = parents
        self._backward = backward_fn
        self.name = name

    # ------------------------------------------------------------------
    # Basic properties
    # ------------------------------------------------------------------
    @property
    def shape(self) -> Tuple[int, ...]:
        return self.data.shape

    @property
    def ndim(self) -> int:
        return self.data.ndim

    @property
    def size(self) -> int:
        return self.data.size

    @property
    def dtype(self):
        return self.data.dtype

    @property
    def T(self) -> "Tensor":
        from . import ops

        return ops.transpose(self)

    def __len__(self) -> int:
        return len(self.data)

    def __repr__(self) -> str:
        label = f" name={self.name!r}" if self.name else ""
        grad = ", grad" if self.requires_grad else ""
        return f"Tensor(shape={self.shape}{grad}{label})"

    # ------------------------------------------------------------------
    # Graph mechanics
    # ------------------------------------------------------------------
    def detach(self) -> "Tensor":
        """Return a new tensor sharing data but cut off from the graph."""
        return Tensor(self.data, requires_grad=False)

    def numpy(self) -> np.ndarray:
        """Return the underlying array (not a copy)."""
        return self.data

    def item(self) -> float:
        return float(self.data)

    def zero_grad(self) -> None:
        self.grad = None

    def _accumulate_grad(self, grad: np.ndarray) -> None:
        grad = unbroadcast(grad, self.data.shape)
        if self.grad is None:
            self.grad = grad.copy() if grad.base is not None else grad
        else:
            self.grad = self.grad + grad

    def backward(self, grad: Optional[np.ndarray] = None) -> None:
        """Backpropagate from this tensor through the recorded graph.

        ``grad`` defaults to ones for scalar outputs (the common loss case);
        a non-scalar output requires an explicit upstream gradient.

        Raises :class:`RuntimeError` on tape-free tensors — results of ops
        run under :func:`~repro.autograd.grad_mode.no_grad`, detached
        tensors, or constants — instead of silently doing nothing.
        """
        if not self.requires_grad and self._backward is None:
            raise RuntimeError(
                "backward() on a tensor that does not require grad and has "
                "no recorded tape (created under no_grad(), detached, or a "
                "constant)")
        if grad is None:
            if self.data.size != 1:
                raise ValueError(
                    "backward() on a non-scalar tensor requires an explicit "
                    f"gradient (shape {self.shape})"
                )
            grad = np.ones_like(self.data)
        else:
            grad = as_array(grad)
            if grad.shape != self.data.shape:
                raise ValueError(
                    f"gradient shape {grad.shape} does not match tensor shape "
                    f"{self.shape}"
                )

        order = _topological_order(self)
        grads: dict[int, np.ndarray] = {id(self): grad}
        for node in order:
            node_grad = grads.pop(id(node), None)
            if node_grad is None:
                continue
            if node.requires_grad and node._backward is None:
                # Leaf tensor: store the accumulated gradient.
                node._accumulate_grad(node_grad)
            if node._backward is not None:
                node._backward(node_grad, grads)

    # ------------------------------------------------------------------
    # Operator sugar (implemented in ops.py to avoid circular logic here)
    # ------------------------------------------------------------------
    def __add__(self, other):
        from . import ops

        return ops.add(self, other)

    __radd__ = __add__

    def __sub__(self, other):
        from . import ops

        return ops.sub(self, other)

    def __rsub__(self, other):
        from . import ops

        return ops.sub(other, self)

    def __mul__(self, other):
        from . import ops

        return ops.mul(self, other)

    __rmul__ = __mul__

    def __truediv__(self, other):
        from . import ops

        return ops.div(self, other)

    def __rtruediv__(self, other):
        from . import ops

        return ops.div(other, self)

    def __neg__(self):
        from . import ops

        return ops.neg(self)

    def __pow__(self, exponent):
        from . import ops

        return ops.power(self, exponent)

    def __matmul__(self, other):
        from . import ops

        return ops.matmul(self, other)

    def __getitem__(self, index):
        from . import ops

        return ops.index(self, index)

    # Reductions / shape helpers as methods for ergonomic model code.
    def sum(self, axis=None, keepdims=False):
        from . import ops

        return ops.sum(self, axis=axis, keepdims=keepdims)

    def mean(self, axis=None, keepdims=False):
        from . import ops

        return ops.mean(self, axis=axis, keepdims=keepdims)

    def reshape(self, *shape):
        from . import ops

        if len(shape) == 1 and isinstance(shape[0], (tuple, list)):
            shape = tuple(shape[0])
        return ops.reshape(self, shape)

    def transpose(self, axes=None):
        from . import ops

        return ops.transpose(self, axes)

    def norm(self, axis=None, keepdims=False, ord=2):
        from . import ops

        return ops.norm(self, axis=axis, keepdims=keepdims, ord=ord)


def _topological_order(root: Tensor) -> list:
    """Return tensors reachable from ``root`` in reverse topological order.

    Iterative DFS — model graphs here can be thousands of nodes deep
    (per-epoch loss graphs), which would overflow Python's recursion limit.
    """
    order: list[Tensor] = []
    visited: set[int] = set()
    stack: list[tuple[Tensor, bool]] = [(root, False)]
    while stack:
        node, processed = stack.pop()
        if processed:
            order.append(node)
            continue
        if id(node) in visited:
            continue
        visited.add(id(node))
        stack.append((node, True))
        for parent in node._parents:
            if id(parent) not in visited:
                stack.append((parent, False))
    order.reverse()
    return order


def tensor(data: ArrayLike, requires_grad: bool = False, name: Optional[str] = None) -> Tensor:
    """Create a leaf :class:`Tensor` (the public constructor)."""
    return Tensor(data, requires_grad=requires_grad, name=name)


def zeros(shape, requires_grad: bool = False) -> Tensor:
    return Tensor(np.zeros(shape, dtype=_DEFAULT_DTYPE), requires_grad=requires_grad)


def ones(shape, requires_grad: bool = False) -> Tensor:
    return Tensor(np.ones(shape, dtype=_DEFAULT_DTYPE), requires_grad=requires_grad)


def ensure_tensor(value: Union[Tensor, ArrayLike]) -> Tensor:
    """Coerce arrays / scalars to (constant) tensors; pass tensors through."""
    if isinstance(value, Tensor):
        return value
    return Tensor(value)


def no_grad_all(tensors: Iterable[Tensor]) -> None:
    """Clear gradients on an iterable of tensors (used by optimizers)."""
    for t in tensors:
        t.zero_grad()
