"""On-disk registry of named detector checkpoints.

A :class:`ModelRegistry` manages a directory of ``<name>.npz`` checkpoints:
save fitted detectors under stable names, enumerate what is deployed (with
header metadata, no weight loading), and hand out ready-to-serve
:class:`~repro.serve.service.DetectorService` instances.
"""

from __future__ import annotations

import pathlib
import re
import threading
from dataclasses import dataclass
from typing import Dict, List, Optional

from ..detection import BaseDetector
from ..graphs.multiplex import MultiplexGraph
from .checkpoint import CheckpointError, load_checkpoint, read_header, save_checkpoint
from .service import DetectorService

_NAME_PATTERN = re.compile(r"^[A-Za-z0-9][A-Za-z0-9._-]*$")
_SUFFIX = ".npz"


@dataclass(frozen=True)
class ModelInfo:
    """Header-level description of one registered checkpoint."""

    name: str
    path: pathlib.Path
    detector: str
    format_version: int
    num_nodes: Optional[int]
    size_bytes: int

    def describe(self) -> str:
        nodes = f"{self.num_nodes} nodes" if self.num_nodes else "n/a"
        return (f"{self.name}: {self.detector} ({nodes}, "
                f"{self.size_bytes / 1024:.1f} KiB, v{self.format_version})")


class ModelRegistry:
    """Named checkpoints under one root directory.

    Mutating operations (:meth:`save`, :meth:`delete`) are serialized by a
    per-instance lock so the exists/overwrite check and the write are
    atomic with respect to other threads of the same process — the HTTP
    gateway shares one registry across its request handler threads.
    """

    def __init__(self, root):
        self.root = pathlib.Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        self._lock = threading.Lock()

    # ------------------------------------------------------------------
    def path(self, name: str) -> pathlib.Path:
        if not _NAME_PATTERN.match(name):
            raise ValueError(
                f"invalid model name {name!r}: use letters, digits, '.', "
                "'_' and '-' only")
        return self.root / (name + _SUFFIX)

    def __contains__(self, name: str) -> bool:
        return self.path(name).exists()

    def __len__(self) -> int:
        return len(self.names())

    def names(self) -> List[str]:
        return sorted(p.name[:-len(_SUFFIX)]
                      for p in self.root.glob("*" + _SUFFIX))

    # ------------------------------------------------------------------
    def save(self, name: str, detector: BaseDetector,
             graph: Optional[MultiplexGraph] = None,
             overwrite: bool = False) -> pathlib.Path:
        """Checkpoint ``detector`` under ``name``."""
        path = self.path(name)
        with self._lock:
            if path.exists() and not overwrite:
                raise FileExistsError(
                    f"model {name!r} already registered at {path}; pass "
                    "overwrite=True to replace it")
            return save_checkpoint(path, detector, graph=graph)

    def load(self, name: str, match_dtype: bool = False) -> BaseDetector:
        path = self.path(name)
        if not path.exists():
            raise KeyError(
                f"no model named {name!r} in {self.root}; "
                f"available: {self.names()}")
        return load_checkpoint(path, match_dtype=match_dtype)

    def service(self, name: str, cache_size: int = 8,
                match_dtype: bool = True) -> DetectorService:
        """A ready-to-query service over the named checkpoint.

        ``match_dtype`` follows :class:`DetectorService`: the process
        adopts the checkpoint's training precision by default; pass
        ``False`` when serving mixed-precision checkpoints side by side.
        """
        path = self.path(name)
        if not path.exists():
            raise KeyError(
                f"no model named {name!r} in {self.root}; "
                f"available: {self.names()}")
        return DetectorService(path, cache_size=cache_size,
                               match_dtype=match_dtype)

    def delete(self, name: str) -> None:
        path = self.path(name)
        with self._lock:
            if not path.exists():
                raise KeyError(f"no model named {name!r} in {self.root}")
            path.unlink()

    # ------------------------------------------------------------------
    def describe(self, name: str) -> ModelInfo:
        """Header metadata for one checkpoint (weights stay on disk)."""
        path = self.path(name)
        header = read_header(path)
        return ModelInfo(
            name=name,
            path=path,
            detector=str(header.get("detector")),
            format_version=int(header.get("format_version", 0)),
            num_nodes=header.get("num_nodes"),
            size_bytes=path.stat().st_size,
        )

    def list_models(self) -> List[ModelInfo]:
        """Metadata for every registered checkpoint (skips unreadable files)."""
        infos = []
        for name in self.names():
            try:
                infos.append(self.describe(name))
            except CheckpointError:
                continue
        return infos
