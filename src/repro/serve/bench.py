"""Serving-latency measurement (the ``serve-bench`` CLI subcommand).

Quantifies what the persistence subsystem buys: loading a checkpoint and
answering from the warm cache versus refitting from scratch on every
request (the only option before ``repro.serve`` existed).
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Dict, Optional

from ..graphs.multiplex import MultiplexGraph
from .service import DetectorService


@dataclass(frozen=True)
class ServeBenchResult:
    """Latencies (seconds) of one serve-bench run."""

    load_seconds: float        # checkpoint -> ready detector
    cold_seconds: float        # first request (cache miss, full scoring pass)
    warm_seconds: float        # mean warm-cache request over ``requests`` calls
    warm_requests: int
    fit_seconds: Optional[float] = None   # from-scratch fit, when measured
    cache: Optional[Dict[str, float]] = None  # ServiceStats.to_dict()

    @property
    def warm_speedup_vs_cold(self) -> float:
        return self.cold_seconds / max(self.warm_seconds, 1e-12)

    @property
    def warm_speedup_vs_fit(self) -> Optional[float]:
        if self.fit_seconds is None:
            return None
        return self.fit_seconds / max(self.warm_seconds, 1e-12)

    def to_dict(self) -> Dict[str, float]:
        out = {
            "load_seconds": self.load_seconds,
            "cold_seconds": self.cold_seconds,
            "warm_seconds": self.warm_seconds,
            "warm_requests": self.warm_requests,
            "warm_speedup_vs_cold": self.warm_speedup_vs_cold,
        }
        if self.fit_seconds is not None:
            out["fit_seconds"] = self.fit_seconds
            out["warm_speedup_vs_fit"] = self.warm_speedup_vs_fit
        if self.cache is not None:
            out["cache"] = dict(self.cache)
        return out

    def render(self) -> str:
        lines = [
            f"checkpoint load   {self.load_seconds * 1e3:10.2f} ms",
            f"cold request      {self.cold_seconds * 1e3:10.2f} ms  "
            "(cache miss, full scoring pass)",
            f"warm request      {self.warm_seconds * 1e3:10.2f} ms  "
            f"(mean of {self.warm_requests}; "
            f"{self.warm_speedup_vs_cold:.1f}x vs cold)",
        ]
        if self.fit_seconds is not None:
            lines.append(
                f"from-scratch fit  {self.fit_seconds * 1e3:10.2f} ms  "
                f"(warm cache is {self.warm_speedup_vs_fit:.1f}x faster)")
        if self.cache is not None:
            lines.append(
                f"cache             hits={self.cache['hits']} "
                f"misses={self.cache['misses']} "
                f"hit_rate={self.cache['hit_rate']:.0%}")
        return "\n".join(lines)


def run_serve_bench(checkpoint_path, graph: MultiplexGraph,
                    requests: int = 20, cache_size: int = 8,
                    fit_seconds: Optional[float] = None,
                    match_dtype: bool = True) -> ServeBenchResult:
    """Measure cold-load, cold-score and warm-cache latency for a checkpoint.

    ``fit_seconds`` (measured by the caller, e.g. right after training) is
    carried through so reports can show the serve-vs-refit gap.
    ``match_dtype=False`` keeps the process precision as-is instead of
    adopting the checkpoint's (see :class:`DetectorService`); the CLI
    passes it because ``graph`` was already built at the resolved --dtype.
    """
    if requests < 1:
        raise ValueError(f"requests must be >= 1, got {requests}")

    start = time.perf_counter()
    service = DetectorService(checkpoint_path, cache_size=cache_size,
                              match_dtype=match_dtype)
    load_seconds = time.perf_counter() - start

    start = time.perf_counter()
    service.scores(graph)
    cold_seconds = time.perf_counter() - start

    start = time.perf_counter()
    for _ in range(requests):
        service.scores(graph)
    warm_seconds = (time.perf_counter() - start) / requests

    return ServeBenchResult(
        load_seconds=load_seconds,
        cold_seconds=cold_seconds,
        warm_seconds=warm_seconds,
        warm_requests=requests,
        fit_seconds=fit_seconds,
        cache=service.stats.to_dict(),
    )
