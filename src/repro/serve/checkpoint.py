"""Versioned detector checkpoints (single compressed ``.npz``).

A checkpoint turns a fitted detector into a long-lived artifact: the
trained weights, the :class:`~repro.core.config.UMGADConfig`, the fitted
anomaly scores, the fitted :class:`~repro.core.threshold.ThresholdResult`
and the learned relation importances all travel together, so a loaded
model answers ``decision_scores()`` / ``threshold()`` / ``predict()``
bitwise-identically to the in-memory model it was saved from — without
touching the training graph again.

Layout of the archive:

* ``__checkpoint_header__`` — a JSON string with ``magic``, ``format_version``,
  detector class name, JSON-able hyperparameters, shape metadata and a
  sha256 checksum over every payload array (corruption detection).
* ``param::<name>`` — one entry per trainable parameter (UMGAD only;
  baselines keep no persistent networks, see below).
* ``array::<attr>`` — every ndarray attribute of the detector instance
  (``_scores`` and any fitted per-node state a baseline keeps).
* ``threshold::smoothed`` — the smoothed score curve of the fitted
  threshold, when one was selectable.

Baselines (all 22 of them) store only scalar hyperparameters plus fitted
arrays, so the generic path reconstructs them from the header's kwargs and
the ``array::`` entries. UMGAD additionally rebuilds its networks from the
serialized config and loads the full state dict, which is what lets
``score_graph()`` run on *new* graphs after loading.
"""

from __future__ import annotations

import hashlib
import inspect
import json
import pathlib
import zipfile
import zlib
from typing import Dict, Optional, Tuple, Type

import numpy as np

from .. import chaos
from ..detection import BaseDetector
from ..graphs.io import graph_fingerprint
from ..graphs.multiplex import MultiplexGraph

MAGIC = "repro-detector-checkpoint"
# 2: the header's ``graph_fingerprint`` switched to the v2 component-digest
#    algorithm (repro.graphs.io), so v1 checkpoints' stored fingerprints
#    would silently never match again — better to reject them loudly.
FORMAT_VERSION = 2

_HEADER_KEY = "__checkpoint_header__"
_PARAM_PREFIX = "param::"
_ARRAY_PREFIX = "array::"
_SMOOTHED_KEY = "threshold::smoothed"


class CheckpointError(RuntimeError):
    """A checkpoint file is missing, corrupted, or incompatible."""


# ---------------------------------------------------------------------------
# Detector class registry
# ---------------------------------------------------------------------------

def detector_classes() -> Dict[str, Type[BaseDetector]]:
    """Class-name → class for every checkpointable detector."""
    from ..baselines import BASELINE_REGISTRY
    from ..core.model import UMGAD

    classes: Dict[str, Type[BaseDetector]] = {"UMGAD": UMGAD}
    for _category, cls in BASELINE_REGISTRY.values():
        classes[cls.__name__] = cls
    return classes


# ---------------------------------------------------------------------------
# Internals
# ---------------------------------------------------------------------------

def _payload_checksum(arrays: Dict[str, np.ndarray]) -> str:
    """sha256 over every payload array, in name order."""
    digest = hashlib.sha256()
    for name in sorted(arrays):
        value = np.ascontiguousarray(arrays[name])
        digest.update(name.encode())
        digest.update(str(value.dtype).encode())
        digest.update(repr(value.shape).encode())
        digest.update(value.tobytes())
    return digest.hexdigest()


def _json_safe(value) -> bool:
    return isinstance(value, (bool, int, float, str, type(None)))


def _fitted_threshold(detector: BaseDetector) -> Optional[object]:
    """The detector's cached/selectable ThresholdResult, or None."""
    if detector._scores is None:
        return None
    try:
        return detector.threshold()
    except ValueError:
        # e.g. fewer than 8 scores — nothing to persist.
        return None


def _split_detector(detector: BaseDetector) -> Tuple[Dict[str, object],
                                                     Dict[str, np.ndarray]]:
    """Partition instance attributes into JSON kwargs and ndarray payloads."""
    kwargs: Dict[str, object] = {}
    arrays: Dict[str, np.ndarray] = {}
    for attr, value in vars(detector).items():
        if attr == "_threshold_cache":
            continue
        if isinstance(value, np.ndarray):
            arrays[attr] = value
        elif not attr.startswith("_") and _json_safe(value):
            kwargs[attr] = value
    return kwargs, arrays


# ---------------------------------------------------------------------------
# Save
# ---------------------------------------------------------------------------

def checkpoint_payload(detector: BaseDetector,
                       graph: Optional[MultiplexGraph] = None,
                       ) -> Tuple[Dict[str, object], Dict[str, np.ndarray]]:
    """Build a checkpoint's (header, payload arrays) without writing it.

    This is the serialization half of :func:`save_checkpoint`, split out
    so the process pool (:mod:`repro.pool`) can publish the exact same
    representation into shared memory: a worker attaching the payload
    reconstructs the detector through the same
    :func:`detector_from_payload` path a file load takes, which is what
    pins process-tier scores bitwise to the thread tier.
    """
    if detector._scores is None:
        raise CheckpointError(
            f"{type(detector).__name__} has no fitted scores; fit() before "
            "saving a checkpoint")
    from ..core.model import UMGAD

    header: Dict[str, object] = {
        "magic": MAGIC,
        "format_version": FORMAT_VERSION,
        "detector": type(detector).__name__,
    }
    payload: Dict[str, np.ndarray] = {}

    trained_dtype = None
    if isinstance(detector, UMGAD):
        header["config"] = detector.config.to_dict()
        header["relation_names"] = detector._relation_names
        header["num_features"] = detector._num_features
        header["relation_importance"] = detector.relation_importance
        state = detector.state_dict()
        for name, value in state.items():
            payload[_PARAM_PREFIX + name] = value
        payload[_ARRAY_PREFIX + "_scores"] = detector.decision_scores()
        param_dtypes = {str(v.dtype) for v in state.values()}
        if len(param_dtypes) == 1:
            trained_dtype = param_dtypes.pop()
    else:
        kwargs, arrays = _split_detector(detector)
        header["kwargs"] = kwargs
        for attr, value in arrays.items():
            payload[_ARRAY_PREFIX + attr] = value

    result = _fitted_threshold(detector)
    if result is not None:
        header["threshold"] = {
            "threshold": result.threshold,
            "index": result.index,
            "num_anomalies": result.num_anomalies,
            "window": result.window,
        }
        payload[_SMOOTHED_KEY] = result.smoothed

    if graph is None and isinstance(detector, UMGAD):
        graph = detector._graph
    if graph is not None:
        header["graph_fingerprint"] = graph_fingerprint(graph)
        header["num_nodes"] = graph.num_nodes
        if trained_dtype is None:
            # Baselines keep no parameters; the training graph's attribute
            # dtype IS the precision they were fitted at (and what their
            # stored fingerprint hashes).
            trained_dtype = str(graph.x.dtype)
    else:
        # A detector reconstructed from a checkpoint has no training
        # graph, but its original header remembers the fingerprint —
        # carry the provenance through a re-serialization (activate →
        # shm publish, registry copy) so the stored-scores fast path
        # survives the round trip.
        prior = getattr(detector, "_checkpoint_header", None)
        if isinstance(prior, dict):
            for key in ("graph_fingerprint", "num_nodes"):
                if key in prior:
                    header[key] = prior[key]
            if trained_dtype is None and prior.get("dtype"):
                trained_dtype = prior["dtype"]

    # Informational: the precision the model was trained at (NOT the
    # scores' dtype — the scoring pipeline upcasts to float64). Payload
    # arrays carry their own dtypes through np.savez and load_state_dict
    # preserves them, so float32 models round-trip at float32; recorded
    # here so serving can adopt the right precision without opening the
    # payload. Older readers ignore unknown header keys — no
    # FORMAT_VERSION bump needed.
    if trained_dtype is not None:
        header["dtype"] = trained_dtype

    header["checksum"] = _payload_checksum(payload)
    return header, payload


def save_checkpoint(path, detector: BaseDetector,
                    graph: Optional[MultiplexGraph] = None) -> pathlib.Path:
    """Serialize a fitted detector to a single ``.npz`` checkpoint.

    ``graph`` (or, for UMGAD, the remembered training graph) contributes a
    fingerprint so the serving layer can recognise "this is the graph the
    stored scores belong to".
    """
    path = pathlib.Path(path)
    header, payload = checkpoint_payload(detector, graph)
    np.savez_compressed(
        path, **{_HEADER_KEY: np.array(json.dumps(header))}, **payload)
    return path


# ---------------------------------------------------------------------------
# Load
# ---------------------------------------------------------------------------

def read_header(path) -> Dict[str, object]:
    """Read and validate a checkpoint's header without loading weights."""
    path = pathlib.Path(path)
    if not path.exists():
        raise CheckpointError(f"{path}: no such checkpoint")
    try:
        with np.load(path, allow_pickle=False) as archive:
            if _HEADER_KEY not in archive.files:
                raise CheckpointError(
                    f"{path}: not a detector checkpoint (missing header)")
            raw = str(archive[_HEADER_KEY])
    except (zipfile.BadZipFile, OSError, ValueError) as exc:
        raise CheckpointError(f"{path}: unreadable checkpoint ({exc})") from exc
    try:
        header = json.loads(raw)
    except json.JSONDecodeError as exc:
        raise CheckpointError(f"{path}: corrupted header ({exc})") from exc
    if header.get("magic") != MAGIC:
        raise CheckpointError(
            f"{path}: not a detector checkpoint (magic={header.get('magic')!r})")
    version = header.get("format_version")
    if version != FORMAT_VERSION:
        raise CheckpointError(
            f"{path}: format version {version} is not supported by this "
            f"build (expected {FORMAT_VERSION})")
    return header


def load_checkpoint(path, match_dtype: bool = False) -> BaseDetector:
    """Reconstruct the detector saved by :func:`save_checkpoint`.

    Raises :class:`CheckpointError` on missing files, corrupted payloads
    (checksum mismatch) and format-version mismatches.

    ``match_dtype=True`` sets the autograd default dtype to the precision
    the checkpoint was trained at (header ``dtype``, when recorded):
    graphs built afterwards then fingerprint-match the checkpoint's
    trained graph, which is what keeps the stored-scores fast path alive
    for float32 models — a float64-coerced copy of the training graph
    hashes differently and would silently force a full rescore. It is a
    process-global switch, so it is off by default here (the bare loader
    stays side-effect free); :class:`~repro.serve.service.DetectorService`
    turns it on, being the serve-a-model-per-process entry point.
    """
    path = pathlib.Path(path)
    header = read_header(path)
    if match_dtype and header.get("dtype"):
        from ..autograd import get_default_dtype, set_default_dtype

        if str(np.dtype(get_default_dtype())) != header["dtype"]:
            set_default_dtype(header["dtype"])
    try:
        # A valid header does not imply readable payloads: truncation or a
        # bit flip past the header entry surfaces here as a zip CRC error,
        # a zlib failure, or a short read deep inside numpy — all of which
        # must come out as CheckpointError, not a numpy traceback. The
        # chaos point injects an OSError on the same path, so an injected
        # load failure takes the identical CheckpointError exit.
        chaos.fail_point("checkpoint.load", key=str(path))
        with np.load(path, allow_pickle=False) as archive:
            payload = {name: archive[name] for name in archive.files
                       if name != _HEADER_KEY}
    except (zipfile.BadZipFile, zlib.error, OSError, ValueError,
            EOFError) as exc:
        raise CheckpointError(
            f"{path}: corrupted checkpoint payload ({exc})") from exc

    return detector_from_payload(header, payload, source=str(path))


def detector_from_payload(header: Dict[str, object],
                          payload: Dict[str, np.ndarray],
                          source: str = "<payload>",
                          verify: bool = True,
                          copy: bool = True) -> BaseDetector:
    """Reconstruct a detector from a checkpoint's (header, payload).

    The reconstruction half of :func:`load_checkpoint`, shared with the
    shared-memory attach path in :mod:`repro.pool` — both entry points
    build the detector through the exact same code, so a process-tier
    worker's model is indistinguishable from a file-loaded one.

    ``source`` labels error messages (a path, or a shm manifest tag).
    ``verify`` re-checks the payload sha256 against the header.
    ``copy=False`` aliases the payload arrays directly into the detector
    (model weights, stored scores) instead of copying — the zero-copy
    mode workers use so N processes share one physical set of weights.
    """
    checksum = _payload_checksum(payload)
    if verify and checksum != header.get("checksum"):
        raise CheckpointError(
            f"{source}: payload checksum mismatch — the file is corrupted "
            f"(stored {header.get('checksum')!r:.20}, computed {checksum[:12]}…)")

    cls_name = header["detector"]
    classes = detector_classes()
    if cls_name not in classes:
        raise CheckpointError(
            f"{source}: unknown detector class {cls_name!r}; known: "
            f"{sorted(classes)}")

    params = {name[len(_PARAM_PREFIX):]: value
              for name, value in payload.items()
              if name.startswith(_PARAM_PREFIX)}
    arrays = {name[len(_ARRAY_PREFIX):]: value
              for name, value in payload.items()
              if name.startswith(_ARRAY_PREFIX)}

    from ..core.model import UMGAD
    from ..core.config import UMGADConfig

    if "_scores" not in arrays:
        # Every checkpoint stores the fitted scores (save_checkpoint
        # refuses unfitted detectors), so a missing entry means an
        # incomplete file — for baselines just as much as for UMGAD.
        raise CheckpointError(
            f"{source}: checkpoint has no stored scores entry "
            "(array::_scores); the file is incomplete")

    if cls_name == "UMGAD":
        try:
            detector: BaseDetector = UMGAD(
                UMGADConfig.from_dict(header["config"]))
            detector.build_networks(header["relation_names"],
                                    header["num_features"])
        except KeyError as exc:
            raise CheckpointError(
                f"{source}: header is missing required field {exc}") from None
        detector.load_state_dict(params, copy=copy)
        detector._scores = arrays["_scores"]
    else:
        cls = classes[cls_name]
        init_names = set(inspect.signature(cls.__init__).parameters)
        kwargs = dict(header.get("kwargs", {}))
        detector = cls(**{k: v for k, v in kwargs.items() if k in init_names})
        for attr, value in kwargs.items():
            setattr(detector, attr, value)
        for attr, value in arrays.items():
            setattr(detector, attr, value)

    _restore_threshold(detector, header, payload)
    detector._checkpoint_header = header
    return detector


def _restore_threshold(detector: BaseDetector, header: Dict[str, object],
                       payload: Dict[str, np.ndarray]) -> None:
    """Re-seed the detector's threshold cache from the stored result."""
    info = header.get("threshold")
    if info is None or detector._scores is None:
        return
    from ..core.threshold import ThresholdResult

    result = ThresholdResult(
        threshold=float(info["threshold"]),
        index=int(info["index"]),
        num_anomalies=int(info["num_anomalies"]),
        window=int(info["window"]),
        smoothed=payload.get(_SMOOTHED_KEY, np.empty(0)),
    )
    detector._threshold_cache = (detector._scores, None, result)
