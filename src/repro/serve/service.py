"""Long-lived detector serving with a fingerprint-keyed LRU result cache.

A :class:`DetectorService` loads a checkpoint (or adopts a fitted detector)
once and then answers repeated requests — full-graph scoring, per-node
lookups, top-k queries, threshold decisions and per-node explanations —
without ever refitting. Results are cached per graph *content* (the sha256
fingerprint from :func:`repro.graphs.io.graph_fingerprint`), so asking
about the same graph twice costs one dict lookup, regardless of object
identity.

The service is **thread-safe** (it sits under the threaded HTTP gateway in
:mod:`repro.server`): cache bookkeeping is guarded by an :class:`~threading.RLock`,
and concurrent misses on the same fingerprint are **dog-pile protected** —
one thread computes, the rest wait on the in-flight result instead of
launching redundant scoring passes. A :meth:`DetectorService.replace_detector`
hot-swap bumps an internal generation counter so scoring passes that were
already running against the old detector cannot poison the new detector's
cache.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import List, Optional, Tuple

import numpy as np

from .. import chaos
from ..autograd import no_grad
from ..detection import BaseDetector
from ..graphs.io import graph_fingerprint
from ..graphs.multiplex import MultiplexGraph
from ..obs.trace import annotate, span
from .checkpoint import load_checkpoint


class ServiceError(RuntimeError):
    """A serving request the loaded detector cannot answer."""


@dataclass
class ServiceStats:
    """Cache + refit telemetry for one :class:`DetectorService`."""

    hits: int = 0
    misses: int = 0
    evictions: int = 0
    #: hot-swaps performed via :meth:`DetectorService.replace_detector`
    refits: int = 0
    #: engine epochs spent across those refits (from the detectors'
    #: :class:`repro.engine.TrainState` when available)
    refit_epochs: int = 0
    #: wall-clock training seconds across those refits
    refit_seconds: float = 0.0

    @property
    def requests(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        return self.hits / self.requests if self.requests else 0.0

    def to_dict(self) -> dict:
        """JSON-able cache telemetry (serve-bench / stream reports)."""
        return {
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "requests": self.requests,
            "hit_rate": self.hit_rate,
            "refits": self.refits,
            "refit_epochs": self.refit_epochs,
            "refit_seconds": self.refit_seconds,
        }


@dataclass
class _CacheEntry:
    """Everything derived for one graph, computed lazily on demand."""

    graph: MultiplexGraph
    fingerprint: str
    scores: np.ndarray
    threshold: Optional[object] = None          # ThresholdResult
    explainer: Optional[object] = None          # AnomalyExplainer
    order: Optional[np.ndarray] = field(default=None, repr=False)

    def ranking(self) -> np.ndarray:
        if self.order is None:
            self.order = np.argsort(-self.scores)
        return self.order


@dataclass
class _InFlight:
    """One in-progress scoring pass other threads can wait on."""

    done: threading.Event = field(default_factory=threading.Event)
    entry: Optional[_CacheEntry] = None
    error: Optional[BaseException] = None


class DetectorService:
    """Load once, score many times.

    Parameters
    ----------
    model:
        A checkpoint path (anything :func:`repro.serve.checkpoint.load_checkpoint`
        accepts) or an already-fitted :class:`~repro.detection.BaseDetector`.
    cache_size:
        Maximum number of distinct graphs whose results stay cached; the
        least recently used entry is evicted beyond that.
    match_dtype:
        Forwarded to :func:`~repro.serve.checkpoint.load_checkpoint` when
        ``model`` is a path: by default the process adopts the precision
        the checkpoint was trained at, so graphs built afterwards
        fingerprint-match the trained graph (keeping the stored-scores
        fast path for float32 models). This sets the process-global
        autograd default dtype — pass ``False`` when the caller manages
        precision itself (the CLI resolves --dtype up front) or when
        serving mixed-precision checkpoints in one process; call
        :func:`repro.autograd.set_default_dtype` to restore a previous
        precision.
    """

    def __init__(self, model, cache_size: int = 8, match_dtype: bool = True):
        if cache_size < 1:
            raise ValueError(f"cache_size must be >= 1, got {cache_size}")
        if isinstance(model, BaseDetector):
            self.detector = model
            self.checkpoint_path = None
        else:
            self.detector = load_checkpoint(model, match_dtype=match_dtype)
            self.checkpoint_path = model
        #: fingerprint of the graph the stored decision_scores() belong to
        self.trained_fingerprint: Optional[str] = \
            self._infer_trained_fingerprint(self.detector)
        self.cache_size = cache_size
        self.stats = ServiceStats()
        self._cache: "OrderedDict[str, _CacheEntry]" = OrderedDict()
        # Reentrant: threshold/explain helpers take it while _entry holds it.
        self._lock = threading.RLock()
        # Serialises fresh scoring passes. score_graph() swaps the
        # detector's RNG for the duration of a pass, so two concurrent
        # passes on the same detector (distinct fingerprints — dog-pile
        # dedup only collapses identical ones) would race it and score
        # nondeterministically. One pass at a time keeps every result
        # bitwise reproducible; scaling distinct-fingerprint load is the
        # process tier's job (repro.pool), where each worker process owns
        # a private detector.
        self._score_gate = threading.Lock()
        self._inflight: dict = {}
        # Bumped by replace_detector so stale scoring passes never cache.
        self._generation = 0

    @staticmethod
    def _infer_trained_fingerprint(detector: BaseDetector) -> Optional[str]:
        header = getattr(detector, "_checkpoint_header", {}) or {}
        fingerprint = header.get("graph_fingerprint")
        if fingerprint is None:
            trained_graph = getattr(detector, "_graph", None)
            if trained_graph is not None:
                fingerprint = graph_fingerprint(trained_graph)
        return fingerprint

    @staticmethod
    def _training_telemetry(detector: BaseDetector,
                            train_state=None) -> Tuple[int, float]:
        """(epochs, seconds) a refit spent training, best effort.

        Engine-trained detectors carry a :class:`repro.engine.TrainState`
        (``train_state`` attribute) with exact numbers; otherwise fall back
        to ``loss_history`` length and the detector's epoch timer.
        """
        state = train_state if train_state is not None else \
            getattr(detector, "train_state", None)
        if state is not None:
            return int(state.epochs_run), float(state.total_seconds)
        history = getattr(detector, "loss_history", None) or []
        timer = getattr(detector, "timer", None)
        seconds = float(timer.total("epoch")) if timer is not None else 0.0
        return len(history), seconds

    def replace_detector(self, detector: BaseDetector,
                         train_state=None) -> Tuple[int, float]:
        """Hot-swap the served detector (e.g. after a drift-triggered refit).

        Clears the result cache — cached entries belong to the old
        detector — and re-derives the trained-graph fingerprint from the
        new one. The refit's training cost (epochs / wall-clock seconds,
        from ``train_state`` or the detector's own engine telemetry) is
        accumulated into :class:`ServiceStats` and returned, so callers
        (the stream monitor's refit alerts) can report the per-refit cost
        without diffing the cumulative stats.
        """
        if not isinstance(detector, BaseDetector):
            raise TypeError(
                f"replace_detector needs a fitted BaseDetector, got "
                f"{type(detector).__name__}")
        epochs, seconds = self._training_telemetry(detector, train_state)
        fingerprint = self._infer_trained_fingerprint(detector)
        with self._lock:
            self._generation += 1
            self.detector = detector
            self.checkpoint_path = None
            self.trained_fingerprint = fingerprint
            self._cache.clear()
            self.stats.refits += 1
            self.stats.refit_epochs += epochs
            self.stats.refit_seconds += seconds
        return epochs, seconds

    # ------------------------------------------------------------------
    # Cache plumbing
    # ------------------------------------------------------------------
    def _compute_scores(self, graph: MultiplexGraph,
                        fingerprint: str) -> np.ndarray:
        # Deterministic fault injection: a fault keyed on this fingerprint
        # poisons exactly this request's scoring pass (chaos tests pin
        # that herd-mates on other fingerprints keep scoring normally).
        chaos.fail_point("service.score", key=fingerprint)
        detector = self.detector
        if fingerprint == self.trained_fingerprint and \
                detector._scores is not None:
            annotate("score_source", "stored")
            return detector.decision_scores()
        score_graph = getattr(detector, "score_graph", None)
        if score_graph is None:
            raise ServiceError(
                f"{type(detector).__name__} keeps no reusable networks, so "
                "it can only serve the graph it was fitted on (fingerprint "
                "mismatch); refit or serve a UMGAD checkpoint instead")
        from contextlib import nullcontext

        from ..core.scoring import fast_score_enabled

        # Serving is inference by definition: run the request tape-free
        # through the grad-free scoring engine — unless
        # REPRO_DISABLE_FAST_SCORE=1 asks for the sequential
        # tape-recording fallback end to end.
        with self._score_gate, span("service.score_pass"), \
                (no_grad() if fast_score_enabled() else nullcontext()):
            return score_graph(graph)

    def _entry(self, graph: MultiplexGraph,
               fingerprint: Optional[str] = None) -> _CacheEntry:
        if fingerprint is None:
            fingerprint = graph_fingerprint(graph)
        leader = False
        with self._lock:
            entry = self._cache.get(fingerprint)
            if entry is not None:
                self.stats.hits += 1
                self._cache.move_to_end(fingerprint)
                annotate("cache", "hit")
                return entry
            waiter = self._inflight.get(fingerprint)
            if waiter is None:
                # This thread becomes the leader and computes.
                leader = True
                waiter = _InFlight()
                self._inflight[fingerprint] = waiter
                generation = self._generation
        if leader:
            annotate("cache", "miss")
            return self._compute_entry(graph, fingerprint, waiter, generation)
        # Follower: another thread is already scoring this fingerprint;
        # wait for its result instead of duplicating the pass (dog-pile
        # protection for the threaded server's worst case — a thundering
        # herd of identical cold requests).
        annotate("cache", "wait")
        waiter.done.wait()
        if waiter.error is not None:
            raise waiter.error
        with self._lock:
            self.stats.hits += 1
        return waiter.entry

    def _compute_entry(self, graph: MultiplexGraph, fingerprint: str,
                       waiter: _InFlight, generation: int) -> _CacheEntry:
        """Leader path: run the scoring pass, publish, wake followers."""
        try:
            scores = self._compute_scores(graph, fingerprint)
        except BaseException as exc:
            with self._lock:
                waiter.error = exc
                self._inflight.pop(fingerprint, None)
            waiter.done.set()
            raise
        entry = _CacheEntry(graph=graph, fingerprint=fingerprint,
                            scores=scores)
        with self._lock:
            self.stats.misses += 1
            if self._generation == generation:
                # Skip caching when the detector was hot-swapped mid-pass:
                # these scores belong to the replaced detector.
                self._cache[fingerprint] = entry
                while len(self._cache) > self.cache_size:
                    self._cache.popitem(last=False)
                    self.stats.evictions += 1
            waiter.entry = entry
            self._inflight.pop(fingerprint, None)
        waiter.done.set()
        return entry

    def clear_cache(self) -> None:
        with self._lock:
            self._cache.clear()

    def seed_cache(self, graph: MultiplexGraph, fingerprint: str,
                   scores: np.ndarray) -> None:
        """Insert an externally computed result without a scoring pass.

        The process tier uses this: a worker process scored the batch,
        and the leader seeds its own cache with the result so follow-up
        fingerprint-only requests, warm-status probes and threshold /
        explain queries behave exactly as if the thread tier had scored
        it here. Does not count as a hit or a miss — the pool records
        its own dispatch telemetry.
        """
        entry = _CacheEntry(graph=graph, fingerprint=fingerprint,
                            scores=scores)
        with self._lock:
            self._cache[fingerprint] = entry
            self._cache.move_to_end(fingerprint)
            while len(self._cache) > self.cache_size:
                self._cache.popitem(last=False)
                self.stats.evictions += 1

    def __len__(self) -> int:
        with self._lock:
            return len(self._cache)

    def cache_info(self) -> dict:
        """Occupancy of the result cache, for telemetry.

        ``bytes`` counts the numpy payloads retained per entry (scores,
        ranking order, and the cached graph's attribute matrix, edge
        lists, and lazily-built relation operator caches) — the memory the
        LRU actually pins.
        """
        with self._lock:
            entries = len(self._cache)
            total = 0
            for entry in self._cache.values():
                total += int(entry.scores.nbytes)
                if entry.order is not None:
                    total += int(entry.order.nbytes)
                graph = entry.graph
                total += int(graph.x.nbytes)
                for _name, relation in graph:
                    total += int(relation.edges.nbytes)
                    total += relation.cache_info()["bytes"]
            return {
                "entries": entries,
                "capacity": self.cache_size,
                "bytes": total,
                "inflight": len(self._inflight),
            }

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def scores(self, graph: MultiplexGraph,
               fingerprint: Optional[str] = None) -> np.ndarray:
        """Per-node anomaly scores for ``graph`` (cached).

        ``fingerprint`` lets callers that already know the graph's content
        hash — the incremental builder in :mod:`repro.stream` maintains it
        in O(delta) — skip the full rehash. It MUST equal
        :func:`~repro.graphs.io.graph_fingerprint` of ``graph``.
        """
        with span("service.scores") as sp:
            entry = self._entry(graph, fingerprint)
            sp.set("nodes", int(entry.scores.size))
            return entry.scores

    def cached_scores(self, fingerprint: str) -> Optional[np.ndarray]:
        """Scores for a fingerprint *without* the graph, or ``None``.

        Answers from the LRU cache, or from the detector's stored fitted
        scores when ``fingerprint`` is the trained graph's. The HTTP
        gateway (:mod:`repro.server`) uses this for fingerprint-only
        ``/v1/score`` requests, which carry no edge/attribute payload and
        therefore can only be served from warm state.
        """
        with self._lock:
            entry = self._cache.get(fingerprint)
            if entry is not None:
                self.stats.hits += 1
                self._cache.move_to_end(fingerprint)
                return entry.scores
            if fingerprint == self.trained_fingerprint and \
                    self.detector._scores is not None:
                self.stats.hits += 1
                return self.detector.decision_scores()
        return None

    def is_warm(self, fingerprint: str) -> bool:
        """True when this fingerprint needs no new scoring pass: its
        scores are cached, already being computed by another thread, or
        stored from the fit. The micro-batcher uses this to skip the
        batching linger — lingering only buys anything when the batch
        would otherwise pay a fresh pass."""
        with self._lock:
            if fingerprint in self._cache or fingerprint in self._inflight:
                return True
            return fingerprint == self.trained_fingerprint and \
                self.detector._scores is not None

    def cached_threshold(self, fingerprint: str):
        """Threshold result for a cached fingerprint, or ``None`` on miss."""
        detector = None
        with self._lock:
            entry = self._cache.get(fingerprint)
            if entry is None and fingerprint == self.trained_fingerprint \
                    and self.detector._scores is not None:
                detector = self.detector
        # Selection is O(n log n) over the scores — run it after releasing
        # the (reentrant) lock so cache hits elsewhere are not blocked.
        if entry is not None:
            return self._entry_threshold(entry)
        if detector is not None:
            return detector.threshold()
        return None

    def score_node(self, graph: MultiplexGraph, node: int) -> float:
        """One node's anomaly score."""
        scores = self.scores(graph)
        node = int(node)
        if not 0 <= node < scores.size:
            raise IndexError(f"node {node} out of range [0, {scores.size})")
        return float(scores[node])

    def top_k(self, graph: MultiplexGraph,
              k: int = 10) -> List[Tuple[int, float]]:
        """The ``k`` highest-scoring nodes as (node, score) pairs."""
        entry = self._entry(graph)
        with self._lock:
            order = entry.ranking()[:max(int(k), 0)]
        return [(int(i), float(entry.scores[i])) for i in order]

    def _entry_threshold(self, entry: _CacheEntry):
        from ..core.threshold import select_threshold

        with self._lock:
            if entry.threshold is not None:
                return entry.threshold
            trained = entry.fingerprint == self.trained_fingerprint
            detector = self.detector
        # Select outside the lock (it is O(n log n) over the scores) and
        # publish under it; concurrent selectors race benignly — first
        # result wins, same inputs either way.
        if trained:
            # reuse the fitted (possibly checkpoint-restored) result
            result = detector.threshold()
        else:
            result = select_threshold(entry.scores)
        with self._lock:
            if entry.threshold is None:
                entry.threshold = result
            return entry.threshold

    def threshold(self, graph: MultiplexGraph):
        """The label-free inflection-point threshold for ``graph``'s scores."""
        return self._entry_threshold(self._entry(graph))

    def predict(self, graph: MultiplexGraph) -> np.ndarray:
        """0/1 anomaly flags under the unsupervised threshold."""
        entry = self._entry(graph)
        result = self._entry_threshold(entry)
        return (entry.scores >= result.threshold).astype(np.int64)

    def explain(self, graph: MultiplexGraph, node: int, top_features: int = 5):
        """Evidence bundle for one node (UMGAD checkpoints only)."""
        from ..core.explain import AnomalyExplainer
        from ..core.model import UMGAD

        if not isinstance(self.detector, UMGAD):
            raise ServiceError(
                f"explanations need a UMGAD checkpoint, got "
                f"{type(self.detector).__name__}")
        entry = self._entry(graph)
        with self._lock:
            explainer = entry.explainer
            detector = self.detector
        if explainer is None:
            # Built outside the lock (full forward passes); first one in
            # publishes, racers discard their copy.
            explainer = AnomalyExplainer(detector, graph,
                                         scores=entry.scores)
            with self._lock:
                if entry.explainer is None:
                    entry.explainer = explainer
                explainer = entry.explainer
        return explainer.explain(node, top_features=top_features)
