"""Model persistence + detector serving.

Turns fitted detectors into long-lived, queryable artifacts:

* :mod:`repro.serve.checkpoint` — versioned, checksummed ``.npz``
  checkpoints with a bitwise ``decision_scores()`` round-trip guarantee;
* :mod:`repro.serve.service` — :class:`DetectorService`, load-once /
  score-many with an LRU cache keyed by graph fingerprint;
* :mod:`repro.serve.registry` — :class:`ModelRegistry`, named checkpoints
  on disk;
* :mod:`repro.serve.bench` — cold-vs-warm serving latency measurement.
"""

from .bench import ServeBenchResult, run_serve_bench
from .checkpoint import (
    FORMAT_VERSION,
    CheckpointError,
    checkpoint_payload,
    detector_classes,
    detector_from_payload,
    load_checkpoint,
    read_header,
    save_checkpoint,
)
from .registry import ModelInfo, ModelRegistry
from .service import DetectorService, ServiceError, ServiceStats

__all__ = [
    "FORMAT_VERSION",
    "CheckpointError",
    "DetectorService",
    "ModelInfo",
    "ModelRegistry",
    "ServeBenchResult",
    "ServiceError",
    "ServiceStats",
    "checkpoint_payload",
    "detector_classes",
    "detector_from_payload",
    "load_checkpoint",
    "read_header",
    "run_serve_bench",
    "save_checkpoint",
]
