"""Scoring worker process: attach shared weights, answer batches over a pipe.

One worker = one OS process owning a private GIL. It attaches the
leader's shared-memory checkpoint (:class:`~repro.pool.shm.SharedCheckpoint`),
reconstructs the detector **zero-copy** through the exact
:func:`~repro.serve.checkpoint.detector_from_payload` path a file load
takes, wraps it in its own :class:`~repro.serve.service.DetectorService`
(per-worker LRU over distinct graphs), and then loops on its pipe:

* ``("score", req_id, graph_payload, fingerprint)`` → scores the graph
  through the same grad-free kernels as the thread tier (bitwise parity)
  and replies ``("ok", req_id, scores, telemetry)``.
* ``("reload", manifest)`` → atomically retargets to a new checkpoint
  generation (hot-swap); the previous generation's mappings are closed
  only after the new detector is live.
* ``("ping", req_id)`` → liveness + cache telemetry.
* ``("stop",)`` → clean exit.

Errors never kill the loop: scoring failures are serialized back as
``("err", req_id, kind, message)`` and re-raised leader-side as the
matching exception type, so the gateway's 409/500/breaker semantics are
identical across tiers. The worker exits via ``os._exit`` so a forked
child can never run the parent's ``atexit`` hooks (pytest ledgers, WAL
checkpoints) a second time.

Graphs travel as compact ``(x, {relation: edges})`` payloads, not
pickled objects — lazily-built propagator caches stay out of the pipe.
"""

from __future__ import annotations

import os
import signal
import time
from typing import Optional

import numpy as np

from .. import chaos
from ..graphs.graph import RelationGraph
from ..graphs.multiplex import MultiplexGraph
from ..serve.checkpoint import CheckpointError, detector_from_payload
from ..serve.service import DetectorService, ServiceError
from .shm import SharedCheckpoint, SharedMemoryError

#: exception kinds a worker reports that the leader re-raises typed;
#: anything else comes back as a RuntimeError with the original repr
_TYPED_ERRORS = {
    "ServiceError": ServiceError,
    "CheckpointError": CheckpointError,
    "SharedMemoryError": SharedMemoryError,
    "ValueError": ValueError,
    "KeyError": KeyError,
    "IndexError": IndexError,
    "ChaosError": chaos.ChaosError,
}


def encode_graph(graph: MultiplexGraph) -> dict:
    """Compact pipe representation: attributes + per-relation edges only."""
    return {
        "x": graph.x,
        "relations": {name: relation.edges
                      for name, relation in graph},
    }


def decode_graph(payload: dict) -> MultiplexGraph:
    """Rebuild the graph a leader encoded; edges are already canonical."""
    x = payload["x"]
    num_nodes = int(x.shape[0])
    relations = {
        name: RelationGraph(num_nodes, edges, name=name, validated=True)
        for name, edges in payload["relations"].items()
    }
    return MultiplexGraph(x=x, relations=relations)


def rebuild_error(kind: str, message: str) -> BaseException:
    """Leader-side: turn a worker's ``("err", ...)`` reply back into a
    typed exception so gateway error mapping matches the thread tier."""
    cls = _TYPED_ERRORS.get(kind)
    if cls is not None:
        return cls(message)
    return RuntimeError(f"worker {kind}: {message}")


class _WorkerState:
    """The attached checkpoint + service for the current generation."""

    def __init__(self, manifest: dict, cache_size: int):
        self.shared = SharedCheckpoint.attach(manifest)
        header = self.shared.header
        dtype = header.get("dtype")
        if dtype:
            # Same contract as DetectorService(match_dtype=True): graphs
            # decoded in this process must fingerprint-match what the
            # leader hashed, so adopt the checkpoint's precision.
            from ..autograd import get_default_dtype, set_default_dtype

            if str(np.dtype(get_default_dtype())) != dtype:
                set_default_dtype(dtype)
        detector = detector_from_payload(
            header, self.shared.arrays(),
            source=f"shm:gen{self.shared.generation}", copy=False)
        self.service = DetectorService(detector, cache_size=cache_size)
        self.generation = self.shared.generation

    def close(self) -> None:
        # Drop the service (and its cached graphs) before unmapping the
        # segments its detector's parameters alias.
        self.service = None
        self.shared.close()


def worker_main(conn, manifest: dict, worker_id: int,
                cache_size: int = 8) -> None:
    """Entry point of one scoring worker process (runs until ``stop``)."""
    # The leader owns lifecycle; a Ctrl-C on the foreground process group
    # must not take workers down mid-batch (close() will).
    try:
        signal.signal(signal.SIGINT, signal.SIG_IGN)
    except (ValueError, OSError):  # pragma: no cover - exotic platforms
        pass
    state: Optional[_WorkerState] = None
    requests = 0
    try:
        state = _WorkerState(manifest, cache_size)
        conn.send(("ready", worker_id, state.generation))
        while True:
            try:
                message = conn.recv()
            except (EOFError, OSError):
                # Leader went away without a stop message (crash); there
                # is nobody left to serve.
                break
            op = message[0]
            if op == "stop":
                break
            if op == "score":
                _req, req_id, graph_payload, fingerprint = message
                started = time.perf_counter()
                try:
                    chaos.fail_point("pool.worker", key=fingerprint)
                    graph = decode_graph(graph_payload)
                    scores = state.service.scores(graph, fingerprint)
                except BaseException as exc:  # noqa: BLE001 - serialized
                    conn.send(("err", req_id, type(exc).__name__, str(exc)))
                else:
                    requests += 1
                    stats = state.service.stats
                    conn.send(("ok", req_id, scores, {
                        "worker": worker_id,
                        "generation": state.generation,
                        "wall_ms": (time.perf_counter() - started) * 1e3,
                        "cache_hits": stats.hits,
                        "cache_misses": stats.misses,
                    }))
            elif op == "reload":
                _req, new_manifest = message
                try:
                    fresh = _WorkerState(new_manifest, cache_size)
                except BaseException as exc:  # noqa: BLE001 - serialized
                    # Keep serving the old generation — a failed hot-swap
                    # must leave the worker usable, mirroring the
                    # gateway's activate() contract.
                    conn.send(("err", "reload", type(exc).__name__,
                               str(exc)))
                else:
                    old, state = state, fresh
                    if old is not None:
                        old.close()
                    conn.send(("reloaded", worker_id, state.generation))
            elif op == "ping":
                _req, req_id = message
                stats = state.service.stats if state is not None else None
                conn.send(("pong", req_id, {
                    "worker": worker_id,
                    "pid": os.getpid(),
                    "generation": state.generation if state else None,
                    "requests": requests,
                    "cache_hits": stats.hits if stats else 0,
                    "cache_misses": stats.misses if stats else 0,
                }))
            else:
                conn.send(("err", None, "ProtocolError",
                           f"unknown worker op {op!r}"))
    except BaseException:  # noqa: BLE001 - last-resort: die visibly
        pass
    finally:
        if state is not None:
            state.close()
        try:
            conn.close()
        except OSError:  # pragma: no cover
            pass
        # NEVER run the forked parent's atexit/teardown machinery here
        # (pytest ledger writers, WAL checkpointers would fire twice).
        os._exit(0)


__all__ = ["decode_graph", "encode_graph", "rebuild_error", "worker_main"]
