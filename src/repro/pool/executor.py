"""Process-pool leader: fork scoring workers over a shared checkpoint.

:class:`ProcessPool` is the leader half of the process execution tier.
It publishes the active detector's checkpoint payload into shared memory
once (:class:`~repro.pool.shm.SharedModelStore`), forks ``workers``
scoring processes that attach it zero-copy, and dispatches scoring work
over per-worker pipes:

* **Sticky routing** — a fingerprint always lands on the same worker
  (crc32 modulo pool size), so each worker's private LRU cache stays hot
  for its slice of the fingerprint space while *distinct* fingerprints
  fan out across processes (the herd case the thread tier serializes on
  the GIL).
* **Generation pinning** — every dispatch holds a reference on the
  checkpoint generation it was routed against; ``publish_detector()``
  hot-swaps all workers to a new generation and the old segments are
  unlinked only when the last in-flight batch drains.
* **Crash rescue** — a worker that dies mid-batch (EOF/broken pipe/recv
  timeout) is killed, respawned from the current manifest, and the batch
  retried a bounded number of times; a watchdog respawns workers that die
  *idle*. SIGKILLed workers leak nothing — the leader owns the segments.
* **Chaos** — ``pool.dispatch`` (leader, pre-send) and ``pool.worker``
  (child, pre-score) fail points let the fault-injection suite exercise
  both sides of the pipe.

The pool raises :class:`PoolUnavailable` from ``__init__`` when the
platform has no usable POSIX shared memory; the gateway catches that and
falls back to the in-process thread tier.
"""

from __future__ import annotations

import multiprocessing
import os
import threading
import time
import zlib
from typing import Dict, List, Optional

import numpy as np

from .. import chaos
from ..graphs.multiplex import MultiplexGraph
from ..obs.trace import span
from ..serve.checkpoint import checkpoint_payload
from .shm import (
    SharedMemoryError,
    SharedModelStore,
    list_segments,
    reclaim_stale_segments,
    shm_available,
)
from .worker import encode_graph, rebuild_error, worker_main

#: environment override for the multiprocessing start method
_START_ENV = "REPRO_POOL_START"

#: how long to wait for a freshly spawned worker's "ready" handshake
_READY_TIMEOUT = 60.0

#: default ceiling on one batch's round trip before the worker is
#: declared wedged and respawned (scoring a cold graph is seconds, not
#: minutes, at the dataset sizes this project serves)
_DEFAULT_SCORE_TIMEOUT = 300.0

#: how many times a batch is retried after a worker crash
_MAX_RETRIES = 2

_WATCHDOG_INTERVAL = 1.0


class PoolUnavailable(RuntimeError):
    """The process tier cannot run here (no shm, spawn failure, closed)."""


class _Worker:
    """Leader-side handle for one scoring process."""

    __slots__ = ("worker_id", "process", "conn", "lock", "requests",
                 "errors", "respawns", "generation")

    def __init__(self, worker_id: int):
        self.worker_id = worker_id
        self.process = None
        self.conn = None
        self.lock = threading.Lock()
        self.requests = 0
        self.errors = 0
        self.respawns = 0
        self.generation: Optional[int] = None

    @property
    def pid(self) -> Optional[int]:
        return self.process.pid if self.process is not None else None

    @property
    def alive(self) -> bool:
        return self.process is not None and self.process.is_alive()

    def rss_bytes(self) -> int:
        """Resident set size of the worker process (Linux; 0 elsewhere)."""
        if not self.alive:
            return 0
        try:
            with open(f"/proc/{self.process.pid}/statm") as fh:
                fields = fh.read().split()
            return int(fields[1]) * os.sysconf("SC_PAGE_SIZE")
        except (OSError, IndexError, ValueError):
            return 0


class ProcessPool:
    """N forked scoring workers sharing one shm copy of the checkpoint.

    Parameters
    ----------
    detector:
        The fitted detector to publish (must be checkpointable — the pool
        serializes it through :func:`repro.serve.checkpoint.checkpoint_payload`).
    workers:
        Number of scoring processes.
    graph:
        Optional training graph, forwarded to ``checkpoint_payload`` so
        the published header carries the trained-graph fingerprint
        (enables workers' stored-scores fast path).
    cache_size:
        Per-worker :class:`~repro.serve.service.DetectorService` LRU size.
    score_timeout:
        Seconds one dispatched batch may take before its worker is
        declared wedged and respawned.
    start_method:
        multiprocessing start method; defaults to ``$REPRO_POOL_START``,
        then ``fork`` where available (workers then inherit nothing but
        page-table entries). Create the pool **before** starting any
        threads when using fork.
    """

    def __init__(self, detector, workers: int = 2,
                 graph: Optional[MultiplexGraph] = None,
                 cache_size: int = 8,
                 score_timeout: float = _DEFAULT_SCORE_TIMEOUT,
                 start_method: Optional[str] = None):
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        if not shm_available():
            raise PoolUnavailable(
                "POSIX shared memory is unavailable; process tier cannot "
                "run here (falling back to threads is the caller's job)")
        self.reclaimed_segments = reclaim_stale_segments()
        self.cache_size = int(cache_size)
        self.score_timeout = float(score_timeout)
        self._lock = threading.Lock()
        self._closed = False
        self.dispatches = 0
        self.retries = 0
        self.worker_deaths = 0

        method = start_method or os.environ.get(_START_ENV)
        if method is None:
            method = ("fork" if "fork" in
                      multiprocessing.get_all_start_methods() else None)
        self._ctx = (multiprocessing.get_context(method)
                     if method else multiprocessing.get_context())

        self._store = SharedModelStore()
        try:
            header, payload = checkpoint_payload(detector, graph)
            self._store.publish(header, payload)
            self._workers: List[_Worker] = []
            for worker_id in range(int(workers)):
                worker = _Worker(worker_id)
                self._spawn(worker)
                self._workers.append(worker)
        except PoolUnavailable:
            self._abort()
            raise
        except (SharedMemoryError, OSError, ValueError) as exc:
            self._abort()
            raise PoolUnavailable(f"process pool startup failed: {exc}") \
                from exc

        self._watchdog_stop = threading.Event()
        self._watchdog = threading.Thread(
            target=self._watch, name="repro-pool-watchdog", daemon=True)
        self._watchdog.start()

    def _abort(self) -> None:
        """Best-effort teardown for a pool that never finished starting."""
        for worker in getattr(self, "_workers", []):
            if worker.process is not None and worker.process.is_alive():
                worker.process.kill()
        try:
            self._store.close()
        except SharedMemoryError:  # pragma: no cover
            pass

    # ------------------------------------------------------------------
    # Worker lifecycle
    # ------------------------------------------------------------------
    def _spawn(self, worker: _Worker) -> None:
        """(Re)start one worker from the current manifest. Caller must
        hold ``worker.lock`` when respawning a live slot."""
        manifest = self._store.manifest()
        parent_conn, child_conn = self._ctx.Pipe()
        process = self._ctx.Process(
            target=worker_main,
            args=(child_conn, manifest, worker.worker_id, self.cache_size),
            name=f"repro-pool-worker-{worker.worker_id}",
            daemon=True,
        )
        process.start()
        child_conn.close()
        if not parent_conn.poll(_READY_TIMEOUT):
            process.kill()
            raise PoolUnavailable(
                f"worker {worker.worker_id} did not come up within "
                f"{_READY_TIMEOUT:.0f}s")
        reply = parent_conn.recv()
        if reply[0] != "ready":
            process.kill()
            raise PoolUnavailable(
                f"worker {worker.worker_id} failed to initialise: {reply!r}")
        worker.process = process
        worker.conn = parent_conn
        worker.generation = reply[2]

    def _respawn(self, worker: _Worker) -> None:
        """Kill (if needed) and restart a crashed/wedged worker."""
        if worker.process is not None and worker.process.is_alive():
            worker.process.kill()
            worker.process.join(timeout=5.0)
        if worker.conn is not None:
            try:
                worker.conn.close()
            except OSError:  # pragma: no cover
                pass
        worker.respawns += 1
        self.worker_deaths += 1
        self._spawn(worker)

    def _watch(self) -> None:
        """Respawn workers that die while idle (OOM kill, stray signal)."""
        while not self._watchdog_stop.wait(_WATCHDOG_INTERVAL):
            for worker in self._workers:
                if self._closed:
                    return
                if worker.alive:
                    continue
                # A dispatcher holding the lock is already handling this
                # death; only the watchdog path needs to volunteer.
                if worker.lock.acquire(blocking=False):
                    try:
                        if not worker.alive and not self._closed:
                            try:
                                self._respawn(worker)
                            except PoolUnavailable:
                                # Spawning will be retried next tick; the
                                # dispatcher path surfaces hard failures.
                                pass
                    finally:
                        worker.lock.release()

    # ------------------------------------------------------------------
    # Dispatch
    # ------------------------------------------------------------------
    def _pick(self, fingerprint: str) -> _Worker:
        """Sticky fingerprint → worker routing (cache affinity)."""
        index = zlib.crc32(fingerprint.encode()) % len(self._workers)
        return self._workers[index]

    def score(self, graph: MultiplexGraph, fingerprint: str) -> np.ndarray:
        """Score one (graph, fingerprint) batch on a worker process.

        Bitwise-identical to the thread tier's
        ``DetectorService.scores`` — the worker runs the same kernels on
        the same weights. Worker-side exceptions are re-raised here with
        their original type, crashes are retried on a respawned worker.
        """
        if self._closed:
            raise PoolUnavailable("process pool is closed")
        chaos.fail_point("pool.dispatch", key=fingerprint)
        payload = encode_graph(graph)
        request_id = None
        last_exc: Optional[BaseException] = None
        for attempt in range(_MAX_RETRIES + 1):
            worker = self._pick(fingerprint)
            generation = self._store.acquire()
            try:
                with span("pool.dispatch") as sp:
                    sp.set("pool.worker", worker.worker_id)
                    sp.set("pool.generation", generation)
                    sp.set("pool.attempt", attempt)
                    with worker.lock:
                        request_id = f"{fingerprint[:12]}:{self.dispatches}"
                        self.dispatches += 1
                        try:
                            worker.conn.send(
                                ("score", request_id, payload, fingerprint))
                            if not worker.conn.poll(self.score_timeout):
                                raise TimeoutError(
                                    f"worker {worker.worker_id} exceeded "
                                    f"{self.score_timeout:.0f}s")
                            reply = worker.conn.recv()
                        except (BrokenPipeError, EOFError, OSError,
                                TimeoutError) as exc:
                            worker.errors += 1
                            last_exc = exc
                            self.retries += 1
                            self._respawn(worker)
                            continue
                    if reply[0] == "err":
                        worker.errors += 1
                        raise rebuild_error(reply[2], reply[3])
                    _ok, _rid, scores, telemetry = reply
                    worker.requests += 1
                    with span("pool.worker_score") as ws:
                        ws.set("pool.worker", telemetry["worker"])
                        ws.set("pool.wall_ms",
                               round(telemetry["wall_ms"], 3))
                        ws.set("pool.generation", telemetry["generation"])
                    return scores
            finally:
                self._store.release(generation)
        raise PoolUnavailable(
            f"batch failed after {_MAX_RETRIES + 1} attempts "
            f"(last worker error: {last_exc})")

    # ------------------------------------------------------------------
    # Hot swap
    # ------------------------------------------------------------------
    def publish_detector(self, detector,
                         graph: Optional[MultiplexGraph] = None) -> int:
        """Publish a new checkpoint generation and retarget all workers.

        Atomic per worker: each reload happens under that worker's
        dispatch lock, so a batch either runs wholly on the old weights
        or wholly on the new ones. Old segments are unlinked once the
        last in-flight reference drains. Returns the new generation id.
        """
        if self._closed:
            raise PoolUnavailable("process pool is closed")
        header, payload = checkpoint_payload(detector, graph)
        manifest = self._store.publish(header, payload)
        failures: List[str] = []
        for worker in self._workers:
            with worker.lock:
                try:
                    worker.conn.send(("reload", manifest))
                    if not worker.conn.poll(_READY_TIMEOUT):
                        raise TimeoutError("reload timed out")
                    reply = worker.conn.recv()
                except (BrokenPipeError, EOFError, OSError,
                        TimeoutError) as exc:
                    # A respawn attaches the *new* manifest — the swap
                    # still converges.
                    try:
                        self._respawn(worker)
                    except PoolUnavailable as spawn_exc:
                        failures.append(
                            f"worker {worker.worker_id}: {exc} "
                            f"(respawn failed: {spawn_exc})")
                    continue
                if reply[0] == "reloaded":
                    worker.generation = reply[2]
                else:
                    failures.append(
                        f"worker {worker.worker_id}: {reply[2]}: {reply[3]}")
        if failures:
            raise PoolUnavailable(
                "hot swap incomplete: " + "; ".join(failures))
        return int(manifest["generation"])

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def size(self) -> int:
        return len(self._workers)

    @property
    def generation(self) -> int:
        return int(self._store.current_generation or 0)

    def worker_infos(self) -> List[dict]:
        """Per-worker liveness/throughput/memory snapshot (for /healthz
        deep mode, ``pool_*`` metrics and the runtime sampler)."""
        infos = []
        for worker in self._workers:
            infos.append({
                "worker": worker.worker_id,
                "pid": worker.pid,
                "alive": worker.alive,
                "requests": worker.requests,
                "errors": worker.errors,
                "respawns": worker.respawns,
                "generation": worker.generation,
                "rss_bytes": worker.rss_bytes(),
            })
        return infos

    def stats(self) -> dict:
        """Pool-level counters + shm store stats (one flat dict)."""
        shm = self._store.stats()
        return {
            "workers": len(self._workers),
            "workers_alive": sum(1 for w in self._workers if w.alive),
            "dispatches": self.dispatches,
            "retries": self.retries,
            "worker_deaths": self.worker_deaths,
            "reclaimed_at_startup": len(self.reclaimed_segments),
            **{f"shm_{key}": value for key, value in shm.items()},
        }

    def ping(self) -> List[dict]:
        """Round-trip every worker's pipe; returns their pong payloads."""
        pongs = []
        for worker in self._workers:
            with worker.lock:
                try:
                    worker.conn.send(("ping", "ping"))
                    if worker.conn.poll(5.0):
                        reply = worker.conn.recv()
                        if reply[0] == "pong":
                            pongs.append(reply[2])
                except (BrokenPipeError, EOFError, OSError):
                    continue
        return pongs

    # ------------------------------------------------------------------
    # Shutdown
    # ------------------------------------------------------------------
    def close(self, timeout: float = 10.0) -> dict:
        """Stop workers, unlink segments, report what did not die cleanly.

        Returns ``{"workers_stopped", "workers_killed", "leaked_segments"}``
        — the caller (gateway → app shutdown) logs a non-empty kill/leak
        report instead of dropping it.
        """
        with self._lock:
            if self._closed:
                return {"workers_stopped": 0, "workers_killed": 0,
                        "leaked_segments": []}
            self._closed = True
        self._watchdog_stop.set()
        self._watchdog.join(timeout=5.0)
        stopped = killed = 0
        deadline = time.monotonic() + timeout
        for worker in self._workers:
            with worker.lock:
                if worker.conn is not None:
                    try:
                        worker.conn.send(("stop",))
                    except (BrokenPipeError, OSError):
                        pass
                if worker.process is not None:
                    worker.process.join(
                        timeout=max(0.1, deadline - time.monotonic()))
                    if worker.process.is_alive():
                        worker.process.kill()
                        worker.process.join(timeout=5.0)
                        killed += 1
                    else:
                        stopped += 1
                if worker.conn is not None:
                    try:
                        worker.conn.close()
                    except OSError:  # pragma: no cover
                        pass
        self._store.close()
        leaked = [name for name in list_segments()
                  if f"-{os.getpid()}-" in name]
        return {"workers_stopped": stopped, "workers_killed": killed,
                "leaked_segments": leaked}


__all__ = ["PoolUnavailable", "ProcessPool"]
