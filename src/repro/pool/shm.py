"""POSIX shared-memory checkpoint segments for the process scoring tier.

One machine runs N scoring worker processes, but the model only exists
**once**: the leader publishes the active checkpoint's payload arrays
(model weights, fitted scores, threshold curve) into named
``multiprocessing.shared_memory`` segments and hands workers a JSON-able
*manifest* — segment names, dtypes, shapes. A worker attaches by name and
reconstructs every array as a **zero-copy view** over the mapped segment
(:class:`SharedCheckpoint`), so forking 4 or 32 workers costs four or
thirty-two page-table entries, not four or thirty-two copies of the
weights.

Lifecycle is explicit because shm segments outlive processes:

* **Generations** — every hot-swap publishes a fresh generation of
  segments (:class:`SharedModelStore`); in-flight batches hold a
  *reference* on the generation their worker is serving, and a retired
  generation is unlinked only when its last reference drains. Workers
  therefore never observe weights changing under a running scoring pass.
* **Ownership** — only the leader (the process that ``create=True``'d the
  segments) unlinks them. Workers merely close their mappings, so a
  worker killed with SIGKILL leaks nothing: its mappings die with it and
  the leader still owns the names.
* **Stale reclamation** — segment names embed the owning pid
  (``repro-pool-<pid>-g<gen>-<idx>``). :func:`reclaim_stale_segments`
  scans for segments whose owner is dead — a leader that crashed before
  ``close()`` — and unlinks them at the next startup.

Everything degrades gracefully: :func:`shm_available` probes whether the
platform actually supports POSIX shared memory, and the serving gateway
falls back to the thread tier when it does not.
"""

from __future__ import annotations

import errno
import os
import re
import threading
from contextlib import contextmanager
from typing import Dict, List, Optional, Tuple

import numpy as np

try:
    from multiprocessing import shared_memory as _shared_memory
except ImportError:  # pragma: no cover - platforms without _posixshmem
    _shared_memory = None  # type: ignore[assignment]

#: every segment this module creates starts with this prefix
SHM_PREFIX = "repro-pool"

#: where the kernel exposes POSIX shm segments as files (Linux)
_SHM_DIR = "/dev/shm"

_SEGMENT_RE = re.compile(
    rf"^{SHM_PREFIX}-(?P<pid>\d+)-g(?P<gen>\d+)-(?P<idx>\d+)$")


class SharedMemoryError(RuntimeError):
    """Publishing or attaching shared checkpoint segments failed."""


def shm_available() -> bool:
    """True when POSIX shared memory works on this platform.

    Probes by actually creating (and immediately unlinking) a 1-byte
    segment — import success alone does not guarantee a usable
    ``/dev/shm`` inside minimal containers.
    """
    if _shared_memory is None:
        return False
    try:
        probe = _shared_memory.SharedMemory(create=True, size=1)
    except (OSError, ValueError):
        return False
    try:
        probe.close()
        probe.unlink()
    except OSError:  # pragma: no cover - probe cleanup best effort
        pass
    return True


def segment_name(pid: int, generation: int, index: int) -> str:
    """The on-disk segment name: owner pid + generation + array index."""
    return f"{SHM_PREFIX}-{int(pid)}-g{int(generation)}-{int(index)}"


@contextmanager
def _suppress_tracking():
    """Keep ``SharedMemory`` attaches out of the resource tracker.

    On Python < 3.13 every ``SharedMemory()`` — attach included —
    registers the segment with the resource tracker. For worker
    processes attaching segments the *leader* owns that is exactly
    wrong twice over: a spawn-mode worker's tracker would unlink the
    leader's live segments when the worker exits, and a fork-mode worker
    shares the leader's tracker (whose cache is a set), so any
    compensating unregister strips the leader's own registration and the
    leader's eventual ``unlink()`` dies with a tracker KeyError.
    Suppressing registration during attach restores single-owner
    semantics: only the creating process tracks the segment.
    """
    try:
        from multiprocessing import resource_tracker
    except ImportError:  # pragma: no cover - no tracker, nothing to do
        yield
        return
    original = resource_tracker.register

    def _register(name, rtype):
        if rtype != "shared_memory":  # pragma: no cover - other resources
            original(name, rtype)

    resource_tracker.register = _register
    try:
        yield
    finally:
        resource_tracker.register = original


def _pid_alive(pid: int) -> bool:
    try:
        os.kill(pid, 0)
    except ProcessLookupError:
        return False
    except PermissionError:  # pragma: no cover - someone else's pid
        return True
    except OSError:  # pragma: no cover
        return False
    return True


def list_segments(prefix: str = SHM_PREFIX) -> List[str]:
    """Names of live pool segments visible on this machine (Linux)."""
    try:
        entries = os.listdir(_SHM_DIR)
    except OSError:
        return []
    return sorted(name for name in entries if name.startswith(prefix))


def reclaim_stale_segments() -> List[str]:
    """Unlink pool segments whose owning process is dead.

    A leader that crashed (or was SIGKILLed) before :meth:`SharedModelStore.close`
    leaves its segments pinned in ``/dev/shm`` forever. Segment names
    embed the owner pid, so startup can tell an orphan from a segment a
    *running* server still owns — only the former are reclaimed. Returns
    the reclaimed names.
    """
    reclaimed: List[str] = []
    if _shared_memory is None:
        return reclaimed
    for name in list_segments():
        match = _SEGMENT_RE.match(name)
        if match is None or _pid_alive(int(match.group("pid"))):
            continue
        try:
            # Attach registers with the tracker, unlink() unregisters —
            # balanced, so no suppression here.
            segment = _shared_memory.SharedMemory(name=name)
        except (OSError, ValueError):  # pragma: no cover - raced away
            continue
        try:
            segment.close()
            segment.unlink()
        except OSError:  # pragma: no cover - raced away
            continue
        reclaimed.append(name)
    return reclaimed


class SharedCheckpoint:
    """One checkpoint's payload arrays mapped into named shm segments.

    Built either by :meth:`publish` (leader: creates + copies once) or
    :meth:`attach` (worker: maps the leader's segments zero-copy). The
    reconstructed arrays are **read-only views** over the segment buffers
    — N attached workers share one physical copy of the weights, and an
    accidental in-place write in a scoring kernel raises instead of
    corrupting every sibling's model.
    """

    def __init__(self, manifest: dict, segments: List[object],
                 arrays: Dict[str, np.ndarray], owner: bool):
        self.manifest = manifest
        self._segments = segments
        self._arrays = arrays
        self.owner = owner
        self._closed = False

    # ------------------------------------------------------------------
    @classmethod
    def publish(cls, header: dict, payload: Dict[str, np.ndarray],
                generation: int, pid: Optional[int] = None) -> "SharedCheckpoint":
        """Copy ``payload`` into fresh shm segments (leader side)."""
        if _shared_memory is None:
            raise SharedMemoryError(
                "multiprocessing.shared_memory is unavailable on this "
                "platform")
        pid = os.getpid() if pid is None else int(pid)
        segments: List[object] = []
        arrays: Dict[str, np.ndarray] = {}
        entries: Dict[str, dict] = {}
        try:
            for index, name in enumerate(sorted(payload)):
                value = np.ascontiguousarray(payload[name])
                seg_name = segment_name(pid, generation, index)
                try:
                    segment = _shared_memory.SharedMemory(
                        name=seg_name, create=True,
                        size=max(int(value.nbytes), 1))
                except OSError as exc:
                    if exc.errno == errno.EEXIST:
                        # A previous same-pid generation wasn't unlinked
                        # (crash mid-publish); reclaim the name.
                        stale = _shared_memory.SharedMemory(name=seg_name)
                        stale.close()
                        stale.unlink()
                        segment = _shared_memory.SharedMemory(
                            name=seg_name, create=True,
                            size=max(int(value.nbytes), 1))
                    else:
                        raise
                segments.append(segment)
                view = np.ndarray(value.shape, dtype=value.dtype,
                                  buffer=segment.buf)
                if value.size:
                    view[...] = value
                view.flags.writeable = False
                arrays[name] = view
                entries[name] = {
                    "segment": seg_name,
                    "dtype": str(value.dtype),
                    "shape": list(value.shape),
                }
        except (OSError, ValueError) as exc:
            for segment in segments:
                try:
                    segment.close()
                    segment.unlink()
                except OSError:  # pragma: no cover
                    pass
            raise SharedMemoryError(
                f"publishing shared checkpoint failed: {exc}") from exc
        manifest = {
            "prefix": SHM_PREFIX,
            "pid": pid,
            "generation": int(generation),
            "header": dict(header),
            "arrays": entries,
        }
        return cls(manifest, segments, arrays, owner=True)

    @classmethod
    def attach(cls, manifest: dict) -> "SharedCheckpoint":
        """Map a published manifest's segments zero-copy (worker side)."""
        if _shared_memory is None:
            raise SharedMemoryError(
                "multiprocessing.shared_memory is unavailable on this "
                "platform")
        segments: List[object] = []
        arrays: Dict[str, np.ndarray] = {}
        try:
            with _suppress_tracking():
                for name, entry in manifest["arrays"].items():
                    segment = _shared_memory.SharedMemory(
                        name=entry["segment"])
                    segments.append(segment)
                    view = np.ndarray(tuple(entry["shape"]),
                                      dtype=np.dtype(entry["dtype"]),
                                      buffer=segment.buf)
                    view.flags.writeable = False
                    arrays[name] = view
        except (OSError, ValueError, KeyError) as exc:
            for segment in segments:
                try:
                    segment.close()
                except OSError:  # pragma: no cover
                    pass
            raise SharedMemoryError(
                f"attaching shared checkpoint failed: {exc}") from exc
        return cls(dict(manifest), segments, arrays, owner=False)

    # ------------------------------------------------------------------
    @property
    def header(self) -> dict:
        return self.manifest["header"]

    @property
    def generation(self) -> int:
        return int(self.manifest["generation"])

    @property
    def nbytes(self) -> int:
        """Bytes of payload mapped (== physical bytes, once per machine)."""
        return int(sum(view.nbytes for view in self._arrays.values()))

    @property
    def num_segments(self) -> int:
        return len(self._segments)

    def arrays(self) -> Dict[str, np.ndarray]:
        """Name → read-only zero-copy array view over the segments."""
        if self._closed:
            raise SharedMemoryError("shared checkpoint is closed")
        return dict(self._arrays)

    # ------------------------------------------------------------------
    def close(self) -> None:
        """Drop this process's mappings (does NOT unlink the segments)."""
        if self._closed:
            return
        self._closed = True
        # The numpy views borrow the segment buffers; drop them before
        # closing or SharedMemory.close() raises BufferError.
        self._arrays = {}
        for segment in self._segments:
            try:
                segment.close()
            except (OSError, BufferError):  # pragma: no cover
                pass

    def unlink(self) -> None:
        """Remove the segments from the machine (owner/leader only)."""
        if not self.owner:
            raise SharedMemoryError(
                "only the publishing process may unlink shared segments")
        self.close()
        for entry in self.manifest["arrays"].values():
            if _shared_memory is None:  # pragma: no cover
                break
            try:
                # Reopen registers (a set-dedup no-op here — publish
                # already registered the name) and unlink() unregisters,
                # leaving the tracker cache balanced.
                segment = _shared_memory.SharedMemory(name=entry["segment"])
            except (OSError, ValueError):
                continue
            try:
                segment.close()
                segment.unlink()
            except OSError:  # pragma: no cover - raced away
                pass


class _Generation:
    """Leader-side bookkeeping for one published checkpoint generation."""

    __slots__ = ("checkpoint", "refs", "retired")

    def __init__(self, checkpoint: SharedCheckpoint):
        self.checkpoint = checkpoint
        self.refs = 0
        self.retired = False


class SharedModelStore:
    """Refcounted, hot-swappable store of published checkpoint generations.

    ``publish()`` maps a new checkpoint payload into shm and *retires*
    every older generation; a retired generation's segments stay linked
    (and attachable) until its last outstanding reference — one per
    in-flight dispatched batch — is released. That is the contract that
    makes ``POST /v1/models/{name}/activate`` atomic from a worker's
    point of view: batches already running keep reading the weights they
    started with, new dispatches see the new generation.
    """

    def __init__(self):
        self._lock = threading.Lock()
        self._generations: Dict[int, _Generation] = {}
        self._current: Optional[int] = None
        self._next_generation = 1
        self._closed = False
        #: generations whose segments were actually unlinked (telemetry)
        self.retired_unlinked = 0

    # ------------------------------------------------------------------
    @property
    def current_generation(self) -> Optional[int]:
        with self._lock:
            return self._current

    @property
    def generations_live(self) -> int:
        with self._lock:
            return len(self._generations)

    def publish(self, header: dict, payload: Dict[str, np.ndarray]) -> dict:
        """Publish a new generation; retire (and maybe unlink) older ones.

        Returns the new generation's manifest (JSON-able; what workers
        attach from).
        """
        with self._lock:
            if self._closed:
                raise SharedMemoryError("shared model store is closed")
            generation = self._next_generation
            self._next_generation += 1
        checkpoint = SharedCheckpoint.publish(header, payload, generation)
        drop: List[SharedCheckpoint] = []
        with self._lock:
            self._generations[generation] = _Generation(checkpoint)
            self._current = generation
            for gen_id, gen in list(self._generations.items()):
                if gen_id == generation:
                    continue
                gen.retired = True
                if gen.refs == 0:
                    drop.append(gen.checkpoint)
                    del self._generations[gen_id]
                    self.retired_unlinked += 1
        for old in drop:
            old.unlink()
        return checkpoint.manifest

    def manifest(self) -> dict:
        """The current generation's manifest."""
        with self._lock:
            if self._current is None:
                raise SharedMemoryError("no generation published yet")
            return self._generations[self._current].checkpoint.manifest

    # ------------------------------------------------------------------
    def acquire(self, generation: Optional[int] = None) -> int:
        """Take a reference on ``generation`` (default: current).

        A dispatched batch holds one reference for its whole flight, so
        a concurrent hot-swap cannot unlink the weights under it.
        """
        with self._lock:
            gen_id = self._current if generation is None else int(generation)
            gen = self._generations.get(gen_id) if gen_id is not None else None
            if gen is None:
                raise SharedMemoryError(
                    f"generation {gen_id!r} is not live")
            gen.refs += 1
            return gen_id

    def release(self, generation: int) -> None:
        """Drop a reference; unlink the generation when retired + drained."""
        drop: Optional[SharedCheckpoint] = None
        with self._lock:
            gen = self._generations.get(int(generation))
            if gen is None:
                return
            gen.refs = max(0, gen.refs - 1)
            if gen.retired and gen.refs == 0:
                drop = gen.checkpoint
                del self._generations[int(generation)]
                self.retired_unlinked += 1
        if drop is not None:
            drop.unlink()

    # ------------------------------------------------------------------
    def stats(self) -> dict:
        with self._lock:
            return {
                "generation": self._current or 0,
                "generations_live": len(self._generations),
                "segments": sum(g.checkpoint.num_segments
                                for g in self._generations.values()),
                "bytes": sum(g.checkpoint.nbytes
                             for g in self._generations.values()),
                "refs": sum(g.refs for g in self._generations.values()),
                "retired_unlinked": self.retired_unlinked,
            }

    def close(self) -> None:
        """Unlink every generation regardless of refs (shutdown path)."""
        with self._lock:
            if self._closed:
                return
            self._closed = True
            generations = list(self._generations.values())
            self._generations.clear()
            self._current = None
        for gen in generations:
            gen.checkpoint.unlink()


__all__ = [
    "SHM_PREFIX",
    "SharedCheckpoint",
    "SharedMemoryError",
    "SharedModelStore",
    "list_segments",
    "reclaim_stale_segments",
    "segment_name",
    "shm_available",
]
