"""Process-pool execution tier: shared-memory weights, forked scorers.

The thread tier (:class:`~repro.server.batcher.MicroBatcher` over one
in-process :class:`~repro.serve.service.DetectorService`) coalesces
same-fingerprint herds but serializes *distinct* fingerprints on the
GIL. This package adds the second tier: the active checkpoint's payload
is published once into POSIX shared memory and N forked worker
processes attach it zero-copy, so distinct-fingerprint batches score in
true parallel while the machine still holds exactly one copy of the
weights.

* :mod:`repro.pool.shm` — :class:`SharedCheckpoint` (publish/attach
  zero-copy array views), :class:`SharedModelStore` (refcounted
  hot-swappable generations), stale-segment reclamation.
* :mod:`repro.pool.worker` — the worker-process loop: attach, rebuild
  the detector through the standard checkpoint path, serve batches over
  a pipe.
* :mod:`repro.pool.executor` — :class:`ProcessPool`, the leader: sticky
  dispatch, crash rescue + watchdog respawn, generation-pinned hot
  swaps, chaos fail points, shutdown leak report.

Select it with ``repro serve --exec-tier process``; the gateway falls
back to threads automatically when :func:`shm_available` says no.
"""

from .executor import PoolUnavailable, ProcessPool
from .shm import (
    SHM_PREFIX,
    SharedCheckpoint,
    SharedMemoryError,
    SharedModelStore,
    list_segments,
    reclaim_stale_segments,
    segment_name,
    shm_available,
)
from .worker import decode_graph, encode_graph

__all__ = [
    "SHM_PREFIX",
    "PoolUnavailable",
    "ProcessPool",
    "SharedCheckpoint",
    "SharedMemoryError",
    "SharedModelStore",
    "decode_graph",
    "encode_graph",
    "list_segments",
    "reclaim_stale_segments",
    "segment_name",
    "shm_available",
]
