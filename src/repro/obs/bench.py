"""Performance ledger: versioned benchmark records + noise-aware diffs.

Every ``benchmarks/test_*_perf.py`` timing lands here as a
:class:`BenchmarkRecord` (repetition values, median/MAD, peak RSS) inside
a per-suite :class:`Ledger` serialised to
``benchmarks/output/ledger/<suite>.json``. The ledger is what the
``repro bench`` CLI reports on and diffs: two runs of the same suite can
be compared with *noise-aware* regression detection so CI can gate on
"did this PR slow anything down" without flapping on timer jitter.

The regression rule is deliberately conservative — a benchmark is only a
``regression`` when **both** hold:

1. the median shifted by more than ``threshold`` (relative, default 25%);
2. the MAD intervals are disjoint: ``new_median - k*new_mad >
   base_median + k*base_mad`` (``k`` = ``mad_k``, default 3).

A large shift with overlapping intervals is ``noise`` (the measurements
cannot distinguish the runs); the symmetric condition yields
``improvement``. Benchmarks present in only one ledger are reported as
``added``/``removed``, never as errors — suites grow and shrink across
PRs and that is not a regression.

Pure python + stdlib json on purpose: the diff tool has to work in a CI
step that never imports numpy.
"""

from __future__ import annotations

import json
import os
import platform
import sys
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple, Union

from ..utils.timer import TimingResult, median_mad

SCHEMA_VERSION = 1

#: relative median shift below which we never flag (25%)
DEFAULT_THRESHOLD = 0.25
#: MAD multiplier defining each run's noise interval
DEFAULT_MAD_K = 3.0


def environment_fingerprint(dtype: Optional[str] = None) -> dict:
    """Versions + hardware context a ledger was recorded under."""
    try:
        import numpy
        numpy_version = numpy.__version__
    except ImportError:  # pragma: no cover - diff-only environments
        numpy_version = None
    return {
        "python": platform.python_version(),
        "numpy": numpy_version,
        "platform": sys.platform,
        "machine": platform.machine(),
        "cpu_count": os.cpu_count(),
        "dtype": dtype or os.environ.get("REPRO_DTYPE", "float64"),
    }


@dataclass(frozen=True)
class BenchmarkRecord:
    """One benchmark's ledger entry: raw reps + robust summary + RSS."""

    name: str
    values: Tuple[float, ...]
    peak_rss_bytes: Optional[int] = None
    meta: dict = field(default_factory=dict)

    def __post_init__(self):
        if not self.values:
            raise ValueError(f"benchmark {self.name!r} has no values")

    @property
    def reps(self) -> int:
        return len(self.values)

    @property
    def median(self) -> float:
        return median_mad(self.values)[0]

    @property
    def mad(self) -> float:
        return median_mad(self.values)[1]

    def to_dict(self) -> dict:
        med, mad = median_mad(self.values)
        payload = {
            "values": list(self.values),
            "reps": self.reps,
            "median": med,
            "mad": mad,
        }
        if self.peak_rss_bytes is not None:
            payload["peak_rss_bytes"] = int(self.peak_rss_bytes)
        if self.meta:
            payload["meta"] = dict(self.meta)
        return payload

    @classmethod
    def from_dict(cls, name: str, data: dict) -> "BenchmarkRecord":
        return cls(name=name,
                   values=tuple(float(v) for v in data["values"]),
                   peak_rss_bytes=data.get("peak_rss_bytes"),
                   meta=dict(data.get("meta", {})))

    @classmethod
    def from_timing(cls, timing: TimingResult,
                    peak_rss_bytes: Optional[int] = None,
                    **meta) -> "BenchmarkRecord":
        if timing.warmup:
            meta.setdefault("warmup", timing.warmup)
        return cls(name=timing.name, values=timing.values,
                   peak_rss_bytes=peak_rss_bytes, meta=meta)


@dataclass
class Ledger:
    """All benchmark records of one suite run, with environment context."""

    suite: str
    environment: dict = field(default_factory=environment_fingerprint)
    created_unix: float = field(default_factory=time.time)
    benchmarks: Dict[str, BenchmarkRecord] = field(default_factory=dict)

    def add(self, record: BenchmarkRecord) -> BenchmarkRecord:
        self.benchmarks[record.name] = record
        return record

    def record_timing(self, timing: TimingResult,
                      peak_rss_bytes: Optional[int] = None,
                      **meta) -> BenchmarkRecord:
        return self.add(BenchmarkRecord.from_timing(
            timing, peak_rss_bytes=peak_rss_bytes, **meta))

    def to_dict(self) -> dict:
        return {
            "schema": SCHEMA_VERSION,
            "suite": self.suite,
            "created_unix": self.created_unix,
            "environment": dict(self.environment),
            "benchmarks": {name: record.to_dict()
                           for name, record in sorted(self.benchmarks.items())},
        }

    def save(self, directory: Union[str, Path]) -> Path:
        directory = Path(directory)
        directory.mkdir(parents=True, exist_ok=True)
        path = directory / f"{self.suite}.json"
        path.write_text(json.dumps(self.to_dict(), indent=2,
                                   sort_keys=True) + "\n")
        return path

    @classmethod
    def from_dict(cls, data: dict) -> "Ledger":
        schema = data.get("schema")
        if schema != SCHEMA_VERSION:
            raise ValueError(
                f"unsupported ledger schema {schema!r} "
                f"(expected {SCHEMA_VERSION})")
        ledger = cls(suite=data["suite"],
                     environment=dict(data.get("environment", {})),
                     created_unix=float(data.get("created_unix", 0.0)))
        for name, record in data.get("benchmarks", {}).items():
            ledger.add(BenchmarkRecord.from_dict(name, record))
        return ledger

    @classmethod
    def load(cls, path: Union[str, Path]) -> "Ledger":
        return cls.from_dict(json.loads(Path(path).read_text()))


def load_ledgers(directory: Union[str, Path]) -> Dict[str, Ledger]:
    """All ``<suite>.json`` ledgers in ``directory``, keyed by suite."""
    directory = Path(directory)
    ledgers: Dict[str, Ledger] = {}
    if not directory.is_dir():
        return ledgers
    for path in sorted(directory.glob("*.json")):
        ledger = Ledger.load(path)
        ledgers[ledger.suite] = ledger
    return ledgers


# ---------------------------------------------------------------------------
# diffing


@dataclass(frozen=True)
class Comparison:
    """One benchmark's verdict when diffing two ledgers."""

    name: str
    verdict: str                 # ok | noise | regression | improvement
    base_median: float
    new_median: float
    base_mad: float
    new_mad: float

    @property
    def ratio(self) -> float:
        if self.base_median <= 0:
            return float("inf") if self.new_median > 0 else 1.0
        return self.new_median / self.base_median

    def describe(self) -> str:
        return (f"{self.name}: {self.verdict} "
                f"({_fmt_seconds(self.base_median)} -> "
                f"{_fmt_seconds(self.new_median)}, x{self.ratio:.2f})")


def compare_records(base: BenchmarkRecord, new: BenchmarkRecord, *,
                    threshold: float = DEFAULT_THRESHOLD,
                    mad_k: float = DEFAULT_MAD_K) -> Comparison:
    """Noise-aware verdict for one benchmark present in both ledgers."""
    base_m, base_mad = median_mad(base.values)
    new_m, new_mad = median_mad(new.values)
    verdict = "ok"
    if base_m > 0:
        shift = (new_m - base_m) / base_m
        if shift > threshold:
            slower = new_m - mad_k * new_mad > base_m + mad_k * base_mad
            verdict = "regression" if slower else "noise"
        elif shift < -threshold / (1.0 + threshold):
            # symmetric in ratio space: x1.25 up mirrors /1.25 down
            faster = new_m + mad_k * new_mad < base_m - mad_k * base_mad
            verdict = "improvement" if faster else "noise"
    elif new_m > 0:
        verdict = "regression"
    return Comparison(name=base.name, verdict=verdict,
                      base_median=base_m, new_median=new_m,
                      base_mad=base_mad, new_mad=new_mad)


@dataclass
class LedgerDiff:
    """Full diff of two ledgers of the same suite."""

    suite: str
    comparisons: List[Comparison] = field(default_factory=list)
    added: List[str] = field(default_factory=list)
    removed: List[str] = field(default_factory=list)

    @property
    def regressions(self) -> List[Comparison]:
        return [c for c in self.comparisons if c.verdict == "regression"]

    @property
    def improvements(self) -> List[Comparison]:
        return [c for c in self.comparisons if c.verdict == "improvement"]

    @property
    def clean(self) -> bool:
        return not self.regressions


def diff_ledgers(base: Ledger, new: Ledger, *,
                 threshold: float = DEFAULT_THRESHOLD,
                 mad_k: float = DEFAULT_MAD_K) -> LedgerDiff:
    """Compare two runs benchmark-by-benchmark.

    Keys present only in ``new`` are ``added``; only in ``base``,
    ``removed`` — informational, never a failure.
    """
    diff = LedgerDiff(suite=new.suite or base.suite)
    base_keys = set(base.benchmarks)
    new_keys = set(new.benchmarks)
    diff.added = sorted(new_keys - base_keys)
    diff.removed = sorted(base_keys - new_keys)
    for name in sorted(base_keys & new_keys):
        diff.comparisons.append(
            compare_records(base.benchmarks[name], new.benchmarks[name],
                            threshold=threshold, mad_k=mad_k))
    return diff


# ---------------------------------------------------------------------------
# rendering


def _fmt_seconds(seconds: float) -> str:
    if seconds >= 1.0:
        return f"{seconds:.3f}s"
    if seconds >= 1e-3:
        return f"{seconds * 1e3:.3f}ms"
    return f"{seconds * 1e6:.1f}us"


def _fmt_bytes(count: Optional[int]) -> str:
    if count is None:
        return "-"
    value = float(count)
    for unit in ("B", "KiB", "MiB", "GiB"):
        if value < 1024.0 or unit == "GiB":
            return f"{value:.1f}{unit}"
        value /= 1024.0
    return f"{value:.1f}GiB"   # pragma: no cover - loop always returns


def render_report(ledgers: Sequence[Ledger]) -> str:
    """Human-readable table of one or more suite ledgers."""
    lines: List[str] = []
    for ledger in ledgers:
        env = ledger.environment
        lines.append(f"suite {ledger.suite}  "
                     f"(python {env.get('python', '?')}, "
                     f"numpy {env.get('numpy', '?')}, "
                     f"cpus {env.get('cpu_count', '?')}, "
                     f"dtype {env.get('dtype', '?')})")
        width = max([len("benchmark")]
                    + [len(name) for name in ledger.benchmarks])
        lines.append(f"  {'benchmark'.ljust(width)}  "
                     f"{'median':>10}  {'mad':>10}  {'reps':>4}  "
                     f"{'peak rss':>10}")
        for name, record in sorted(ledger.benchmarks.items()):
            lines.append(
                f"  {name.ljust(width)}  "
                f"{_fmt_seconds(record.median):>10}  "
                f"{_fmt_seconds(record.mad):>10}  "
                f"{record.reps:>4}  "
                f"{_fmt_bytes(record.peak_rss_bytes):>10}")
        lines.append("")
    return "\n".join(lines).rstrip() + "\n"


def render_diff(diff: LedgerDiff) -> str:
    """Human-readable diff summary (what ``repro bench diff`` prints)."""
    lines = [f"suite {diff.suite}: "
             f"{len(diff.comparisons)} compared, "
             f"{len(diff.regressions)} regression(s), "
             f"{len(diff.improvements)} improvement(s), "
             f"{len(diff.added)} added, {len(diff.removed)} removed"]
    for comparison in diff.comparisons:
        marker = {"regression": "!", "improvement": "+",
                  "noise": "~"}.get(comparison.verdict, " ")
        lines.append(f"  {marker} {comparison.describe()}")
    for name in diff.added:
        lines.append(f"  A {name}: added (no baseline)")
    for name in diff.removed:
        lines.append(f"  R {name}: removed (present only in baseline)")
    return "\n".join(lines) + "\n"


__all__ = [
    "DEFAULT_MAD_K",
    "DEFAULT_THRESHOLD",
    "BenchmarkRecord",
    "Comparison",
    "Ledger",
    "LedgerDiff",
    "SCHEMA_VERSION",
    "compare_records",
    "diff_ledgers",
    "environment_fingerprint",
    "load_ledgers",
    "render_diff",
    "render_report",
]
