"""Per-stage cost tables and flamegraph-style trace rendering.

Two consumers:

* ``REPRO_PROFILE=1`` — the CLI wraps ``detect``/``score``/``experiment``
  in a trace and prints :func:`render_profile`'s aggregated per-stage
  cost table (count, wall, CPU, share of the run) afterwards;
* ``repro trace --last N`` — renders the traces served by
  ``GET /v1/traces`` as an indented span tree via :func:`render_trace_tree`.

Both operate on :meth:`repro.obs.trace.Trace.to_dict` payloads, so they
work identically on live traces and on JSON fetched over HTTP.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Union

from .trace import Trace

_TraceLike = Union[Trace, dict]


def _as_dict(trace: _TraceLike) -> dict:
    return trace.to_dict() if isinstance(trace, Trace) else trace


def aggregate_spans(trace: _TraceLike) -> List[dict]:
    """Aggregate a trace's spans by name.

    Returns rows ``{name, count, wall_ms, cpu_ms, mean_ms, share}``
    sorted by total wall time, descending. ``share`` is the fraction of
    the **root** span's wall time (> 1 is impossible for a single stage;
    the column can sum past 1 because stages nest).
    """
    payload = _as_dict(trace)
    spans = payload.get("spans", [])
    root_wall = payload.get("duration_ms") or 0.0
    if not root_wall and spans:
        root_wall = max((s["wall_ms"] for s in spans), default=0.0)
    rows: Dict[str, dict] = {}
    for span in spans:
        row = rows.setdefault(span["name"], {
            "name": span["name"], "count": 0,
            "wall_ms": 0.0, "cpu_ms": 0.0,
        })
        row["count"] += 1
        row["wall_ms"] += span["wall_ms"]
        row["cpu_ms"] += span["cpu_ms"]
    result = []
    for row in rows.values():
        row["mean_ms"] = row["wall_ms"] / row["count"]
        row["share"] = (row["wall_ms"] / root_wall) if root_wall else 0.0
        result.append(row)
    result.sort(key=lambda r: -r["wall_ms"])
    return result


def render_profile(trace: _TraceLike, title: Optional[str] = None) -> str:
    """The ``REPRO_PROFILE=1`` per-stage cost table."""
    payload = _as_dict(trace)
    rows = aggregate_spans(payload)
    total = payload.get("duration_ms")
    header = title or (f"profile: {payload.get('name', 'trace')} "
                       f"[{payload.get('trace_id', '?')}]")
    lines = [header]
    if total is not None:
        lines.append(f"total {total:.1f} ms"
                     + (f" ({payload['dropped']} span(s) dropped)"
                        if payload.get("dropped") else ""))
    if not rows:
        lines.append("(no spans recorded)")
        return "\n".join(lines)
    name_width = max(len("stage"), max(len(r["name"]) for r in rows))
    lines.append(f"{'stage':<{name_width}} {'count':>6} {'wall ms':>10} "
                 f"{'mean ms':>9} {'cpu ms':>10} {'share':>6}")
    for row in rows:
        lines.append(
            f"{row['name']:<{name_width}} {row['count']:>6d} "
            f"{row['wall_ms']:>10.1f} {row['mean_ms']:>9.2f} "
            f"{row['cpu_ms']:>10.1f} {row['share']:>5.0%}")
    return "\n".join(lines)


def render_trace_tree(trace: _TraceLike) -> str:
    """An indented parent→child rendering of one trace's spans."""
    payload = _as_dict(trace)
    spans = payload.get("spans", [])
    children: Dict[Optional[str], List[dict]] = {}
    for span in spans:
        children.setdefault(span.get("parent_id"), []).append(span)
    for siblings in children.values():
        siblings.sort(key=lambda s: s["start_ms"])

    lines = [f"trace {payload.get('trace_id', '?')} "
             f"{payload.get('name', '')} "
             + (f"{payload['duration_ms']:.1f} ms"
                if payload.get("duration_ms") is not None else "")]
    for link in payload.get("links", []):
        target = link["trace_id"]
        if link.get("span_id"):
            target += f"/{link['span_id']}"
        lines.append(f"  ~ {link['kind']} -> {target}")

    def walk(parent_id: Optional[str], depth: int) -> None:
        for span in children.get(parent_id, []):
            attrs = span.get("attributes") or {}
            attr_text = " ".join(
                f"{k}={v}" for k, v in sorted(attrs.items()))
            lines.append(
                f"{'  ' * depth}- {span['name']}  "
                f"{span['wall_ms']:.1f} ms (cpu {span['cpu_ms']:.1f})"
                + (f"  {attr_text}" if attr_text else ""))
            walk(span["span_id"], depth + 1)

    walk(None, 1)
    if payload.get("dropped"):
        lines.append(f"  … {payload['dropped']} span(s) dropped")
    return "\n".join(lines)


__all__ = ["aggregate_spans", "render_profile", "render_trace_tree"]
