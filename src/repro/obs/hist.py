"""Thread-safe latency/size histograms with Prometheus semantics.

A :class:`Histogram` accumulates observations into fixed buckets whose
upper bounds are **inclusive** (Prometheus ``le`` semantics) and exports
cumulative counts plus ``sum``/``count`` — exactly the
``_bucket``/``_sum``/``_count`` triple the text exposition renders (see
:meth:`repro.server.metrics.MetricsRegistry.histogram`). Stdlib only:
``bisect`` for the bucket lookup, one lock per histogram.
"""

from __future__ import annotations

import math
import threading
from bisect import bisect_left
from dataclasses import dataclass
from typing import Iterable, Sequence, Tuple


def log_spaced_bounds(lo: float, hi: float,
                      mantissas: Sequence[float] = (1.0, 2.5, 5.0)
                      ) -> Tuple[float, ...]:
    """Log-spaced bucket bounds covering ``[lo, hi]``.

    Walks decades from ``lo``'s up through ``hi``'s, emitting
    ``mantissa * 10^k`` values inside the range — the classic
    1/2.5/5 ladder by default. Values are rounded to 12 significant
    digits so bounds render cleanly in the exposition text.
    """
    if not (lo > 0 and hi > lo):
        raise ValueError(f"need 0 < lo < hi, got lo={lo}, hi={hi}")
    bounds = []
    decade = 10.0 ** math.floor(math.log10(lo))
    while decade <= hi:
        for m in sorted(mantissas):
            value = float(f"{m * decade:.12g}")
            if lo <= value <= hi:
                bounds.append(value)
        decade *= 10.0
    if not bounds:
        raise ValueError(
            f"no {mantissas} mantissa lands inside [{lo}, {hi}]")
    return tuple(bounds)


#: default request/stage duration buckets: 500µs .. 30s, 1/2.5/5 ladder
DURATION_BOUNDS = log_spaced_bounds(5e-4, 30.0)

#: micro-batch size buckets (powers of two up to the default max_batch)
BATCH_SIZE_BOUNDS = (1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0, 128.0)


@dataclass(frozen=True)
class HistogramSnapshot:
    """A consistent point-in-time view of one histogram.

    ``cumulative`` has one entry per bound **plus** the ``+Inf`` bucket
    last, already accumulated (Prometheus buckets are cumulative).
    """

    bounds: Tuple[float, ...]
    cumulative: Tuple[int, ...]
    sum: float
    count: int


class Histogram:
    """Fixed-bucket histogram; ``observe`` is O(log buckets) + one lock."""

    __slots__ = ("bounds", "_counts", "_sum", "_count", "_lock")

    def __init__(self, bounds: Iterable[float] = DURATION_BOUNDS):
        bounds = tuple(float(b) for b in bounds)
        if not bounds:
            raise ValueError("histogram needs at least one bucket bound")
        if any(not math.isfinite(b) for b in bounds):
            raise ValueError("bucket bounds must be finite "
                             "(+Inf is implicit)")
        if any(b2 <= b1 for b1, b2 in zip(bounds, bounds[1:])):
            raise ValueError(
                f"bucket bounds must be strictly increasing, got {bounds}")
        self.bounds = bounds
        self._counts = [0] * (len(bounds) + 1)   # last = +Inf overflow
        self._sum = 0.0
        self._count = 0
        self._lock = threading.Lock()

    def observe(self, value: float) -> None:
        value = float(value)
        # bisect_left: first bound >= value, i.e. the smallest bucket with
        # value <= le — inclusive upper bounds, like Prometheus.
        index = bisect_left(self.bounds, value)
        with self._lock:
            self._counts[index] += 1
            self._sum += value
            self._count += 1

    @property
    def count(self) -> int:
        with self._lock:
            return self._count

    def snapshot(self) -> HistogramSnapshot:
        with self._lock:
            counts = list(self._counts)
            total = self._sum
            count = self._count
        cumulative = []
        running = 0
        for value in counts:
            running += value
            cumulative.append(running)
        return HistogramSnapshot(bounds=self.bounds,
                                 cumulative=tuple(cumulative),
                                 sum=total, count=count)


__all__ = [
    "BATCH_SIZE_BOUNDS",
    "DURATION_BOUNDS",
    "Histogram",
    "HistogramSnapshot",
    "log_spaced_bounds",
]
