"""Structured JSONL logging stamped with the active trace/span ids.

One record per line, strict JSON, machine-greppable::

    {"ts": 1754650000.123, "level": "info", "logger": "repro.server",
     "event": "score.request", "trace_id": "4f…", "span_id": "3", ...}

The trace correlation is the point: any log line emitted inside an
active span carries that span's ``trace_id``/``span_id``, so a slow
request found in ``GET /v1/traces`` can be joined against its log lines
(and vice versa) without guessing by timestamp.

Configuration is deliberately tiny: records go to ``sys.stderr`` unless
``REPRO_LOG=<path>`` (or :func:`configure`) redirects them to a file,
and ``REPRO_LOG_LEVEL`` (debug/info/warning/error, default ``info``)
filters. No handlers, no formatters, no global registry beyond a cache
of named loggers.
"""

from __future__ import annotations

import json
import os
import sys
import threading
import time
from typing import Any, Dict, IO, Optional

from .trace import current_span

LEVELS = {"debug": 10, "info": 20, "warning": 30, "error": 40}

_lock = threading.Lock()
_loggers: Dict[str, "StructLogger"] = {}
_stream: Optional[IO[str]] = None      # None -> resolve at emit time
_threshold: Optional[int] = None       # None -> resolve from env


def _resolve_threshold() -> int:
    global _threshold
    if _threshold is None:
        name = os.environ.get("REPRO_LOG_LEVEL", "info").strip().lower()
        _threshold = LEVELS.get(name, LEVELS["info"])
    return _threshold


def _resolve_stream() -> IO[str]:
    global _stream
    if _stream is None:
        path = os.environ.get("REPRO_LOG", "").strip()
        if path:
            _stream = open(path, "a", encoding="utf-8")  # noqa: SIM115
        else:
            # Late-bound on purpose: tests that capture/replace stderr
            # must see records without reconfiguring.
            return sys.stderr
    return _stream


def configure(stream: Optional[IO[str]] = None,
              level: Optional[str] = None) -> None:
    """Redirect all structured logs / change the level filter."""
    global _stream, _threshold
    with _lock:
        _stream = stream
        if level is not None:
            key = level.strip().lower()
            if key not in LEVELS:
                raise ValueError(
                    f"unknown level {level!r}; pick one of {sorted(LEVELS)}")
            _threshold = LEVELS[key]
        elif stream is None:
            _threshold = None   # re-resolve from env next time


class StructLogger:
    """A named emitter of one-line JSON records."""

    def __init__(self, name: str):
        self.name = name

    def log(self, level: str, event: str, **fields: Any) -> None:
        if LEVELS.get(level, LEVELS["info"]) < _resolve_threshold():
            return
        record: Dict[str, Any] = {
            "ts": time.time(),
            "level": level,
            "logger": self.name,
            "event": event,
        }
        span = current_span()
        if span is not None and span.recording:
            record["trace_id"] = span.trace_id
            record["span_id"] = span.span_id
        record.update(fields)
        line = json.dumps(record, default=str, separators=(",", ":"))
        with _lock:
            stream = _resolve_stream()
            try:
                stream.write(line + "\n")
                stream.flush()
            except (ValueError, OSError):
                pass    # closed stream at interpreter teardown — drop

    def debug(self, event: str, **fields: Any) -> None:
        self.log("debug", event, **fields)

    def info(self, event: str, **fields: Any) -> None:
        self.log("info", event, **fields)

    def warning(self, event: str, **fields: Any) -> None:
        self.log("warning", event, **fields)

    def error(self, event: str, **fields: Any) -> None:
        self.log("error", event, **fields)


def get_logger(name: str) -> StructLogger:
    """The (cached) structured logger for ``name``."""
    with _lock:
        logger = _loggers.get(name)
        if logger is None:
            logger = _loggers[name] = StructLogger(name)
    return logger


__all__ = ["LEVELS", "StructLogger", "configure", "get_logger"]
