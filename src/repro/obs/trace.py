"""Context-local request tracing: the `repro.obs` span API.

A **trace** is one logical operation — an HTTP request, a CLI run, a
stream window — identified by a ``trace_id`` and holding a tree of
**spans**. A span measures one pipeline stage (wall *and* CPU time) plus
free-form attributes. Spans nest through a :mod:`contextvars` context
variable, so instrumentation points never thread a handle around:

    with start_trace("http.score") as trace:
        with span("service.scores"):
            with span("score.masked_group"):
                ...

**Zero overhead when disabled** is the design contract: :func:`span`
first reads the ambient context, and when no trace is active it returns
the module-level :data:`NOOP_SPAN` singleton — no object allocation, no
clock reads, no attribute dict. Instrumented hot paths therefore cost
one contextvar lookup when nobody is tracing (benchmarked in
``benchmarks/test_obs_perf.py``; allocation-free by
``tests/test_obs.py``). Tracing never touches RNG state or numeric
code, so traced and untraced scores are bitwise identical.

Cross-thread propagation is explicit: a producer captures
:func:`current_span` and a worker adopts it with :func:`use_span` — this
is how the micro-batcher's worker threads attach batch/scoring spans to
the leader request's trace (see :mod:`repro.server.batcher`).

``REPRO_TRACE=0`` hard-disables tracing process-wide — :func:`start_trace`
then yields ``None`` and every span is a no-op.
"""

from __future__ import annotations

import contextvars
import itertools
import os
import re
import threading
import time
from collections import deque
from contextlib import contextmanager
from typing import Any, Dict, Iterator, List, Optional

#: spans kept per trace before further ones are counted, not stored
#: (bounds memory for traced training runs with thousands of epochs)
MAX_SPANS = 512

_TRACE_ID_PATTERN = re.compile(r"^[A-Za-z0-9._-]{1,64}$")

_current: "contextvars.ContextVar[Optional[Span]]" = contextvars.ContextVar(
    "repro_obs_span", default=None)


def _env_enabled() -> bool:
    return os.environ.get("REPRO_TRACE", "1").strip().lower() not in (
        "0", "false", "no", "off")


_enabled = _env_enabled()


def set_tracing(enabled: bool) -> None:
    """Process-wide master switch (overrides the ``REPRO_TRACE`` env)."""
    global _enabled
    _enabled = bool(enabled)


def tracing_enabled() -> bool:
    return _enabled


def sanitize_trace_id(value: Optional[str]) -> Optional[str]:
    """A caller-supplied trace id, or ``None`` when absent/unusable.

    Ids are opaque tokens that end up in headers, logs and JSON — restrict
    them to ``[A-Za-z0-9._-]{1,64}`` so a hostile header can't inject
    newlines into either.
    """
    if value is None:
        return None
    value = str(value).strip()
    return value if _TRACE_ID_PATTERN.match(value) else None


def new_trace_id() -> str:
    """A fresh 16-hex-char trace id."""
    return os.urandom(8).hex()


class _NoopSpan:
    """The disabled-tracing span: one shared instance, every method inert."""

    __slots__ = ()

    recording = False
    trace_id = None
    span_id = None

    def __enter__(self) -> "_NoopSpan":
        return self

    def __exit__(self, *_exc) -> bool:
        return False

    def set(self, key: str, value: Any) -> "_NoopSpan":
        return self

    def __repr__(self) -> str:
        return "<noop span>"


#: the singleton every :func:`span` call returns while tracing is inactive
NOOP_SPAN = _NoopSpan()


class Span:
    """One timed stage inside a :class:`Trace` (use as a context manager).

    Wall time comes from :func:`time.perf_counter`, CPU time from
    :func:`time.thread_time` (the executing thread only, so a span that
    waits on a lock or a future shows near-zero CPU against real wall).
    """

    __slots__ = ("trace", "name", "span_id", "parent_id", "attributes",
                 "start_offset", "wall_seconds", "cpu_seconds",
                 "_t0", "_cpu0", "_token")

    recording = True

    def __init__(self, trace: "Trace", name: str,
                 parent_id: Optional[str]):
        self.trace = trace
        self.name = name
        self.span_id = trace._next_span_id()
        self.parent_id = parent_id
        self.attributes: Dict[str, Any] = {}
        self.start_offset = 0.0
        self.wall_seconds = 0.0
        self.cpu_seconds = 0.0
        self._token = None

    @property
    def trace_id(self) -> str:
        return self.trace.trace_id

    def set(self, key: str, value: Any) -> "Span":
        """Attach one attribute (positional on purpose: the no-op variant
        must not pay a kwargs dict)."""
        self.attributes[key] = value
        return self

    def __enter__(self) -> "Span":
        self._t0 = time.perf_counter()
        self._cpu0 = time.thread_time()
        self.start_offset = self._t0 - self.trace._t0
        self._token = _current.set(self)
        return self

    def __exit__(self, exc_type, _exc, _tb) -> bool:
        _current.reset(self._token)
        self.wall_seconds = time.perf_counter() - self._t0
        self.cpu_seconds = time.thread_time() - self._cpu0
        if exc_type is not None:
            self.attributes["error"] = exc_type.__name__
        self.trace._finish(self)
        return False

    def to_dict(self) -> dict:
        return {
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "name": self.name,
            "start_ms": self.start_offset * 1e3,
            "wall_ms": self.wall_seconds * 1e3,
            "cpu_ms": self.cpu_seconds * 1e3,
            "attributes": dict(self.attributes),
        }

    def __repr__(self) -> str:
        return (f"Span({self.name!r}, id={self.span_id}, "
                f"trace={self.trace_id})")


class Trace:
    """One traced operation: an id plus the spans completed under it.

    Spans may finish on any thread (the batcher's workers adopt request
    traces), so completion bookkeeping is lock-protected. At most
    ``max_spans`` spans are retained; the overflow is counted in
    ``dropped`` so truncation is visible rather than silent.
    """

    def __init__(self, name: str, trace_id: Optional[str] = None,
                 max_spans: int = MAX_SPANS):
        self.name = name
        self.trace_id = trace_id or new_trace_id()
        self.started_at = time.time()
        self._t0 = time.perf_counter()
        self.max_spans = int(max_spans)
        self.spans: List[Span] = []
        self.links: List[dict] = []
        self.dropped = 0
        self.duration_seconds: Optional[float] = None
        self._lock = threading.Lock()
        self._ids = itertools.count(1)

    def _next_span_id(self) -> str:
        return format(next(self._ids), "x")

    def _finish(self, span_: Span) -> None:
        with self._lock:
            if len(self.spans) < self.max_spans:
                self.spans.append(span_)
            else:
                self.dropped += 1

    def link(self, kind: str, trace_id: str,
             span_id: Optional[str] = None) -> None:
        """Reference another trace (e.g. the batch a request coalesced
        into lives in the leader request's trace)."""
        with self._lock:
            self.links.append({"kind": kind, "trace_id": trace_id,
                               "span_id": span_id})

    def to_dict(self) -> dict:
        with self._lock:
            spans = [s.to_dict() for s in self.spans]
            links = [dict(l) for l in self.links]
            dropped = self.dropped
        return {
            "trace_id": self.trace_id,
            "name": self.name,
            "started_at": self.started_at,
            "duration_ms": (self.duration_seconds * 1e3
                            if self.duration_seconds is not None else None),
            "spans": spans,
            "links": links,
            "dropped": dropped,
        }


def current_span() -> Optional[Span]:
    """The ambient span, or ``None`` when no trace is active here."""
    return _current.get()


def current_trace() -> Optional[Trace]:
    span_ = _current.get()
    return span_.trace if span_ is not None else None


def annotate(key: str, value: Any) -> None:
    """Attach an attribute to the ambient span; no-op when untraced."""
    span_ = _current.get()
    if span_ is not None:
        span_.attributes[key] = value


def span(name: str):
    """A child span of the ambient one — or :data:`NOOP_SPAN` if none.

    The untraced path allocates nothing: one contextvar read, then the
    shared singleton. Attributes go through :meth:`Span.set` (positional)
    so disabled call sites don't build kwargs dicts either.
    """
    parent = _current.get()
    if parent is None:
        return NOOP_SPAN
    return Span(parent.trace, name, parent.span_id)


@contextmanager
def use_span(span_: Optional[Span]) -> Iterator[None]:
    """Adopt ``span_`` as the ambient parent on this thread.

    The explicit cross-thread handoff: a worker thread wraps its work in
    ``use_span(captured)`` so new spans land in the capturing request's
    trace. ``None`` (or a no-op span) makes this a plain no-op.
    """
    if span_ is None or not getattr(span_, "recording", False):
        yield
        return
    token = _current.set(span_)
    try:
        yield
    finally:
        _current.reset(token)


@contextmanager
def start_trace(name: str, trace_id: Optional[str] = None,
                store: Optional["TraceStore"] = None,
                max_spans: int = MAX_SPANS) -> Iterator[Optional[Trace]]:
    """Open a new trace with a root span named ``name``.

    Yields the :class:`Trace` (or ``None`` when tracing is disabled
    process-wide). On exit the root span closes, the trace duration is
    stamped, and — when ``store`` is given — a JSON-able snapshot is
    published to it, even if the traced body raised.
    """
    if not _enabled:
        yield None
        return
    trace = Trace(name, trace_id=trace_id, max_spans=max_spans)
    root = Span(trace, name, parent_id=None)
    root.__enter__()
    try:
        yield trace
    except BaseException as exc:
        root.__exit__(type(exc), exc, None)
        trace.duration_seconds = root.wall_seconds
        if store is not None:
            store.add(trace)
        raise
    root.__exit__(None, None, None)
    trace.duration_seconds = root.wall_seconds
    if store is not None:
        store.add(trace)


class TraceStore:
    """Thread-safe ring buffer of recently completed traces.

    Stores :meth:`Trace.to_dict` snapshots (plain JSON-able dicts), so
    consumers — ``GET /v1/traces``, the ``repro trace`` CLI — can't
    observe a trace mid-mutation.
    """

    def __init__(self, capacity: int = 128):
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.capacity = int(capacity)
        self._traces: "deque[dict]" = deque(maxlen=self.capacity)
        self._lock = threading.Lock()

    def add(self, trace: Trace) -> None:
        snapshot = trace.to_dict()
        with self._lock:
            self._traces.append(snapshot)

    def last(self, n: Optional[int] = None) -> List[dict]:
        """The most recent ``n`` traces, newest first."""
        with self._lock:
            items = list(self._traces)
        items.reverse()
        if n is not None:
            items = items[:max(int(n), 0)]
        return items

    def get(self, trace_id: str) -> Optional[dict]:
        with self._lock:
            for item in reversed(self._traces):
                if item["trace_id"] == trace_id:
                    return item
        return None

    def __len__(self) -> int:
        with self._lock:
            return len(self._traces)


__all__ = [
    "MAX_SPANS",
    "NOOP_SPAN",
    "Span",
    "Trace",
    "TraceStore",
    "annotate",
    "current_span",
    "current_trace",
    "new_trace_id",
    "sanitize_trace_id",
    "set_tracing",
    "span",
    "start_trace",
    "tracing_enabled",
    "use_span",
]
