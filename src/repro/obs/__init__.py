"""``repro.obs`` — stdlib-only observability for the whole stack.

Four small pieces, threaded through every serving/streaming/scoring
layer:

* :mod:`repro.obs.trace` — context-local request tracing (trace/span
  ids, wall + CPU time, attributes, cross-thread handoff) with a no-op
  fast path that costs one contextvar read when nothing is traced;
* :mod:`repro.obs.hist` — thread-safe histograms with Prometheus
  ``_bucket``/``_sum``/``_count`` semantics and log-spaced bounds;
* :mod:`repro.obs.log` — structured JSONL logging stamped with the
  active trace/span ids;
* :mod:`repro.obs.promlint` — a strict text-exposition validator used
  by tests and CI to lint the real ``/metrics`` payload, plus the shared
  :func:`parse_families` reader;
* :mod:`repro.obs.profile` — per-stage cost tables (``REPRO_PROFILE=1``)
  and span-tree rendering (``repro trace``);
* :mod:`repro.obs.bench` — the performance ledger: per-suite benchmark
  records (median/MAD/peak RSS) with noise-aware regression diffs
  (``repro bench run/report/diff``);
* :mod:`repro.obs.runtime` — process telemetry (RSS, GC, threads, FDs)
  and the low-overhead background :class:`RuntimeSampler` feeding
  ``/metrics``.

Environment switches: ``REPRO_TRACE=0`` disables tracing process-wide,
``REPRO_PROFILE=1`` prints the CLI cost table, ``REPRO_LOG=<path>`` /
``REPRO_LOG_LEVEL`` steer the structured logger.
"""

from .bench import (
    BenchmarkRecord,
    Comparison,
    Ledger,
    LedgerDiff,
    compare_records,
    diff_ledgers,
    environment_fingerprint,
    load_ledgers,
    render_diff,
    render_report,
)
from .hist import (
    BATCH_SIZE_BOUNDS,
    DURATION_BOUNDS,
    Histogram,
    HistogramSnapshot,
    log_spaced_bounds,
)
from .log import StructLogger, configure, get_logger
from .profile import aggregate_spans, render_profile, render_trace_tree
from .promlint import (
    assert_valid_exposition,
    parse_families,
    validate_exposition,
)
from .runtime import (
    RuntimeSample,
    RuntimeSampler,
    capture_sample,
    peak_rss_bytes,
    rss_bytes,
)
from .trace import (
    NOOP_SPAN,
    Span,
    Trace,
    TraceStore,
    annotate,
    current_span,
    current_trace,
    new_trace_id,
    sanitize_trace_id,
    set_tracing,
    span,
    start_trace,
    tracing_enabled,
    use_span,
)

__all__ = [
    "BATCH_SIZE_BOUNDS",
    "DURATION_BOUNDS",
    "BenchmarkRecord",
    "Comparison",
    "Histogram",
    "HistogramSnapshot",
    "Ledger",
    "LedgerDiff",
    "NOOP_SPAN",
    "RuntimeSample",
    "RuntimeSampler",
    "Span",
    "StructLogger",
    "Trace",
    "TraceStore",
    "aggregate_spans",
    "annotate",
    "assert_valid_exposition",
    "capture_sample",
    "compare_records",
    "configure",
    "current_span",
    "current_trace",
    "diff_ledgers",
    "environment_fingerprint",
    "get_logger",
    "load_ledgers",
    "log_spaced_bounds",
    "new_trace_id",
    "parse_families",
    "peak_rss_bytes",
    "render_diff",
    "render_profile",
    "render_report",
    "render_trace_tree",
    "rss_bytes",
    "sanitize_trace_id",
    "set_tracing",
    "span",
    "start_trace",
    "tracing_enabled",
    "use_span",
    "validate_exposition",
]
