"""``repro.obs`` — stdlib-only observability for the whole stack.

Four small pieces, threaded through every serving/streaming/scoring
layer:

* :mod:`repro.obs.trace` — context-local request tracing (trace/span
  ids, wall + CPU time, attributes, cross-thread handoff) with a no-op
  fast path that costs one contextvar read when nothing is traced;
* :mod:`repro.obs.hist` — thread-safe histograms with Prometheus
  ``_bucket``/``_sum``/``_count`` semantics and log-spaced bounds;
* :mod:`repro.obs.log` — structured JSONL logging stamped with the
  active trace/span ids;
* :mod:`repro.obs.promlint` — a strict text-exposition validator used
  by tests and CI to lint the real ``/metrics`` payload;
* :mod:`repro.obs.profile` — per-stage cost tables (``REPRO_PROFILE=1``)
  and span-tree rendering (``repro trace``).

Environment switches: ``REPRO_TRACE=0`` disables tracing process-wide,
``REPRO_PROFILE=1`` prints the CLI cost table, ``REPRO_LOG=<path>`` /
``REPRO_LOG_LEVEL`` steer the structured logger.
"""

from .hist import (
    BATCH_SIZE_BOUNDS,
    DURATION_BOUNDS,
    Histogram,
    HistogramSnapshot,
    log_spaced_bounds,
)
from .log import StructLogger, configure, get_logger
from .profile import aggregate_spans, render_profile, render_trace_tree
from .promlint import assert_valid_exposition, validate_exposition
from .trace import (
    NOOP_SPAN,
    Span,
    Trace,
    TraceStore,
    annotate,
    current_span,
    current_trace,
    new_trace_id,
    sanitize_trace_id,
    set_tracing,
    span,
    start_trace,
    tracing_enabled,
    use_span,
)

__all__ = [
    "BATCH_SIZE_BOUNDS",
    "DURATION_BOUNDS",
    "Histogram",
    "HistogramSnapshot",
    "NOOP_SPAN",
    "Span",
    "StructLogger",
    "Trace",
    "TraceStore",
    "aggregate_spans",
    "annotate",
    "assert_valid_exposition",
    "configure",
    "current_span",
    "current_trace",
    "get_logger",
    "log_spaced_bounds",
    "new_trace_id",
    "render_profile",
    "render_trace_tree",
    "sanitize_trace_id",
    "set_tracing",
    "span",
    "start_trace",
    "tracing_enabled",
    "use_span",
    "validate_exposition",
]
