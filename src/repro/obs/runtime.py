"""Process-level runtime telemetry (stdlib-only).

Cheap point-in-time snapshots of the serving process — resident/peak
memory, GC activity per generation, thread count, open file descriptors —
plus :class:`RuntimeSampler`, a low-overhead background thread that keeps
the latest snapshot fresh for ``/metrics`` without paying a ``/proc`` read
per scrape-free request. Everything degrades gracefully off Linux: probes
that cannot be answered return ``None`` and the exporter simply omits the
gauge.

The sampler's own cost is part of the observability contract: it records
how many samples it took and how long they cost
(:attr:`RuntimeSampler.samples_taken` / :attr:`RuntimeSampler.sample_seconds`),
and ``benchmarks/test_obs_perf.py`` bounds the duty cycle below 1% of a
cold scoring pass.
"""

from __future__ import annotations

import gc
import os
import sys
import threading
import time
from dataclasses import dataclass
from typing import Optional, Tuple

try:
    import resource
except ImportError:  # pragma: no cover - non-POSIX
    resource = None  # type: ignore[assignment]

_PAGE_SIZE: Optional[int] = None


def _page_size() -> int:
    global _PAGE_SIZE
    if _PAGE_SIZE is None:
        try:
            _PAGE_SIZE = os.sysconf("SC_PAGE_SIZE")
        except (ValueError, OSError, AttributeError):  # pragma: no cover
            _PAGE_SIZE = 4096
    return _PAGE_SIZE


def rss_bytes() -> Optional[int]:
    """Current resident set size via ``/proc/self/statm`` (Linux)."""
    try:
        with open("/proc/self/statm", "rb") as handle:
            fields = handle.read().split()
        return int(fields[1]) * _page_size()
    except (OSError, IndexError, ValueError):
        return None


def peak_rss_bytes() -> Optional[int]:
    """Peak resident set size via ``getrusage`` (``ru_maxrss``).

    Linux reports kilobytes, macOS bytes; normalised to bytes here.
    """
    if resource is None:  # pragma: no cover - non-POSIX
        return None
    peak = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    if peak <= 0:
        return None
    return int(peak) if sys.platform == "darwin" else int(peak) * 1024


def open_fd_count() -> Optional[int]:
    """Open file descriptors via ``/proc/self/fd`` (Linux)."""
    try:
        return len(os.listdir("/proc/self/fd"))
    except OSError:
        return None


def gc_generation_stats() -> Tuple[dict, ...]:
    """Per-generation ``collections``/``collected``/``uncollectable``."""
    return tuple({"collections": int(stat.get("collections", 0)),
                  "collected": int(stat.get("collected", 0)),
                  "uncollectable": int(stat.get("uncollectable", 0))}
                 for stat in gc.get_stats())


@dataclass(frozen=True)
class RuntimeSample:
    """One point-in-time snapshot of the process."""

    unix_time: float
    rss_bytes: Optional[int]
    peak_rss_bytes: Optional[int]
    open_fds: Optional[int]
    threads: int
    gc_stats: Tuple[dict, ...]
    #: per-worker snapshots from the process pool's probe (empty when the
    #: server runs the thread tier)
    pool_workers: Tuple[dict, ...] = ()

    def to_dict(self) -> dict:
        payload = {
            "unix_time": self.unix_time,
            "rss_bytes": self.rss_bytes,
            "peak_rss_bytes": self.peak_rss_bytes,
            "open_fds": self.open_fds,
            "threads": self.threads,
            "gc": [dict(stat) for stat in self.gc_stats],
        }
        if self.pool_workers:
            payload["pool_workers"] = [dict(info)
                                       for info in self.pool_workers]
        return payload


def capture_sample(pool_probe=None) -> RuntimeSample:
    """Snapshot the process right now (a handful of ``/proc`` reads).

    ``pool_probe`` is an optional zero-argument callable returning a list
    of per-worker info dicts (``repro.pool.ProcessPool.worker_infos``);
    its result rides along in :attr:`RuntimeSample.pool_workers` so the
    scoring workers' RSS and liveness are sampled on the same cadence as
    the leader's own telemetry. A probe that raises is treated as absent
    — pool teardown must not break the sampler.
    """
    pool_workers: Tuple[dict, ...] = ()
    if pool_probe is not None:
        try:
            pool_workers = tuple(pool_probe())
        except Exception:  # pragma: no cover - probe raced a shutdown
            pool_workers = ()
    return RuntimeSample(
        unix_time=time.time(),
        rss_bytes=rss_bytes(),
        peak_rss_bytes=peak_rss_bytes(),
        open_fds=open_fd_count(),
        threads=threading.active_count(),
        gc_stats=gc_generation_stats(),
        pool_workers=pool_workers,
    )


class RuntimeSampler:
    """Background daemon refreshing a :class:`RuntimeSample` periodically.

    ``latest()`` never blocks on the sampling thread: it returns the most
    recent snapshot, capturing one synchronously only when none exists yet
    (e.g. ``/metrics`` scraped before the first interval elapsed). The
    thread starts lazily on :meth:`start` and stops via :meth:`close`.
    """

    def __init__(self, interval: float = 5.0, pool_probe=None):
        if interval <= 0:
            raise ValueError(f"interval must be > 0, got {interval}")
        self.interval = float(interval)
        #: optional callable returning per-worker pool info dicts,
        #: forwarded to :func:`capture_sample` on every tick
        self.pool_probe = pool_probe
        self._lock = threading.Lock()
        self._latest: Optional[RuntimeSample] = None
        self._stop = threading.Event()
        self._thread: Optional[threading.Thread] = None
        #: samples captured so far (by the thread or synchronously)
        self.samples_taken = 0
        #: cumulative wall seconds spent inside capture_sample()
        self.sample_seconds = 0.0

    # ------------------------------------------------------------------
    def _capture(self) -> RuntimeSample:
        start = time.perf_counter()
        sample = capture_sample(self.pool_probe)
        elapsed = time.perf_counter() - start
        with self._lock:
            self._latest = sample
            self.samples_taken += 1
            self.sample_seconds += elapsed
        return sample

    def _run(self) -> None:
        while not self._stop.wait(self.interval):
            self._capture()

    def start(self) -> "RuntimeSampler":
        if self._thread is None:
            self._capture()  # an immediate first sample
            self._thread = threading.Thread(target=self._run, daemon=True,
                                            name="repro-runtime-sampler")
            self._thread.start()
        return self

    @property
    def running(self) -> bool:
        return self._thread is not None and self._thread.is_alive()

    def latest(self) -> RuntimeSample:
        with self._lock:
            sample = self._latest
        if sample is None:
            sample = self._capture()
        return sample

    def refresh(self) -> RuntimeSample:
        """Force a synchronous sample (deep health checks want fresh RSS)."""
        return self._capture()

    def close(self) -> None:
        self._stop.set()
        thread = self._thread
        if thread is not None:
            thread.join(timeout=5.0)
            self._thread = None

    def __enter__(self) -> "RuntimeSampler":
        return self.start()

    def __exit__(self, *_exc) -> None:
        self.close()


__all__ = [
    "RuntimeSample",
    "RuntimeSampler",
    "capture_sample",
    "gc_generation_stats",
    "open_fd_count",
    "peak_rss_bytes",
    "rss_bytes",
]
