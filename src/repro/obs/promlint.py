"""Pure-python Prometheus text-exposition (0.0.4) validator.

Lints a full ``/metrics`` payload the way a strict scraper would parse
it, returning a list of human-readable problems (empty = clean). Used by
the test suite and the CI ``obs-smoke`` job to gate the gateway's real
output, and exported for ad-hoc debugging::

    from repro.obs import validate_exposition
    problems = validate_exposition(text)

Checks applied:

* trailing newline; every line parses as a comment or a sample;
* metric and label names match the Prometheus grammar;
* ``# HELP``/``# TYPE`` appear at most once per family, ``TYPE`` names a
  known type, and both precede the family's first sample — families with
  samples must carry both (our renderer always emits the pair);
* label values use only the legal escapes (``\\\\``, ``\\"``, ``\\n``)
  and sample values parse as floats (``+Inf``/``-Inf``/``NaN`` allowed);
* no duplicate sample (same name, same label set);
* counters end in ``_total``;
* unit suffixes: the ``_total`` suffix is reserved for counters (a gauge
  or histogram named ``*_total`` is flagged), and family names must not
  end in a non-base unit (``_ms``, ``_kb``, ``_percent``, … — Prometheus
  wants base units: ``_seconds``, ``_bytes``, ``_ratio``); for counters
  the stem before ``_total`` is checked;
* histograms: every series carries ``le``, includes the ``+Inf`` bucket,
  bucket counts are non-decreasing in ``le``, ``_count`` equals the
  ``+Inf`` bucket, and ``_sum``/``_count`` exist — all checked per
  distinct non-``le`` label set.

:func:`parse_families` exposes the same parser as a structured reader so
clients (``ServerClient.metrics_parsed``) can consume ``/metrics``
without a second parser implementation.
"""

from __future__ import annotations

import math
import re
from typing import Dict, List, Optional, Tuple

METRIC_NAME = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
LABEL_NAME = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")
KNOWN_TYPES = ("counter", "gauge", "histogram", "summary", "untyped")
_HISTOGRAM_SUFFIXES = ("_bucket", "_sum", "_count")


def _parse_value(text: str) -> Optional[float]:
    """A sample/bound value, or ``None`` when malformed."""
    stripped = text.strip()
    lowered = stripped.lower()
    if lowered in ("+inf", "inf"):
        return math.inf
    if lowered == "-inf":
        return -math.inf
    if lowered == "nan":
        return math.nan
    # Go's ParseFloat accepts scientific notation; so do we (the linter's
    # non-scientific preference is enforced by the renderer, not here).
    try:
        return float(stripped)
    except ValueError:
        return None


def _parse_labels(text: str, line_no: int,
                  errors: List[str]) -> Optional[List[Tuple[str, str]]]:
    """Parse ``name="value",…`` (without braces); None on a syntax error."""
    labels: List[Tuple[str, str]] = []
    i, n = 0, len(text)
    while i < n:
        eq = text.find("=", i)
        if eq < 0:
            errors.append(f"line {line_no}: label without '=' in {text!r}")
            return None
        name = text[i:eq].strip()
        if not LABEL_NAME.match(name):
            errors.append(f"line {line_no}: bad label name {name!r}")
            return None
        if eq + 1 >= n or text[eq + 1] != '"':
            errors.append(
                f"line {line_no}: label {name!r} value is not quoted")
            return None
        value_chars: List[str] = []
        j = eq + 2
        closed = False
        while j < n:
            ch = text[j]
            if ch == "\\":
                if j + 1 >= n or text[j + 1] not in ('\\', '"', 'n'):
                    errors.append(
                        f"line {line_no}: invalid escape in label "
                        f"{name!r} value")
                    return None
                value_chars.append(
                    "\n" if text[j + 1] == "n" else text[j + 1])
                j += 2
                continue
            if ch == '"':
                closed = True
                j += 1
                break
            value_chars.append(ch)
            j += 1
        if not closed:
            errors.append(
                f"line {line_no}: unterminated label value for {name!r}")
            return None
        labels.append((name, "".join(value_chars)))
        if j < n:
            if text[j] != ",":
                errors.append(
                    f"line {line_no}: expected ',' between labels, got "
                    f"{text[j]!r}")
                return None
            j += 1
        i = j
    return labels


class _Family:
    __slots__ = ("help", "type", "samples", "first_sample_line")

    def __init__(self):
        self.help: Optional[str] = None
        self.type: Optional[str] = None
        # (suffixed name, labels tuple, value, line_no)
        self.samples: List[Tuple[str, Tuple[Tuple[str, str], ...],
                                 float, int]] = []
        self.first_sample_line: Optional[int] = None


def _base_name(name: str, families: Dict[str, _Family]) -> str:
    """Collapse histogram/summary sample suffixes onto their family."""
    for suffix in _HISTOGRAM_SUFFIXES:
        if name.endswith(suffix):
            base = name[:-len(suffix)]
            family = families.get(base)
            if family is not None and family.type in ("histogram",
                                                      "summary"):
                return base
    return name


def _parse_exposition(text: str) -> Tuple[Dict[str, _Family], List[str]]:
    """Parse ``text`` into families, collecting line-level problems."""
    errors: List[str] = []
    families: Dict[str, _Family] = {}
    seen_samples: set = set()

    for line_no, line in enumerate(text.split("\n"), start=1):
        if not line.strip():
            continue
        if line.startswith("#"):
            parts = line.split(None, 3)
            if len(parts) < 2 or parts[1] not in ("HELP", "TYPE"):
                continue    # free-form comment: legal, ignored
            if len(parts) < 3 or not METRIC_NAME.match(parts[2]):
                errors.append(
                    f"line {line_no}: # {parts[1]} needs a valid metric "
                    f"name")
                continue
            name = parts[2]
            family = families.setdefault(name, _Family())
            if family.first_sample_line is not None:
                errors.append(
                    f"line {line_no}: # {parts[1]} {name} appears after "
                    f"the family's samples (line "
                    f"{family.first_sample_line})")
            if parts[1] == "HELP":
                if family.help is not None:
                    errors.append(
                        f"line {line_no}: duplicate # HELP for {name}")
                family.help = parts[3] if len(parts) > 3 else ""
            else:
                if family.type is not None:
                    errors.append(
                        f"line {line_no}: duplicate # TYPE for {name}")
                kind = parts[3].strip() if len(parts) > 3 else ""
                if kind not in KNOWN_TYPES:
                    errors.append(
                        f"line {line_no}: unknown type {kind!r} for "
                        f"{name} (expected one of {KNOWN_TYPES})")
                family.type = kind
            continue

        # ------------------------------ sample line -----------------------
        brace = line.find("{")
        if brace >= 0:
            close = line.rfind("}")
            if close < brace:
                errors.append(f"line {line_no}: unbalanced braces")
                continue
            name = line[:brace].strip()
            labels = _parse_labels(line[brace + 1:close], line_no, errors)
            if labels is None:
                continue
            rest = line[close + 1:].strip()
        else:
            pieces = line.split(None, 1)
            if len(pieces) < 2:
                errors.append(f"line {line_no}: sample without a value")
                continue
            name, rest = pieces[0], pieces[1]
            labels = []
        if not METRIC_NAME.match(name):
            errors.append(f"line {line_no}: bad metric name {name!r}")
            continue
        label_names = [key for key, _ in labels]
        if len(set(label_names)) != len(label_names):
            errors.append(
                f"line {line_no}: duplicate label name on {name}")
            continue
        fields = rest.split()
        if not fields or len(fields) > 2:   # value [timestamp]
            errors.append(
                f"line {line_no}: expected 'value [timestamp]', got "
                f"{rest!r}")
            continue
        value = _parse_value(fields[0])
        if value is None:
            errors.append(
                f"line {line_no}: unparseable value {fields[0]!r}")
            continue

        label_key = tuple(sorted(labels))
        if (name, label_key) in seen_samples:
            errors.append(
                f"line {line_no}: duplicate sample {name}{dict(labels)}")
        seen_samples.add((name, label_key))

        base = _base_name(name, families)
        family = families.setdefault(base, _Family())
        if family.first_sample_line is None:
            family.first_sample_line = line_no
        family.samples.append((name, label_key, value, line_no))
    return families, errors


def validate_exposition(text: str,
                        require_total_suffix: bool = True,
                        check_units: bool = True) -> List[str]:
    """Lint ``text``; returns a list of problems (empty when clean)."""
    if not text:
        return ["exposition is empty"]
    families, errors = _parse_exposition(text)
    if not text.endswith("\n"):
        errors.insert(0, "exposition must end with a newline")

    # ------------------------------ family-level checks -------------------
    for name, family in sorted(families.items()):
        if not family.samples:
            if family.help is not None or family.type is not None:
                errors.append(f"family {name}: HELP/TYPE but no samples")
            continue
        if family.help is None:
            errors.append(f"family {name}: missing # HELP")
        if family.type is None:
            errors.append(f"family {name}: missing # TYPE")
            continue
        if family.type == "counter":
            if require_total_suffix and not name.endswith("_total"):
                errors.append(
                    f"family {name}: counters should end in _total")
            for sample_name, _labels, value, line_no in family.samples:
                if value < 0 or math.isnan(value):
                    errors.append(
                        f"line {line_no}: counter {sample_name} has "
                        f"non-monotonic value {value}")
        if check_units:
            errors.extend(_check_units(name, family))
        if family.type == "histogram":
            errors.extend(_check_histogram(name, family))
    return errors


#: final name tokens Prometheus considers non-base units — metrics should
#: use _seconds / _bytes / _ratio instead
_NON_BASE_UNITS = frozenset({
    "ms", "us", "ns", "milliseconds", "microseconds", "nanoseconds",
    "minutes", "hours", "days",
    "kb", "mb", "gb", "kib", "mib", "gib",
    "kilobytes", "megabytes", "gigabytes",
    "percent", "percentage",
})


def _check_units(name: str, family: _Family) -> List[str]:
    """Unit-suffix conventions: ``_total`` reserved, base units only."""
    errors: List[str] = []
    stem = name
    if name.endswith("_total"):
        if family.type is not None and family.type != "counter":
            errors.append(
                f"family {name}: _total suffix is reserved for counters "
                f"(family is a {family.type})")
        stem = name[:-len("_total")]
    token = stem.rsplit("_", 1)[-1]
    if token in _NON_BASE_UNITS:
        errors.append(
            f"family {name}: non-base unit suffix '_{token}' (use base "
            f"units: _seconds, _bytes, _ratio)")
    return errors


def _check_histogram(name: str, family: _Family) -> List[str]:
    errors: List[str] = []
    # group by the non-le label set
    series: Dict[tuple, Dict[str, object]] = {}
    for sample_name, label_key, value, line_no in family.samples:
        labels = dict(label_key)
        le = labels.pop("le", None)
        key = tuple(sorted(labels.items()))
        bucket = series.setdefault(
            key, {"buckets": [], "sum": None, "count": None})
        if sample_name == f"{name}_bucket":
            if le is None:
                errors.append(
                    f"line {line_no}: {sample_name} without an le label")
                continue
            bound = _parse_value(le)
            if bound is None:
                errors.append(
                    f"line {line_no}: unparseable le bound {le!r}")
                continue
            bucket["buckets"].append((bound, value, line_no))
        elif sample_name == f"{name}_sum":
            bucket["sum"] = value
        elif sample_name == f"{name}_count":
            bucket["count"] = value
        else:
            errors.append(
                f"histogram {name}: unexpected sample name {sample_name}")
    for key, data in sorted(series.items()):
        label_desc = dict(key) or "(no labels)"
        buckets = sorted(data["buckets"], key=lambda item: item[0])
        if not buckets:
            errors.append(
                f"histogram {name}{label_desc}: no _bucket samples")
            continue
        if not math.isinf(buckets[-1][0]):
            errors.append(
                f"histogram {name}{label_desc}: missing le=\"+Inf\" bucket")
        previous = -math.inf
        for bound, value, line_no in buckets:
            if value < previous:
                errors.append(
                    f"line {line_no}: histogram {name}{label_desc} bucket "
                    f"le={bound} count {value} < previous {previous} "
                    f"(buckets must be cumulative)")
            previous = value
        if data["count"] is None:
            errors.append(f"histogram {name}{label_desc}: missing _count")
        elif math.isinf(buckets[-1][0]) and data["count"] != buckets[-1][1]:
            errors.append(
                f"histogram {name}{label_desc}: _count {data['count']} != "
                f"+Inf bucket {buckets[-1][1]}")
        if data["sum"] is None:
            errors.append(f"histogram {name}{label_desc}: missing _sum")
    return errors


def parse_families(text: str) -> Dict[str, dict]:
    """Parse an exposition into ``{family: {type, help, samples}}``.

    The structured-read companion to :func:`validate_exposition` (same
    parser): each family dict carries ``type``/``help`` (may be ``None``)
    and ``samples`` — a list of ``{"name", "labels", "value"}`` dicts in
    document order, with histogram ``_bucket``/``_sum``/``_count``
    samples grouped under their base family. Raises ``ValueError`` when
    the payload has syntax-level problems (family-level lint findings do
    not block parsing — use :func:`validate_exposition` for those).
    """
    families, errors = _parse_exposition(text)
    if errors:
        raise ValueError(
            "unparseable exposition:\n  " + "\n  ".join(errors))
    parsed: Dict[str, dict] = {}
    for name, family in sorted(families.items()):
        parsed[name] = {
            "name": name,
            "type": family.type,
            "help": family.help,
            "samples": [
                {"name": sample_name, "labels": dict(label_key),
                 "value": value}
                for sample_name, label_key, value, _line in family.samples
            ],
        }
    return parsed


def assert_valid_exposition(text: str,
                            require_total_suffix: bool = True,
                            check_units: bool = True) -> None:
    """Raise ``AssertionError`` listing every problem found in ``text``."""
    problems = validate_exposition(
        text, require_total_suffix=require_total_suffix,
        check_units=check_units)
    if problems:
        raise AssertionError(
            "invalid Prometheus exposition:\n  " + "\n  ".join(problems))


__all__ = ["assert_valid_exposition", "parse_families",
           "validate_exposition"]
