"""UMGAD reproduction: Unsupervised Multiplex Graph Anomaly Detection.

Public surface (see README for a tour):

* :class:`UMGAD` / :class:`UMGADConfig` — the paper's model.
* :func:`load_dataset` — the six evaluation datasets (scaled stand-ins).
* :func:`select_threshold` — the label-free threshold strategy (Sec. IV-E).
* :mod:`repro.baselines` — all 22 comparison methods.
* :mod:`repro.eval` — metrics, protocols, multi-seed runner.
* :mod:`repro.experiments` — one module per paper table/figure.
* :mod:`repro.serve` — checkpoints, :class:`DetectorService`,
  :class:`ModelRegistry` (train once, score many).
* :mod:`repro.stream` — streaming ingestion (typed events, JSONL logs,
  :class:`~repro.stream.IncrementalGraphBuilder`) and online monitoring
  (:class:`~repro.stream.StreamMonitor` with drift-aware alerts).
* :mod:`repro.server` — the HTTP serving gateway: micro-batched
  ``/v1/score``, stream ``/v1/events``, model hot-swap, Prometheus
  ``/metrics``, plus a stdlib client (:class:`~repro.server.ServerClient`).
"""

from .core import UMGAD, UMGADConfig, ablation_config, select_threshold
from .datasets import available_datasets, load_dataset
from .detection import BaseDetector
from .eval import macro_f1, roc_auc
from .graphs import MultiplexGraph, RelationGraph

__version__ = "1.1.0"

__all__ = [
    "BaseDetector",
    "MultiplexGraph",
    "RelationGraph",
    "UMGAD",
    "UMGADConfig",
    "ablation_config",
    "available_datasets",
    "load_dataset",
    "macro_f1",
    "roc_auc",
    "select_threshold",
    "__version__",
]
