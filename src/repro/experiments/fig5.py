"""Figure 5 — effect of the reconstruction-balance weights α and β.

Sweeps α (original view, Eq. 9) and β (subgraph-level view, Eq. 16) over
(0, 1). The paper reports a sharp drop at extreme values (< 0.2 or > 0.8)
and optima around α ∈ {0.4, 0.5, 0.6}, β ∈ {0.3, 0.4, 0.5}.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from ..core import UMGAD
from ..eval.metrics import roc_auc
from .common import ExperimentProfile, get_dataset, umgad_config

VALUES = (0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9)


def run(profile: ExperimentProfile,
        datasets: Optional[List[str]] = None,
        values: Sequence[float] = VALUES) -> List[Dict]:
    datasets = list(datasets or ["retail"])
    rows: List[Dict] = []
    for ds_name in datasets:
        dataset = get_dataset(ds_name, profile)
        for param in ("alpha", "beta"):
            for value in values:
                cfg = umgad_config(ds_name, profile, seed=profile.seeds[0],
                                   **{param: value})
                model = UMGAD(cfg).fit(dataset.graph)
                rows.append({
                    "dataset": ds_name, "param": param, "value": value,
                    "auc": roc_auc(dataset.labels, model.decision_scores()),
                })
    return rows


def render(rows: List[Dict]) -> str:
    lines = []
    datasets = list(dict.fromkeys(r["dataset"] for r in rows))
    for ds in datasets:
        for param in ("alpha", "beta"):
            sub = [r for r in rows if r["dataset"] == ds and r["param"] == param]
            if not sub:
                continue
            series = "  ".join(f"{r['value']:.1f}:{r['auc']:.3f}" for r in sub)
            best = max(sub, key=lambda r: r["auc"])
            lines.append(f"[{ds}] {param}: {series}   "
                         f"(best {param}={best['value']:.1f})")
    return "\n".join(lines)
