"""Shared experiment infrastructure: profiles, factories, caching.

Every experiment module exposes ``run(profile) -> rows`` plus a ``render``
helper; profiles size the sweep (dataset scale, seeds, epochs) so the same
code drives both the quick benchmark suite and a full reproduction run.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Callable, Dict, List, Optional

import numpy as np

from ..baselines import make_baseline
from ..core import UMGAD, UMGADConfig
from ..datasets import Dataset, load_dataset
from ..detection import BaseDetector


@dataclass(frozen=True)
class ExperimentProfile:
    """Sizing knobs for an experiment sweep."""

    name: str
    dataset_scale: float = 0.5       # multiplier on the repo's base sizes
    large_scale: float = 0.35        # for dgfin / tsocial
    seeds: tuple = (0, 1, 2)
    umgad_epochs: int = 40
    baseline_epochs: int = 30
    num_features: int = 32
    data_seed: int = 7
    # Training batch strategy threaded into UMGADConfig (repro.engine):
    # "full" reproduces the paper's full-batch training; "subgraph" trains
    # on RWR-sampled minibatches so Table III / Fig. 7 can *train* (not
    # just score) at large scale.
    umgad_batch: str = "full"
    umgad_batch_size: int = 512
    umgad_batches_per_epoch: int = 2

    def variant(self, **overrides) -> "ExperimentProfile":
        return replace(self, **overrides)


#: quick profile used by the pytest-benchmark suite
FAST = ExperimentProfile(
    name="fast", dataset_scale=0.25, large_scale=0.2, seeds=(0,),
    umgad_epochs=20, baseline_epochs=15,
)

#: fuller profile for EXPERIMENTS.md numbers
FULL = ExperimentProfile(
    name="full", dataset_scale=0.5, large_scale=0.35, seeds=(0, 1, 2),
    umgad_epochs=60, baseline_epochs=40,
)

#: FAST sized, but UMGAD trains on sampled subgraph minibatches — the
#: profile for large-graph table3/fig7 runs where full-batch epochs are
#: the bottleneck
SAMPLED = FAST.variant(name="sampled", umgad_batch="subgraph")

_dataset_cache: Dict = {}


def get_dataset(name: str, profile: ExperimentProfile) -> Dataset:
    """Load (and cache) a dataset at the profile's scale."""
    scale = (profile.large_scale if name in ("dgfin", "tsocial")
             else profile.dataset_scale)
    key = (name, scale, profile.num_features, profile.data_seed)
    if key not in _dataset_cache:
        _dataset_cache[key] = load_dataset(
            name, scale=scale, num_features=profile.num_features,
            seed=profile.data_seed)
    return _dataset_cache[key]


def clear_dataset_cache() -> None:
    _dataset_cache.clear()


# Dataset-specific UMGAD settings following the paper's implementation
# details (Sec. V-A3: encoder depth 2 for real-anomaly datasets, 1 for
# injected) and Fig. 4's best mask ratios.
_DATASET_OVERRIDES: Dict[str, dict] = {
    # Injected-anomaly datasets: half the anomalies are attribute swaps, so
    # the score leans on the attribute term (ε = 0.7).
    "retail": {"mask_ratio": 0.2, "encoder_layers": 1, "epsilon": 0.7},
    "alibaba": {"mask_ratio": 0.2, "encoder_layers": 1, "epsilon": 0.7},
    "amazon": {"mask_ratio": 0.4, "encoder_layers": 2},
    "yelpchi": {"mask_ratio": 0.6, "encoder_layers": 2},
    "dgfin": {"mask_ratio": 0.4, "encoder_layers": 1},
    "tsocial": {"mask_ratio": 0.4, "encoder_layers": 1},
}


def umgad_config(dataset_name: str, profile: ExperimentProfile,
                 **overrides) -> UMGADConfig:
    """Paper-style per-dataset UMGAD configuration."""
    kwargs = dict(_DATASET_OVERRIDES.get(dataset_name, {}))
    kwargs.update(epochs=profile.umgad_epochs,
                  batch=profile.umgad_batch,
                  batch_size=profile.umgad_batch_size,
                  batches_per_epoch=profile.umgad_batches_per_epoch)
    kwargs.update(overrides)
    return UMGADConfig(**kwargs)


def umgad_factory(dataset_name: str, profile: ExperimentProfile,
                  **overrides) -> Callable[[int], BaseDetector]:
    """Seeded UMGAD factory for the runner."""

    def factory(seed: int) -> BaseDetector:
        return UMGAD(umgad_config(dataset_name, profile, seed=seed, **overrides))

    return factory


def baseline_factory(method: str, profile: ExperimentProfile
                     ) -> Callable[[int], BaseDetector]:
    """Seeded baseline factory for the runner."""

    def factory(seed: int) -> BaseDetector:
        return make_baseline(method, seed=seed, epochs=profile.baseline_epochs)

    return factory
