"""Table II — real-unsupervised comparison on the four small datasets.

AUC and Macro-F1 for UMGAD and all baselines, thresholds selected with the
label-free inflection-point strategy (no ground truth anywhere).
"""

from __future__ import annotations

from typing import List, Optional

from ..baselines import available_baselines, baseline_category
from ..datasets import SMALL_DATASETS
from ..eval.runner import RunResult, format_table, run_detector
from .common import ExperimentProfile, baseline_factory, get_dataset, umgad_factory


def run(profile: ExperimentProfile,
        datasets: Optional[List[str]] = None,
        methods: Optional[List[str]] = None,
        protocol: str = "unsupervised") -> List[RunResult]:
    """Grid of (method × dataset) RunResults under ``protocol``."""
    datasets = list(datasets or SMALL_DATASETS)
    methods = list(methods if methods is not None else available_baselines())
    rows: List[RunResult] = []
    for ds_name in datasets:
        dataset = get_dataset(ds_name, profile)
        for method in methods:
            rows.append(run_detector(
                method, baseline_factory(method, profile), dataset,
                seeds=list(profile.seeds), protocol=protocol))
        rows.append(run_detector(
            "UMGAD", umgad_factory(ds_name, profile), dataset,
            seeds=list(profile.seeds), protocol=protocol))
    return rows


def render(rows: List[RunResult]) -> str:
    datasets = list(dict.fromkeys(r.dataset for r in rows))
    header = format_table(rows, datasets=datasets)
    # Append the improvement row the paper reports (UMGAD vs best baseline).
    lines = [header, ""]
    for ds in datasets:
        cells = [r for r in rows if r.dataset == ds]
        umgad = next((r for r in cells if r.method == "UMGAD"), None)
        others = [r for r in cells if r.method != "UMGAD"]
        if umgad and others:
            best_auc = max(r.auc_mean for r in others)
            best_f1 = max(r.f1_mean for r in others)
            lines.append(
                f"{ds}: UMGAD improvement over best baseline — "
                f"AUC {100 * (umgad.auc_mean - best_auc) / best_auc:+.2f}%, "
                f"Macro-F1 {100 * (umgad.f1_mean - best_f1) / best_f1:+.2f}%"
            )
    # Category note for readers comparing against the paper layout.
    lines.append("")
    lines.append("categories: " + ", ".join(
        f"{m} [{baseline_category(m)}]" for m in available_baselines()))
    return "\n".join(lines)
