"""Figure 6 — accuracy vs efficiency trade-off of pruned UMGAD variants.

Variants: ``Att`` (attribute reconstruction only), ``Str`` (structure
only), ``Sub`` (subgraph mechanism only) against the full model — each
evaluated on datasets injected with *only* the matching anomaly type, as in
the paper: pruning the model for the anomaly type at hand buys runtime
without giving up much accuracy.
"""

from __future__ import annotations

import time
from typing import Dict, List, Optional

from ..anomalies import inject_attribute_anomalies, inject_structural_anomalies
from ..core import UMGAD
from ..datasets.registry import _load_injected  # reuse the clean generator path
from ..eval.metrics import roc_auc
from ..graphs.generators import behavior_multiplex
from ..utils.rng import ensure_rng
from .common import ExperimentProfile, umgad_config

import numpy as np

VARIANTS = ("full", "att", "str", "sub")


def _clean_behavior_graph(profile: ExperimentProfile, base_nodes: int):
    rng = ensure_rng(profile.data_seed)
    n = max(400, int(round(base_nodes * profile.dataset_scale)))
    num_users = int(n * 0.7)
    counts = {"View": int(n * 2.4), "Cart": int(n * 0.4), "Buy": int(n * 0.3)}
    return behavior_multiplex(num_users, n - num_users, counts,
                              profile.num_features, rng), rng


def _make_attr_only(profile: ExperimentProfile, base_nodes: int):
    graph, rng = _clean_behavior_graph(profile, base_nodes)
    count = max(10, graph.num_nodes // 100)
    graph, nodes = inject_attribute_anomalies(graph, count, rng)
    labels = np.zeros(graph.num_nodes, dtype=np.int64)
    labels[nodes] = 1
    return graph, labels


def _make_struct_only(profile: ExperimentProfile, base_nodes: int):
    graph, rng = _clean_behavior_graph(profile, base_nodes)
    num_cliques = max(2, graph.num_nodes // 500)
    graph, nodes, _, _ = inject_structural_anomalies(graph, 5, num_cliques, rng)
    labels = np.zeros(graph.num_nodes, dtype=np.int64)
    labels[nodes] = 1
    return graph, labels


def run(profile: ExperimentProfile,
        datasets: Optional[List[str]] = None) -> List[Dict]:
    datasets = list(datasets or ["retail", "alibaba"])
    base_nodes = {"retail": 3_200, "alibaba": 2_300}
    rows: List[Dict] = []
    for ds_name in datasets:
        nodes = base_nodes.get(ds_name, 2_000)
        for anomaly_kind, maker in (("attribute", _make_attr_only),
                                    ("structural", _make_struct_only)):
            graph, labels = maker(profile, nodes)
            for variant in VARIANTS:
                cfg = umgad_config(ds_name, profile, mode=variant,
                                   seed=profile.seeds[0])
                start = time.perf_counter()
                model = UMGAD(cfg).fit(graph)
                elapsed = time.perf_counter() - start
                rows.append({
                    "dataset": ds_name,
                    "anomaly_kind": anomaly_kind,
                    "variant": variant,
                    "auc": roc_auc(labels, model.decision_scores()),
                    "runtime_s": elapsed,
                })
    return rows


def render(rows: List[Dict]) -> str:
    lines = [f"{'dataset':10s} {'anomalies':11s} {'variant':8s} "
             f"{'AUC':>7s} {'runtime(s)':>11s}"]
    for r in rows:
        lines.append(
            f"{r['dataset']:10s} {r['anomaly_kind']:11s} {r['variant']:8s} "
            f"{r['auc']:7.3f} {r['runtime_s']:11.2f}"
        )
    return "\n".join(lines)
