"""Table V — comparison under ground-truth-leakage thresholding.

Same grid as Table II but every method's threshold is the top-``k`` cut
with the *known* anomaly count — the protocol the paper critiques as
unrealistic. F1 rises for everyone; the ranking should match Table II.
"""

from __future__ import annotations

from typing import List, Optional

from ..eval.runner import RunResult
from . import table2
from .common import ExperimentProfile


def run(profile: ExperimentProfile,
        datasets: Optional[List[str]] = None,
        methods: Optional[List[str]] = None) -> List[RunResult]:
    return table2.run(profile, datasets=datasets, methods=methods,
                      protocol="gt_leakage")


render = table2.render
