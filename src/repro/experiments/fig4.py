"""Figure 4 — effect of masking ratio r_m and masked-subgraph size |V_m|.

Sweeps r_m ∈ {20%, 40%, 60%, 80%} × |V_m| ∈ {4, 8, 12, 16}. The paper finds
injected-anomaly datasets prefer low mask ratios (20%) while the noisier
real-anomaly datasets prefer 40–60%.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from ..core import UMGAD
from ..eval.metrics import roc_auc
from .common import ExperimentProfile, get_dataset, umgad_config

MASK_RATIOS = (0.2, 0.4, 0.6, 0.8)
SUBGRAPH_SIZES = (4, 8, 12, 16)


def run(profile: ExperimentProfile,
        datasets: Optional[List[str]] = None,
        mask_ratios: Sequence[float] = MASK_RATIOS,
        subgraph_sizes: Sequence[int] = SUBGRAPH_SIZES) -> List[Dict]:
    datasets = list(datasets or ["retail"])
    rows: List[Dict] = []
    for ds_name in datasets:
        dataset = get_dataset(ds_name, profile)
        for rm in mask_ratios:
            for size in subgraph_sizes:
                cfg = umgad_config(ds_name, profile, mask_ratio=rm,
                                   subgraph_size=size, seed=profile.seeds[0])
                model = UMGAD(cfg).fit(dataset.graph)
                rows.append({
                    "dataset": ds_name, "mask_ratio": rm,
                    "subgraph_size": size,
                    "auc": roc_auc(dataset.labels, model.decision_scores()),
                })
    return rows


def render(rows: List[Dict]) -> str:
    lines = []
    datasets = list(dict.fromkeys(r["dataset"] for r in rows))
    for ds in datasets:
        sub = [r for r in rows if r["dataset"] == ds]
        ratios = sorted({r["mask_ratio"] for r in sub})
        sizes = sorted({r["subgraph_size"] for r in sub})
        by = {(r["mask_ratio"], r["subgraph_size"]): r["auc"] for r in sub}
        lines.append(f"[{ds}] AUC (rows r_m, cols |V_m|):")
        lines.append("        " + "".join(f"|Vm|={s:<5d}" for s in sizes))
        for rm in ratios:
            lines.append(f"rm={rm:<5.0%} " + "".join(
                f"{by.get((rm, s), float('nan')):<10.3f}" for s in sizes))
        best = max(sub, key=lambda r: r["auc"])
        lines.append(f"best: rm={best['mask_ratio']:.0%}, "
                     f"|Vm|={best['subgraph_size']} (AUC={best['auc']:.3f})")
    return "\n".join(lines)
