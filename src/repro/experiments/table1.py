"""Table I — dataset statistics (paper vs this repo's scaled stand-ins)."""

from __future__ import annotations

from typing import Dict, List

from ..datasets import PAPER_STATS, available_datasets
from .common import ExperimentProfile, get_dataset


def run(profile: ExperimentProfile) -> List[Dict]:
    """One row per (dataset, relation): paper count vs generated count."""
    rows: List[Dict] = []
    for name in available_datasets():
        ds = get_dataset(name, profile)
        paper = PAPER_STATS[name]
        for rel, paper_edges in paper["relations"].items():
            rows.append({
                "dataset": name,
                "relation": rel,
                "paper_nodes": paper["nodes"],
                "repo_nodes": ds.info.num_nodes,
                "paper_edges": paper_edges,
                "repo_edges": ds.info.relation_edges[rel],
                "paper_anomalies": paper["anomalies"],
                "repo_anomalies": ds.num_anomalies,
                "kind": paper["kind"],
            })
    return rows


def render(rows: List[Dict]) -> str:
    lines = [
        f"{'dataset':10s} {'relation':8s} {'paper nodes':>12s} {'repo nodes':>11s} "
        f"{'paper edges':>12s} {'repo edges':>11s} {'paper anom':>11s} {'repo anom':>10s}"
    ]
    for r in rows:
        lines.append(
            f"{r['dataset']:10s} {r['relation']:8s} {r['paper_nodes']:12,d} "
            f"{r['repo_nodes']:11,d} {r['paper_edges']:12,d} {r['repo_edges']:11,d} "
            f"{r['paper_anomalies']:11,d} {r['repo_anomalies']:10,d}"
        )
    return "\n".join(lines)
