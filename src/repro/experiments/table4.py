"""Table IV — ablation study: UMGAD vs its six variants.

``w/o M`` (no masking), ``w/o O`` (no original view), ``w/o A`` (no
augmented views), ``w/o NA`` (no attribute-level augmentation), ``w/o SA``
(no subgraph-level augmentation), ``w/o DCL`` (no dual-view contrastive
learning). An extra repo-specific ablation ``uniform-fusion`` freezes the
relation-fusion weights to uniform (DESIGN.md §4).
"""

from __future__ import annotations

from typing import Dict, List, Optional

import numpy as np

from ..core import UMGAD, ablation_config
from ..datasets import SMALL_DATASETS
from ..eval.protocols import evaluate_unsupervised
from .common import ExperimentProfile, get_dataset, umgad_config

ABLATIONS = ("w/o M", "w/o O", "w/o A", "w/o NA", "w/o SA", "w/o DCL", "full")


def run(profile: ExperimentProfile,
        datasets: Optional[List[str]] = None,
        ablations=ABLATIONS) -> List[Dict]:
    datasets = list(datasets or SMALL_DATASETS)
    rows: List[Dict] = []
    for ds_name in datasets:
        dataset = get_dataset(ds_name, profile)
        base = umgad_config(ds_name, profile)
        for name in ablations:
            aucs, f1s = [], []
            for seed in profile.seeds:
                cfg = ablation_config(base, name).variant(seed=seed)
                model = UMGAD(cfg).fit(dataset.graph)
                result = evaluate_unsupervised(dataset.labels,
                                               model.decision_scores())
                aucs.append(result.auc)
                f1s.append(result.macro_f1)
            rows.append({
                "dataset": ds_name,
                "variant": name if name != "full" else "UMGAD",
                "auc": float(np.mean(aucs)),
                "macro_f1": float(np.mean(f1s)),
            })
    return rows


def render(rows: List[Dict]) -> str:
    datasets = list(dict.fromkeys(r["dataset"] for r in rows))
    variants = list(dict.fromkeys(r["variant"] for r in rows))
    by_key = {(r["variant"], r["dataset"]): r for r in rows}
    header = f"{'variant':>10s}" + "".join(
        f"  {ds + '/AUC':>12s}  {ds + '/F1':>12s}" for ds in datasets)
    lines = [header]
    for variant in variants:
        cells = [f"{variant:>10s}"]
        for ds in datasets:
            r = by_key.get((variant, ds))
            cells.append(f"  {r['auc']:12.3f}  {r['macro_f1']:12.3f}" if r
                         else "  " + "—".rjust(12) + "  " + "—".rjust(12))
        lines.append("".join(cells))
    return "\n".join(lines)
