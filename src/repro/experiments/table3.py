"""Table III — large-scale comparison (DG-Fin, T-Social stand-ins).

Only the methods the paper reports as OOM-safe are run, plus UMGAD; the
structure scorer automatically switches to sampled mode at this scale.
With the ``SAMPLED`` profile (``--profile sampled``), UMGAD additionally
*trains* on RWR-sampled subgraph minibatches (``repro.engine``) instead of
full-batch epochs — the profile's ``umgad_batch`` field is threaded into
:class:`~repro.core.config.UMGADConfig` by ``umgad_config``.
"""

from __future__ import annotations

from typing import List, Optional

from ..baselines import LARGE_SCALE_BASELINES
from ..datasets import LARGE_DATASETS
from ..eval.runner import RunResult, format_table, run_detector
from .common import ExperimentProfile, baseline_factory, get_dataset, umgad_factory


def run(profile: ExperimentProfile,
        datasets: Optional[List[str]] = None,
        methods: Optional[List[str]] = None) -> List[RunResult]:
    datasets = list(datasets or LARGE_DATASETS)
    methods = list(methods if methods is not None else LARGE_SCALE_BASELINES)
    rows: List[RunResult] = []
    for ds_name in datasets:
        dataset = get_dataset(ds_name, profile)
        for method in methods:
            rows.append(run_detector(
                method, baseline_factory(method, profile), dataset,
                seeds=list(profile.seeds), protocol="unsupervised"))
        rows.append(run_detector(
            "UMGAD",
            umgad_factory(ds_name, profile, structure_score_mode="sampled"),
            dataset, seeds=list(profile.seeds), protocol="unsupervised"))
    return rows


def render(rows: List[RunResult]) -> str:
    datasets = list(dict.fromkeys(r.dataset for r in rows))
    lines = [format_table(rows, datasets=datasets), ""]
    for ds in datasets:
        cells = [r for r in rows if r.dataset == ds]
        umgad = next((r for r in cells if r.method == "UMGAD"), None)
        others = [r for r in cells if r.method != "UMGAD"]
        if umgad and others:
            best_auc = max(r.auc_mean for r in others)
            best_f1 = max(r.f1_mean for r in others)
            lines.append(
                f"{ds}: UMGAD improvement — AUC "
                f"{100 * (umgad.auc_mean - best_auc) / best_auc:+.2f}%, "
                f"Macro-F1 {100 * (umgad.f1_mean - best_f1) / best_f1:+.2f}%"
            )
    return "\n".join(lines)
