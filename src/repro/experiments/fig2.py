"""Figure 2 — ranked anomaly-score curves and inflection points.

For UMGAD and the best-performing baselines, sort the anomaly scores
descending and report (a) the curve itself (downsampled series), (b) the
inflection index the threshold strategy picks, and (c) the true anomaly
count. The paper's claim: UMGAD's inflection lands closest to the truth.
"""

from __future__ import annotations

from typing import Dict, List, Optional

import numpy as np

from ..core.threshold import select_threshold
from ..datasets import SMALL_DATASETS
from .common import ExperimentProfile, baseline_factory, get_dataset, umgad_factory

#: the best baselines the paper plots per scale
SMALL_BASELINES = ("ADA-GAD", "TAM", "GADAM", "AnomMAN")
LARGE_BASELINES = ("ADA-GAD", "GRADATE", "GADAM", "DualGAD")


def run(profile: ExperimentProfile,
        datasets: Optional[List[str]] = None,
        curve_points: int = 50) -> List[Dict]:
    datasets = list(datasets or SMALL_DATASETS)
    rows: List[Dict] = []
    for ds_name in datasets:
        dataset = get_dataset(ds_name, profile)
        baselines = (LARGE_BASELINES if ds_name in ("dgfin", "tsocial")
                     else SMALL_BASELINES)
        methods = {"UMGAD": umgad_factory(ds_name, profile)}
        methods.update({m: baseline_factory(m, profile) for m in baselines})
        for method, factory in methods.items():
            detector = factory(profile.seeds[0])
            detector.fit(dataset.graph)
            scores = np.sort(detector.decision_scores())[::-1]
            result = select_threshold(scores)
            idx = np.linspace(0, scores.size - 1, curve_points).astype(int)
            rows.append({
                "dataset": ds_name,
                "method": method,
                "curve_x": idx.tolist(),
                "curve_y": scores[idx].tolist(),
                "inflection_index": result.index,
                "num_flagged": result.num_anomalies,
                "true_anomalies": dataset.num_anomalies,
            })
    return rows


def render(rows: List[Dict]) -> str:
    lines = [
        f"{'dataset':10s} {'method':10s} {'flagged@inflection':>19s} "
        f"{'true anomalies':>15s} {'|flagged-true|':>15s}"
    ]
    for r in rows:
        gap = abs(r["num_flagged"] - r["true_anomalies"])
        lines.append(
            f"{r['dataset']:10s} {r['method']:10s} {r['num_flagged']:19d} "
            f"{r['true_anomalies']:15d} {gap:15d}"
        )
    return "\n".join(lines)
