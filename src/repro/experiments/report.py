"""One-command reproduction report.

Runs every experiment module at a chosen profile and assembles a single
markdown report (the machine-generated counterpart of EXPERIMENTS.md)::

    from repro.experiments import report, FAST
    text = report.generate(FAST)

or from the shell::

    python -m repro.cli experiment table2 --profile fast   # one artefact
    python -m repro.experiments.report --profile fast      # everything
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import List, Optional, Tuple

from . import fig2, fig3, fig4, fig5, fig6, fig7, table1, table2, table3, table4, table5
from .common import FAST, FULL, SAMPLED, ExperimentProfile

#: (section title, module, reduced-scope kwargs used at fast profiles)
_SECTIONS: List[Tuple[str, object, dict]] = [
    ("Table I — dataset statistics", table1, {}),
    ("Fig. 2 — ranked score curves & inflection", fig2,
     {"datasets": ["retail", "amazon"]}),
    ("Table II — real-unsupervised comparison", table2,
     {"datasets": ["retail", "amazon"]}),
    ("Table III — large-scale comparison", table3, {}),
    ("Table IV — ablations", table4, {"datasets": ["retail", "amazon"]}),
    ("Table V — ground-truth-leakage comparison", table5,
     {"datasets": ["retail"]}),
    ("Fig. 3 — loss-weight sensitivity (λ, µ, Θ)", fig3,
     {"datasets": ["retail"], "lambdas": (0.1, 0.3, 0.5),
      "mus": (0.1, 0.3, 0.5), "thetas": (0.01, 0.1, 1.0)}),
    ("Fig. 4 — mask ratio × subgraph size", fig4,
     {"datasets": ["retail"], "mask_ratios": (0.2, 0.4, 0.6, 0.8),
      "subgraph_sizes": (4, 12)}),
    ("Fig. 5 — α / β balance", fig5,
     {"datasets": ["retail"], "values": (0.1, 0.3, 0.5, 0.7, 0.9)}),
    ("Fig. 6 — accuracy/efficiency trade-off", fig6,
     {"datasets": ["retail"]}),
    ("Fig. 7 — efficiency & convergence", fig7,
     {"datasets": ["retail", "yelpchi"]}),
]


def generate(profile: ExperimentProfile,
             sections: Optional[List[str]] = None) -> str:
    """Run experiments and return the assembled markdown report.

    ``sections`` optionally restricts to titles containing any of the given
    substrings (e.g. ``["Table II", "Fig. 2"]``).
    """
    parts = [f"# UMGAD reproduction report (profile: {profile.name})", ""]
    for title, module, kwargs in _SECTIONS:
        if sections is not None and not any(s in title for s in sections):
            continue
        start = time.perf_counter()
        rows = module.run(profile, **kwargs)
        elapsed = time.perf_counter() - start
        parts.append(f"## {title}")
        parts.append("")
        parts.append("```")
        parts.append(module.render(rows))
        parts.append("```")
        parts.append(f"_(generated in {elapsed:.1f}s)_")
        parts.append("")
    return "\n".join(parts)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--profile", choices=["fast", "full", "sampled"],
                        default="fast")
    parser.add_argument("--out", default=None,
                        help="write the report to this path (default stdout)")
    parser.add_argument("--only", nargs="*", default=None,
                        help="restrict to sections whose title contains any "
                             "of these substrings")
    args = parser.parse_args(argv)
    profile = {"fast": FAST, "full": FULL, "sampled": SAMPLED}[args.profile]
    text = generate(profile, sections=args.only)
    if args.out:
        with open(args.out, "w") as handle:
            handle.write(text + "\n")
        print(f"wrote {args.out}")
    else:
        print(text)
    return 0


if __name__ == "__main__":
    sys.exit(main())
