"""Experiment modules: one per paper table/figure (see DESIGN.md §3).

Each module exposes ``run(profile, ...) -> rows`` and ``render(rows) -> str``.
Profiles (:data:`FAST`, :data:`FULL`) size the sweeps.
"""

from . import fig2, fig3, fig4, fig5, fig6, fig7, table1, table2, table3, table4, table5
from . import report
from .common import (
    FAST,
    FULL,
    SAMPLED,
    ExperimentProfile,
    clear_dataset_cache,
    get_dataset,
)

__all__ = [
    "FAST",
    "FULL",
    "SAMPLED",
    "ExperimentProfile",
    "clear_dataset_cache",
    "fig2", "fig3", "fig4", "fig5", "fig6", "fig7",
    "get_dataset",
    "report",
    "table1", "table2", "table3", "table4", "table5",
]
