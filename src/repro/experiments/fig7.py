"""Figure 7 — efficiency analysis: per-epoch runtime, total runtime,
training-loss convergence.

UMGAD vs the four best baselines (GRADATE, GADAM, ADA-GAD, DualGAD) on
Retail / YelpChi / T-Social stand-ins. Per-epoch numbers for the baselines
are total fit time divided by their epoch budget; UMGAD's come from its
internal timer. Panel (c) is UMGAD's loss history (convergence shape).

Run under the ``SAMPLED`` profile, UMGAD trains on subgraph minibatches
(``repro.engine``), so the per-epoch column measures sampled training —
the engine analogue of the paper's Fig. 7 efficiency study.
"""

from __future__ import annotations

import time
from typing import Dict, List, Optional

from ..core import UMGAD
from .common import ExperimentProfile, baseline_factory, get_dataset, umgad_config

METHODS = ("GRADATE", "GADAM", "ADA-GAD", "DualGAD")


def run(profile: ExperimentProfile,
        datasets: Optional[List[str]] = None,
        methods=METHODS) -> Dict:
    datasets = list(datasets or ["retail", "yelpchi", "tsocial"])
    timing_rows: List[Dict] = []
    loss_curves: Dict[str, List[float]] = {}
    for ds_name in datasets:
        dataset = get_dataset(ds_name, profile)
        for method in methods:
            detector = baseline_factory(method, profile)(profile.seeds[0])
            start = time.perf_counter()
            detector.fit(dataset.graph)
            total = time.perf_counter() - start
            epochs = getattr(detector, "epochs", profile.baseline_epochs)
            timing_rows.append({
                "dataset": ds_name, "method": method,
                "total_s": total,
                "per_epoch_s": total / max(int(epochs), 1),
            })
        cfg = umgad_config(
            ds_name, profile, seed=profile.seeds[0],
            structure_score_mode=("sampled" if ds_name in ("dgfin", "tsocial")
                                  else "auto"))
        model = UMGAD(cfg)
        start = time.perf_counter()
        model.fit(dataset.graph)
        total = time.perf_counter() - start
        timing_rows.append({
            "dataset": ds_name, "method": "UMGAD",
            "total_s": total,
            "per_epoch_s": model.timer.mean("epoch"),
        })
        loss_curves[ds_name] = list(model.loss_history)
    return {"timings": timing_rows, "umgad_loss": loss_curves}


def render(result: Dict) -> str:
    lines = [f"{'dataset':10s} {'method':10s} {'per-epoch(s)':>13s} {'total(s)':>9s}"]
    for r in result["timings"]:
        lines.append(f"{r['dataset']:10s} {r['method']:10s} "
                     f"{r['per_epoch_s']:13.3f} {r['total_s']:9.2f}")
    for ds, curve in result["umgad_loss"].items():
        if len(curve) >= 2:
            drop = 100.0 * (curve[0] - curve[-1]) / max(abs(curve[0]), 1e-9)
            lines.append(
                f"UMGAD loss on {ds}: {curve[0]:.3f} -> {curve[-1]:.3f} "
                f"({drop:.1f}% drop over {len(curve)} epochs)")
    return "\n".join(lines)
