"""Figure 3 — sensitivity to loss weights λ, µ (and Θ).

Grid sweep of the augmented-view weights λ and µ at fixed Θ, plus a Θ sweep
at the best (λ, µ). The paper finds optima around λ, µ ∈ [0.3, 0.5] and a
flat optimum at Θ = 0.1.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from ..core import UMGAD
from ..eval.metrics import roc_auc
from .common import ExperimentProfile, get_dataset, umgad_config

LAMBDAS = (0.1, 0.2, 0.3, 0.4, 0.5)
MUS = (0.1, 0.2, 0.3, 0.4, 0.5)
THETAS = (0.01, 0.05, 0.1, 0.5, 1.0)


def run(profile: ExperimentProfile,
        datasets: Optional[List[str]] = None,
        lambdas: Sequence[float] = LAMBDAS,
        mus: Sequence[float] = MUS,
        thetas: Sequence[float] = THETAS) -> List[Dict]:
    datasets = list(datasets or ["retail"])
    rows: List[Dict] = []
    for ds_name in datasets:
        dataset = get_dataset(ds_name, profile)
        for lam in lambdas:
            for mu in mus:
                cfg = umgad_config(ds_name, profile, lam=lam, mu=mu,
                                   seed=profile.seeds[0])
                model = UMGAD(cfg).fit(dataset.graph)
                rows.append({
                    "dataset": ds_name, "sweep": "lambda_mu",
                    "lam": lam, "mu": mu, "theta": cfg.theta,
                    "auc": roc_auc(dataset.labels, model.decision_scores()),
                })
        for theta in thetas:
            cfg = umgad_config(ds_name, profile, theta=theta,
                               seed=profile.seeds[0])
            model = UMGAD(cfg).fit(dataset.graph)
            rows.append({
                "dataset": ds_name, "sweep": "theta",
                "lam": cfg.lam, "mu": cfg.mu, "theta": theta,
                "auc": roc_auc(dataset.labels, model.decision_scores()),
            })
    return rows


def render(rows: List[Dict]) -> str:
    lines = []
    grid = [r for r in rows if r["sweep"] == "lambda_mu"]
    if grid:
        datasets = list(dict.fromkeys(r["dataset"] for r in grid))
        for ds in datasets:
            sub = [r for r in grid if r["dataset"] == ds]
            lams = sorted({r["lam"] for r in sub})
            mus = sorted({r["mu"] for r in sub})
            lines.append(f"[{ds}] AUC grid (rows λ, cols µ):")
            lines.append("      " + "".join(f"µ={m:<7.2f}" for m in mus))
            by = {(r["lam"], r["mu"]): r["auc"] for r in sub}
            for lam in lams:
                lines.append(f"λ={lam:<4.2f} " + "".join(
                    f"{by.get((lam, m), float('nan')):<9.3f}" for m in mus))
            best = max(sub, key=lambda r: r["auc"])
            lines.append(f"best: λ={best['lam']}, µ={best['mu']} "
                         f"(AUC={best['auc']:.3f})")
    thetas = [r for r in rows if r["sweep"] == "theta"]
    for r in thetas:
        lines.append(f"[{r['dataset']}] Θ={r['theta']:<5} AUC={r['auc']:.3f}")
    return "\n".join(lines)
