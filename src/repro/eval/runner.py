"""Multi-seed experiment runner.

Runs a detector factory over one dataset for several seeds, applies an
evaluation protocol, and aggregates mean ± std — the exact shape of the
paper's result cells (``0.770±0.009``).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

import numpy as np

from ..datasets.registry import Dataset
from ..detection import BaseDetector
from .protocols import PROTOCOLS, EvalResult


@dataclass
class RunResult:
    """Aggregated metrics for one (method, dataset, protocol) cell."""

    method: str
    dataset: str
    protocol: str
    auc_mean: float
    auc_std: float
    f1_mean: float
    f1_std: float
    fit_seconds: float
    per_seed: List[EvalResult] = field(default_factory=list)

    def cell(self, metric: str) -> str:
        """Render the paper's ``mean±std`` cell text."""
        if metric == "auc":
            return f"{self.auc_mean:.3f}±{self.auc_std:.3f}"
        if metric == "macro_f1":
            return f"{self.f1_mean:.3f}±{self.f1_std:.3f}"
        raise KeyError(metric)


def run_detector(
    method: str,
    detector_factory: Callable[[int], BaseDetector],
    dataset: Dataset,
    seeds: List[int],
    protocol: str = "unsupervised",
) -> RunResult:
    """Fit/evaluate ``detector_factory(seed)`` for each seed and aggregate.

    The dataset is fixed across seeds (the paper regenerates model
    randomness, not data randomness, across repeats).
    """
    if protocol not in PROTOCOLS:
        raise KeyError(f"unknown protocol {protocol!r}; options: {sorted(PROTOCOLS)}")
    evaluate = PROTOCOLS[protocol]

    per_seed: List[EvalResult] = []
    start = time.perf_counter()
    for seed in seeds:
        detector = detector_factory(seed)
        detector.fit(dataset.graph)
        scores = detector.decision_scores()
        per_seed.append(evaluate(dataset.labels, scores))
    elapsed = time.perf_counter() - start

    aucs = np.array([r.auc for r in per_seed])
    f1s = np.array([r.macro_f1 for r in per_seed])
    return RunResult(
        method=method,
        dataset=dataset.name,
        protocol=protocol,
        auc_mean=float(aucs.mean()),
        auc_std=float(aucs.std()),
        f1_mean=float(f1s.mean()),
        f1_std=float(f1s.std()),
        fit_seconds=elapsed / max(len(seeds), 1),
        per_seed=per_seed,
    )


def format_table(rows: List[RunResult], metrics=("auc", "macro_f1"),
                 datasets: Optional[List[str]] = None) -> str:
    """Render RunResults as a paper-style text table (methods × datasets)."""
    if datasets is None:
        datasets = sorted({r.dataset for r in rows})
    methods = list(dict.fromkeys(r.method for r in rows))
    by_key: Dict = {(r.method, r.dataset): r for r in rows}

    header = ["Method"]
    for ds in datasets:
        for metric in metrics:
            header.append(f"{ds}/{'AUC' if metric == 'auc' else 'F1'}")
    lines = ["  ".join(f"{h:>18s}" for h in header)]
    for method in methods:
        cells = [f"{method:>18s}"]
        for ds in datasets:
            r = by_key.get((method, ds))
            for metric in metrics:
                cells.append(f"{r.cell(metric) if r else '—':>18s}")
        lines.append("  ".join(cells))
    return "\n".join(lines)
