"""Evaluation protocols: real-unsupervised vs ground-truth leakage.

The paper's central methodological point (RQ1/RQ6): Macro-F1 depends on how
the anomaly-score threshold is chosen.

* :func:`evaluate_unsupervised` — Table II/III protocol: the inflection-point
  threshold (Sec. IV-E), computed from scores alone.
* :func:`evaluate_gt_leakage` — Table V protocol: top-``k`` threshold with
  the known anomaly count (the "ground truth leakage" the paper critiques).

AUC is threshold-free and identical under both.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

import numpy as np

from ..core.threshold import select_threshold
from .metrics import macro_f1, predictions_from_topk, roc_auc


@dataclass(frozen=True)
class EvalResult:
    """One detector's metrics on one dataset under one protocol."""

    auc: float
    macro_f1: float
    num_predicted: int
    threshold: Optional[float] = None

    def as_dict(self) -> Dict[str, float]:
        return {"auc": self.auc, "macro_f1": self.macro_f1}


def evaluate_unsupervised(labels: np.ndarray, scores: np.ndarray,
                          window: Optional[int] = None) -> EvalResult:
    """Real-unsupervised protocol: threshold via inflection point."""
    result = select_threshold(scores, window=window)
    predictions = (scores >= result.threshold).astype(np.int64)
    return EvalResult(
        auc=roc_auc(labels, scores),
        macro_f1=macro_f1(labels, predictions),
        num_predicted=int(predictions.sum()),
        threshold=result.threshold,
    )


def evaluate_gt_leakage(labels: np.ndarray, scores: np.ndarray) -> EvalResult:
    """Ground-truth-leakage protocol: top-k with the true anomaly count."""
    k = int(np.asarray(labels).sum())
    predictions = predictions_from_topk(scores, k)
    return EvalResult(
        auc=roc_auc(labels, scores),
        macro_f1=macro_f1(labels, predictions),
        num_predicted=k,
        threshold=None,
    )


PROTOCOLS = {
    "unsupervised": evaluate_unsupervised,
    "gt_leakage": evaluate_gt_leakage,
}
