"""Detection metrics: AUC, Macro-F1, precision@k.

Implemented from first principles on numpy (no sklearn offline):
AUC uses the Mann–Whitney rank statistic with tie correction, Macro-F1
averages per-class F1 over {normal, anomalous}.
"""

from __future__ import annotations

from typing import Dict

import numpy as np


def _rankdata(values: np.ndarray) -> np.ndarray:
    """Average ranks (1-based) with tie handling, like scipy.stats.rankdata."""
    values = np.asarray(values, dtype=np.float64)
    order = np.argsort(values, kind="mergesort")
    ranks = np.empty(values.size, dtype=np.float64)
    sorted_vals = values[order]
    # Identify runs of equal values and assign their average rank.
    boundaries = np.flatnonzero(np.diff(sorted_vals) != 0) + 1
    starts = np.concatenate([[0], boundaries])
    ends = np.concatenate([boundaries, [values.size]])
    for s, e in zip(starts, ends):
        ranks[order[s:e]] = 0.5 * (s + 1 + e)
    return ranks


def roc_auc(labels: np.ndarray, scores: np.ndarray) -> float:
    """Area under the ROC curve via the rank-sum formulation.

    ``labels`` are 0/1 (1 = anomaly), ``scores`` are real-valued anomaly
    scores where higher means more anomalous.
    """
    labels = np.asarray(labels).astype(bool)
    scores = np.asarray(scores, dtype=np.float64)
    if labels.shape != scores.shape:
        raise ValueError(f"shape mismatch: labels {labels.shape}, scores {scores.shape}")
    n_pos = int(labels.sum())
    n_neg = labels.size - n_pos
    if n_pos == 0 or n_neg == 0:
        raise ValueError("AUC undefined: need both classes present")
    ranks = _rankdata(scores)
    rank_sum = ranks[labels].sum()
    return float((rank_sum - n_pos * (n_pos + 1) / 2.0) / (n_pos * n_neg))


def binary_f1(labels: np.ndarray, predictions: np.ndarray, positive: int = 1) -> float:
    """F1 of one class."""
    labels = np.asarray(labels)
    predictions = np.asarray(predictions)
    tp = int(np.sum((predictions == positive) & (labels == positive)))
    fp = int(np.sum((predictions == positive) & (labels != positive)))
    fn = int(np.sum((predictions != positive) & (labels == positive)))
    if tp == 0:
        return 0.0
    precision = tp / (tp + fp)
    recall = tp / (tp + fn)
    return 2.0 * precision * recall / (precision + recall)


def macro_f1(labels: np.ndarray, predictions: np.ndarray) -> float:
    """Unweighted mean of the anomaly-class and normal-class F1 scores."""
    return 0.5 * (binary_f1(labels, predictions, positive=1)
                  + binary_f1(labels, predictions, positive=0))


def precision_at_k(labels: np.ndarray, scores: np.ndarray, k: int) -> float:
    """Fraction of true anomalies among the top-``k`` scored nodes."""
    labels = np.asarray(labels)
    scores = np.asarray(scores, dtype=np.float64)
    k = min(int(k), scores.size)
    if k <= 0:
        raise ValueError("k must be positive")
    top = np.argsort(-scores, kind="mergesort")[:k]
    return float(labels[top].mean())


def predictions_from_topk(scores: np.ndarray, k: int) -> np.ndarray:
    """0/1 predictions marking the ``k`` highest-scoring nodes as anomalies.

    This is the *ground-truth-leakage* thresholding the paper critiques
    (Table V): ``k`` is taken from the known anomaly count.
    """
    scores = np.asarray(scores, dtype=np.float64)
    predictions = np.zeros(scores.size, dtype=np.int64)
    if k > 0:
        top = np.argsort(-scores, kind="mergesort")[:min(k, scores.size)]
        predictions[top] = 1
    return predictions


def evaluate_scores(labels: np.ndarray, scores: np.ndarray,
                    predictions: np.ndarray) -> Dict[str, float]:
    """Bundle the paper's two headline metrics for a scored detection."""
    return {
        "auc": roc_auc(labels, scores),
        "macro_f1": macro_f1(labels, predictions),
    }
