"""Evaluation: metrics, protocols, and the multi-seed experiment runner."""

from .metrics import (
    binary_f1,
    evaluate_scores,
    macro_f1,
    precision_at_k,
    predictions_from_topk,
    roc_auc,
)
from .protocols import (
    PROTOCOLS,
    EvalResult,
    evaluate_gt_leakage,
    evaluate_unsupervised,
)
from .runner import RunResult, format_table, run_detector

__all__ = [
    "EvalResult",
    "PROTOCOLS",
    "RunResult",
    "binary_f1",
    "evaluate_gt_leakage",
    "evaluate_scores",
    "evaluate_unsupervised",
    "format_table",
    "macro_f1",
    "precision_at_k",
    "predictions_from_topk",
    "roc_auc",
    "run_detector",
]
