"""Anomaly injection following Ding et al. (WSDM'19), as used by the paper.

Two anomaly types (Sec. V-A1 of the paper):

* **Structural**: ``n`` cliques of size ``m`` are formed by fully connecting
  ``m`` randomly selected nodes with one or multiple randomly assigned
  relation types; all clique members are anomalies.
* **Attribute**: for each of ``m × n`` selected nodes, sample ``k``
  candidate nodes, find the candidate maximising the Euclidean attribute
  distance, and overwrite the node's attributes with that candidate's.

Injection is functional: it returns a new graph, the binary label vector and
a record of what was injected.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

import numpy as np

from ..graphs.graph import RelationGraph
from ..graphs.multiplex import MultiplexGraph
from ..utils.rng import ensure_rng


@dataclass
class InjectionReport:
    """What was injected, for tests and experiment logging."""

    structural_nodes: np.ndarray
    attribute_nodes: np.ndarray
    cliques: List[np.ndarray] = field(default_factory=list)
    clique_relations: List[List[str]] = field(default_factory=list)

    @property
    def anomaly_nodes(self) -> np.ndarray:
        return np.unique(np.concatenate([self.structural_nodes, self.attribute_nodes]))

    @property
    def num_anomalies(self) -> int:
        return int(self.anomaly_nodes.size)


def clique_pairs(nodes: np.ndarray) -> np.ndarray:
    """All undirected pairs fully connecting ``nodes`` (the clique edges).

    Shared by static injection below and the streaming burst generator
    (:func:`repro.stream.events.synthesize_stream`).
    """
    nodes = np.asarray(nodes, dtype=np.int64)
    iu, iv = np.triu_indices(nodes.size, k=1)
    return np.stack([nodes[iu], nodes[iv]], axis=1)


def max_distance_donor(x: np.ndarray, node: int,
                       candidates: np.ndarray) -> int:
    """The candidate whose attributes are Euclidean-farthest from ``node``.

    The Ding et al. attribute-anomaly primitive: the selected node's
    attributes are overwritten with this donor's. Shared by static
    injection and streaming attribute bursts.
    """
    dists = np.linalg.norm(x[candidates] - x[node], axis=1)
    return int(candidates[int(np.argmax(dists))])


def inject_structural_anomalies(
    graph: MultiplexGraph,
    clique_size: int,
    num_cliques: int,
    rng,
    max_relations_per_clique: int = 2,
    exclude: np.ndarray = None,
) -> tuple:
    """Inject ``num_cliques`` fully-connected cliques of ``clique_size`` nodes.

    Each clique's edges are added to one or several randomly chosen relation
    types. Returns ``(new_graph, clique_node_ids, cliques, relations_used)``.
    """
    rng = ensure_rng(rng)
    n = graph.num_nodes
    forbidden = set() if exclude is None else set(np.asarray(exclude).tolist())
    available = np.array([i for i in range(n) if i not in forbidden], dtype=np.int64)
    need = clique_size * num_cliques
    if available.size < need:
        raise ValueError(
            f"not enough nodes to inject {num_cliques} cliques of size "
            f"{clique_size}: need {need}, have {available.size}"
        )
    chosen = rng.choice(available, size=need, replace=False)
    cliques = [chosen[i * clique_size:(i + 1) * clique_size] for i in range(num_cliques)]

    names = graph.relation_names
    new_edges: Dict[str, list] = {name: [] for name in names}
    relations_used: List[List[str]] = []
    for clique in cliques:
        n_rel = int(rng.integers(1, max_relations_per_clique + 1))
        rels = list(rng.choice(names, size=min(n_rel, len(names)), replace=False))
        relations_used.append(rels)
        pairs = clique_pairs(clique)
        for rel in rels:
            new_edges[rel].append(pairs)

    relations = {}
    for name in names:
        rel = graph[name]
        if new_edges[name]:
            rel = rel.add_edges(np.concatenate(new_edges[name], axis=0))
        relations[name] = rel
    return graph.with_relations(relations), chosen, cliques, relations_used


def inject_attribute_anomalies(
    graph: MultiplexGraph,
    count: int,
    rng,
    candidate_pool: int = 50,
    exclude: np.ndarray = None,
) -> tuple:
    """Inject ``count`` attribute anomalies by max-distance attribute swap.

    For each selected node ``i``, sample ``candidate_pool`` nodes, pick
    ``j = argmax ||x_i - x_j||_2`` and set ``x_i ← x_j`` (Ding et al.).
    Returns ``(new_graph, anomalous_node_ids)``.
    """
    rng = ensure_rng(rng)
    n = graph.num_nodes
    forbidden = set() if exclude is None else set(np.asarray(exclude).tolist())
    available = np.array([i for i in range(n) if i not in forbidden], dtype=np.int64)
    if available.size < count:
        raise ValueError(f"not enough nodes for {count} attribute anomalies")
    chosen = rng.choice(available, size=count, replace=False)

    x = graph.x.copy()
    original = graph.x  # swap sources come from the *original* attributes
    for node in chosen:
        candidates = rng.choice(n, size=min(candidate_pool, n), replace=False)
        donor = max_distance_donor(original, node, candidates)
        x[node] = original[donor]
    return graph.with_features(x), chosen


def inject_anomalies(
    graph: MultiplexGraph,
    clique_size: int,
    num_cliques: int,
    rng,
    attribute_count: int = None,
    candidate_pool: int = 50,
    max_relations_per_clique: int = 2,
) -> tuple:
    """Full Ding et al. protocol: structural cliques + attribute swaps.

    ``attribute_count`` defaults to ``clique_size * num_cliques`` so the two
    anomaly types are balanced, as in the paper. Returns
    ``(graph, labels, report)`` where ``labels`` is the 0/1 anomaly vector.
    """
    rng = ensure_rng(rng)
    if attribute_count is None:
        attribute_count = clique_size * num_cliques

    graph, struct_nodes, cliques, rels = inject_structural_anomalies(
        graph, clique_size, num_cliques, rng,
        max_relations_per_clique=max_relations_per_clique,
    )
    graph, attr_nodes = inject_attribute_anomalies(
        graph, attribute_count, rng,
        candidate_pool=candidate_pool, exclude=struct_nodes,
    )

    labels = np.zeros(graph.num_nodes, dtype=np.int64)
    labels[struct_nodes] = 1
    labels[attr_nodes] = 1
    report = InjectionReport(
        structural_nodes=struct_nodes,
        attribute_nodes=attr_nodes,
        cliques=cliques,
        clique_relations=rels,
    )
    return graph, labels, report
