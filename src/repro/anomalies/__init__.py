"""Anomaly injection (Ding et al. protocol used by the paper)."""

from .injection import (
    InjectionReport,
    inject_anomalies,
    inject_attribute_anomalies,
    inject_structural_anomalies,
)

__all__ = [
    "InjectionReport",
    "inject_anomalies",
    "inject_attribute_anomalies",
    "inject_structural_anomalies",
]
