"""Anomaly injection (Ding et al. protocol used by the paper)."""

from .injection import (
    InjectionReport,
    clique_pairs,
    inject_anomalies,
    inject_attribute_anomalies,
    inject_structural_anomalies,
    max_distance_donor,
)

__all__ = [
    "InjectionReport",
    "clique_pairs",
    "inject_anomalies",
    "inject_attribute_anomalies",
    "inject_structural_anomalies",
    "max_distance_donor",
]
