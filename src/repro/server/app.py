"""Threaded HTTP JSON API over a :class:`~repro.server.gateway.Gateway`.

Built entirely on :mod:`http.server` — one handler thread per connection
(:class:`ThreadingHTTPServer`), keep-alive HTTP/1.1 with explicit
``Content-Length`` on every response, JSON request/response bodies.

Endpoints::

    POST /v1/score                     node/graph scoring (micro-batched)
    POST /v1/events                    stream events -> window reports + alerts
    GET  /v1/models                    registry listing
    POST /v1/models/{name}/activate    hot-swap the served checkpoint
    GET  /healthz                      liveness + SLO rollup (?deep=1 for
                                       per-component detail; 503 on
                                       sustained SLO burn)
    GET  /metrics                      Prometheus text exposition
    GET  /v1/traces                    recently completed request traces

Every traced request (everything except ``/metrics`` and ``/v1/traces``)
echoes its trace id on the ``X-Repro-Trace-Id`` response header; clients
may supply the header to pick the id themselves.

Error contract: every failure is an HTTP response with a JSON
``{"error": ...}`` body — 400 malformed payloads, 404 unknown resources,
409 requests the loaded model cannot answer, 429 admission-queue overflow,
503 shutdown/timeout, 500 bugs. Overload never silently drops a
connection; the 429 path is exercised by ``benchmarks/test_server_perf.py``.
"""

from __future__ import annotations

import json
import re
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Optional, Tuple
from urllib.parse import parse_qs, urlparse

from .. import chaos
from ..obs.log import get_logger
from ..obs.trace import annotate, sanitize_trace_id, start_trace
from ..serve.checkpoint import CheckpointError
from ..serve.service import ServiceError
from .batcher import AdmissionError, DeadlineExceeded
from .gateway import Gateway, GatewayError, SERVER_NAME

#: request/response header carrying the request's trace id; clients may
#: supply their own (sanitized) id to stitch server traces into theirs
TRACE_HEADER = "X-Repro-Trace-Id"

#: request header carrying the caller's remaining time budget in
#: milliseconds; expired entries are dropped (504) instead of scored
DEADLINE_HEADER = "X-Repro-Deadline-Ms"

_ACTIVATE_PATTERN = re.compile(
    r"^/v1/models/(?P<name>[A-Za-z0-9][A-Za-z0-9._-]*)/activate$")

_MAX_BODY_BYTES = 64 * 1024 * 1024  # refuse absurd inline graph payloads

_log = get_logger("repro.server.app")


class ServerHandler(BaseHTTPRequestHandler):
    """Routes HTTP requests to the gateway; maps exceptions to statuses."""

    server_version = SERVER_NAME
    protocol_version = "HTTP/1.1"

    @property
    def gateway(self) -> Gateway:
        return self.server.gateway  # type: ignore[attr-defined]

    # ------------------------------------------------------------------
    # Plumbing
    # ------------------------------------------------------------------
    def log_message(self, format: str, *args) -> None:
        if getattr(self.server, "verbose", False):
            super().log_message(format, *args)

    def _send(self, status: int, body: bytes, content_type: str,
              endpoint: str) -> None:
        # Simulated transport fault: raising ConnectionResetError here
        # drops the connection before any response bytes, exactly what a
        # killed server mid-response looks like to the client.
        chaos.fail_point("http.reset", key=endpoint)
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(body)))
        trace_id = getattr(self, "_trace_id", None)
        if trace_id:
            self.send_header(TRACE_HEADER, trace_id)
        if status in (429, 503):
            # Both are transient-by-contract: queue overflow (429) and
            # shutdown/timeout/open-breaker (503). Clients honouring
            # Retry-After (see ServerClient) back off instead of hammering.
            self.send_header("Retry-After", "1")
        if self.close_connection:
            # Tell the client this connection is done (undrained body);
            # http.client then reconnects transparently on the next call.
            self.send_header("Connection", "close")
        self.end_headers()
        self.wfile.write(body)
        started = getattr(self, "_request_started", None)
        self.gateway.record(
            endpoint, status,
            seconds=(time.perf_counter() - started)
            if started is not None else None)

    def _send_json(self, status: int, payload: dict, endpoint: str) -> None:
        body = json.dumps(payload).encode("utf-8")
        self._send(status, body, "application/json", endpoint)

    def _send_error_json(self, status: int, message: str,
                         endpoint: str) -> None:
        self._send_json(status, {"error": message}, endpoint)

    def _read_json_body(self) -> dict:
        length = self.headers.get("Content-Length")
        if length is None:
            # No framing information: any body bytes would desync the
            # next keep-alive request, so drop the connection after the
            # error response.
            self.close_connection = True
            raise GatewayError("request needs a Content-Length header", 400)
        try:
            length = int(length)
        except ValueError:
            self.close_connection = True
            raise GatewayError("invalid Content-Length header", 400) from None
        if length < 0 or length > _MAX_BODY_BYTES:
            # Refusing to read the body leaves it in the stream; close
            # instead of letting it masquerade as the next request line.
            self.close_connection = True
            raise GatewayError(
                f"request body too large (> {_MAX_BODY_BYTES} bytes)", 400)
        raw = self.rfile.read(length)
        try:
            payload = json.loads(raw)
        except json.JSONDecodeError as exc:
            raise GatewayError(f"request body is not valid JSON: {exc}",
                               400) from None
        if not isinstance(payload, dict):
            raise GatewayError("request body must be a JSON object", 400)
        return payload

    def _drain_body(self) -> None:
        """Consume an unused request body so keep-alive framing survives.

        A POST whose body is never read would leave those bytes in the
        stream, and the next request on the connection would parse them
        as its request line.
        """
        length = self.headers.get("Content-Length")
        if length is None:
            return
        try:
            remaining = int(length)
        except ValueError:
            self.close_connection = True
            return
        if remaining > _MAX_BODY_BYTES:
            # Not worth reading out; close so the tail cannot desync the
            # next keep-alive request.
            self.close_connection = True
            return
        while remaining > 0:
            chunk = self.rfile.read(min(remaining, 1 << 16))
            if not chunk:
                break
            remaining -= len(chunk)

    def _dispatch(self, endpoint: str, handler, traced: bool = True) -> None:
        """Run one endpoint handler under the uniform error contract.

        When ``traced`` (the default), the handler runs inside a request
        trace: a sanitized client-supplied ``X-Repro-Trace-Id`` is adopted
        (a fresh id is minted otherwise), the completed trace lands in the
        gateway's ring buffer for ``GET /v1/traces``, its span durations
        feed the per-stage histograms, and the id echoes back on the
        response header. ``/metrics`` and ``/v1/traces`` themselves pass
        ``traced=False`` so reading telemetry never pollutes it.
        """
        trace = None
        trace_cm = start_trace(
            f"http.{endpoint}",
            trace_id=sanitize_trace_id(self.headers.get(TRACE_HEADER)),
            store=self.gateway.traces) if traced else None
        if trace_cm is not None:
            trace = trace_cm.__enter__()
            if trace is not None:
                self._trace_id = trace.trace_id
                annotate("endpoint", endpoint)
        try:
            status, payload = handler()
        except GatewayError as exc:
            status, payload = exc.status, {"error": str(exc)}
        except AdmissionError as exc:
            status, payload = exc.status, {"error": str(exc)}
        except DeadlineExceeded as exc:
            status, payload = 504, {"error": str(exc)}
        except (ServiceError, CheckpointError) as exc:
            status, payload = 409, {"error": str(exc)}
        except Exception as exc:  # noqa: BLE001 - the 500 safety net
            status, payload = 500, {
                "error": f"internal error: {type(exc).__name__}: {exc}"}
        if trace_cm is not None:
            annotate("status", status)
            trace_cm.__exit__(None, None, None)
            if trace is not None:
                self.gateway.observe_trace(trace.to_dict())
        try:
            self._send_json(status, payload, endpoint)
        except (BrokenPipeError, ConnectionResetError):
            # Client went away before the response (common on the 429
            # path under overload); drop the connection quietly but keep
            # the metrics honest.
            self.close_connection = True
            self.gateway.record(endpoint, status)

    # ------------------------------------------------------------------
    # Routing
    # ------------------------------------------------------------------
    def do_GET(self) -> None:  # noqa: N802 - http.server naming
        self._request_started = time.perf_counter()
        self._trace_id = None
        parsed = urlparse(self.path)
        path = parsed.path
        if path == "/healthz":
            query = parse_qs(parsed.query)
            deep = query.get("deep", ["0"])[0] not in ("0", "", "false")
            self._dispatch("healthz",
                           lambda: self._health_response(deep))
        elif path == "/metrics":
            try:
                text = self.gateway.metrics_text()
            except Exception as exc:  # noqa: BLE001
                self._send_error_json(
                    500, f"internal error: {type(exc).__name__}: {exc}",
                    "metrics")
            else:
                self._send(200, text.encode("utf-8"),
                           "text/plain; version=0.0.4; charset=utf-8",
                           "metrics")
        elif path == "/v1/models":
            self._dispatch("models", lambda: (200,
                                              self.gateway.list_models()))
        elif path == "/v1/traces":
            query = parse_qs(parsed.query)
            self._dispatch("traces", lambda: (200, self._traces_response(
                query)), traced=False)
        else:
            self._send_error_json(404, f"no such endpoint: GET {path}",
                                  "unknown")

    def _health_response(self, deep: bool) -> Tuple[int, dict]:
        """``/healthz`` [+ ``?deep=1``]: 503 once the SLO burn sustains —
        load balancers should stop sending traffic to a burning instance."""
        payload = self.gateway.health(deep=deep)
        status = 503 if payload.get("status") == "failing" else 200
        return status, payload

    def _traces_response(self, query: dict) -> dict:
        last = query.get("last", [None])[0]
        if last is not None:
            try:
                last = int(last)
            except ValueError:
                raise GatewayError("'last' must be an integer",
                                   400) from None
        return self.gateway.traces_payload(
            last=last, trace_id=query.get("id", [None])[0])

    def _deadline_ms(self) -> Optional[float]:
        """Parse ``X-Repro-Deadline-Ms`` (None when absent or malformed).

        A malformed deadline is treated as no deadline rather than a 400:
        the header is an optimisation hint, and refusing the request over
        it would turn a client-side formatting bug into an outage.
        """
        raw = self.headers.get(DEADLINE_HEADER)
        if raw is None:
            return None
        try:
            value = float(raw)
        except ValueError:
            return None
        return value if value > 0 else None

    def do_POST(self) -> None:  # noqa: N802 - http.server naming
        self._request_started = time.perf_counter()
        self._trace_id = None
        path = urlparse(self.path).path
        if path == "/v1/score":
            deadline_ms = self._deadline_ms()
            self._dispatch(
                "score",
                lambda: (200, self.gateway.score(self._read_json_body(),
                                                 deadline_ms=deadline_ms)))
        elif path == "/v1/events":
            self._dispatch(
                "events",
                lambda: (200,
                         self.gateway.ingest_events(self._read_json_body())))
        else:
            match = _ACTIVATE_PATTERN.match(path)
            if match is not None:
                name = match.group("name")
                self._drain_body()  # activate takes no body; keep framing
                self._dispatch(
                    "activate",
                    lambda: (200, self.gateway.activate(name)))
            else:
                self._drain_body()
                self._send_error_json(404, f"no such endpoint: POST {path}",
                                      "unknown")


class ReproServer(ThreadingHTTPServer):
    """Threading HTTP server owning one :class:`Gateway`."""

    daemon_threads = True
    # Ephemeral-port test servers restart fast; avoid TIME_WAIT bind errors.
    allow_reuse_address = True
    # socketserver's default listen backlog is 5: a 16-connection burst
    # would overflow it, and the dropped SYNs come back as connection
    # resets or 1s retransmit stalls. Size it for thundering herds.
    request_queue_size = 128

    def __init__(self, address: Tuple[str, int], gateway: Gateway,
                 verbose: bool = False):
        super().__init__(address, ServerHandler)
        self.gateway = gateway
        self.verbose = verbose

    @property
    def port(self) -> int:
        return int(self.server_address[1])

    @property
    def url(self) -> str:
        host = self.server_address[0]
        return f"http://{host}:{self.port}"

    def close(self) -> dict:
        """Stop accepting, drain admitted work, release the socket.

        The gateway's shutdown report (leaked batcher threads, killed
        pool workers, leaked shm segments) is logged here — a dirty
        shutdown used to vanish silently — and returned to the caller.
        Idempotent: repeated calls return the first report unlogged.
        """
        previous = getattr(self, "_close_report", None)
        if previous is not None:
            self.server_close()
            return dict(previous)
        report = self.gateway.close()
        self._close_report = report
        self.server_close()
        batcher = report.get("batcher", {})
        pool = report.get("pool", {})
        dirty = bool(batcher.get("leaked_workers")) or \
            bool(pool.get("workers_killed")) or \
            bool(pool.get("leaked_segments"))
        if dirty:
            _log.error("server.dirty_shutdown",
                       leaked_threads=batcher.get("leaked_workers", []),
                       pending_at_close=batcher.get("pending_at_close", 0),
                       pool_workers_killed=pool.get("workers_killed", 0),
                       leaked_segments=pool.get("leaked_segments", []))
        else:
            _log.info("server.shutdown_clean",
                      batcher_workers_joined=batcher.get(
                          "workers_joined", 0),
                      pool_workers_stopped=pool.get("workers_stopped", 0))
        return report


def make_server(gateway: Gateway, host: str = "127.0.0.1", port: int = 0,
                verbose: bool = False) -> ReproServer:
    """Bind a :class:`ReproServer` (``port=0`` picks an ephemeral port)."""
    return ReproServer((host, port), gateway, verbose=verbose)


class ServerThread:
    """A running server on a background thread (tests, notebooks, CI).

    Usage::

        with ServerThread(gateway) as server:
            client = ServerClient(port=server.port)
            ...
    """

    def __init__(self, gateway: Gateway, host: str = "127.0.0.1",
                 port: int = 0, verbose: bool = False):
        self.server = make_server(gateway, host=host, port=port,
                                  verbose=verbose)
        self._thread: Optional[threading.Thread] = None

    @property
    def port(self) -> int:
        return self.server.port

    @property
    def url(self) -> str:
        return self.server.url

    def start(self) -> "ServerThread":
        if self._thread is not None:
            raise RuntimeError("server thread already started")
        self._thread = threading.Thread(target=self.server.serve_forever,
                                        daemon=True, name="repro-server")
        self._thread.start()
        return self

    def stop(self) -> dict:
        """Stop serving; returns the server's shutdown report."""
        self.server.shutdown()
        report = self.server.close()
        if self._thread is not None:
            self._thread.join(timeout=30.0)
            self._thread = None
        return report

    def __enter__(self) -> "ServerThread":
        return self.start()

    def __exit__(self, *_exc) -> None:
        self.stop()


__all__ = ["DEADLINE_HEADER", "ReproServer", "ServerHandler", "ServerThread",
           "TRACE_HEADER", "make_server"]
