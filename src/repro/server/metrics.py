"""Prometheus text exposition (version 0.0.4) for the serving gateway.

A deliberately tiny renderer — counters, gauges and full histogram
families (``_bucket``/``_sum``/``_count`` with cumulative buckets and the
``+Inf`` bound), no client library required. Conventions are enforced at
render time so callers can't drift:

* counter families are exported with the ``_total`` suffix (appended when
  missing);
* values render in non-scientific decimal form (``repr`` floats like
  ``1e-05`` are expanded), with ``+Inf``/``-Inf``/``NaN`` spelled the way
  Prometheus parsers expect.

The output is linted end-to-end by :mod:`repro.obs.promlint` in the test
suite and the CI ``obs-smoke`` job.
"""

from __future__ import annotations

import math
from decimal import Decimal
from typing import Dict, Iterable, List, Optional, Sequence, Tuple, Union

from ..obs.hist import Histogram, HistogramSnapshot

Labels = Optional[Dict[str, str]]
Sample = Tuple[Labels, Union[int, float]]
HistogramSample = Tuple[Labels, HistogramSnapshot]


def _escape_label(value: str) -> str:
    return (str(value).replace("\\", "\\\\").replace('"', '\\"')
            .replace("\n", "\\n"))


def _format_value(value: Union[int, float]) -> str:
    if isinstance(value, bool):  # bool is an int subclass; be explicit
        return "1" if value else "0"
    if isinstance(value, int):
        return str(value)
    value = float(value)
    if math.isinf(value):
        return "+Inf" if value > 0 else "-Inf"
    if math.isnan(value):
        return "NaN"
    text = repr(value)
    if "e" in text or "E" in text:
        # repr() goes scientific past ~1e16 / below 1e-4; expand to plain
        # decimal (Decimal(repr(x)) is exact for repr's shortest form).
        text = format(Decimal(text), "f")
    return text


def _render_labels(labels: Dict[str, str]) -> str:
    return ",".join(f'{key}="{_escape_label(val)}"'
                    for key, val in labels.items())


class MetricsRegistry:
    """Collects (name, type, help, samples) families and renders them."""

    def __init__(self, prefix: str = "repro"):
        self.prefix = prefix
        self._families: List[Tuple[str, str, str, list]] = []

    def add(self, name: str, kind: str, help_text: str,
            samples: Iterable[Sample]) -> None:
        if kind not in ("counter", "gauge"):
            raise ValueError(f"unsupported metric type {kind!r}")
        full = f"{self.prefix}_{name}" if self.prefix else name
        if kind == "counter" and not full.endswith("_total"):
            # Prometheus naming convention: cumulative counters carry the
            # unit-less _total suffix. Enforced here so every exporter
            # call site stays consistent for free.
            full += "_total"
        self._families.append((full, kind, help_text, list(samples)))

    def counter(self, name: str, help_text: str, value: Union[int, float],
                labels: Labels = None) -> None:
        self.add(name, "counter", help_text, [(labels, value)])

    def gauge(self, name: str, help_text: str, value: Union[int, float],
              labels: Labels = None) -> None:
        self.add(name, "gauge", help_text, [(labels, value)])

    def histogram(self, name: str, help_text: str,
                  samples: Union[Histogram, HistogramSnapshot,
                                 Sequence[HistogramSample]],
                  labels: Labels = None) -> None:
        """One histogram family.

        ``samples`` is a live :class:`~repro.obs.hist.Histogram`, a
        :class:`~repro.obs.hist.HistogramSnapshot`, or a list of
        ``(labels, snapshot)`` pairs for labelled series (e.g. one per
        endpoint). Rendering follows the exposition format: cumulative
        ``_bucket`` lines per bound plus ``le="+Inf"``, then ``_sum`` and
        ``_count``.
        """
        if isinstance(samples, Histogram):
            samples = [(labels, samples.snapshot())]
        elif isinstance(samples, HistogramSnapshot):
            samples = [(labels, samples)]
        full = f"{self.prefix}_{name}" if self.prefix else name
        self._families.append((full, "histogram", help_text, list(samples)))

    # ------------------------------------------------------------------
    def render(self) -> str:
        lines: List[str] = []
        for name, kind, help_text, samples in self._families:
            lines.append(f"# HELP {name} {help_text}")
            lines.append(f"# TYPE {name} {kind}")
            if kind == "histogram":
                for labels, snap in samples:
                    self._render_histogram(lines, name, labels or {}, snap)
                continue
            for labels, value in samples:
                if labels:
                    rendered = _render_labels(dict(sorted(labels.items())))
                    lines.append(f"{name}{{{rendered}}} "
                                 f"{_format_value(value)}")
                else:
                    lines.append(f"{name} {_format_value(value)}")
        return "\n".join(lines) + "\n"

    @staticmethod
    def _render_histogram(lines: List[str], name: str,
                          labels: Dict[str, str],
                          snap: HistogramSnapshot) -> None:
        base = dict(sorted(labels.items()))
        bounds = list(snap.bounds) + [math.inf]
        for bound, cumulative in zip(bounds, snap.cumulative):
            bucket_labels = dict(base)
            bucket_labels["le"] = _format_value(float(bound))
            lines.append(f"{name}_bucket{{{_render_labels(bucket_labels)}}} "
                         f"{cumulative}")
        suffix = f"{{{_render_labels(base)}}}" if base else ""
        lines.append(f"{name}_sum{suffix} {_format_value(snap.sum)}")
        lines.append(f"{name}_count{suffix} {snap.count}")


__all__ = ["MetricsRegistry"]
