"""Prometheus text exposition (version 0.0.4) for the serving gateway.

A deliberately tiny renderer — the gateway exports counters and gauges
only, so the whole format is ``# HELP`` / ``# TYPE`` preambles plus
``name{labels} value`` sample lines. No client library required.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Tuple, Union

Labels = Optional[Dict[str, str]]
Sample = Tuple[Labels, Union[int, float]]


def _escape_label(value: str) -> str:
    return (str(value).replace("\\", "\\\\").replace('"', '\\"')
            .replace("\n", "\\n"))


def _format_value(value: Union[int, float]) -> str:
    if isinstance(value, bool):  # bool is an int subclass; be explicit
        return "1" if value else "0"
    if isinstance(value, int):
        return str(value)
    return repr(float(value))


class MetricsRegistry:
    """Collects (name, type, help, samples) families and renders them."""

    def __init__(self, prefix: str = "repro"):
        self.prefix = prefix
        self._families: List[Tuple[str, str, str, List[Sample]]] = []

    def add(self, name: str, kind: str, help_text: str,
            samples: Iterable[Sample]) -> None:
        if kind not in ("counter", "gauge"):
            raise ValueError(f"unsupported metric type {kind!r}")
        full = f"{self.prefix}_{name}" if self.prefix else name
        self._families.append((full, kind, help_text, list(samples)))

    def counter(self, name: str, help_text: str, value: Union[int, float],
                labels: Labels = None) -> None:
        self.add(name, "counter", help_text, [(labels, value)])

    def gauge(self, name: str, help_text: str, value: Union[int, float],
              labels: Labels = None) -> None:
        self.add(name, "gauge", help_text, [(labels, value)])

    def render(self) -> str:
        lines: List[str] = []
        for name, kind, help_text, samples in self._families:
            lines.append(f"# HELP {name} {help_text}")
            lines.append(f"# TYPE {name} {kind}")
            for labels, value in samples:
                if labels:
                    rendered = ",".join(
                        f'{key}="{_escape_label(val)}"'
                        for key, val in sorted(labels.items()))
                    lines.append(f"{name}{{{rendered}}} "
                                 f"{_format_value(value)}")
                else:
                    lines.append(f"{name} {_format_value(value)}")
        return "\n".join(lines) + "\n"


__all__ = ["MetricsRegistry"]
