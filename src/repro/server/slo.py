"""Rolling-window SLO tracking for the HTTP gateway.

The gateway feeds every request outcome (endpoint, latency, error) into
an :class:`SLOTracker`. Per endpoint the tracker keeps:

* a **rolling ring** of the last ``window`` observations — powering the
  live ``slo_latency_p50_seconds`` / ``slo_latency_p99_seconds`` /
  ``slo_error_ratio`` gauges at ``/metrics``;
* **tumbling windows**: every ``window``-th observation completes a
  :class:`WindowSummary` (p50/p99/error-rate vs the objective) appended
  to a bounded history — the "ledger of last N windows" surfaced by
  ``GET /healthz?deep=1``.

Health rolls up as:

* ``failing`` — some endpoint's last ``sustain`` completed windows *all*
  violated the objective (sustained burn → ``/healthz`` returns 503);
* ``degraded`` — the most recent completed window violated, or the live
  ring currently violates with enough samples to judge;
* ``ok`` — otherwise.

Errors are server faults (HTTP status >= 500); client errors (4xx) are
load shedding working as intended and do not burn the SLO.

Quantiles use the nearest-rank method (no interpolation): exact on the
small windows involved and stable for gating.
"""

from __future__ import annotations

import math
import threading
import time
from collections import deque
from dataclasses import dataclass, field
from typing import Deque, Dict, List, Optional, Sequence, Tuple


def nearest_rank(values: Sequence[float], q: float) -> float:
    """Nearest-rank quantile ``q`` in [0, 1] of non-empty ``values``."""
    if not values:
        raise ValueError("nearest_rank needs at least one value")
    if not 0.0 <= q <= 1.0:
        raise ValueError(f"quantile must be in [0, 1], got {q}")
    ordered = sorted(values)
    rank = max(1, math.ceil(q * len(ordered)))
    return ordered[rank - 1]


@dataclass(frozen=True)
class SLOObjective:
    """The target a window is judged against."""

    p99_seconds: float = 2.5
    error_ratio: float = 0.02

    def to_dict(self) -> dict:
        return {"p99_seconds": self.p99_seconds,
                "error_ratio": self.error_ratio}


@dataclass(frozen=True)
class WindowSummary:
    """One completed tumbling window of an endpoint."""

    endpoint: str
    index: int               # completed-window sequence number (per endpoint)
    samples: int
    p50_seconds: float
    p99_seconds: float
    error_ratio: float
    compliant: bool
    completed_unix: float

    def to_dict(self) -> dict:
        return {
            "endpoint": self.endpoint,
            "index": self.index,
            "samples": self.samples,
            "p50_seconds": self.p50_seconds,
            "p99_seconds": self.p99_seconds,
            "error_ratio": self.error_ratio,
            "compliant": self.compliant,
            "completed_unix": self.completed_unix,
        }


class _EndpointState:
    __slots__ = ("ring", "observations", "windows", "burn_windows",
                 "history")

    def __init__(self, window: int, history: int):
        # (seconds, error) pairs; maxlen keeps the live view rolling
        self.ring: Deque[Tuple[float, bool]] = deque(maxlen=window)
        self.observations = 0
        self.windows = 0
        self.burn_windows = 0
        self.history: Deque[WindowSummary] = deque(maxlen=history)


@dataclass(frozen=True)
class EndpointStatus:
    """Live view of one endpoint's rolling ring + window counters."""

    endpoint: str
    samples: int
    p50_seconds: Optional[float]
    p99_seconds: Optional[float]
    error_ratio: Optional[float]
    compliant: bool
    judged: bool             # enough samples to judge compliance
    windows: int
    burn_windows: int
    burning: bool            # last `sustain` windows all violated

    def to_dict(self) -> dict:
        return {
            "samples": self.samples,
            "p50_seconds": self.p50_seconds,
            "p99_seconds": self.p99_seconds,
            "error_ratio": self.error_ratio,
            "compliant": self.compliant,
            "judged": self.judged,
            "windows": self.windows,
            "burn_windows": self.burn_windows,
            "burning": self.burning,
        }


class SLOTracker:
    """Thread-safe per-endpoint latency/error SLO bookkeeping."""

    def __init__(self, *, window: int = 100,
                 objective: Optional[SLOObjective] = None,
                 sustain: int = 2, history: int = 16,
                 min_samples: Optional[int] = None):
        if window < 1:
            raise ValueError(f"window must be >= 1, got {window}")
        if sustain < 1:
            raise ValueError(f"sustain must be >= 1, got {sustain}")
        if history < 1:
            raise ValueError(f"history must be >= 1, got {history}")
        self.window = int(window)
        self.objective = objective or SLOObjective()
        self.sustain = int(sustain)
        self.history = int(history)
        # live compliance needs this many ring samples before judging
        self.min_samples = (max(1, self.window // 5)
                            if min_samples is None else max(1, min_samples))
        self._lock = threading.Lock()
        self._endpoints: Dict[str, _EndpointState] = {}

    # ------------------------------------------------------------------
    def _summary(self, values: Sequence[Tuple[float, bool]]
                 ) -> Tuple[float, float, float]:
        latencies = [seconds for seconds, _error in values]
        errors = sum(1 for _seconds, error in values if error)
        return (nearest_rank(latencies, 0.50),
                nearest_rank(latencies, 0.99),
                errors / len(values))

    def _violates(self, p99: float, error_ratio: float) -> bool:
        return (p99 > self.objective.p99_seconds
                or error_ratio > self.objective.error_ratio)

    def observe(self, endpoint: str, seconds: float,
                error: bool = False) -> Optional[WindowSummary]:
        """Record one request; returns the window it completed, if any."""
        with self._lock:
            state = self._endpoints.get(endpoint)
            if state is None:
                state = _EndpointState(self.window, self.history)
                self._endpoints[endpoint] = state
            state.ring.append((float(seconds), bool(error)))
            state.observations += 1
            if state.observations % self.window:
                return None
            # tumbling window complete: the ring holds exactly the last
            # `window` observations right now
            p50, p99, error_ratio = self._summary(tuple(state.ring))
            state.windows += 1
            compliant = not self._violates(p99, error_ratio)
            if not compliant:
                state.burn_windows += 1
            summary = WindowSummary(
                endpoint=endpoint, index=state.windows,
                samples=len(state.ring), p50_seconds=p50, p99_seconds=p99,
                error_ratio=error_ratio, compliant=compliant,
                completed_unix=time.time())
            state.history.append(summary)
            return summary

    # ------------------------------------------------------------------
    def _endpoint_status_locked(self, endpoint: str,
                                state: _EndpointState) -> EndpointStatus:
        ring = tuple(state.ring)
        if ring:
            p50, p99, error_ratio = self._summary(ring)
        else:
            p50 = p99 = error_ratio = None
        judged = len(ring) >= self.min_samples
        compliant = True
        if judged and p99 is not None:
            compliant = not self._violates(p99, error_ratio)
        recent = list(state.history)[-self.sustain:]
        burning = (len(recent) >= self.sustain
                   and all(not summary.compliant for summary in recent))
        return EndpointStatus(
            endpoint=endpoint, samples=len(ring), p50_seconds=p50,
            p99_seconds=p99, error_ratio=error_ratio, compliant=compliant,
            judged=judged, windows=state.windows,
            burn_windows=state.burn_windows, burning=burning)

    def endpoint_status(self, endpoint: str) -> Optional[EndpointStatus]:
        with self._lock:
            state = self._endpoints.get(endpoint)
            if state is None:
                return None
            return self._endpoint_status_locked(endpoint, state)

    def statuses(self) -> Dict[str, EndpointStatus]:
        with self._lock:
            return {endpoint: self._endpoint_status_locked(endpoint, state)
                    for endpoint, state in sorted(self._endpoints.items())}

    def windows(self, limit: Optional[int] = None) -> List[WindowSummary]:
        """Completed windows across endpoints, oldest first."""
        with self._lock:
            merged: List[WindowSummary] = []
            for state in self._endpoints.values():
                merged.extend(state.history)
        merged.sort(key=lambda summary: summary.completed_unix)
        if limit is not None:
            merged = merged[-limit:]
        return merged

    def status(self) -> str:
        """``ok`` | ``degraded`` | ``failing`` rolled up over endpoints."""
        statuses = self.statuses()
        if any(status.burning for status in statuses.values()):
            return "failing"
        for status in statuses.values():
            last = self.last_window(status.endpoint)
            if last is not None and not last.compliant:
                return "degraded"
            if status.judged and not status.compliant:
                return "degraded"
        return "ok"

    def last_window(self, endpoint: str) -> Optional[WindowSummary]:
        with self._lock:
            state = self._endpoints.get(endpoint)
            if state is None or not state.history:
                return None
            return state.history[-1]

    def snapshot(self, window_limit: int = 8) -> dict:
        """The deep-health payload fragment."""
        return {
            "status": self.status(),
            "objective": self.objective.to_dict(),
            "window": self.window,
            "sustain": self.sustain,
            "endpoints": {endpoint: status.to_dict()
                          for endpoint, status in self.statuses().items()},
            "windows": [summary.to_dict()
                        for summary in self.windows(limit=window_limit)],
        }


__all__ = [
    "EndpointStatus",
    "SLOObjective",
    "SLOTracker",
    "WindowSummary",
    "nearest_rank",
]
