"""Per-fingerprint circuit breaker with stale-score degradation.

When scoring a particular graph keeps failing (a poisoned payload, a
checkpoint that rejects its schema, an injected fault), retrying every
request into the same failure burns batch capacity and latency budget for
nothing. :class:`CircuitBreaker` tracks consecutive failures **per
fingerprint** and, once a key trips, answers from the last known-good
scores instead — flagged ``degraded: true`` in the response — while
periodic *half-open* probes test whether the underlying fault has
cleared.

State machine (classic three-state breaker, one per fingerprint)::

    closed --[failure_threshold consecutive failures]--> open
    open   --[reset_timeout elapsed]-->                  half_open
    half_open --[probe succeeds]-->                      closed
    half_open --[probe fails]-->                         open (timer resets)

``closed`` passes every request through. ``open`` refuses them (the
gateway then serves stale scores, or 503 when none exist). ``half_open``
lets exactly one probe request through; its outcome decides the next
state. The clock is injectable so tests drive transitions without
sleeping.

Keys are bounded: least-recently-touched breaker entries are evicted
past ``max_keys``, so an adversarial stream of unique fingerprints
cannot grow the table without limit.
"""

from __future__ import annotations

import threading
import time
from collections import OrderedDict
from typing import Callable, Dict, Optional

CLOSED = "closed"
OPEN = "open"
HALF_OPEN = "half_open"


class _Entry:
    __slots__ = ("state", "failures", "opened_at", "probing")

    def __init__(self) -> None:
        self.state = CLOSED
        self.failures = 0
        self.opened_at: Optional[float] = None
        #: True while the single half-open probe is in flight
        self.probing = False


class CircuitBreaker:
    """Track per-key failure streaks; trip open; probe half-open.

    Parameters
    ----------
    failure_threshold:
        Consecutive failures that trip a key from closed to open.
    reset_timeout:
        Seconds an open key waits before allowing a half-open probe.
    max_keys:
        Bound on tracked keys (LRU eviction beyond it).
    clock:
        Monotonic time source; injectable for deterministic tests.
    """

    def __init__(self, failure_threshold: int = 3,
                 reset_timeout: float = 30.0, max_keys: int = 256,
                 clock: Callable[[], float] = time.monotonic):
        if failure_threshold < 1:
            raise ValueError(
                f"failure_threshold must be >= 1, got {failure_threshold}")
        if reset_timeout <= 0:
            raise ValueError(
                f"reset_timeout must be > 0, got {reset_timeout}")
        if max_keys < 1:
            raise ValueError(f"max_keys must be >= 1, got {max_keys}")
        self.failure_threshold = int(failure_threshold)
        self.reset_timeout = float(reset_timeout)
        self.max_keys = int(max_keys)
        self._clock = clock
        self._lock = threading.Lock()
        self._entries: "OrderedDict[str, _Entry]" = OrderedDict()
        #: keys that ever tripped open (monotonic counter for /metrics)
        self.trips = 0
        #: requests refused because their key was open
        self.rejections = 0

    # ------------------------------------------------------------------
    def _entry(self, key: str) -> _Entry:
        entry = self._entries.get(key)
        if entry is None:
            entry = self._entries[key] = _Entry()
            while len(self._entries) > self.max_keys:
                self._entries.popitem(last=False)
        else:
            self._entries.move_to_end(key)
        return entry

    def allow(self, key: str) -> bool:
        """May a request for ``key`` reach the service right now?

        Open keys refuse until ``reset_timeout`` elapses, then exactly one
        caller gets ``True`` as the half-open probe; the rest keep getting
        ``False`` until the probe's outcome is recorded.
        """
        with self._lock:
            entry = self._entry(key)
            if entry.state == CLOSED:
                return True
            if entry.state == OPEN:
                elapsed = self._clock() - (entry.opened_at or 0.0)
                if elapsed >= self.reset_timeout:
                    entry.state = HALF_OPEN
                    entry.probing = True
                    return True
                self.rejections += 1
                return False
            # half-open: one probe at a time
            if entry.probing:
                self.rejections += 1
                return False
            entry.probing = True
            return True

    def record_success(self, key: str) -> None:
        """A request for ``key`` succeeded: reset the streak, close."""
        with self._lock:
            entry = self._entry(key)
            entry.failures = 0
            entry.probing = False
            entry.state = CLOSED
            entry.opened_at = None

    def record_failure(self, key: str) -> None:
        """A request for ``key`` failed: extend the streak, maybe trip."""
        with self._lock:
            entry = self._entry(key)
            entry.failures += 1
            entry.probing = False
            if entry.state == HALF_OPEN:
                # failed probe: back to open, timer restarts
                entry.state = OPEN
                entry.opened_at = self._clock()
            elif entry.state == CLOSED and \
                    entry.failures >= self.failure_threshold:
                entry.state = OPEN
                entry.opened_at = self._clock()
                self.trips += 1

    # ------------------------------------------------------------------
    def state(self, key: str) -> str:
        """Current state of ``key`` (untracked keys are closed)."""
        with self._lock:
            entry = self._entries.get(key)
            return entry.state if entry is not None else CLOSED

    def snapshot(self) -> Dict[str, object]:
        """Aggregate view for /metrics and deep health."""
        with self._lock:
            by_state = {CLOSED: 0, OPEN: 0, HALF_OPEN: 0}
            for entry in self._entries.values():
                by_state[entry.state] += 1
            return {
                "keys": len(self._entries),
                "open": by_state[OPEN],
                "half_open": by_state[HALF_OPEN],
                "closed": by_state[CLOSED],
                "trips": self.trips,
                "rejections": self.rejections,
            }


__all__ = ["CLOSED", "CircuitBreaker", "HALF_OPEN", "OPEN"]
