"""Pure-python client for the repro serving gateway (stdlib only).

One :class:`ServerClient` wraps one keep-alive :class:`http.client.HTTPConnection`.
Connections are **not** thread-safe — a load generator should create one
client per worker thread (see ``benchmarks/test_server_perf.py``).

Scores come back exactly as the server computed them: JSON floats
round-trip float64 bit patterns, so ``np.asarray(response["scores"])`` is
bitwise-identical to the server-side array.
"""

from __future__ import annotations

import http.client
import json
from typing import Iterable, List, Optional, Union

from .gateway import SERVER_NAME


class ServerClientError(RuntimeError):
    """A non-2xx response from the serving gateway."""

    def __init__(self, status: int, message: str):
        super().__init__(f"HTTP {status}: {message}")
        self.status = int(status)
        self.message = message


class ServerClient:
    """Minimal JSON client for every gateway endpoint."""

    def __init__(self, host: str = "127.0.0.1", port: int = 8765,
                 timeout: float = 60.0):
        self.host = host
        self.port = int(port)
        self.timeout = float(timeout)
        self._connection: Optional[http.client.HTTPConnection] = None

    # ------------------------------------------------------------------
    def _connect(self) -> http.client.HTTPConnection:
        if self._connection is None:
            self._connection = http.client.HTTPConnection(
                self.host, self.port, timeout=self.timeout)
        return self._connection

    def close(self) -> None:
        if self._connection is not None:
            self._connection.close()
            self._connection = None

    def __enter__(self) -> "ServerClient":
        return self

    def __exit__(self, *_exc) -> None:
        self.close()

    def _request(self, method: str, path: str,
                 payload: Optional[dict] = None):
        body = None
        headers = {"Accept": "application/json"}
        if payload is not None:
            body = json.dumps(payload).encode("utf-8")
            headers["Content-Type"] = "application/json"
        connection = self._connect()
        try:
            connection.request(method, path, body=body, headers=headers)
            response = connection.getresponse()
            status = response.status
            content_type = response.headers.get("Content-Type", "")
            raw = response.read()
        except (http.client.HTTPException, OSError):
            # A dead keep-alive connection is not retryable mid-request;
            # drop it so the next call reconnects, and surface the error.
            self.close()
            raise
        if "application/json" in content_type:
            data = json.loads(raw)
        else:
            data = raw.decode("utf-8")
        if status >= 400:
            message = data.get("error", str(data)) \
                if isinstance(data, dict) else str(data)
            raise ServerClientError(status, message)
        return data

    # ------------------------------------------------------------------
    # Endpoints
    # ------------------------------------------------------------------
    def score(self, graph: Optional[dict] = None, *,
              fingerprint: Optional[str] = None,
              nodes: Optional[List[int]] = None,
              top_k: Optional[int] = None,
              threshold: bool = False) -> dict:
        """POST /v1/score.

        ``graph`` is the inline payload form (see
        :func:`repro.server.protocol.graph_payload`, or pass a
        :class:`~repro.graphs.multiplex.MultiplexGraph` and it is
        serialised for you); ``fingerprint`` alone performs a warm-cache
        lookup.
        """
        if graph is None and fingerprint is None:
            raise ValueError("score() needs a graph payload or a fingerprint")
        payload: dict = {}
        if graph is not None:
            if not isinstance(graph, dict):
                from .protocol import graph_payload

                graph = graph_payload(graph)
            payload["graph"] = graph
        if fingerprint is not None:
            payload["fingerprint"] = fingerprint
        if nodes is not None:
            payload["nodes"] = [int(node) for node in nodes]
        if top_k is not None:
            payload["top_k"] = int(top_k)
        if threshold:
            payload["threshold"] = True
        return self._request("POST", "/v1/score", payload)

    def events(self, events: Iterable[Union[dict, object]],
               flush: bool = False) -> dict:
        """POST /v1/events — accepts event objects or their dict forms."""
        serialised = [event if isinstance(event, dict) else event.to_dict()
                      for event in events]
        payload: dict = {"events": serialised}
        if flush:
            payload["flush"] = True
        return self._request("POST", "/v1/events", payload)

    def models(self) -> dict:
        """GET /v1/models."""
        return self._request("GET", "/v1/models")

    def activate(self, name: str) -> dict:
        """POST /v1/models/{name}/activate."""
        return self._request("POST", f"/v1/models/{name}/activate", {})

    def health(self) -> dict:
        """GET /healthz."""
        return self._request("GET", "/healthz")

    def metrics(self) -> str:
        """GET /metrics (raw Prometheus text)."""
        return self._request("GET", "/metrics")

    def __repr__(self) -> str:
        return (f"ServerClient({SERVER_NAME} at "
                f"http://{self.host}:{self.port})")


__all__ = ["ServerClient", "ServerClientError"]
