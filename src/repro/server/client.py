"""Pure-python client for the repro serving gateway (stdlib only).

One :class:`ServerClient` wraps one keep-alive :class:`http.client.HTTPConnection`.
Connections are **not** thread-safe — a load generator should create one
client per worker thread (see ``benchmarks/test_server_perf.py``).

Scores come back exactly as the server computed them: JSON floats
round-trip float64 bit patterns, so ``np.asarray(response["scores"])`` is
bitwise-identical to the server-side array.
"""

from __future__ import annotations

import http.client
import json
import random
import time
from typing import Dict, Iterable, List, Optional, Union

from .gateway import SERVER_NAME

TRACE_HEADER = "X-Repro-Trace-Id"

#: statuses worth retrying: 429 is always safe (the request was never
#: admitted), 503 only for idempotent requests (it may have run)
_RETRY_STATUSES = (429, 503)


class ServerClientError(RuntimeError):
    """A non-2xx response from the serving gateway."""

    def __init__(self, status: int, message: str,
                 trace_id: Optional[str] = None):
        super().__init__(f"HTTP {status}: {message}")
        self.status = int(status)
        self.message = message
        #: server-side trace id of the failed request, when traced —
        #: look it up via ``client.traces(trace_id=...)``
        self.trace_id = trace_id


class ServerClient:
    """Minimal JSON client for every gateway endpoint.

    After every call, :attr:`last_headers` holds the response headers and
    :attr:`last_trace_id` the server's ``X-Repro-Trace-Id`` (``None`` for
    untraced endpoints), so callers can correlate any response with its
    server-side trace in ``GET /v1/traces``.
    """

    def __init__(self, host: str = "127.0.0.1", port: int = 8765,
                 timeout: float = 60.0, retries: int = 0,
                 backoff_base: float = 0.1, backoff_max: float = 2.0):
        self.host = host
        self.port = int(port)
        self.timeout = float(timeout)
        #: transient-failure retries per request (0 = fail fast, the
        #: default — overload tests assert raw 429s). 429 responses are
        #: always retryable; 503s and connection resets only for
        #: idempotent requests, which may safely run twice.
        self.retries = int(retries)
        #: backoff schedule: min(backoff_max, base * 2^attempt) scaled by
        #: a [0.5, 1.5) jitter factor; a server Retry-After header
        #: overrides the computed delay
        self.backoff_base = float(backoff_base)
        self.backoff_max = float(backoff_max)
        #: response headers of the most recent request
        self.last_headers: Dict[str, str] = {}
        #: server trace id of the most recent request, if traced
        self.last_trace_id: Optional[str] = None
        #: HTTP status of the most recent request
        self.last_status: Optional[int] = None
        #: transparent reconnect-retries taken after a dead keep-alive
        #: connection (idempotent requests only; independent of `retries`)
        self.reconnects = 0
        #: backoff retries actually taken (429/503/reset)
        self.retries_taken = 0
        self._connection: Optional[http.client.HTTPConnection] = None

    # ------------------------------------------------------------------
    def _connect(self) -> http.client.HTTPConnection:
        if self._connection is None:
            self._connection = http.client.HTTPConnection(
                self.host, self.port, timeout=self.timeout)
        return self._connection

    def close(self) -> None:
        if self._connection is not None:
            self._connection.close()
            self._connection = None

    def __enter__(self) -> "ServerClient":
        return self

    def __exit__(self, *_exc) -> None:
        self.close()

    def _request(self, method: str, path: str,
                 payload: Optional[dict] = None,
                 trace_id: Optional[str] = None,
                 accept_statuses: tuple = (),
                 idempotent: Optional[bool] = None):
        """One logical request = one reconnect-retry + ``retries`` backoffs.

        Two independent retry layers:

        * **dead keep-alive reconnect** — a server may close an idle
          keep-alive connection between calls; the failure surfaces only
          when the next request hits the dead socket. For idempotent
          requests, reconnect and resend once, transparently (always on,
          not counted against ``retries``). Non-idempotent requests
          (``/v1/events`` mutates stream state) surface the error: the
          server may have processed the request before the reset.
        * **backoff retries** — up to ``retries`` attempts on 429
          (always: the request was refused at admission, it never ran),
          and on 503/connection-reset for idempotent requests only.
          Delays are jittered exponential, overridden upward by a server
          ``Retry-After`` header.
        """
        if idempotent is None:
            idempotent = method == "GET"
        attempts = 0
        reconnect_budget = 1 if idempotent else 0
        while True:
            reused = self._connection is not None
            try:
                return self._once(method, path, payload, trace_id,
                                  accept_statuses)
            except ServerClientError as exc:
                if exc.status not in _RETRY_STATUSES:
                    raise
                if exc.status == 503 and not idempotent:
                    raise
                if attempts >= self.retries:
                    raise
                delay = self._retry_delay(
                    attempts, self.last_headers.get("Retry-After"))
                attempts += 1
                self.retries_taken += 1
                time.sleep(delay)
            except (http.client.HTTPException, OSError):
                if not idempotent:
                    raise
                if reused and reconnect_budget > 0:
                    # The keep-alive connection died while idle; _once
                    # already dropped it, so the next attempt reconnects.
                    reconnect_budget -= 1
                    self.reconnects += 1
                    continue
                if attempts >= self.retries:
                    raise
                delay = self._retry_delay(attempts, None)
                attempts += 1
                self.retries_taken += 1
                time.sleep(delay)

    def _retry_delay(self, attempt: int,
                     retry_after: Optional[str]) -> float:
        delay = min(self.backoff_max, self.backoff_base * (2 ** attempt))
        delay *= 0.5 + random.random()   # jitter: desynchronise herds
        if retry_after is not None:
            try:
                # Honour the server's hint (delta-seconds form), bounded
                # so a silly header cannot park the client for minutes.
                delay = max(delay, min(float(retry_after), 30.0))
            except ValueError:
                pass
        return delay

    def _once(self, method: str, path: str,
              payload: Optional[dict] = None,
              trace_id: Optional[str] = None,
              accept_statuses: tuple = ()):
        body = None
        headers = {"Accept": "application/json"}
        if trace_id is not None:
            headers[TRACE_HEADER] = str(trace_id)
        if payload is not None:
            body = json.dumps(payload).encode("utf-8")
            headers["Content-Type"] = "application/json"
        connection = self._connect()
        try:
            connection.request(method, path, body=body, headers=headers)
            response = connection.getresponse()
            status = response.status
            content_type = response.headers.get("Content-Type", "")
            self.last_headers = dict(response.headers.items())
            self.last_trace_id = response.headers.get(TRACE_HEADER)
            self.last_status = status
            raw = response.read()
        except (http.client.HTTPException, OSError):
            # A dead keep-alive connection is not retryable mid-request;
            # drop it so the next call reconnects, and surface the error.
            self.close()
            raise
        if "application/json" in content_type:
            data = json.loads(raw)
        else:
            data = raw.decode("utf-8")
        if status >= 400 and status not in accept_statuses:
            message = data.get("error", str(data)) \
                if isinstance(data, dict) else str(data)
            raise ServerClientError(status, message,
                                    trace_id=self.last_trace_id)
        return data

    # ------------------------------------------------------------------
    # Endpoints
    # ------------------------------------------------------------------
    def score(self, graph: Optional[dict] = None, *,
              fingerprint: Optional[str] = None,
              nodes: Optional[List[int]] = None,
              top_k: Optional[int] = None,
              threshold: bool = False,
              trace_id: Optional[str] = None) -> dict:
        """POST /v1/score.

        ``graph`` is the inline payload form (see
        :func:`repro.server.protocol.graph_payload`, or pass a
        :class:`~repro.graphs.multiplex.MultiplexGraph` and it is
        serialised for you); ``fingerprint`` alone performs a warm-cache
        lookup. ``trace_id`` is forwarded as ``X-Repro-Trace-Id`` so the
        server-side trace adopts the caller's id.
        """
        if graph is None and fingerprint is None:
            raise ValueError("score() needs a graph payload or a fingerprint")
        payload: dict = {}
        if graph is not None:
            if not isinstance(graph, dict):
                from .protocol import graph_payload

                graph = graph_payload(graph)
            payload["graph"] = graph
        if fingerprint is not None:
            payload["fingerprint"] = fingerprint
        if nodes is not None:
            payload["nodes"] = [int(node) for node in nodes]
        if top_k is not None:
            payload["top_k"] = int(top_k)
        if threshold:
            payload["threshold"] = True
        # Scoring is a read-only computation: safe to resend after a
        # connection reset or 503, so it opts into the idempotent retries.
        return self._request("POST", "/v1/score", payload,
                             trace_id=trace_id, idempotent=True)

    def events(self, events: Iterable[Union[dict, object]],
               flush: bool = False) -> dict:
        """POST /v1/events — accepts event objects or their dict forms."""
        serialised = [event if isinstance(event, dict) else event.to_dict()
                      for event in events]
        payload: dict = {"events": serialised}
        if flush:
            payload["flush"] = True
        # NOT idempotent: a reset after the server ingested the batch
        # would double-apply every event on resend. Surface the error and
        # let the caller decide (the WAL makes server-side state durable).
        return self._request("POST", "/v1/events", payload,
                             idempotent=False)

    def models(self) -> dict:
        """GET /v1/models."""
        return self._request("GET", "/v1/models")

    def activate(self, name: str) -> dict:
        """POST /v1/models/{name}/activate.

        Activation converges (activating the active model is a no-op), so
        it is safe to resend and opts into the idempotent retries.
        """
        return self._request("POST", f"/v1/models/{name}/activate", {},
                             idempotent=True)

    def health(self) -> dict:
        """GET /healthz."""
        return self._request("GET", "/healthz")

    def healthz(self, deep: bool = False) -> dict:
        """GET /healthz [?deep=1] — returns the payload even on 503.

        A 503 here is the health check *working* (sustained SLO burn, see
        the payload's ``status`` field), not a transport failure, so it is
        surfaced as data rather than a raised :class:`ServerClientError`;
        check ``client.last_status`` or ``payload["status"]``.
        """
        path = "/healthz?deep=1" if deep else "/healthz"
        return self._request("GET", path, accept_statuses=(503,))

    def metrics(self) -> str:
        """GET /metrics (raw Prometheus text)."""
        return self._request("GET", "/metrics")

    def metrics_parsed(self) -> Dict[str, dict]:
        """GET /metrics parsed into family dicts.

        Reuses the promlint parser: ``{family: {"type", "help",
        "samples": [{"name", "labels", "value"}, ...]}}``, histogram
        ``_bucket``/``_sum``/``_count`` samples grouped under their base
        family.
        """
        from ..obs.promlint import parse_families

        return parse_families(self.metrics())

    def traces(self, last: Optional[int] = None,
               trace_id: Optional[str] = None) -> dict:
        """GET /v1/traces — recently completed request traces.

        ``last`` limits to the N newest; ``trace_id`` fetches one specific
        trace (404 → :class:`ServerClientError` when it fell out of the
        ring).
        """
        params = []
        if last is not None:
            params.append(f"last={int(last)}")
        if trace_id is not None:
            params.append(f"id={trace_id}")
        query = ("?" + "&".join(params)) if params else ""
        return self._request("GET", f"/v1/traces{query}")

    def __repr__(self) -> str:
        return (f"ServerClient({SERVER_NAME} at "
                f"http://{self.host}:{self.port})")


__all__ = ["ServerClient", "ServerClientError", "TRACE_HEADER"]
