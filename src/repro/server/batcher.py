"""Request micro-batching with admission control over a DetectorService.

The serving gateway's core concurrency engine. Concurrent ``score``
requests are grouped **by graph fingerprint**: the first request for a
fingerprint opens a batch group and enqueues it for a worker; requests
arriving inside the group's bounded *linger window* join the open group
instead of queueing their own scoring pass. A worker then runs **one**
:meth:`~repro.serve.service.DetectorService.scores` call per group and
fans the resulting array out to every waiting future — N identical
concurrent requests cost one scoring pass instead of N.

Resilience (PR 8): a **watchdog** thread respawns any worker killed by an
unexpected exception — the dying worker first re-queues the batch group
it was holding, so admitted requests survive worker crashes — expired
**deadlines** (propagated from the ``X-Repro-Deadline-Ms`` header) drop
requests whose caller already gave up instead of scoring them, and
:meth:`MicroBatcher.close` reports workers that outlive the join timeout
instead of silently leaking them. Fault points ``batcher.worker`` and
``batcher.batch`` (:mod:`repro.chaos`) exercise these paths in tests.

Two protections keep the pool healthy under load:

* **admission control** — the total number of admitted-but-unresolved
  requests is bounded by ``max_queue``; beyond it, :meth:`MicroBatcher.submit`
  raises :class:`AdmissionError` with HTTP status 429 (and 503 once the
  batcher is draining for shutdown). Rejecting at admission is what keeps
  latency bounded: a request that cannot be served soon is refused
  immediately rather than parked on an unbounded queue.
* **dog-pile dedup below** — :class:`~repro.serve.service.DetectorService`
  additionally deduplicates in-flight passes per fingerprint, so even
  groups that split across workers (e.g. a burst longer than one linger
  window) collapse to a single computation.

Everything is stdlib: ``threading`` + ``queue`` + ``concurrent.futures.Future``.
"""

from __future__ import annotations

import queue
import threading
import time
from concurrent.futures import Future
from dataclasses import dataclass
from typing import Dict, List, Optional

from .. import chaos
from ..graphs.io import graph_fingerprint
from ..graphs.multiplex import MultiplexGraph
from ..obs.hist import BATCH_SIZE_BOUNDS, DURATION_BOUNDS, Histogram
from ..obs.log import get_logger
from ..obs.trace import current_span, current_trace, span, use_span
from ..serve.service import DetectorService

_log = get_logger("repro.server.batcher")

#: how many times a batch group orphaned by a worker crash is re-queued
#: before its requests are failed with the crash error. Three respawn
#: cycles separate a transient crash (poisoned neighbour, injected
#: fault) from a deterministic one that would crash every worker.
_MAX_REQUEUES = 3

#: seconds between watchdog liveness sweeps over the worker pool
_WATCHDOG_INTERVAL = 0.25

#: seconds close() waits for each worker before declaring it leaked
_JOIN_TIMEOUT = 30.0


class AdmissionError(RuntimeError):
    """A request refused at admission (queue full or server draining).

    ``status`` is the HTTP status the gateway maps this to: 429 when the
    admission queue is full (back off and retry), 503 when the batcher is
    shutting down (the server is going away).
    """

    def __init__(self, message: str, status: int = 429):
        super().__init__(message)
        self.status = int(status)


class DeadlineExceeded(RuntimeError):
    """A request dropped because its caller's deadline already passed.

    The gateway maps this to HTTP 504: scoring a request whose client
    has given up wastes a batch slot that a live request could use, so
    expired entries are dropped at batch assembly instead of scored.
    """

    status = 504


@dataclass
class BatcherStats:
    """Counters for one :class:`MicroBatcher` (exported via /metrics)."""

    submitted: int = 0
    completed: int = 0
    failed: int = 0
    rejected: int = 0
    #: scoring passes actually run (== groups processed)
    batches: int = 0
    #: requests that joined an already-open group (saved scoring passes)
    coalesced: int = 0
    largest_batch: int = 0
    #: requests dropped at batch assembly because their deadline passed
    expired: int = 0
    #: workers killed by an unexpected exception (chaos or real bug)
    worker_crashes: int = 0
    #: replacement workers started by the watchdog
    worker_respawns: int = 0
    #: batch groups re-queued after their worker crashed (zero requests lost)
    rescued: int = 0
    #: workers still alive after close() exhausted its join timeout
    leaked_workers: int = 0

    def to_dict(self) -> dict:
        return dict(vars(self))


class _Group:
    """One open batch: every future here is answered by one scoring pass."""

    __slots__ = ("fingerprint", "graph", "futures", "deadline",
                 "submit_times", "deadlines", "requeues", "obs_parent")

    def __init__(self, fingerprint: str, graph: MultiplexGraph,
                 future: Future, deadline: float,
                 request_deadline: Optional[float] = None):
        self.fingerprint = fingerprint
        self.graph = graph
        self.futures: List[Future] = [future]
        self.deadline = deadline
        #: per-future admission timestamps (monotonic) for queue-wait stats
        self.submit_times: List[float] = [time.monotonic()]
        #: per-future caller deadlines (monotonic, None = no deadline)
        self.deadlines: List[Optional[float]] = [request_deadline]
        #: crash-rescue cycles this group has survived
        self.requeues = 0
        # The leader request's ambient span: worker threads adopt it so
        # the batch span lands in that request's trace. None when the
        # leader was untraced.
        self.obs_parent = current_span()


class MicroBatcher:
    """Coalesce concurrent same-fingerprint score requests into one pass.

    Parameters
    ----------
    service:
        The (thread-safe) :class:`DetectorService` that answers batches.
    workers:
        CPU worker threads draining the group queue.
    max_queue:
        Admission bound: maximum admitted-but-unresolved requests across
        all groups. Submissions beyond it raise :class:`AdmissionError`
        (HTTP 429).
    linger_ms:
        How long a group stays open for joiners after its first request
        (the classic micro-batching latency/throughput trade: a few
        milliseconds of added latency buys request coalescing).
    max_batch:
        Maximum requests per group; the next request for the same
        fingerprint opens a fresh group.
    executor:
        Optional process-tier executor (:class:`repro.pool.ProcessPool`
        or anything with a ``score(graph, fingerprint)`` method). When
        set, *cold* batch groups are dispatched to it — distinct
        fingerprints then score in parallel across worker processes
        instead of serializing on this process's GIL — and the result is
        seeded back into ``service``'s cache so warm probes, threshold
        and explain queries behave identically to the thread tier. Warm
        groups (cached / stored-scores / in-flight) stay in-process:
        there is no pass to parallelize.
    """

    def __init__(self, service: DetectorService, *, workers: int = 2,
                 max_queue: int = 64, linger_ms: float = 2.0,
                 max_batch: int = 64, executor=None):
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        if max_queue < 1:
            raise ValueError(f"max_queue must be >= 1, got {max_queue}")
        if linger_ms < 0:
            raise ValueError(f"linger_ms must be >= 0, got {linger_ms}")
        if max_batch < 1:
            raise ValueError(f"max_batch must be >= 1, got {max_batch}")
        self.service = service
        self.executor = executor
        self.workers = int(workers)
        self.max_queue = int(max_queue)
        self.max_batch = int(max_batch)
        self._linger = float(linger_ms) / 1000.0
        self.stats = BatcherStats()
        #: cumulative wall seconds workers spent processing groups (linger
        #: included — a lingering worker is occupied); feeds the
        #: utilization gauge: busy_seconds / (workers * uptime)
        self._busy_seconds = 0.0
        #: seconds between a request's admission and its batch starting
        self.queue_wait = Histogram(DURATION_BOUNDS)
        #: requests answered per scoring pass
        self.batch_sizes = Histogram(BATCH_SIZE_BOUNDS)
        self._lock = threading.Lock()
        self._groups: Dict[str, _Group] = {}
        self._pending = 0
        self._closed = False
        self._close_report: dict = {"workers_joined": 0,
                                    "leaked_workers": [],
                                    "pending_at_close": 0}
        self._queue: "queue.SimpleQueue[Optional[_Group]]" = queue.SimpleQueue()
        self._shutdown = threading.Event()
        self._spawned = 0
        self._threads = [self._spawn_worker() for _ in range(int(workers))]
        self._watchdog_thread = threading.Thread(
            target=self._watchdog, daemon=True, name="repro-batcher-watchdog")
        self._watchdog_thread.start()

    def _spawn_worker(self) -> threading.Thread:
        thread = threading.Thread(target=self._run, daemon=True,
                                  name=f"repro-batcher-{self._spawned}")
        self._spawned += 1
        thread.start()
        return thread

    def _watchdog(self) -> None:
        """Respawn workers killed by unexpected exceptions.

        A worker that dies mid-group first re-queues the group (see
        :meth:`_rescue`), so a respawned worker picks the orphaned batch
        back up and no admitted request is lost. Workers exiting on the
        shutdown sentinel are not respawned — the watchdog checks
        ``closed`` before acting and exits once shutdown begins.
        """
        while not self._shutdown.wait(_WATCHDOG_INTERVAL):
            with self._lock:
                if self._closed:
                    return
                dead = [i for i, t in enumerate(self._threads)
                        if not t.is_alive()]
                if not dead:
                    continue
                for i in dead:
                    self._threads[i] = self._spawn_worker()
                    self.stats.worker_respawns += 1
            _log.warning("batcher.worker_respawned", count=len(dead))

    # ------------------------------------------------------------------
    @property
    def queue_depth(self) -> int:
        """Admitted requests not yet resolved (the admission meter)."""
        with self._lock:
            return self._pending

    @property
    def closed(self) -> bool:
        with self._lock:
            return self._closed

    @property
    def busy_seconds(self) -> float:
        """Cumulative wall seconds workers spent on batch groups."""
        with self._lock:
            return self._busy_seconds

    # ------------------------------------------------------------------
    def submit(self, graph: MultiplexGraph,
               fingerprint: Optional[str] = None,
               deadline: Optional[float] = None) -> Future:
        """Admit one score request; resolves to the per-node score array.

        ``deadline`` is an absolute ``time.monotonic()`` timestamp after
        which the caller no longer wants the answer (propagated from the
        ``X-Repro-Deadline-Ms`` request header). An already-expired
        deadline raises :class:`DeadlineExceeded` immediately; one that
        expires while queued drops the entry at batch assembly.

        Raises :class:`AdmissionError` instead of queueing when the
        admission bound is hit (429) or the batcher is draining (503).
        """
        if deadline is not None and time.monotonic() >= deadline:
            with self._lock:
                self.stats.expired += 1
            raise DeadlineExceeded(
                "request deadline expired before admission")
        if fingerprint is None:
            fingerprint = graph_fingerprint(graph)
        future: Future = Future()
        enqueue = None
        with self._lock:
            if self._closed:
                self.stats.rejected += 1
                raise AdmissionError(
                    "server is shutting down; request not admitted",
                    status=503)
            if self._pending >= self.max_queue:
                self.stats.rejected += 1
                raise AdmissionError(
                    f"admission queue full ({self._pending} pending, "
                    f"bound {self.max_queue}); retry later", status=429)
            self._pending += 1
            self.stats.submitted += 1
            group = self._groups.get(fingerprint)
            if group is not None and len(group.futures) < self.max_batch:
                group.futures.append(future)
                group.submit_times.append(time.monotonic())
                group.deadlines.append(deadline)
                self.stats.coalesced += 1
                # Followers ride the leader's scoring pass; their traces
                # point at the leader's trace/span instead of duplicating
                # the batch span.
                if group.obs_parent is not None:
                    trace = current_trace()
                    if trace is not None:
                        trace.link("coalesced_into",
                                   group.obs_parent.trace_id,
                                   group.obs_parent.span_id)
            else:
                enqueue = _Group(fingerprint, graph, future,
                                 time.monotonic() + self._linger,
                                 request_deadline=deadline)
                self._groups[fingerprint] = enqueue
        if enqueue is not None:
            self._queue.put(enqueue)
        return future

    # ------------------------------------------------------------------
    def _run(self) -> None:
        while True:
            group = self._queue.get()
            if group is None:
                return
            try:
                # Deterministic worker-kill fault: raised *outside*
                # _process's error handling, so the exception escapes,
                # the group is rescued, and this thread dies for the
                # watchdog to replace.
                chaos.fail_point("batcher.worker", key=group.fingerprint)
                self._process(group)
            except BaseException as exc:
                self._rescue(group, exc)
                raise

    def _rescue(self, group: _Group, exc: BaseException) -> None:
        """Re-queue a group orphaned by this worker's crash.

        Unresolved futures go back on the queue for a (respawned) worker,
        so a worker crash loses zero admitted requests. After
        ``_MAX_REQUEUES`` rescue cycles the crash is considered
        deterministic and the futures are failed with it instead —
        re-queueing forever would crash every replacement worker too.
        """
        unresolved = [f for f in group.futures if not f.done()]
        if not unresolved:
            return
        with self._lock:
            self.stats.worker_crashes += 1
            group.requeues += 1
            requeues = group.requeues
            if requeues <= _MAX_REQUEUES:
                self.stats.rescued += 1
            else:
                self.stats.failed += len(unresolved)
                self._pending -= len(unresolved)
                if self._groups.get(group.fingerprint) is group:
                    del self._groups[group.fingerprint]
        if requeues <= _MAX_REQUEUES:
            _log.warning("batcher.group_rescued",
                         fingerprint=group.fingerprint,
                         futures=len(unresolved), requeues=requeues,
                         error=type(exc).__name__)
            self._queue.put(group)
        else:
            _log.error("batcher.group_abandoned",
                       fingerprint=group.fingerprint,
                       futures=len(unresolved), requeues=requeues,
                       error=type(exc).__name__)
            for future in unresolved:
                future.set_exception(exc)

    def _process(self, group: _Group) -> None:
        work_started = time.monotonic()
        # Hold the group open until its linger deadline so concurrent
        # requests can still join; joiners append under the lock. When
        # the service is already warm for this fingerprint (cached, in
        # flight, or the trained graph) there is no pass to amortise —
        # answer immediately instead of taxing the request with linger.
        delay = group.deadline - time.monotonic()
        if delay > 0 and not self.service.is_warm(group.fingerprint):
            time.sleep(delay)
        with self._lock:
            if self._groups.get(group.fingerprint) is group:
                del self._groups[group.fingerprint]
            futures = list(group.futures)
            submit_times = list(group.submit_times)
            deadlines = list(group.deadlines)
        batch_started = time.monotonic()
        # Drop entries whose caller's deadline passed while they queued:
        # scoring them would spend batch capacity on answers nobody is
        # waiting for. (A rescued group may carry already-resolved
        # futures — those are skipped too.)
        live: List[Future] = []
        live_times: List[float] = []
        expired: List[Future] = []
        for future, submitted, request_deadline in zip(
                futures, submit_times, deadlines):
            if future.done():
                continue
            if request_deadline is not None and batch_started >= request_deadline:
                expired.append(future)
            else:
                live.append(future)
                live_times.append(submitted)
        if expired:
            with self._lock:
                self.stats.expired += len(expired)
                self._pending -= len(expired)
            for future in expired:
                future.set_exception(DeadlineExceeded(
                    "request deadline expired while queued for batching"))
        if not live:
            with self._lock:
                self._busy_seconds += time.monotonic() - work_started
            return
        futures, submit_times = live, live_times
        for submitted in submit_times:
            self.queue_wait.observe(batch_started - submitted)
        self.batch_sizes.observe(len(futures))
        # The scoring pass runs under the leader request's span (if it
        # was traced); the error is captured in a local so the worker
        # thread survives to resolve the futures either way.
        error: Optional[BaseException] = None
        scores = None
        with use_span(group.obs_parent), span("batcher.batch") as sp:
            sp.set("batch_size", len(futures))
            sp.set("coalesced", len(futures) - 1)
            try:
                chaos.fail_point("batcher.batch", key=group.fingerprint)
                if self.executor is not None and \
                        not self.service.is_warm(group.fingerprint):
                    sp.set("exec_tier", "process")
                    scores = self.executor.score(group.graph,
                                                 group.fingerprint)
                    self.service.seed_cache(group.graph, group.fingerprint,
                                            scores)
                else:
                    if self.executor is not None:
                        sp.set("exec_tier", "thread")
                    scores = self.service.scores(group.graph,
                                                 group.fingerprint)
            except BaseException as exc:
                sp.set("error", type(exc).__name__)
                error = exc
        batch_info = {
            "batch_size": len(futures),
            "coalesced": len(futures) - 1,
            "queue_wait_ms": (batch_started - submit_times[0]) * 1e3,
        }
        if error is not None:
            with self._lock:
                self.stats.failed += len(futures)
                self._pending -= len(futures)
                self._busy_seconds += time.monotonic() - work_started
            for future in futures:
                future.obs_batch = batch_info
                future.set_exception(error)
        else:
            with self._lock:
                self.stats.batches += 1
                self.stats.completed += len(futures)
                self.stats.largest_batch = max(self.stats.largest_batch,
                                               len(futures))
                self._pending -= len(futures)
                self._busy_seconds += time.monotonic() - work_started
            for future in futures:
                future.obs_batch = batch_info
                future.set_result(scores)

    # ------------------------------------------------------------------
    def close(self, wait: bool = True) -> dict:
        """Stop admitting, drain queued groups, stop the workers.

        Already-admitted requests are still answered (the shutdown
        sentinels sit behind every queued group in FIFO order); new
        submissions fail with a 503 :class:`AdmissionError`.

        Returns a shutdown report —
        ``{"workers_joined", "leaked_workers", "pending_at_close"}`` —
        so callers (gateway → app shutdown) can *propagate* a dirty
        shutdown instead of dropping it; ``leaked_workers`` lists the
        thread names still alive after the join timeout. Calling again
        returns the first close's report.
        """
        with self._lock:
            if self._closed:
                return dict(self._close_report)
            self._closed = True
            pending_at_close = self._pending
        # Stop the watchdog before workers exit on their sentinels, so a
        # cleanly-exiting worker is never mistaken for a crash.
        self._shutdown.set()
        self._watchdog_thread.join(timeout=5.0)
        for _ in self._threads:
            self._queue.put(None)
        leaked: List[str] = []
        joined = 0
        if wait:
            for thread in self._threads:
                thread.join(timeout=_JOIN_TIMEOUT)
            leaked = [t.name for t in self._threads if t.is_alive()]
            joined = len(self._threads) - len(leaked)
            if leaked:
                # A worker wedged in a scoring pass past the join timeout
                # is a real leak (daemon thread holding arbitrary state) —
                # surface it instead of returning as if shutdown was clean.
                with self._lock:
                    self.stats.leaked_workers += len(leaked)
                _log.error("batcher.workers_leaked", workers=leaked,
                           timeout_s=_JOIN_TIMEOUT)
        report = {
            "workers_joined": joined,
            "leaked_workers": leaked,
            "pending_at_close": pending_at_close,
        }
        with self._lock:
            self._close_report = report
        return dict(report)

    def __enter__(self) -> "MicroBatcher":
        return self

    def __exit__(self, *_exc) -> None:
        self.close()


__all__ = ["AdmissionError", "BatcherStats", "DeadlineExceeded",
           "MicroBatcher"]
