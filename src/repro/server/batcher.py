"""Request micro-batching with admission control over a DetectorService.

The serving gateway's core concurrency engine. Concurrent ``score``
requests are grouped **by graph fingerprint**: the first request for a
fingerprint opens a batch group and enqueues it for a worker; requests
arriving inside the group's bounded *linger window* join the open group
instead of queueing their own scoring pass. A worker then runs **one**
:meth:`~repro.serve.service.DetectorService.scores` call per group and
fans the resulting array out to every waiting future — N identical
concurrent requests cost one scoring pass instead of N.

Two protections keep the pool healthy under load:

* **admission control** — the total number of admitted-but-unresolved
  requests is bounded by ``max_queue``; beyond it, :meth:`MicroBatcher.submit`
  raises :class:`AdmissionError` with HTTP status 429 (and 503 once the
  batcher is draining for shutdown). Rejecting at admission is what keeps
  latency bounded: a request that cannot be served soon is refused
  immediately rather than parked on an unbounded queue.
* **dog-pile dedup below** — :class:`~repro.serve.service.DetectorService`
  additionally deduplicates in-flight passes per fingerprint, so even
  groups that split across workers (e.g. a burst longer than one linger
  window) collapse to a single computation.

Everything is stdlib: ``threading`` + ``queue`` + ``concurrent.futures.Future``.
"""

from __future__ import annotations

import queue
import threading
import time
from concurrent.futures import Future
from dataclasses import dataclass
from typing import Dict, List, Optional

from ..graphs.io import graph_fingerprint
from ..graphs.multiplex import MultiplexGraph
from ..obs.hist import BATCH_SIZE_BOUNDS, DURATION_BOUNDS, Histogram
from ..obs.trace import current_span, current_trace, span, use_span
from ..serve.service import DetectorService


class AdmissionError(RuntimeError):
    """A request refused at admission (queue full or server draining).

    ``status`` is the HTTP status the gateway maps this to: 429 when the
    admission queue is full (back off and retry), 503 when the batcher is
    shutting down (the server is going away).
    """

    def __init__(self, message: str, status: int = 429):
        super().__init__(message)
        self.status = int(status)


@dataclass
class BatcherStats:
    """Counters for one :class:`MicroBatcher` (exported via /metrics)."""

    submitted: int = 0
    completed: int = 0
    failed: int = 0
    rejected: int = 0
    #: scoring passes actually run (== groups processed)
    batches: int = 0
    #: requests that joined an already-open group (saved scoring passes)
    coalesced: int = 0
    largest_batch: int = 0

    def to_dict(self) -> dict:
        return dict(vars(self))


class _Group:
    """One open batch: every future here is answered by one scoring pass."""

    __slots__ = ("fingerprint", "graph", "futures", "deadline",
                 "submit_times", "obs_parent")

    def __init__(self, fingerprint: str, graph: MultiplexGraph,
                 future: Future, deadline: float):
        self.fingerprint = fingerprint
        self.graph = graph
        self.futures: List[Future] = [future]
        self.deadline = deadline
        #: per-future admission timestamps (monotonic) for queue-wait stats
        self.submit_times: List[float] = [time.monotonic()]
        # The leader request's ambient span: worker threads adopt it so
        # the batch span lands in that request's trace. None when the
        # leader was untraced.
        self.obs_parent = current_span()


class MicroBatcher:
    """Coalesce concurrent same-fingerprint score requests into one pass.

    Parameters
    ----------
    service:
        The (thread-safe) :class:`DetectorService` that answers batches.
    workers:
        CPU worker threads draining the group queue.
    max_queue:
        Admission bound: maximum admitted-but-unresolved requests across
        all groups. Submissions beyond it raise :class:`AdmissionError`
        (HTTP 429).
    linger_ms:
        How long a group stays open for joiners after its first request
        (the classic micro-batching latency/throughput trade: a few
        milliseconds of added latency buys request coalescing).
    max_batch:
        Maximum requests per group; the next request for the same
        fingerprint opens a fresh group.
    """

    def __init__(self, service: DetectorService, *, workers: int = 2,
                 max_queue: int = 64, linger_ms: float = 2.0,
                 max_batch: int = 64):
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        if max_queue < 1:
            raise ValueError(f"max_queue must be >= 1, got {max_queue}")
        if linger_ms < 0:
            raise ValueError(f"linger_ms must be >= 0, got {linger_ms}")
        if max_batch < 1:
            raise ValueError(f"max_batch must be >= 1, got {max_batch}")
        self.service = service
        self.workers = int(workers)
        self.max_queue = int(max_queue)
        self.max_batch = int(max_batch)
        self._linger = float(linger_ms) / 1000.0
        self.stats = BatcherStats()
        #: cumulative wall seconds workers spent processing groups (linger
        #: included — a lingering worker is occupied); feeds the
        #: utilization gauge: busy_seconds / (workers * uptime)
        self._busy_seconds = 0.0
        #: seconds between a request's admission and its batch starting
        self.queue_wait = Histogram(DURATION_BOUNDS)
        #: requests answered per scoring pass
        self.batch_sizes = Histogram(BATCH_SIZE_BOUNDS)
        self._lock = threading.Lock()
        self._groups: Dict[str, _Group] = {}
        self._pending = 0
        self._closed = False
        self._queue: "queue.SimpleQueue[Optional[_Group]]" = queue.SimpleQueue()
        self._threads = [
            threading.Thread(target=self._run, daemon=True,
                             name=f"repro-batcher-{i}")
            for i in range(int(workers))
        ]
        for thread in self._threads:
            thread.start()

    # ------------------------------------------------------------------
    @property
    def queue_depth(self) -> int:
        """Admitted requests not yet resolved (the admission meter)."""
        with self._lock:
            return self._pending

    @property
    def closed(self) -> bool:
        with self._lock:
            return self._closed

    @property
    def busy_seconds(self) -> float:
        """Cumulative wall seconds workers spent on batch groups."""
        with self._lock:
            return self._busy_seconds

    # ------------------------------------------------------------------
    def submit(self, graph: MultiplexGraph,
               fingerprint: Optional[str] = None) -> Future:
        """Admit one score request; resolves to the per-node score array.

        Raises :class:`AdmissionError` instead of queueing when the
        admission bound is hit (429) or the batcher is draining (503).
        """
        if fingerprint is None:
            fingerprint = graph_fingerprint(graph)
        future: Future = Future()
        enqueue = None
        with self._lock:
            if self._closed:
                self.stats.rejected += 1
                raise AdmissionError(
                    "server is shutting down; request not admitted",
                    status=503)
            if self._pending >= self.max_queue:
                self.stats.rejected += 1
                raise AdmissionError(
                    f"admission queue full ({self._pending} pending, "
                    f"bound {self.max_queue}); retry later", status=429)
            self._pending += 1
            self.stats.submitted += 1
            group = self._groups.get(fingerprint)
            if group is not None and len(group.futures) < self.max_batch:
                group.futures.append(future)
                group.submit_times.append(time.monotonic())
                self.stats.coalesced += 1
                # Followers ride the leader's scoring pass; their traces
                # point at the leader's trace/span instead of duplicating
                # the batch span.
                if group.obs_parent is not None:
                    trace = current_trace()
                    if trace is not None:
                        trace.link("coalesced_into",
                                   group.obs_parent.trace_id,
                                   group.obs_parent.span_id)
            else:
                enqueue = _Group(fingerprint, graph, future,
                                 time.monotonic() + self._linger)
                self._groups[fingerprint] = enqueue
        if enqueue is not None:
            self._queue.put(enqueue)
        return future

    # ------------------------------------------------------------------
    def _run(self) -> None:
        while True:
            group = self._queue.get()
            if group is None:
                return
            work_started = time.monotonic()
            # Hold the group open until its linger deadline so concurrent
            # requests can still join; joiners append under the lock. When
            # the service is already warm for this fingerprint (cached, in
            # flight, or the trained graph) there is no pass to amortise —
            # answer immediately instead of taxing the request with linger.
            delay = group.deadline - time.monotonic()
            if delay > 0 and not self.service.is_warm(group.fingerprint):
                time.sleep(delay)
            with self._lock:
                if self._groups.get(group.fingerprint) is group:
                    del self._groups[group.fingerprint]
                futures = list(group.futures)
                submit_times = list(group.submit_times)
            batch_started = time.monotonic()
            for submitted in submit_times:
                self.queue_wait.observe(batch_started - submitted)
            self.batch_sizes.observe(len(futures))
            # The scoring pass runs under the leader request's span (if it
            # was traced); the error is captured in a local so the worker
            # thread survives to resolve the futures either way.
            error: Optional[BaseException] = None
            scores = None
            with use_span(group.obs_parent), span("batcher.batch") as sp:
                sp.set("batch_size", len(futures))
                sp.set("coalesced", len(futures) - 1)
                try:
                    scores = self.service.scores(group.graph,
                                                 group.fingerprint)
                except BaseException as exc:
                    sp.set("error", type(exc).__name__)
                    error = exc
            batch_info = {
                "batch_size": len(futures),
                "coalesced": len(futures) - 1,
                "queue_wait_ms": (batch_started - submit_times[0]) * 1e3,
            }
            if error is not None:
                with self._lock:
                    self.stats.failed += len(futures)
                    self._pending -= len(futures)
                    self._busy_seconds += time.monotonic() - work_started
                for future in futures:
                    future.obs_batch = batch_info
                    future.set_exception(error)
            else:
                with self._lock:
                    self.stats.batches += 1
                    self.stats.completed += len(futures)
                    self.stats.largest_batch = max(self.stats.largest_batch,
                                                   len(futures))
                    self._pending -= len(futures)
                    self._busy_seconds += time.monotonic() - work_started
                for future in futures:
                    future.obs_batch = batch_info
                    future.set_result(scores)

    # ------------------------------------------------------------------
    def close(self, wait: bool = True) -> None:
        """Stop admitting, drain queued groups, stop the workers.

        Already-admitted requests are still answered (the shutdown
        sentinels sit behind every queued group in FIFO order); new
        submissions fail with a 503 :class:`AdmissionError`.
        """
        with self._lock:
            if self._closed:
                return
            self._closed = True
        for _ in self._threads:
            self._queue.put(None)
        if wait:
            for thread in self._threads:
                thread.join(timeout=30.0)

    def __enter__(self) -> "MicroBatcher":
        return self

    def __exit__(self, *_exc) -> None:
        self.close()


__all__ = ["AdmissionError", "BatcherStats", "MicroBatcher"]
