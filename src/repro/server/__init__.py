"""HTTP serving gateway: the network surface over every fast path.

After PRs 1–4 the repo could score graphs from checkpoints
(:mod:`repro.serve`), keep them current under event streams
(:mod:`repro.stream`) and run inference grad-free — but only in-process.
:mod:`repro.server` exposes all of it as a threaded, stdlib-only HTTP
JSON API:

* :mod:`repro.server.batcher` — :class:`MicroBatcher`, the concurrency
  engine: same-fingerprint score requests coalesce inside a bounded
  linger window into **one** scoring pass on a worker pool, behind a
  bounded admission queue (429/503 under overload);
* :mod:`repro.server.gateway` — :class:`Gateway`, the HTTP-agnostic
  request logic (score / events / models / health / metrics);
* :mod:`repro.server.app` — the :mod:`http.server`-based threaded HTTP
  layer (:class:`ReproServer`, :class:`ServerThread`, :func:`make_server`);
* :mod:`repro.server.client` — :class:`ServerClient`, a pure-python
  stdlib client;
* :mod:`repro.server.protocol` — the JSON wire format (full-precision
  score serialisation: HTTP-served scores are bitwise-identical to
  in-process ``score_graph`` output);
* :mod:`repro.server.metrics` — Prometheus text exposition (counters,
  gauges and latency histograms);
* :mod:`repro.server.slo` — rolling-window p50/p99 latency + error-rate
  SLO tracking per endpoint (``slo_*`` burn gauges at ``/metrics``,
  ``GET /healthz?deep=1`` component health, 503 on sustained burn);
* :mod:`repro.server.breaker` — :class:`CircuitBreaker`, per-fingerprint
  failure-streak tracking: tripped fingerprints are answered from the
  stale-score cache (flagged ``degraded: true``) while half-open probes
  test recovery.

Resilience (PR 8): batcher workers crashed by faults are respawned by a
watchdog with their in-hand batch re-queued; ``X-Repro-Deadline-Ms``
deadlines drop expired requests (504); :class:`ServerClient` retries
transient failures with jittered exponential backoff honouring
``Retry-After``; :mod:`repro.chaos` fault points make every one of these
paths deterministically testable.

Observability (:mod:`repro.obs`) is threaded through every layer: traced
requests echo ``X-Repro-Trace-Id``, completed traces are served at
``GET /v1/traces``, and per-endpoint/per-stage latency histograms ride
along on ``/metrics``.

Start one from the CLI with ``python -m repro.cli serve --model model.npz``.
"""

from .app import (
    DEADLINE_HEADER,
    ReproServer,
    ServerThread,
    TRACE_HEADER,
    make_server,
)
from .batcher import (
    AdmissionError,
    BatcherStats,
    DeadlineExceeded,
    MicroBatcher,
)
from .breaker import CircuitBreaker
from .client import ServerClient, ServerClientError
from .gateway import API_VERSION, Gateway, GatewayError, SERVER_NAME
from .metrics import MetricsRegistry
from .protocol import ProtocolError, graph_from_payload, graph_payload
from .slo import EndpointStatus, SLOObjective, SLOTracker, WindowSummary

__all__ = [
    "API_VERSION",
    "AdmissionError",
    "BatcherStats",
    "CircuitBreaker",
    "DEADLINE_HEADER",
    "DeadlineExceeded",
    "EndpointStatus",
    "Gateway",
    "GatewayError",
    "MetricsRegistry",
    "MicroBatcher",
    "ProtocolError",
    "ReproServer",
    "SERVER_NAME",
    "SLOObjective",
    "SLOTracker",
    "ServerClient",
    "ServerClientError",
    "ServerThread",
    "TRACE_HEADER",
    "WindowSummary",
    "graph_from_payload",
    "graph_payload",
    "make_server",
]
