"""The serving gateway: request handling logic behind the HTTP layer.

:class:`Gateway` wires every fast path grown in PRs 1–4 into one
queryable object — checkpointed :class:`~repro.serve.service.DetectorService`
scoring behind a :class:`~repro.server.batcher.MicroBatcher`, stream
ingestion through :class:`~repro.stream.IncrementalGraphBuilder` +
:class:`~repro.stream.StreamMonitor`, and a
:class:`~repro.serve.registry.ModelRegistry` for listing and hot-swapping
named checkpoints. It speaks plain dicts, not HTTP: the
:mod:`repro.server.app` handler translates payloads and maps
:class:`GatewayError` / :class:`~repro.server.batcher.AdmissionError` to
status codes, which keeps all of this directly unit-testable without a
socket.
"""

from __future__ import annotations

import threading
import time
from collections import OrderedDict
from concurrent.futures import TimeoutError as FutureTimeoutError
from typing import Dict, List, Optional

from .. import chaos
from ..graphs.io import graph_fingerprint
from ..graphs.multiplex import MultiplexGraph
from ..obs.hist import DURATION_BOUNDS, Histogram
from ..obs.runtime import RuntimeSampler
from ..obs.trace import TraceStore, annotate, span
from ..serve.registry import ModelRegistry
from ..serve.service import DetectorService, ServiceError
from ..stream.builder import IncrementalGraphBuilder
from ..stream.events import parse_event
from ..stream.monitor import StreamMonitor
from ..stream.wal import WriteAheadLog
from .batcher import DeadlineExceeded, MicroBatcher
from .breaker import CircuitBreaker
from .metrics import MetricsRegistry
from .protocol import (
    ProtocolError,
    graph_from_payload,
    parse_nodes,
    score_response,
)
from .slo import SLOObjective, SLOTracker

#: endpoints whose latency burns the SLO — infrastructure endpoints
#: (metrics scrapes, health probes) are excluded by listing what counts
SLO_ENDPOINTS = frozenset({"score", "events", "models", "activate",
                           "traces"})

SERVER_NAME = "repro-server"
API_VERSION = "v1"


class GatewayError(RuntimeError):
    """A request the gateway refuses, with the HTTP status to send."""

    def __init__(self, message: str, status: int = 400):
        super().__init__(message)
        self.status = int(status)


class Gateway:
    """Everything the HTTP endpoints do, minus the HTTP.

    Parameters
    ----------
    service:
        The detector service answering score requests (thread-safe).
    registry:
        Optional :class:`ModelRegistry` backing the ``/v1/models``
        endpoints; without one those endpoints return 409.
    active_model:
        Name to report for the currently served checkpoint (when it came
        from the registry).
    base_graph:
        Optional initial snapshot seeding the event-stream builder; when
        omitted, the builder bootstraps an empty graph from the served
        detector's relation schema on the first ``/v1/events`` request.
    workers / max_queue / linger_ms / max_batch:
        Forwarded to the :class:`MicroBatcher`.
    exec_tier:
        ``"thread"`` (default) scores in-process; ``"process"`` forks a
        :class:`repro.pool.ProcessPool` of ``worker_procs`` scoring
        processes over a shared-memory copy of the active checkpoint —
        distinct-fingerprint batches then run in true parallel. Falls
        back to the thread tier (recorded in ``pool_fallback_reason``
        and the startup log) when shared memory is unavailable or the
        pool cannot start.
    worker_procs:
        Scoring processes for the process tier (ignored for threads).
    request_timeout:
        Seconds a score request may wait on its batch before the gateway
        gives up with a 503.
    window / stride / top_k / psi_threshold / jump_sigma:
        Forwarded to the :class:`StreamMonitor` (first events request).
    slo_window / slo_p99_seconds / slo_error_ratio / slo_sustain /
    slo_min_samples:
        The per-endpoint SLO: tumbling windows of ``slo_window`` requests
        are judged against the p99/error objectives; ``slo_sustain``
        consecutive violating windows flip ``/healthz`` to 503
        (``slo_min_samples`` gates the live compliance judgement).
    sample_interval:
        Seconds between background process-telemetry samples (RSS, GC,
        FDs) feeding ``/metrics``.
    """

    def __init__(self, service: DetectorService, *,
                 registry: Optional[ModelRegistry] = None,
                 active_model: Optional[str] = None,
                 base_graph: Optional[MultiplexGraph] = None,
                 workers: int = 2, max_queue: int = 64,
                 linger_ms: float = 2.0, max_batch: int = 64,
                 request_timeout: float = 60.0,
                 window: int = 500, stride: Optional[int] = None,
                 top_k: int = 10, psi_threshold: float = 0.25,
                 jump_sigma: float = 6.0, trace_capacity: int = 128,
                 slo_window: int = 100, slo_p99_seconds: float = 2.5,
                 slo_error_ratio: float = 0.02, slo_sustain: int = 2,
                 slo_min_samples: Optional[int] = None,
                 sample_interval: float = 5.0,
                 wal_dir=None, snapshot_every: int = 10,
                 wal_fsync: bool = True,
                 breaker_failures: int = 3,
                 breaker_reset_seconds: float = 30.0,
                 stale_cache_size: int = 64,
                 exec_tier: str = "thread",
                 worker_procs: int = 2):
        self.service = service
        self.registry = registry
        self.active_model = active_model
        if exec_tier not in ("thread", "process"):
            raise ValueError(
                f"exec_tier must be 'thread' or 'process', got {exec_tier!r}")
        # The pool must exist before ANY thread this constructor starts
        # (batcher workers, runtime sampler): the default start method is
        # fork, and forking a multi-threaded process is where the dragons
        # live. Pool startup failure is a degradation, not an error — the
        # thread tier serves every request the process tier would.
        self.pool = None
        self.exec_tier = "thread"
        self.pool_fallback_reason: Optional[str] = None
        if exec_tier == "process":
            from ..pool import PoolUnavailable, ProcessPool
            try:
                self.pool = ProcessPool(service.detector,
                                        workers=worker_procs,
                                        cache_size=service.cache_size)
                self.exec_tier = "process"
            except PoolUnavailable as exc:
                self.pool_fallback_reason = str(exc)
        self.batcher = MicroBatcher(service, workers=workers,
                                    max_queue=max_queue, linger_ms=linger_ms,
                                    max_batch=max_batch, executor=self.pool)
        self.request_timeout = float(request_timeout)
        self._monitor_kwargs = dict(window=window, stride=stride, top_k=top_k,
                                    psi_threshold=psi_threshold,
                                    jump_sigma=jump_sigma,
                                    snapshot_every=snapshot_every)
        self._base_graph = base_graph
        self._wal_dir = wal_dir
        self._wal_fsync = bool(wal_fsync)
        self.monitor: Optional[StreamMonitor] = None
        self._monitor_lock = threading.Lock()
        self._counter_lock = threading.Lock()
        self._requests: Dict[tuple, int] = {}
        #: ring buffer of completed request traces (GET /v1/traces)
        self.traces = TraceStore(trace_capacity)
        self._hist_lock = threading.Lock()
        self._endpoint_hist: Dict[str, Histogram] = {}
        self._stage_hist: Dict[str, Histogram] = {}
        #: per-endpoint rolling/tumbling SLO bookkeeping (healthz + /metrics)
        self.slo = SLOTracker(
            window=slo_window,
            objective=SLOObjective(p99_seconds=slo_p99_seconds,
                                   error_ratio=slo_error_ratio),
            sustain=slo_sustain, min_samples=slo_min_samples)
        #: per-fingerprint circuit breaker: repeated scoring failures for
        #: one graph trip it open, after which requests for that graph are
        #: answered from the stale-score cache (degraded) or refused (503)
        #: instead of burning batch capacity on a known failure
        self.breaker = CircuitBreaker(failure_threshold=breaker_failures,
                                      reset_timeout=breaker_reset_seconds)
        self._stale_lock = threading.Lock()
        #: last known-good scores per fingerprint (LRU-bounded): the
        #: degraded-mode answer while a breaker is open
        self._stale_scores: "OrderedDict[str, object]" = OrderedDict()
        self._stale_capacity = int(stale_cache_size)
        self._degraded_served = 0
        #: background process-telemetry sampler (RSS/GC/threads/FDs, plus
        #: per-worker pool probes when the process tier is active)
        self.sampler = RuntimeSampler(
            interval=sample_interval,
            pool_probe=self.pool.worker_infos if self.pool is not None
            else None).start()
        self._started = time.monotonic()
        if wal_dir is not None:
            # Recover stream state at startup, not on the first request:
            # a restarted server resumes exactly where the crash left it
            # (a corrupt WAL fails fast here). Without a schema source the
            # monitor stays lazy, as before.
            with self._monitor_lock:
                try:
                    self._ensure_monitor()
                except GatewayError:
                    pass

    # ------------------------------------------------------------------
    # Telemetry
    # ------------------------------------------------------------------
    def record(self, endpoint: str, status: int,
               seconds: Optional[float] = None) -> None:
        """Count one answered request (called by the HTTP handler).

        ``seconds`` — the request's wall duration — additionally feeds the
        per-endpoint latency histogram exported at ``/metrics`` and the
        SLO tracker (server faults — status >= 500 — burn the error
        budget; 4xx is load shedding doing its job).
        """
        with self._counter_lock:
            key = (endpoint, int(status))
            self._requests[key] = self._requests.get(key, 0) + 1
        if seconds is not None:
            with self._hist_lock:
                hist = self._endpoint_hist.get(endpoint)
                if hist is None:
                    hist = self._endpoint_hist[endpoint] = \
                        Histogram(DURATION_BOUNDS)
            hist.observe(seconds)
            if endpoint in SLO_ENDPOINTS:
                self.slo.observe(endpoint, seconds,
                                 error=int(status) >= 500)

    def observe_trace(self, payload: dict) -> None:
        """Fold one completed trace's span durations into the per-stage
        latency histograms (span names are a small static set, so the
        metric cardinality stays bounded)."""
        for span_dict in payload.get("spans", ()):
            name = span_dict["name"]
            with self._hist_lock:
                hist = self._stage_hist.get(name)
                if hist is None:
                    hist = self._stage_hist[name] = \
                        Histogram(DURATION_BOUNDS)
            hist.observe(span_dict["wall_ms"] / 1e3)

    # ------------------------------------------------------------------
    # GET /v1/traces
    # ------------------------------------------------------------------
    def traces_payload(self, last: Optional[int] = None,
                       trace_id: Optional[str] = None) -> dict:
        """Recently completed traces, newest first (``GET /v1/traces``)."""
        if trace_id is not None:
            found = self.traces.get(trace_id)
            if found is None:
                raise GatewayError(f"trace {trace_id!r} not found "
                                   "(ring capacity "
                                   f"{self.traces.capacity})", 404)
            return {"traces": [found]}
        if last is not None and (last < 1):
            raise GatewayError("'last' must be a positive integer", 400)
        return {"traces": self.traces.last(last),
                "capacity": self.traces.capacity,
                "stored": len(self.traces)}

    @property
    def uptime_seconds(self) -> float:
        return time.monotonic() - self._started

    # ------------------------------------------------------------------
    # POST /v1/score
    # ------------------------------------------------------------------
    def score(self, payload: dict,
              deadline_ms: Optional[float] = None) -> dict:
        # Latency-injection site: a `latency` fault here simulates a slow
        # dependency in front of scoring (deadline/SLO tests lean on it).
        chaos.fail_point("gateway.score")
        if not isinstance(payload, dict):
            raise GatewayError("request body must be a JSON object", 400)
        top_k = payload.get("top_k")
        if top_k is not None and (not isinstance(top_k, int)
                                  or isinstance(top_k, bool) or top_k < 1):
            raise GatewayError("'top_k' must be a positive integer", 400)
        want_threshold = bool(payload.get("threshold", False))
        degraded = False

        if "graph" in payload:
            try:
                graph = graph_from_payload(payload["graph"])
            except ProtocolError as exc:
                raise GatewayError(str(exc), 400) from None
            fingerprint = graph_fingerprint(graph)
            nodes = self._parse_nodes(payload, graph.num_nodes)
            if not self.breaker.allow(fingerprint):
                # Breaker open for this graph: don't spend a batch slot on
                # a known failure — answer from the stale cache, degraded.
                scores = self._stale_lookup(fingerprint)
                if scores is None:
                    raise GatewayError(
                        f"scoring fingerprint {fingerprint[:12]}… keeps "
                        "failing (circuit open) and no stale scores are "
                        "cached; retry after the breaker's reset timeout",
                        503)
                degraded = True
                self._degraded_served += 1
                annotate("degraded", True)
                annotate("score_source", "stale_cache")
            else:
                deadline = (time.monotonic() + float(deadline_ms) / 1e3
                            if deadline_ms is not None else None)
                # AdmissionError (429/503) and DeadlineExceeded (504)
                # propagate to the HTTP layer as-is.
                future = self.batcher.submit(graph, fingerprint,
                                             deadline=deadline)
                try:
                    with span("batcher.wait"):
                        scores = future.result(timeout=self.request_timeout)
                except FutureTimeoutError:
                    raise GatewayError(
                        f"scoring did not finish within "
                        f"{self.request_timeout:.0f}s", 503) from None
                except DeadlineExceeded:
                    raise
                except (ServiceError, ValueError) as exc:
                    # ServiceError: the detector keeps no reusable
                    # networks; ValueError: the graph doesn't match the
                    # model's schema (feature/relation count). Both are
                    # "this model cannot answer this request", not server
                    # bugs — but a streak of them trips this
                    # fingerprint's breaker all the same.
                    self.breaker.record_failure(fingerprint)
                    raise GatewayError(str(exc), 409) from None
                except Exception:
                    self.breaker.record_failure(fingerprint)
                    raise
                self.breaker.record_success(fingerprint)
                self._stale_store(fingerprint, scores)
                batch_info = getattr(future, "obs_batch", None)
                if batch_info is not None:
                    annotate("batch_size", batch_info["batch_size"])
                    annotate("coalesced", batch_info["coalesced"])
            threshold = self._threshold_for(fingerprint, scores) \
                if want_threshold else None
        elif "fingerprint" in payload:
            fingerprint = str(payload["fingerprint"])
            scores = self.service.cached_scores(fingerprint)
            if scores is None:
                raise GatewayError(
                    f"fingerprint {fingerprint[:12]}… is not cached; "
                    "include the inline 'graph' payload instead", 404)
            annotate("score_source", "warm_cache")
            nodes = self._parse_nodes(payload, scores.size)
            threshold = self._threshold_for(fingerprint, scores) \
                if want_threshold else None
        else:
            raise GatewayError(
                "score request needs 'graph' (inline edge lists + "
                "attributes) or 'fingerprint' (warm-cache lookup)", 400)

        return score_response(fingerprint, scores, nodes=nodes,
                              top_k=top_k, threshold=threshold,
                              degraded=degraded)

    def _stale_store(self, fingerprint: str, scores) -> None:
        """Remember the last known-good scores for degraded answers."""
        with self._stale_lock:
            self._stale_scores[fingerprint] = scores
            self._stale_scores.move_to_end(fingerprint)
            while len(self._stale_scores) > self._stale_capacity:
                self._stale_scores.popitem(last=False)

    def _stale_lookup(self, fingerprint: str):
        with self._stale_lock:
            scores = self._stale_scores.get(fingerprint)
            if scores is not None:
                self._stale_scores.move_to_end(fingerprint)
            return scores

    def _threshold_for(self, fingerprint: str, scores):
        """Threshold consistent with the exact ``scores`` being returned.

        Prefer the service's cached/fitted result; when the entry was
        already evicted (or skipped caching because a hot-swap raced the
        pass), select directly on the array in hand — never by re-scoring,
        which would bypass the batcher/admission queue and could pair a
        new detector's threshold with old-detector scores.
        """
        threshold = self.service.cached_threshold(fingerprint)
        if threshold is not None:
            return threshold
        from ..core.threshold import select_threshold

        try:
            return select_threshold(scores)
        except ValueError as exc:   # e.g. too few scores to select on
            raise GatewayError(f"cannot select a threshold: {exc}",
                               409) from None

    @staticmethod
    def _parse_nodes(payload: dict, num_nodes: int):
        try:
            return parse_nodes(payload.get("nodes"), num_nodes)
        except ProtocolError as exc:
            raise GatewayError(str(exc), 400) from None

    # ------------------------------------------------------------------
    # POST /v1/events
    # ------------------------------------------------------------------
    def ingest_events(self, payload: dict) -> dict:
        if not isinstance(payload, dict):
            raise GatewayError("request body must be a JSON object", 400)
        raw = payload.get("events")
        if not isinstance(raw, list) or not raw:
            raise GatewayError(
                "'events' must be a non-empty list of event objects "
                "(see repro.stream.events)", 400)
        try:
            events = [parse_event(item) for item in raw]
        except (ValueError, TypeError) as exc:
            raise GatewayError(f"bad event: {exc}", 400) from None

        with self._monitor_lock:
            monitor = self._ensure_monitor()
            try:
                reports = monitor.process(events)
                if payload.get("flush"):
                    tail = monitor.flush()
                    if tail is not None:
                        reports.append(tail)
            except (ValueError, ServiceError) as exc:
                raise GatewayError(f"event stream rejected: {exc}",
                                   409) from None
            return {
                "accepted": len(events),
                "reports": [report.to_dict() for report in reports],
                "alerts": sum(len(report.alerts) for report in reports),
                "monitor": monitor.stats_dict(),
            }

    def _ensure_monitor(self) -> StreamMonitor:
        """Build the stream monitor lazily on the first events request.

        With a WAL directory configured, prior stream state (snapshot +
        log replay) takes precedence over the ``base_graph`` seed — the
        log is the durable truth about what this server already ingested.
        """
        if self.monitor is not None:
            return self.monitor
        if self._base_graph is not None:
            names = self._base_graph.relation_names
            num_features = self._base_graph.num_features
        else:
            detector = self.service.detector
            names = getattr(detector, "_relation_names", None)
            num_features = getattr(detector, "_num_features", None)
            if not names or not num_features:
                raise GatewayError(
                    "served checkpoint records no relation schema; start "
                    "the server with an initial --graph snapshot to accept "
                    "events", 409)
        wal = None
        if self._wal_dir is not None:
            wal = WriteAheadLog(self._wal_dir, fsync=self._wal_fsync)
        if wal is not None and (wal.last_seq > 0
                                or any(wal.directory.glob("snap-*.npz"))):
            self.monitor = StreamMonitor.recover(
                self.service, wal, relation_names=names,
                num_features=num_features, **self._monitor_kwargs)
        else:
            if self._base_graph is not None:
                builder = IncrementalGraphBuilder.from_graph(self._base_graph)
            else:
                builder = IncrementalGraphBuilder(relation_names=names,
                                                  num_features=num_features)
            self.monitor = StreamMonitor(self.service, builder, wal=wal,
                                         **self._monitor_kwargs)
        return self.monitor

    # ------------------------------------------------------------------
    # GET /v1/models + POST /v1/models/{name}/activate
    # ------------------------------------------------------------------
    def _require_registry(self) -> ModelRegistry:
        if self.registry is None:
            raise GatewayError(
                "no model registry configured; start the server with "
                "--registry to manage named checkpoints", 409)
        return self.registry

    def list_models(self) -> dict:
        registry = self._require_registry()
        models: List[dict] = []
        for info in registry.list_models():
            models.append({
                "name": info.name,
                "detector": info.detector,
                "format_version": info.format_version,
                "num_nodes": info.num_nodes,
                "size_bytes": info.size_bytes,
                "active": info.name == self.active_model,
            })
        return {"models": models, "active": self.active_model}

    def activate(self, name: str) -> dict:
        registry = self._require_registry()
        try:
            # The process precision was resolved at server start; adopting
            # a checkpoint's dtype mid-flight would silently re-type every
            # later request's graph, so hot-swaps keep the current dtype.
            detector = registry.load(name, match_dtype=False)
        except KeyError as exc:
            raise GatewayError(str(exc.args[0]), 404) from None
        epochs, seconds = self.service.replace_detector(detector)
        self.active_model = name
        response = {
            "activated": name,
            "detector": type(detector).__name__,
            "refit_epochs": epochs,
            "refit_seconds": seconds,
        }
        if self.pool is not None:
            # Retarget the scoring processes: publish a new shm generation
            # and hot-swap every worker. Old segments stay readable until
            # the last in-flight batch drains (generation refcounting).
            try:
                response["pool_generation"] = \
                    self.pool.publish_detector(detector)
            except Exception as exc:  # noqa: BLE001 - degraded, not fatal
                # The in-process service already swapped; a worker that
                # missed the reload is respawned against the new manifest
                # by the pool itself. Surface the partial swap instead of
                # failing an activation the thread tier already served.
                response["pool_error"] = str(exc)
        return response

    # ------------------------------------------------------------------
    # GET /healthz + GET /metrics
    # ------------------------------------------------------------------
    def health(self, deep: bool = False) -> dict:
        """``GET /healthz`` payload; ``deep=True`` adds per-component
        status (``?deep=1``). ``status`` rolls up the SLO tracker —
        ``failing`` (sustained burn) makes the HTTP layer answer 503."""
        payload = {
            "status": self.slo.status(),
            "server": SERVER_NAME,
            "api": API_VERSION,
            "detector": type(self.service.detector).__name__,
            "active_model": self.active_model,
            "uptime_seconds": self.uptime_seconds,
            "queue_depth": self.batcher.queue_depth,
            "exec_tier": self.exec_tier,
        }
        if deep:
            payload["components"] = self._component_health()
        return payload

    def _component_health(self) -> dict:
        """Per-component deep-health detail (``/healthz?deep=1``)."""
        stats = self.service.stats
        cache = self.service.cache_info()
        trained = self.service.trained_fingerprint
        uptime = self.uptime_seconds
        busy = self.batcher.busy_seconds
        capacity = self.batcher.workers * uptime
        sample = self.sampler.refresh()   # health wants fresh RSS, not stale
        components = {
            "service": {
                "warm": trained is not None and self.service.is_warm(trained),
                "cache_entries": cache["entries"],
                "cache_capacity": cache["capacity"],
                "cache_bytes": cache["bytes"],
                "inflight": cache["inflight"],
                "hit_rate": stats.hit_rate,
            },
            "batcher": {
                "queue_depth": self.batcher.queue_depth,
                "max_queue": self.batcher.max_queue,
                "workers": self.batcher.workers,
                "busy_seconds": busy,
                "utilization": busy / capacity if capacity > 0 else 0.0,
                "closed": self.batcher.closed,
            },
            "runtime": sample.to_dict(),
            "slo": self.slo.snapshot(),
            "breaker": self.breaker.snapshot(),
        }
        if self.pool is not None:
            components["pool"] = {
                **self.pool.stats(),
                "worker_infos": self.pool.worker_infos(),
            }
        elif self.pool_fallback_reason is not None:
            components["pool"] = {
                "fallback": "thread",
                "reason": self.pool_fallback_reason,
            }
        monitor = self.monitor
        if monitor is not None:
            components["stream"] = monitor.stats_dict()
        return components

    def metrics_text(self) -> str:
        registry = MetricsRegistry(prefix="repro")
        registry.gauge("server_uptime_seconds",
                       "Seconds since the gateway started.",
                       self.uptime_seconds)
        with self._counter_lock:
            samples = [({"endpoint": endpoint, "status": str(status)}, count)
                       for (endpoint, status), count
                       in sorted(self._requests.items())]
        if samples:
            registry.add("server_requests_total", "counter",
                         "HTTP requests answered, by endpoint and status.",
                         samples)
        registry.gauge("server_queue_depth",
                       "Admitted score requests not yet resolved.",
                       self.batcher.queue_depth)
        batcher = self.batcher.stats
        registry.counter("batcher_submitted_total",
                         "Score requests admitted.", batcher.submitted)
        registry.counter("batcher_completed_total",
                         "Score requests answered.", batcher.completed)
        registry.counter("batcher_failed_total",
                         "Score requests failed in scoring.", batcher.failed)
        registry.counter("batcher_rejected_total",
                         "Score requests refused at admission.",
                         batcher.rejected)
        registry.counter("batcher_batches_total",
                         "Scoring passes run (batched groups).",
                         batcher.batches)
        registry.counter("batcher_coalesced_total",
                         "Requests that joined an open batch.",
                         batcher.coalesced)
        registry.gauge("batcher_largest_batch",
                       "Largest batch answered by one scoring pass.",
                       batcher.largest_batch)
        registry.counter("batcher_expired_total",
                         "Score requests dropped on an expired deadline.",
                         batcher.expired)
        registry.counter("batcher_worker_crashes_total",
                         "Batcher workers killed by unexpected exceptions.",
                         batcher.worker_crashes)
        registry.counter("batcher_worker_respawns_total",
                         "Replacement workers started by the watchdog.",
                         batcher.worker_respawns)
        registry.counter("batcher_rescued_groups_total",
                         "Batch groups re-queued after a worker crash.",
                         batcher.rescued)
        breaker = self.breaker.snapshot()
        registry.gauge("breaker_keys",
                       "Fingerprints tracked by the circuit breaker.",
                       breaker["keys"])
        registry.gauge("breaker_open",
                       "Fingerprints currently tripped open.",
                       breaker["open"])
        registry.counter("breaker_trips_total",
                         "Closed-to-open breaker transitions.",
                         breaker["trips"])
        registry.counter("breaker_rejections_total",
                         "Requests refused by an open breaker.",
                         breaker["rejections"])
        registry.counter("degraded_responses_total",
                         "Score responses served from stale scores.",
                         self._degraded_served)
        stats = self.service.stats
        registry.counter("service_cache_hits_total",
                         "DetectorService cache hits.", stats.hits)
        registry.counter("service_cache_misses_total",
                         "DetectorService cache misses (scoring passes).",
                         stats.misses)
        registry.counter("service_cache_evictions_total",
                         "DetectorService LRU evictions.", stats.evictions)
        registry.counter("service_refits_total",
                         "Detector hot-swaps (activations + refits).",
                         stats.refits)
        registry.counter("service_refit_epochs_total",
                         "Training epochs spent across refits.",
                         stats.refit_epochs)
        registry.counter("service_refit_seconds_total",
                         "Training seconds spent across refits.",
                         stats.refit_seconds)
        monitor = self.monitor
        if monitor is not None:
            registry.counter("monitor_events_total",
                             "Stream events consumed.",
                             monitor.events_consumed)
            registry.counter("monitor_windows_total",
                             "Stream windows scored.",
                             monitor.windows_scored)
            registry.counter("monitor_alerts_total",
                             "Stream alerts raised.", monitor.alerts_raised)
            registry.gauge("monitor_buffered_events",
                           "Events buffered toward the next window.",
                           monitor.buffered)
            if monitor.wal is not None:
                wal = monitor.wal.stats
                registry.counter("wal_appends_total",
                                 "Records durably appended to the WAL.",
                                 wal.appends)
                registry.counter("wal_bytes_total",
                                 "Bytes written to WAL segments.",
                                 wal.bytes_written)
                registry.counter("wal_segments_created_total",
                                 "WAL segment files created.",
                                 wal.segments_created)
                registry.counter("wal_segments_pruned_total",
                                 "WAL segments deleted after snapshots.",
                                 wal.segments_pruned)
                registry.counter("wal_records_replayed_total",
                                 "Records replayed during recovery.",
                                 wal.records_replayed)
                registry.gauge("wal_last_seq",
                               "Highest WAL sequence number written.",
                               monitor.wal.last_seq)
                registry.gauge("wal_recovered",
                               "1 when the stream state was restored from "
                               "a WAL at startup.", int(monitor.recovered))
        chaos_stats = chaos.stats()
        if chaos_stats:
            registry.add(
                "chaos_triggers_total", "counter",
                "Faults fired by the chaos injection layer, by point.",
                [({"point": point}, info["triggered"])
                 for point, info in sorted(chaos_stats.items())])
        with self._hist_lock:
            endpoint_series = [({"endpoint": name}, hist.snapshot())
                               for name, hist
                               in sorted(self._endpoint_hist.items())]
            stage_series = [({"stage": name}, hist.snapshot())
                            for name, hist
                            in sorted(self._stage_hist.items())]
        if endpoint_series:
            registry.histogram(
                "http_request_duration_seconds",
                "Wall time per answered HTTP request, by endpoint.",
                endpoint_series)
        if stage_series:
            registry.histogram(
                "stage_duration_seconds",
                "Wall time per traced pipeline stage (span name).",
                stage_series)
        if self.batcher.queue_wait.count:
            registry.histogram(
                "batcher_queue_wait_seconds",
                "Seconds between request admission and its batch starting.",
                self.batcher.queue_wait)
        if self.batcher.batch_sizes.count:
            registry.histogram(
                "batcher_batch_size",
                "Requests answered per scoring pass.",
                self.batcher.batch_sizes)
        self._render_runtime_metrics(registry)
        self._render_cache_metrics(registry)
        self._render_slo_metrics(registry)
        self._render_pool_metrics(registry)
        return registry.render()

    def _render_runtime_metrics(self, registry: MetricsRegistry) -> None:
        """Process gauges from the background sampler (RSS/GC/threads/FDs)."""
        sample = self.sampler.latest()
        if sample.rss_bytes is not None:
            registry.gauge("process_resident_memory_bytes",
                           "Resident set size (/proc/self/statm).",
                           sample.rss_bytes)
        if sample.peak_rss_bytes is not None:
            registry.gauge("process_peak_resident_memory_bytes",
                           "Peak resident set size (getrusage ru_maxrss).",
                           sample.peak_rss_bytes)
        if sample.open_fds is not None:
            registry.gauge("process_open_fds",
                           "Open file descriptors (/proc/self/fd).",
                           sample.open_fds)
        registry.gauge("process_threads",
                       "Live python threads (threading.active_count).",
                       sample.threads)
        if sample.gc_stats:
            registry.add(
                "python_gc_collections_total", "counter",
                "GC collections run, by generation.",
                [({"generation": str(gen)}, stat["collections"])
                 for gen, stat in enumerate(sample.gc_stats)])
            registry.add(
                "python_gc_collected_objects_total", "counter",
                "Objects reclaimed by the GC, by generation.",
                [({"generation": str(gen)}, stat["collected"])
                 for gen, stat in enumerate(sample.gc_stats)])
        registry.counter("runtime_samples_total",
                         "Background process-telemetry samples captured.",
                         self.sampler.samples_taken)
        registry.counter("runtime_sample_seconds_total",
                         "Wall seconds spent capturing runtime samples.",
                         self.sampler.sample_seconds)

    def _render_cache_metrics(self, registry: MetricsRegistry) -> None:
        """Service result-cache and per-relation operator-cache occupancy."""
        cache = self.service.cache_info()
        registry.gauge("service_cache_entries",
                       "Graphs resident in the DetectorService LRU cache.",
                       cache["entries"])
        registry.gauge("service_cache_bytes",
                       "Bytes pinned by the DetectorService LRU cache.",
                       cache["bytes"])
        per_relation: Dict[str, Dict[str, int]] = {}
        seen: set = set()
        # The long-lived graphs whose operator caches grow with traffic:
        # the trained graph and the stream builder's seed snapshot.
        graphs = [getattr(self.service.detector, "_graph", None),
                  self._base_graph]
        for graph in graphs:
            if graph is None or id(graph) in seen:
                continue
            seen.add(id(graph))
            for name, relation in graph:
                info = relation.cache_info()
                slot = per_relation.setdefault(name,
                                               {"entries": 0, "bytes": 0})
                slot["entries"] += info["entries"]
                slot["bytes"] += info["bytes"]
        if per_relation:
            registry.add(
                "propagator_cache_entries", "gauge",
                "Lazily-built graph operators resident, by relation.",
                [({"relation": name}, info["entries"])
                 for name, info in sorted(per_relation.items())])
            registry.add(
                "propagator_cache_bytes", "gauge",
                "Bytes held by cached graph operators, by relation.",
                [({"relation": name}, info["bytes"])
                 for name, info in sorted(per_relation.items())])
        uptime = self.uptime_seconds
        busy = self.batcher.busy_seconds
        capacity = self.batcher.workers * uptime
        registry.gauge("batcher_workers",
                       "Batcher worker threads.", self.batcher.workers)
        registry.counter("batcher_busy_seconds_total",
                         "Wall seconds workers spent on batch groups.",
                         busy)
        registry.gauge("batcher_utilization_ratio",
                       "Share of worker capacity spent on batch groups.",
                       busy / capacity if capacity > 0 else 0.0)

    def _render_pool_metrics(self, registry: MetricsRegistry) -> None:
        """Process-tier gauges/counters (``pool_*``); absent on threads."""
        pool = self.pool
        if pool is None:
            return
        stats = pool.stats()
        registry.gauge("pool_workers",
                       "Scoring worker processes configured.",
                       stats["workers"])
        registry.gauge("pool_workers_alive",
                       "Scoring worker processes currently alive.",
                       stats["workers_alive"])
        registry.counter("pool_dispatches_total",
                         "Batches dispatched to worker processes.",
                         stats["dispatches"])
        registry.counter("pool_retries_total",
                         "Batches retried after a worker crash or stall.",
                         stats["retries"])
        registry.counter("pool_worker_deaths_total",
                         "Worker processes that died and were respawned.",
                         stats["worker_deaths"])
        registry.gauge("pool_generation",
                       "Active shared-checkpoint generation.",
                       stats["shm_generation"])
        registry.gauge("pool_shm_generations_live",
                       "Checkpoint generations still mapped (in-flight "
                       "batches pin retired ones).",
                       stats["shm_generations_live"])
        registry.gauge("pool_shm_segments",
                       "Shared-memory segments currently linked.",
                       stats["shm_segments"])
        registry.gauge("pool_shm_bytes",
                       "Bytes of checkpoint payload in shared memory "
                       "(one copy per machine).",
                       stats["shm_bytes"])
        registry.gauge("pool_shm_refs",
                       "In-flight batch references pinning generations.",
                       stats["shm_refs"])
        registry.counter("pool_shm_retired_total",
                         "Retired generations whose segments were unlinked.",
                         stats["shm_retired_unlinked"])
        infos = pool.worker_infos()
        if infos:
            registry.add(
                "pool_worker_alive", "gauge",
                "1 when the scoring worker process is alive, by worker.",
                [({"worker": str(i["worker"])}, 1 if i["alive"] else 0)
                 for i in infos])
            registry.add(
                "pool_worker_requests_total", "counter",
                "Batches answered, by worker process.",
                [({"worker": str(i["worker"])}, i["requests"])
                 for i in infos])
            registry.add(
                "pool_worker_respawns_total", "counter",
                "Times the worker slot was respawned, by worker.",
                [({"worker": str(i["worker"])}, i["respawns"])
                 for i in infos])
            registry.add(
                "pool_worker_resident_memory_bytes", "gauge",
                "Resident set size of the scoring worker, by worker.",
                [({"worker": str(i["worker"])}, i["rss_bytes"])
                 for i in infos])

    def _render_slo_metrics(self, registry: MetricsRegistry) -> None:
        """Per-endpoint rolling SLO gauges + window burn counters."""
        statuses = self.slo.statuses()
        if not statuses:
            return
        objective = self.slo.objective
        p50s, p99s, errors, samples, compliant = [], [], [], [], []
        objectives, windows, burns = [], [], []
        for endpoint, status in statuses.items():
            labels = {"endpoint": endpoint}
            if status.p50_seconds is not None:
                p50s.append((labels, status.p50_seconds))
                p99s.append((labels, status.p99_seconds))
                errors.append((labels, status.error_ratio))
            samples.append((labels, status.samples))
            compliant.append((labels, 1 if status.compliant else 0))
            objectives.append((labels, objective.p99_seconds))
            windows.append((labels, status.windows))
            burns.append((labels, status.burn_windows))
        if p50s:
            registry.add("slo_latency_p50_seconds", "gauge",
                         "Rolling-window p50 latency, by endpoint.", p50s)
            registry.add("slo_latency_p99_seconds", "gauge",
                         "Rolling-window p99 latency, by endpoint.", p99s)
            registry.add("slo_error_ratio", "gauge",
                         "Rolling-window 5xx share, by endpoint.", errors)
        registry.add("slo_window_samples", "gauge",
                     "Observations in the rolling window, by endpoint.",
                     samples)
        registry.add("slo_compliant", "gauge",
                     "1 when the rolling window meets the objective.",
                     compliant)
        registry.add("slo_objective_p99_seconds", "gauge",
                     "Configured p99 latency objective, by endpoint.",
                     objectives)
        registry.add("slo_windows_total", "counter",
                     "Completed tumbling SLO windows, by endpoint.",
                     windows)
        registry.add("slo_burn_windows_total", "counter",
                     "Completed windows that violated the objective.",
                     burns)

    # ------------------------------------------------------------------
    def close(self) -> dict:
        """Shut everything down; returns the aggregated shutdown report.

        The report carries what did *not* die cleanly — leaked batcher
        threads, killed worker processes, leaked shm segments — so the
        app/CLI layer can log a dirty shutdown instead of dropping it.
        """
        report: Dict[str, dict] = {"batcher": self.batcher.close()}
        if self.pool is not None:
            report["pool"] = self.pool.close()
        self.sampler.close()
        monitor = self.monitor
        if monitor is not None and monitor.wal is not None:
            # A clean shutdown checkpoints the stream state: restart
            # recovers instantly from the snapshot with nothing to replay.
            monitor.checkpoint()
            monitor.wal.close()
        return report


__all__ = ["API_VERSION", "Gateway", "GatewayError", "SERVER_NAME"]
