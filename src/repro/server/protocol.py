"""Wire format of the HTTP gateway: JSON payload <-> graph objects.

One rule governs everything here: **scores cross the wire at full
precision**. Python's ``json`` serialises floats via ``repr``, which
round-trips every float64 bit pattern exactly, so a score array that goes
``ndarray -> tolist -> json -> client`` is bitwise-identical to the
server-side array — the parity contract the server tests pin. Nothing in
this module may format, round, or truncate a score.
"""

from __future__ import annotations

from typing import Dict, Optional

import numpy as np

from ..graphs.io import from_edge_dict
from ..graphs.multiplex import MultiplexGraph


class ProtocolError(ValueError):
    """A request payload that cannot be turned into domain objects."""


def graph_from_payload(payload: dict) -> MultiplexGraph:
    """Build a :class:`MultiplexGraph` from an inline request payload.

    Expected shape::

        {"x": [[...], ...],                       # (n, f) attribute rows
         "relations": {"view": [[u, v], ...], ...}}  # edge lists per relation

    Raises :class:`ProtocolError` (a ``ValueError``) on anything malformed;
    the HTTP layer maps that to a 400 response.
    """
    if not isinstance(payload, dict):
        raise ProtocolError(
            f"graph payload must be an object, got {type(payload).__name__}")
    x = payload.get("x")
    relations = payload.get("relations")
    if x is None or relations is None:
        raise ProtocolError(
            "graph payload needs 'x' (attribute rows) and 'relations' "
            "(name -> edge list)")
    if not isinstance(relations, dict) or not relations:
        raise ProtocolError("'relations' must be a non-empty object of "
                            "relation name -> [[u, v], ...] edge lists")
    try:
        attrs = np.asarray(x, dtype=np.float64)
    except (TypeError, ValueError) as exc:
        raise ProtocolError(f"'x' is not a numeric matrix: {exc}") from None
    if attrs.ndim != 2 or attrs.shape[0] < 1:
        raise ProtocolError(
            f"'x' must be a non-empty 2-D matrix, got shape {attrs.shape}")
    num_nodes = attrs.shape[0]
    edge_dict: Dict[str, np.ndarray] = {}
    for name, edges in relations.items():
        try:
            array = np.asarray(edges, dtype=np.int64)
        except (TypeError, ValueError) as exc:
            raise ProtocolError(
                f"relation {name!r}: edge list is not an (E, 2) integer "
                f"array: {exc}") from None
        if array.size == 0:
            array = array.reshape(0, 2)
        elif array.ndim != 2 or array.shape[1] != 2:
            # No silent reshape: [u, v, w] triples or flat lists would
            # otherwise be reinterpreted as different edge pairs.
            raise ProtocolError(
                f"relation {name!r}: edge list must be [[u, v], ...] "
                f"pairs, got shape {array.shape}")
        edge_dict[str(name)] = array
    try:
        return from_edge_dict(num_nodes, edge_dict, attrs)
    except (ValueError, IndexError) as exc:
        raise ProtocolError(f"invalid graph payload: {exc}") from None


def graph_payload(graph: MultiplexGraph) -> dict:
    """Serialise a graph into the inline ``/v1/score`` payload form."""
    return {
        "x": graph.x.tolist(),
        "relations": {name: rel.edges.tolist()
                      for name, rel in graph.relations.items()},
    }


def parse_nodes(nodes, num_nodes: int) -> Optional[np.ndarray]:
    """Validate an optional request 'nodes' subset against the graph size."""
    if nodes is None:
        return None
    if not isinstance(nodes, list) or not nodes:
        raise ProtocolError("'nodes' must be a non-empty list of node ids")
    try:
        index = np.asarray(nodes, dtype=np.int64)
    except (TypeError, ValueError) as exc:
        raise ProtocolError(f"'nodes' is not an integer list: {exc}") from None
    if index.ndim != 1:
        raise ProtocolError("'nodes' must be a flat list of node ids")
    bad = (index < 0) | (index >= num_nodes)
    if bad.any():
        raise ProtocolError(
            f"node id {int(index[bad][0])} out of range [0, {num_nodes})")
    return index


def score_response(fingerprint: str, scores: np.ndarray, *,
                   nodes: Optional[np.ndarray] = None,
                   top_k: Optional[int] = None,
                   threshold=None, degraded: bool = False) -> dict:
    """Assemble the ``/v1/score`` response body (full-precision floats).

    ``degraded=True`` marks a response answered from the stale-score
    cache while the fingerprint's circuit breaker is open. The key is
    *absent* on healthy responses — not ``false`` — so response bodies
    with resilience features enabled but idle stay byte-identical to
    builds without them.
    """
    body: dict = {
        "fingerprint": fingerprint,
        "num_nodes": int(scores.size),
    }
    if degraded:
        body["degraded"] = True
    if nodes is None:
        body["scores"] = scores.tolist()
    else:
        body["scores"] = [{"node": int(node), "score": float(scores[node])}
                          for node in nodes]
    if top_k is not None:
        k = max(int(top_k), 0)
        order = np.argsort(-scores)[:k]
        body["top"] = [{"node": int(i), "score": float(scores[i])}
                       for i in order]
    if threshold is not None:
        body["threshold"] = {
            "threshold": float(threshold.threshold),
            "index": int(threshold.index),
            "num_anomalies": int(threshold.num_anomalies),
            "window": int(threshold.window),
        }
        body["flagged"] = np.flatnonzero(
            scores >= threshold.threshold).tolist()
    return body


__all__ = ["ProtocolError", "graph_from_payload", "graph_payload",
           "parse_nodes", "score_response"]
