"""The detector contract shared by UMGAD and every baseline.

A detector is fit on a :class:`~repro.graphs.multiplex.MultiplexGraph`
*without labels*, produces per-node anomaly scores (higher = more
anomalous), and can turn scores into 0/1 predictions under either of the
paper's two protocols:

* **unsupervised** — the inflection-point threshold of Sec. IV-E
  (no ground-truth information), used for Table II/III;
* **ground-truth leakage** — top-``k`` with the known anomaly count,
  used for Table V.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

import numpy as np

from .graphs.multiplex import MultiplexGraph

if TYPE_CHECKING:  # pragma: no cover - typing only, avoids a circular import
    from .core.threshold import ThresholdResult


class BaseDetector:
    """Abstract unsupervised graph anomaly detector."""

    #: set by subclasses once :meth:`fit` finishes
    _scores: Optional[np.ndarray] = None

    def fit(self, graph: MultiplexGraph) -> "BaseDetector":  # pragma: no cover
        raise NotImplementedError

    def decision_scores(self) -> np.ndarray:
        """Per-node anomaly scores from the last :meth:`fit` call."""
        if self._scores is None:
            raise RuntimeError(
                f"{type(self).__name__}.decision_scores() called before fit()"
            )
        return self._scores

    # ------------------------------------------------------------------
    def threshold(self, window: Optional[int] = None) -> "ThresholdResult":
        """Unsupervised inflection-point threshold over the fitted scores."""
        from .core.threshold import select_threshold

        return select_threshold(self.decision_scores(), window=window)

    def predict(self, window: Optional[int] = None) -> np.ndarray:
        """0/1 predictions under the real-unsupervised protocol."""
        from .core.threshold import select_threshold

        scores = self.decision_scores()
        result = select_threshold(scores, window=window)
        return (scores >= result.threshold).astype(np.int64)

    def predict_with_known_count(self, num_anomalies: int) -> np.ndarray:
        """0/1 predictions under the ground-truth-leakage protocol."""
        from .eval.metrics import predictions_from_topk

        return predictions_from_topk(self.decision_scores(), num_anomalies)

    def fit_predict(self, graph: MultiplexGraph,
                    window: Optional[int] = None) -> np.ndarray:
        self.fit(graph)
        return self.predict(window=window)
