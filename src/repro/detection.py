"""The detector contract shared by UMGAD and every baseline.

A detector is fit on a :class:`~repro.graphs.multiplex.MultiplexGraph`
*without labels*, produces per-node anomaly scores (higher = more
anomalous), and can turn scores into 0/1 predictions under either of the
paper's two protocols:

* **unsupervised** — the inflection-point threshold of Sec. IV-E
  (no ground-truth information), used for Table II/III;
* **ground-truth leakage** — top-``k`` with the known anomaly count,
  used for Table V.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional, Tuple

import numpy as np

from .graphs.multiplex import MultiplexGraph

if TYPE_CHECKING:  # pragma: no cover - typing only, avoids a circular import
    from .core.threshold import ThresholdResult


class BaseDetector:
    """Abstract unsupervised graph anomaly detector."""

    #: set by subclasses once :meth:`fit` finishes
    _scores: Optional[np.ndarray] = None

    #: (scores array, window, result) of the last threshold selection;
    #: keyed by identity so a refit (new scores array) invalidates it
    _threshold_cache: Optional[Tuple[np.ndarray, Optional[int], "ThresholdResult"]] = None

    def fit(self, graph: MultiplexGraph) -> "BaseDetector":  # pragma: no cover
        raise NotImplementedError

    def decision_scores(self) -> np.ndarray:
        """Per-node anomaly scores from the last :meth:`fit` call."""
        if self._scores is None:
            raise RuntimeError(
                f"{type(self).__name__}.decision_scores() called before fit()"
            )
        return self._scores

    # ------------------------------------------------------------------
    def threshold(self, window: Optional[int] = None) -> "ThresholdResult":
        """Unsupervised inflection-point threshold over the fitted scores.

        The result is cached per (scores, window) so repeated calls —
        including every :meth:`predict` — reuse one selection; serving
        (:mod:`repro.serve`) relies on this to checkpoint and replay the
        fitted :class:`~repro.core.threshold.ThresholdResult`.
        """
        from .core.threshold import select_threshold

        scores = self.decision_scores()
        cached = self._threshold_cache
        if cached is not None and cached[0] is scores and cached[1] == window:
            return cached[2]
        result = select_threshold(scores, window=window)
        self._threshold_cache = (scores, window, result)
        return result

    def predict(self, window: Optional[int] = None) -> np.ndarray:
        """0/1 predictions under the real-unsupervised protocol."""
        result = self.threshold(window=window)
        return (self.decision_scores() >= result.threshold).astype(np.int64)

    def predict_with_known_count(self, num_anomalies: int) -> np.ndarray:
        """0/1 predictions under the ground-truth-leakage protocol."""
        from .eval.metrics import predictions_from_topk

        return predictions_from_topk(self.decision_scores(), num_anomalies)

    def fit_predict(self, graph: MultiplexGraph,
                    window: Optional[int] = None) -> np.ndarray:
        self.fit(graph)
        return self.predict(window=window)

    # ------------------------------------------------------------------
    def save(self, path, graph: Optional[MultiplexGraph] = None):
        """Checkpoint this fitted detector to ``path`` (see
        :mod:`repro.serve.checkpoint`); returns the written path."""
        from .serve.checkpoint import save_checkpoint

        return save_checkpoint(path, self, graph=graph)
