"""Shared utilities: RNG threading and timing."""

from .rng import SeedLike, ensure_rng, spawn
from .timer import Timer, TimingResult, measure_repeated, median_mad

__all__ = ["SeedLike", "Timer", "TimingResult", "ensure_rng",
           "measure_repeated", "median_mad", "spawn"]
