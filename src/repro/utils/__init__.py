"""Shared utilities: RNG threading and timing."""

from .rng import SeedLike, ensure_rng, spawn
from .timer import Timer

__all__ = ["SeedLike", "Timer", "ensure_rng", "spawn"]
