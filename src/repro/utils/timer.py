"""Wall-clock timing helpers shared by the experiments and benchmarks.

Two layers:

* :class:`Timer` — accumulates named wall-clock spans (used to report
  per-epoch and total runtimes in the Fig. 7 reproduction);
* :func:`measure_repeated` / :class:`TimingResult` — the benchmark-suite
  methodology (optional warmup reps, N timed reps, median/MAD summary).
  Every ``benchmarks/test_*_perf.py`` timing goes through this so the
  performance ledger (:mod:`repro.obs.bench`) records one consistent
  statistic everywhere: the **median** (robust location) with the **MAD**
  (robust spread) as its noise interval.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple


def median_mad(values: Sequence[float]) -> Tuple[float, float]:
    """(median, median-absolute-deviation) of ``values``.

    Pure python (no numpy) so the ledger diff tool stays importable in
    minimal environments. MAD of fewer than two samples is 0.0.
    """
    data = sorted(float(v) for v in values)
    if not data:
        raise ValueError("median_mad needs at least one value")

    def _median(sorted_data: List[float]) -> float:
        n = len(sorted_data)
        mid = n // 2
        if n % 2:
            return sorted_data[mid]
        return 0.5 * (sorted_data[mid - 1] + sorted_data[mid])

    med = _median(data)
    if len(data) < 2:
        return med, 0.0
    deviations = sorted(abs(v - med) for v in data)
    return med, _median(deviations)


@dataclass(frozen=True)
class TimingResult:
    """Summary of one repeated measurement (the ledger's record unit).

    ``values`` are the timed repetitions in seconds, warmup excluded.
    ``value`` carries the measured callable's last return so benchmarks
    can assert on results without re-running the work.
    """

    name: str
    values: Tuple[float, ...]
    warmup: int = 0
    value: Any = field(default=None, compare=False)

    @property
    def reps(self) -> int:
        return len(self.values)

    @property
    def best(self) -> float:
        return min(self.values)

    @property
    def mean(self) -> float:
        return sum(self.values) / len(self.values)

    @property
    def median(self) -> float:
        return median_mad(self.values)[0]

    @property
    def mad(self) -> float:
        return median_mad(self.values)[1]

    @property
    def total(self) -> float:
        return float(sum(self.values))

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "values": list(self.values),
            "warmup": self.warmup,
            "reps": self.reps,
            "median": self.median,
            "mad": self.mad,
            "best": self.best,
            "mean": self.mean,
        }


def measure_repeated(fn: Callable[[], Any], *, reps: int = 3,
                     warmup: int = 0, name: str = "timed",
                     setup: Optional[Callable[[], Any]] = None
                     ) -> TimingResult:
    """Time ``fn()`` ``reps`` times after ``warmup`` untimed calls.

    ``setup`` (when given) runs before *every* call — warmup and timed —
    outside the clock; its return value is passed to ``fn`` when ``fn``
    accepts one positional argument, letting benchmarks rebuild cold
    inputs (e.g. a fresh graph with cold operator caches) per rep without
    paying for the rebuild inside the measurement.
    """
    if reps < 1:
        raise ValueError(f"reps must be >= 1, got {reps}")
    if warmup < 0:
        raise ValueError(f"warmup must be >= 0, got {warmup}")

    def _call():
        if setup is not None:
            prepared = setup()
            try:
                return fn(prepared)
            except TypeError:
                # fn takes no argument; setup was purely for side effects
                return fn()
        return fn()

    for _ in range(warmup):
        _call()
    values: List[float] = []
    result: Any = None
    for _ in range(reps):
        start = time.perf_counter()
        result = _call()
        values.append(time.perf_counter() - start)
    return TimingResult(name=name, values=tuple(values), warmup=warmup,
                        value=result)


@dataclass
class Timer:
    """Accumulates named wall-clock spans; used to report per-epoch and
    total runtimes in the Fig. 7 reproduction and to collect benchmark
    repetitions for the performance ledger."""

    spans: Dict[str, List[float]] = field(default_factory=dict)

    @contextmanager
    def measure(self, name: str):
        start = time.perf_counter()
        try:
            yield
        finally:
            self.spans.setdefault(name, []).append(time.perf_counter() - start)

    def total(self, name: str) -> float:
        return float(sum(self.spans.get(name, [])))

    def mean(self, name: str) -> float:
        values = self.spans.get(name, [])
        return float(sum(values) / len(values)) if values else 0.0

    def count(self, name: str) -> int:
        return len(self.spans.get(name, []))

    def best(self, name: str) -> float:
        """Fastest recorded span (0.0 when nothing was recorded)."""
        values = self.spans.get(name, [])
        return float(min(values)) if values else 0.0

    def result(self, name: str) -> TimingResult:
        """The accumulated spans of ``name`` as a :class:`TimingResult`."""
        values = self.spans.get(name)
        if not values:
            raise KeyError(f"no spans recorded under {name!r}")
        return TimingResult(name=name, values=tuple(values))


__all__ = ["TimingResult", "Timer", "measure_repeated", "median_mad"]
