"""Wall-clock timing helpers for the efficiency experiments (Fig. 6/7)."""

from __future__ import annotations

import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Dict, List


@dataclass
class Timer:
    """Accumulates named wall-clock spans; used to report per-epoch and
    total runtimes in the Fig. 7 reproduction."""

    spans: Dict[str, List[float]] = field(default_factory=dict)

    @contextmanager
    def measure(self, name: str):
        start = time.perf_counter()
        try:
            yield
        finally:
            self.spans.setdefault(name, []).append(time.perf_counter() - start)

    def total(self, name: str) -> float:
        return float(sum(self.spans.get(name, [])))

    def mean(self, name: str) -> float:
        values = self.spans.get(name, [])
        return float(sum(values) / len(values)) if values else 0.0

    def count(self, name: str) -> int:
        return len(self.spans.get(name, []))
