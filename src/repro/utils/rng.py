"""Random-number handling: every stochastic component takes seed-or-rng."""

from __future__ import annotations

from typing import Optional, Union

import numpy as np

SeedLike = Union[None, int, np.random.Generator]


def ensure_rng(seed: SeedLike = None) -> np.random.Generator:
    """Return a ``numpy.random.Generator`` from a seed, generator, or None."""
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


def spawn(rng: np.random.Generator, n: int) -> list:
    """Derive ``n`` independent child generators from ``rng``."""
    return [np.random.default_rng(s) for s in rng.integers(0, 2**63 - 1, size=n)]
