"""Command-line interface.

Three subcommands::

    python -m repro.cli detect --dataset retail --scale 0.3 --epochs 30
    python -m repro.cli detect --graph my_graph.npz --explain 5
    python -m repro.cli experiment table2 --profile fast
    python -m repro.cli datasets

``detect`` fits UMGAD on a named dataset or a saved ``.npz`` multiplex
archive, prints the label-free threshold decision and (when labels exist)
AUC / Macro-F1. ``experiment`` regenerates one paper table/figure.
"""

from __future__ import annotations

import argparse
import sys

import numpy as np

from . import experiments
from .core import UMGAD, UMGADConfig
from .core.explain import AnomalyExplainer
from .datasets import available_datasets, load_dataset
from .eval import macro_f1, roc_auc
from .graphs.io import load_multiplex

_EXPERIMENTS = {
    "table1": experiments.table1, "table2": experiments.table2,
    "table3": experiments.table3, "table4": experiments.table4,
    "table5": experiments.table5, "fig2": experiments.fig2,
    "fig3": experiments.fig3, "fig4": experiments.fig4,
    "fig5": experiments.fig5, "fig6": experiments.fig6,
    "fig7": experiments.fig7,
}

_PROFILES = {"fast": experiments.FAST, "full": experiments.FULL}


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro", description="UMGAD reproduction CLI")
    sub = parser.add_subparsers(dest="command", required=True)

    detect = sub.add_parser("detect", help="fit UMGAD and flag anomalies")
    source = detect.add_mutually_exclusive_group(required=True)
    source.add_argument("--dataset", choices=available_datasets(),
                        help="built-in dataset name")
    source.add_argument("--graph", help="path to a saved .npz multiplex archive")
    detect.add_argument("--scale", type=float, default=0.3,
                        help="dataset scale (built-in datasets only)")
    detect.add_argument("--epochs", type=int, default=30)
    detect.add_argument("--mask-ratio", type=float, default=0.4)
    detect.add_argument("--seed", type=int, default=0)
    detect.add_argument("--top", type=int, default=10,
                        help="print the top-K scored nodes")
    detect.add_argument("--explain", type=int, default=0, metavar="K",
                        help="print evidence for the K highest-scoring nodes")

    experiment = sub.add_parser("experiment",
                                help="regenerate a paper table/figure")
    experiment.add_argument("name", choices=sorted(_EXPERIMENTS))
    experiment.add_argument("--profile", choices=sorted(_PROFILES),
                            default="fast")

    sub.add_parser("datasets", help="list built-in datasets")
    return parser


def _run_detect(args) -> int:
    if args.dataset:
        dataset = load_dataset(args.dataset, scale=args.scale, seed=args.seed)
        graph, labels = dataset.graph, dataset.labels
        print(f"loaded {args.dataset}: {graph}")
    else:
        graph, labels = load_multiplex(args.graph)
        print(f"loaded {args.graph}: {graph}")

    config = UMGADConfig(epochs=args.epochs, mask_ratio=args.mask_ratio,
                         seed=args.seed)
    model = UMGAD(config).fit(graph)
    scores = model.decision_scores()
    result = model.threshold()
    print(f"threshold {result.threshold:.4f} flags {result.num_anomalies} "
          f"of {graph.num_nodes} nodes (window={result.window})")
    print("relation importance:",
          {k: round(v, 3) for k, v in model.relation_importance.items()})

    order = np.argsort(-scores)[:args.top]
    print(f"top-{args.top} nodes: " + ", ".join(
        f"{int(i)}({scores[i]:.3f})" for i in order))

    if labels is not None and 0 < labels.sum() < labels.size:
        predictions = (scores >= result.threshold).astype(int)
        print(f"AUC={roc_auc(labels, scores):.3f} "
              f"Macro-F1={macro_f1(labels, predictions):.3f} "
              f"(true anomalies: {int(labels.sum())})")

    if args.explain:
        explainer = AnomalyExplainer(model, graph)
        for explanation in explainer.top_anomalies(args.explain):
            print()
            print(explanation.summary())
    return 0


def _run_experiment(args) -> int:
    module = _EXPERIMENTS[args.name]
    profile = _PROFILES[args.profile]
    rows = module.run(profile)
    print(module.render(rows))
    return 0


def main(argv=None) -> int:
    args = _build_parser().parse_args(argv)
    if args.command == "detect":
        return _run_detect(args)
    if args.command == "experiment":
        return _run_experiment(args)
    if args.command == "datasets":
        for name in available_datasets():
            print(name)
        return 0
    return 1  # pragma: no cover


if __name__ == "__main__":
    sys.exit(main())
