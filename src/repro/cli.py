"""Command-line interface.

Subcommands::

    python -m repro.cli detect --dataset retail --scale 0.3 --epochs 30
    python -m repro.cli detect --graph my_graph.npz --save model.npz
    python -m repro.cli detect --dataset tsocial --batch subgraph \
        --batch-size 512 --dtype float32
    python -m repro.cli save --dataset retail --out model.npz
    python -m repro.cli score --model model.npz --graph my_graph.npz
    python -m repro.cli serve-bench --model model.npz --graph my_graph.npz
    python -m repro.cli serve --model model.npz --port 8765
    python -m repro.cli serve --registry models/ --activate retail-v1
    python -m repro.cli stream --events events.jsonl --model model.npz --window 500
    python -m repro.cli experiment table2 --profile fast
    python -m repro.cli trace --last 5 --port 8765
    python -m repro.cli bench run score_perf --ledger-dir /tmp/ledger
    python -m repro.cli bench report
    python -m repro.cli bench diff baseline/ current/
    python -m repro.cli datasets

``detect`` fits UMGAD on a named dataset or a saved ``.npz`` multiplex
archive, prints the label-free threshold decision and (when labels exist)
AUC / Macro-F1; ``--save`` checkpoints the fitted model. ``save`` is the
train-once entry point (fit + checkpoint, nothing else). ``score`` answers
from a checkpoint without retraining, ``serve-bench`` measures cold-load vs
warm-cache serving latency, ``stream`` replays a JSONL event log through
the online monitor (one report per window; with ``--output json``, one
JSON object per line), ``serve`` runs the HTTP serving gateway
(:mod:`repro.server`: micro-batched ``/v1/score``, ``/v1/events``,
model hot-swap, Prometheus ``/metrics``), ``trace`` pretty-prints the
span trees a running server publishes at ``GET /v1/traces``,
``experiment`` regenerates one paper table/figure, and ``bench``
drives the performance ledger (:mod:`repro.obs.bench`): ``bench run``
executes benchmark suites with ledger recording, ``bench report``
renders saved ledgers, and ``bench diff`` compares two ledger
directories with noise-aware regression detection — exiting non-zero on
a regression so CI can gate on it.
``detect``/``score``/``serve-bench`` take ``--output json`` for
machine-readable results.

``REPRO_PROFILE=1`` wraps ``detect``/``score``/``experiment`` in a trace
and prints a per-stage cost table (wall/CPU per pipeline stage) to stderr
after the run.
"""

from __future__ import annotations

import argparse
import dataclasses
import json
import os
import sys
import time

import numpy as np

from . import experiments
from .core import UMGAD, UMGADConfig
from .core.explain import AnomalyExplainer
from .datasets import available_datasets, load_dataset
from .eval import macro_f1, roc_auc
from .graphs.io import load_multiplex

_EXPERIMENTS = {
    "table1": experiments.table1, "table2": experiments.table2,
    "table3": experiments.table3, "table4": experiments.table4,
    "table5": experiments.table5, "fig2": experiments.fig2,
    "fig3": experiments.fig3, "fig4": experiments.fig4,
    "fig5": experiments.fig5, "fig6": experiments.fig6,
    "fig7": experiments.fig7,
}

_PROFILES = {"fast": experiments.FAST, "full": experiments.FULL,
             "sampled": experiments.SAMPLED}


def _add_source_args(parser: argparse.ArgumentParser) -> None:
    source = parser.add_mutually_exclusive_group(required=True)
    source.add_argument("--dataset", choices=available_datasets(),
                        help="built-in dataset name")
    source.add_argument("--graph", help="path to a saved .npz multiplex archive")
    parser.add_argument("--scale", type=float, default=0.3,
                        help="dataset scale (built-in datasets only)")
    parser.add_argument("--seed", type=int, default=0)


def _add_training_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--epochs", type=int, default=30)
    parser.add_argument("--mask-ratio", type=float, default=0.4)
    parser.add_argument("--batch", choices=("full", "subgraph"), default="full",
                        help="training batch strategy (repro.engine): 'full' "
                             "trains on the whole graph per epoch, 'subgraph' "
                             "on RWR-sampled minibatches")
    parser.add_argument("--batch-size", type=int, default=256,
                        help="nodes per sampled subgraph minibatch")
    parser.add_argument("--batches-per-epoch", type=int, default=1,
                        help="minibatch steps per epoch in subgraph mode")


def _add_dtype_arg(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--dtype", choices=("float32", "float64"),
                        default=None,
                        help="floating-point precision for tensors and "
                             "graph attributes (float32 halves memory). "
                             "Commands that load a checkpoint default to "
                             "the precision it was trained at; training "
                             "commands default to float64")


def _add_output_arg(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--output", choices=("text", "json"), default="text",
                        help="result format (json is machine-readable)")


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro", description="UMGAD reproduction CLI")
    sub = parser.add_subparsers(dest="command", required=True)

    detect = sub.add_parser("detect", help="fit UMGAD and flag anomalies")
    _add_source_args(detect)
    _add_training_args(detect)
    detect.add_argument("--top", type=int, default=10,
                        help="print the top-K scored nodes")
    detect.add_argument("--explain", type=int, default=0, metavar="K",
                        help="print evidence for the K highest-scoring nodes")
    detect.add_argument("--save", metavar="PATH",
                        help="checkpoint the fitted model to PATH")
    _add_dtype_arg(detect)
    _add_output_arg(detect)

    save = sub.add_parser(
        "save", help="fit UMGAD and checkpoint it (no reporting)")
    _add_source_args(save)
    _add_training_args(save)
    save.add_argument("--out", required=True, metavar="PATH",
                      help="checkpoint destination (.npz)")
    _add_dtype_arg(save)
    _add_output_arg(save)

    score = sub.add_parser(
        "score", help="score a graph with a saved checkpoint (no retraining)")
    score.add_argument("--model", required=True,
                       help="checkpoint written by 'save' or 'detect --save'")
    _add_source_args(score)
    score.add_argument("--top", type=int, default=10,
                       help="print the top-K scored nodes")
    score.add_argument("--node", type=int, default=None,
                       help="print one node's score only")
    score.add_argument("--explain", type=int, default=0, metavar="K",
                       help="print evidence for the K highest-scoring nodes")
    _add_dtype_arg(score)
    _add_output_arg(score)

    bench = sub.add_parser(
        "serve-bench", help="measure cold vs warm serving latency")
    bench.add_argument("--model", required=True, help="checkpoint to serve")
    _add_source_args(bench)
    bench.add_argument("--requests", type=int, default=20,
                       help="warm-cache requests to average over")
    _add_dtype_arg(bench)
    _add_output_arg(bench)

    serve = sub.add_parser(
        "serve", help="run the HTTP serving gateway (repro.server)")
    serve.add_argument("--model",
                       help="checkpoint to serve (or use --registry + "
                            "--activate)")
    serve.add_argument("--registry",
                       help="ModelRegistry directory backing /v1/models")
    serve.add_argument("--activate", metavar="NAME",
                       help="registry model to serve initially")
    serve.add_argument("--graph",
                       help="initial .npz multiplex snapshot seeding the "
                            "/v1/events stream builder")
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument("--port", type=int, default=8765,
                       help="TCP port (0 picks an ephemeral port)")
    serve.add_argument("--worker-threads", "--workers", type=int, default=2,
                       dest="workers", metavar="N",
                       help="micro-batch worker threads (--workers is a "
                            "deprecated alias, kept for compatibility)")
    serve.add_argument("--worker-procs", type=int, default=2, metavar="N",
                       help="scoring worker processes for "
                            "--exec-tier process")
    serve.add_argument("--exec-tier", choices=("thread", "process"),
                       default="thread",
                       help="scoring execution tier: 'thread' scores "
                            "in-process; 'process' forks --worker-procs "
                            "scorers over a shared-memory checkpoint "
                            "(falls back to threads when shm is "
                            "unavailable)")
    serve.add_argument("--max-queue", type=int, default=64,
                       help="admission bound: pending requests beyond this "
                            "are refused with 429")
    serve.add_argument("--linger-ms", type=float, default=2.0,
                       help="how long a score batch stays open for "
                            "same-graph joiners")
    serve.add_argument("--max-batch", type=int, default=64,
                       help="max requests answered by one scoring pass")
    serve.add_argument("--cache-size", type=int, default=8,
                       help="DetectorService LRU size (distinct graphs)")
    serve.add_argument("--window", type=int, default=500,
                       help="stream monitor window for /v1/events")
    serve.add_argument("--stride", type=int, default=None,
                       help="stream monitor stride (default: --window)")
    serve.add_argument("--verbose", action="store_true",
                       help="log one line per HTTP request")
    serve.add_argument("--slo-window", type=int, default=100,
                       help="requests per tumbling SLO window")
    serve.add_argument("--slo-p99", type=float, default=2.5,
                       dest="slo_p99_seconds",
                       help="p99 latency objective in seconds")
    serve.add_argument("--slo-error-ratio", type=float, default=0.02,
                       help="tolerated 5xx share per SLO window")
    serve.add_argument("--slo-sustain", type=int, default=2,
                       help="consecutive violating windows before /healthz "
                            "turns 503")
    serve.add_argument("--sample-interval", type=float, default=5.0,
                       help="seconds between background runtime-telemetry "
                            "samples")
    serve.add_argument("--wal-dir", default=None,
                       help="write-ahead-log directory for /v1/events; "
                            "stream state is durably logged and recovered "
                            "on restart")
    serve.add_argument("--snapshot-every", type=int, default=10,
                       help="windows between WAL builder snapshots "
                            "(0 disables periodic snapshots)")
    _add_dtype_arg(serve)

    stream = sub.add_parser(
        "stream", help="replay a JSONL event log through the online monitor")
    stream.add_argument("--events", required=True,
                        help="JSONL event log (see repro.stream.events)")
    stream.add_argument("--model", required=True, help="checkpoint to serve")
    stream.add_argument("--graph",
                        help="initial .npz multiplex snapshot; omitted, the "
                             "stream must bootstrap an empty graph with the "
                             "model's relation schema")
    stream.add_argument("--window", type=int, default=500,
                        help="event span of jump/top-k comparisons (and the "
                             "default snapshot cadence)")
    stream.add_argument("--stride", type=int, default=None,
                        help="events between scored snapshots "
                             "(default: --window, i.e. tumbling windows)")
    stream.add_argument("--top", type=int, default=10,
                        help="ranking size for top-k entrant alerts")
    stream.add_argument("--psi-threshold", type=float, default=0.25,
                        help="PSI above which a drift alert fires")
    stream.add_argument("--jump-sigma", type=float, default=6.0,
                        help="robust sigmas for score-jump alerts")
    stream.add_argument("--wal-dir", default=None,
                        help="write-ahead-log directory: events are durably "
                             "logged before scoring, and a rerun resumes "
                             "from the recovered state (skipping events the "
                             "crashed run already consumed)")
    stream.add_argument("--snapshot-every", type=int, default=10,
                        help="windows between WAL builder snapshots "
                             "(0 disables periodic snapshots)")
    _add_dtype_arg(stream)
    _add_output_arg(stream)

    experiment = sub.add_parser("experiment",
                                help="regenerate a paper table/figure")
    experiment.add_argument("name", choices=sorted(_EXPERIMENTS))
    experiment.add_argument("--profile", choices=sorted(_PROFILES),
                            default="fast")

    trace = sub.add_parser(
        "trace", help="show request traces from a running serve gateway")
    trace.add_argument("--last", type=int, default=5,
                       help="how many of the newest traces to show")
    trace.add_argument("--id", dest="trace_id", default=None,
                       help="fetch one specific trace id instead")
    trace.add_argument("--host", default="127.0.0.1")
    trace.add_argument("--port", type=int, default=8765)
    _add_output_arg(trace)

    benchcmd = sub.add_parser(
        "bench", help="record, report and diff performance ledgers")
    bench_sub = benchcmd.add_subparsers(dest="bench_command", required=True)

    bench_run = bench_sub.add_parser(
        "run", help="run benchmark suites with ledger recording")
    bench_run.add_argument("suites", nargs="*", metavar="SUITE",
                           help="suite names (score_perf, serve_perf, ...) "
                                "or test file paths; default: every suite "
                                "under --benchmarks-dir")
    bench_run.add_argument("--benchmarks-dir", default="benchmarks",
                           help="directory holding test_*_perf.py suites")
    bench_run.add_argument("--ledger-dir", default=None,
                           help="where suite ledgers are written "
                                "(default: <benchmarks-dir>/output/ledger)")

    bench_report = bench_sub.add_parser(
        "report", help="render saved suite ledgers")
    bench_report.add_argument("suites", nargs="*", metavar="SUITE",
                              help="restrict to these suites")
    bench_report.add_argument("--ledger-dir",
                              default="benchmarks/output/ledger",
                              help="ledger directory to read")

    bench_diff = bench_sub.add_parser(
        "diff", help="compare two ledgers with noise-aware regression "
                     "detection (exit 1 on regression)")
    bench_diff.add_argument("base", help="baseline ledger .json or directory")
    bench_diff.add_argument("new", help="candidate ledger .json or directory")
    bench_diff.add_argument("--threshold", type=float, default=None,
                            help="relative median shift below which nothing "
                                 "is flagged (default 0.25)")
    bench_diff.add_argument("--mad-k", type=float, default=None,
                            help="MAD multiplier for the noise intervals "
                                 "(default 3.0)")
    bench_diff.add_argument("--suite", default=None,
                            help="restrict to one suite")

    sub.add_parser("datasets", help="list built-in datasets")
    return parser


# ---------------------------------------------------------------------------
# Helpers
# ---------------------------------------------------------------------------

def _load_source(args):
    """(graph, labels, source-name) from --dataset or --graph."""
    if args.dataset:
        dataset = load_dataset(args.dataset, scale=args.scale, seed=args.seed)
        return dataset.graph, dataset.labels, args.dataset
    graph, labels = load_multiplex(args.graph)
    return graph, labels, args.graph


def _emit(args, payload: dict, text: str) -> None:
    if args.output == "json":
        print(json.dumps(payload, default=float))
    else:
        print(text)


def _threshold_payload(result) -> dict:
    return {
        "threshold": result.threshold,
        "index": result.index,
        "num_anomalies": result.num_anomalies,
        "window": result.window,
    }


def _result_payload(scores: np.ndarray, result, top: int,
                    labels=None) -> dict:
    order = np.argsort(-scores)[:top]
    payload = {
        "num_nodes": int(scores.size),
        "threshold": _threshold_payload(result),
        "scores": scores.tolist(),
        "flagged": np.flatnonzero(scores >= result.threshold).tolist(),
        "top": [{"node": int(i), "score": float(scores[i])} for i in order],
    }
    if labels is not None and 0 < labels.sum() < labels.size:
        predictions = (scores >= result.threshold).astype(int)
        payload["metrics"] = {
            "auc": roc_auc(labels, scores),
            "macro_f1": macro_f1(labels, predictions),
            "true_anomalies": int(labels.sum()),
        }
    return payload


def _render_result(payload: dict) -> str:
    result = payload["threshold"]
    lines = [
        f"threshold {result['threshold']:.4f} flags "
        f"{result['num_anomalies']} of {payload['num_nodes']} nodes "
        f"(window={result['window']})",
    ]
    if "relation_importance" in payload:
        rounded = {k: round(v, 3)
                   for k, v in payload["relation_importance"].items()}
        lines.append(f"relation importance: {rounded}")
    top = payload["top"]
    lines.append(f"top-{len(top)} nodes: " + ", ".join(
        f"{row['node']}({row['score']:.3f})" for row in top))
    if "metrics" in payload:
        metrics = payload["metrics"]
        lines.append(f"AUC={metrics['auc']:.3f} "
                     f"Macro-F1={metrics['macro_f1']:.3f} "
                     f"(true anomalies: {metrics['true_anomalies']})")
    return "\n".join(lines)


def _explanations(model: UMGAD, graph, k: int, scores=None) -> list:
    explainer = AnomalyExplainer(model, graph, scores=scores)
    return explainer.top_anomalies(k)


# ---------------------------------------------------------------------------
# Subcommands
# ---------------------------------------------------------------------------

def _fit_model(args, graph) -> UMGAD:
    config = UMGADConfig(epochs=args.epochs, mask_ratio=args.mask_ratio,
                         seed=args.seed, batch=args.batch,
                         batch_size=args.batch_size,
                         batches_per_epoch=args.batches_per_epoch)
    return UMGAD(config).fit(graph)


def _run_detect(args) -> int:
    graph, labels, source = _load_source(args)
    if args.output == "text":
        print(f"loaded {source}: {graph}")

    model = _fit_model(args, graph)
    scores = model.decision_scores()
    result = model.threshold()

    payload = _result_payload(scores, result, args.top, labels)
    payload["source"] = source
    payload["relation_importance"] = model.relation_importance
    if args.save:
        saved = model.save(args.save, graph=graph)
        payload["checkpoint"] = str(saved)
    explanations = (_explanations(model, graph, args.explain)
                    if args.explain else [])
    if explanations:
        payload["explanations"] = [dataclasses.asdict(e) for e in explanations]
    text = _render_result(payload)
    if args.save and args.output == "text":
        text += f"\nsaved checkpoint to {payload['checkpoint']}"
    text += "".join("\n\n" + e.summary() for e in explanations)
    _emit(args, payload, text)
    return 0


def _run_save(args) -> int:
    graph, _labels, source = _load_source(args)
    start = time.perf_counter()
    model = _fit_model(args, graph)
    fit_seconds = time.perf_counter() - start
    saved = model.save(args.out, graph=graph)
    payload = {
        "source": source,
        "checkpoint": str(saved),
        "num_nodes": graph.num_nodes,
        "fit_seconds": fit_seconds,
        "threshold": _threshold_payload(model.threshold()),
    }
    _emit(args, payload,
          f"fitted on {source} in {fit_seconds:.2f}s; "
          f"saved checkpoint to {saved}")
    return 0


def _run_score(args) -> int:
    from .serve import DetectorService

    graph, labels, source = _load_source(args)
    # _resolve_dtype already applied the checkpoint's (or the explicit
    # --dtype) precision before the graph was built.
    service = DetectorService(args.model, match_dtype=False)

    if args.node is not None:
        value = service.score_node(graph, args.node)
        payload = {"source": source, "node": args.node, "score": value}
        text = f"node {args.node}: score {value:.4f}"
        if args.explain:
            explanation = service.explain(graph, args.node)
            payload["explanation"] = dataclasses.asdict(explanation)
            text += "\n" + explanation.summary()
        _emit(args, payload, text)
        return 0

    scores = service.scores(graph)
    result = service.threshold(graph)
    payload = _result_payload(scores, result, args.top, labels)
    payload["source"] = source
    payload["model"] = args.model
    model = service.detector
    if isinstance(model, UMGAD):
        payload["relation_importance"] = model.relation_importance
    explanations = [service.explain(graph, node)
                    for node, _score in service.top_k(graph, args.explain)
                    ] if args.explain else []
    if explanations:
        payload["explanations"] = [dataclasses.asdict(e) for e in explanations]
    text = _render_result(payload)
    text += "".join("\n\n" + e.summary() for e in explanations)
    _emit(args, payload, text)
    return 0


def _run_serve_bench(args) -> int:
    from .serve import run_serve_bench

    graph, _labels, source = _load_source(args)
    result = run_serve_bench(args.model, graph, requests=args.requests,
                             match_dtype=False)
    payload = {"source": source, "model": args.model, **result.to_dict()}
    _emit(args, payload, result.render())
    return 0


def _run_stream(args) -> int:
    import itertools

    from .serve import DetectorService, ServiceError
    from .stream import (IncrementalGraphBuilder, StreamMonitor,
                         WriteAheadLog, read_events)

    service = DetectorService(args.model, match_dtype=False)
    graph = None
    if args.graph:
        graph, _labels = load_multiplex(args.graph)
        names = graph.relation_names
        num_features = graph.num_features
    else:
        detector = service.detector
        names = getattr(detector, "_relation_names", None)
        num_features = getattr(detector, "_num_features", None)
        if not names or not num_features:
            raise ServiceError(
                "checkpoint records no relation schema; pass --graph with "
                "the initial snapshot instead")

    skip = 0
    if args.wal_dir:
        wal = WriteAheadLog(args.wal_dir)
        monitor = StreamMonitor.recover(
            service, wal, relation_names=names, num_features=num_features,
            window=args.window, stride=args.stride, top_k=args.top,
            psi_threshold=args.psi_threshold, jump_sigma=args.jump_sigma,
            snapshot_every=args.snapshot_every)
        if monitor.recovered:
            # The recovered state already holds this many of the log's
            # events (scored windows + the restored pending buffer) —
            # resume the replay right after them.
            skip = monitor.events_consumed + monitor.buffered
            if args.output == "text":
                print(f"recovered from {args.wal_dir}: "
                      f"{monitor.windows_scored} windows, "
                      f"{monitor.events_consumed} events consumed, "
                      f"{monitor.buffered} buffered; skipping the first "
                      f"{skip} event(s) of {args.events}")
        elif graph is not None and monitor.builder.num_nodes == 0:
            # Fresh WAL: seed from the base graph like the non-WAL path.
            monitor = StreamMonitor(
                service, IncrementalGraphBuilder.from_graph(graph), wal=wal,
                window=args.window, stride=args.stride, top_k=args.top,
                psi_threshold=args.psi_threshold, jump_sigma=args.jump_sigma,
                snapshot_every=args.snapshot_every)
    else:
        if graph is not None:
            builder = IncrementalGraphBuilder.from_graph(graph)
        else:
            builder = IncrementalGraphBuilder(relation_names=names,
                                              num_features=num_features)
        monitor = StreamMonitor(
            service, builder, window=args.window, stride=args.stride,
            top_k=args.top, psi_threshold=args.psi_threshold,
            jump_sigma=args.jump_sigma)

    def emit_report(report) -> None:
        if args.output == "json":
            print(json.dumps(report.to_dict(), default=float))
        else:
            print(report.render())

    try:
        events = read_events(args.events)
        if skip:
            events = itertools.islice(events, skip, None)
        for report in monitor.run(events):
            emit_report(report)
        tail = monitor.flush()
        if tail is not None:
            emit_report(tail)
        if monitor.wal is not None:
            monitor.checkpoint()
            monitor.wal.close()
        if args.output == "text":
            print(f"stream done: {monitor.events_consumed} events in "
                  f"{monitor.windows_scored} windows, "
                  f"{monitor.alerts_raised} alert(s); "
                  f"cache {service.stats.hits} hit(s) / "
                  f"{service.stats.misses} miss(es)")
    except BrokenPipeError:
        # streaming output piped into head/jq that exited early — not an
        # error; detach stdout so interpreter shutdown stays quiet
        import os
        os.dup2(os.open(os.devnull, os.O_WRONLY), sys.stdout.fileno())
    return 0


def _run_serve(args) -> int:
    from .serve import DetectorService, ModelRegistry
    from .server import Gateway, make_server

    if not args.model and not (args.registry and args.activate):
        raise ValueError(
            "serve needs --model PATH, or --registry DIR with "
            "--activate NAME")

    registry = ModelRegistry(args.registry) if args.registry else None
    active = None
    if args.model:
        # _resolve_dtype already applied the checkpoint's (or --dtype)
        # precision before anything was built.
        service = DetectorService(args.model, cache_size=args.cache_size,
                                  match_dtype=False)
    else:
        service = registry.service(args.activate,
                                   cache_size=args.cache_size,
                                   match_dtype=args.dtype is None)
        active = args.activate

    base_graph = None
    if args.graph:
        base_graph, _labels = load_multiplex(args.graph)

    gateway = Gateway(service, registry=registry, active_model=active,
                      base_graph=base_graph, workers=args.workers,
                      max_queue=args.max_queue, linger_ms=args.linger_ms,
                      max_batch=args.max_batch, window=args.window,
                      stride=args.stride, slo_window=args.slo_window,
                      slo_p99_seconds=args.slo_p99_seconds,
                      slo_error_ratio=args.slo_error_ratio,
                      slo_sustain=args.slo_sustain,
                      sample_interval=args.sample_interval,
                      wal_dir=args.wal_dir,
                      snapshot_every=args.snapshot_every,
                      exec_tier=args.exec_tier,
                      worker_procs=args.worker_procs)
    if args.exec_tier == "process" and gateway.exec_tier != "process":
        print(f"process tier unavailable, serving on threads: "
              f"{gateway.pool_fallback_reason}", flush=True)
    server = make_server(gateway, host=args.host, port=args.port,
                         verbose=args.verbose)
    # The resolved port line is machine-readable on purpose: --port 0
    # callers (CI smoke, scripts) parse it to find the ephemeral port.
    tier = (f" ({gateway.exec_tier} tier, "
            f"{gateway.pool.size} procs)" if gateway.pool is not None
            else "")
    print(f"serving {type(service.detector).__name__} "
          f"on {server.url}{tier}", flush=True)
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        print("shutting down")
    finally:
        report = server.close()
        batcher = report.get("batcher", {})
        pool = report.get("pool", {})
        if batcher.get("leaked_workers") or pool.get("workers_killed") \
                or pool.get("leaked_segments"):
            print(f"dirty shutdown: {report}", file=sys.stderr, flush=True)
    return 0


def _run_experiment(args) -> int:
    module = _EXPERIMENTS[args.name]
    profile = _PROFILES[args.profile]
    rows = module.run(profile)
    print(module.render(rows))
    return 0


def _run_trace(args) -> int:
    from .obs import render_trace_tree
    from .server import ServerClient, ServerClientError

    client = ServerClient(host=args.host, port=args.port)
    try:
        payload = client.traces(
            last=args.last if args.trace_id is None else None,
            trace_id=args.trace_id)
    except ServerClientError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    except OSError as exc:
        print(f"error: cannot reach {args.host}:{args.port}: {exc}",
              file=sys.stderr)
        return 1
    finally:
        client.close()
    if args.output == "json":
        print(json.dumps(payload, default=float))
        return 0
    traces = payload.get("traces", [])
    if not traces:
        print("no traces recorded yet (trace a request first, e.g. "
              "POST /v1/score)")
        return 0
    print("\n\n".join(render_trace_tree(trace) for trace in traces))
    return 0


def _bench_suite_paths(suites, benchmarks_dir: str) -> list:
    """Resolve suite names/paths into pytest targets."""
    import pathlib

    base = pathlib.Path(benchmarks_dir)
    if not suites:
        if not base.is_dir():
            raise FileNotFoundError(
                f"benchmarks directory {benchmarks_dir!r} not found")
        return [str(base)]
    paths = []
    for suite in suites:
        candidate = pathlib.Path(suite)
        if candidate.exists():
            paths.append(str(candidate))
            continue
        stem = suite[:-3] if suite.endswith(".py") else suite
        if not stem.startswith("test_"):
            stem = f"test_{stem}"
        resolved = base / f"{stem}.py"
        if not resolved.exists():
            raise FileNotFoundError(
                f"no such suite: {suite!r} (looked for {resolved})")
        paths.append(str(resolved))
    return paths


def _load_ledger_set(path: str) -> dict:
    """``{suite: Ledger}`` from a ledger .json file or a directory."""
    import pathlib

    from .obs.bench import Ledger, load_ledgers

    target = pathlib.Path(path)
    if target.is_file():
        ledger = Ledger.load(target)
        return {ledger.suite: ledger}
    if target.is_dir():
        ledgers = load_ledgers(target)
        if not ledgers:
            raise FileNotFoundError(
                f"no ledger .json files in directory {path!r}")
        return ledgers
    raise FileNotFoundError(f"no such ledger file or directory: {path!r}")


def _run_bench(args) -> int:
    import pathlib
    import subprocess

    from .obs.bench import (DEFAULT_MAD_K, DEFAULT_THRESHOLD, diff_ledgers,
                            load_ledgers, render_diff, render_report)

    if args.bench_command == "run":
        paths = _bench_suite_paths(args.suites, args.benchmarks_dir)
        ledger_dir = args.ledger_dir or str(
            pathlib.Path(args.benchmarks_dir) / "output" / "ledger")
        env = dict(os.environ)
        env["REPRO_LEDGER_DIR"] = ledger_dir
        src = pathlib.Path(__file__).resolve().parent.parent
        env["PYTHONPATH"] = os.pathsep.join(
            [str(src)] + ([env["PYTHONPATH"]] if env.get("PYTHONPATH")
                          else []))
        command = [sys.executable, "-m", "pytest", "-q", *paths]
        print(f"running: {' '.join(command)}  "
              f"[REPRO_LEDGER_DIR={ledger_dir}]", flush=True)
        code = subprocess.call(command, env=env)
        if code == 0:
            print(f"ledgers written to {ledger_dir}")
        return code

    if args.bench_command == "report":
        ledgers = load_ledgers(args.ledger_dir)
        if args.suites:
            missing = [s for s in args.suites if s not in ledgers]
            if missing:
                print(f"error: no ledger for suite(s): "
                      f"{', '.join(missing)} in {args.ledger_dir!r}",
                      file=sys.stderr)
                return 1
            ledgers = {name: ledgers[name] for name in args.suites}
        if not ledgers:
            print(f"error: no ledgers found in {args.ledger_dir!r} "
                  f"(run 'repro bench run' first)", file=sys.stderr)
            return 1
        print(render_report(list(ledgers.values())), end="")
        return 0

    # ---- diff ----
    base = _load_ledger_set(args.base)
    new = _load_ledger_set(args.new)
    if args.suite is not None:
        base = {k: v for k, v in base.items() if k == args.suite}
        new = {k: v for k, v in new.items() if k == args.suite}
        if not base and not new:
            print(f"error: suite {args.suite!r} in neither ledger set",
                  file=sys.stderr)
            return 1
    threshold = DEFAULT_THRESHOLD if args.threshold is None \
        else args.threshold
    mad_k = DEFAULT_MAD_K if args.mad_k is None else args.mad_k
    regressions = 0
    for suite in sorted(set(base) & set(new)):
        diff = diff_ledgers(base[suite], new[suite],
                            threshold=threshold, mad_k=mad_k)
        print(render_diff(diff), end="")
        regressions += len(diff.regressions)
    for suite in sorted(set(new) - set(base)):
        print(f"suite {suite}: added (no baseline ledger)")
    for suite in sorted(set(base) - set(new)):
        print(f"suite {suite}: removed (present only in baseline)")
    if regressions:
        print(f"FAIL: {regressions} regression(s) detected")
        return 1
    print("ok: no regressions")
    return 0


def _resolve_dtype(args) -> None:
    """Apply --dtype; serving commands inherit the checkpoint's precision.

    Scoring a float32 checkpoint against a float64-coerced graph would
    silently miss the stored-scores fast path (the graph fingerprint
    hashes the attribute dtype), so when --dtype is not given and a
    --model is, the checkpoint header's recorded dtype wins.
    """
    dtype = getattr(args, "dtype", None)
    if dtype is None and getattr(args, "model", None):
        from .serve import CheckpointError
        from .serve.checkpoint import read_header

        try:
            dtype = read_header(args.model).get("dtype")
        except CheckpointError:
            dtype = None  # the command itself will report the bad model
    if dtype:
        from .autograd import set_default_dtype

        set_default_dtype(dtype)


def _dispatch_command(args) -> int:
    if args.command == "detect":
        return _run_detect(args)
    if args.command == "save":
        return _run_save(args)
    if args.command in ("score", "serve-bench", "stream", "serve"):
        # Serving commands run against user-supplied artifacts; turn the
        # operational failure modes (bad checkpoint, wrong graph, bad
        # event log, bad node) into one-line errors instead of tracebacks.
        # Training commands keep full tracebacks — their failures are
        # bugs, not user input.
        from .serve import CheckpointError, ServiceError
        from .stream import WalCorruptionError

        try:
            if args.command == "score":
                return _run_score(args)
            if args.command == "stream":
                return _run_stream(args)
            if args.command == "serve":
                return _run_serve(args)
            return _run_serve_bench(args)
        except (CheckpointError, ServiceError, WalCorruptionError,
                FileNotFoundError, ValueError, IndexError, KeyError) as exc:
            # KeyError's str() wraps the message in quotes; everything
            # else (notably OSError subclasses) formats itself best.
            message = exc.args[0] if isinstance(exc, KeyError) and \
                exc.args else exc
            print(f"error: {message}", file=sys.stderr)
            return 1
    if args.command == "experiment":
        return _run_experiment(args)
    if args.command == "trace":
        return _run_trace(args)
    if args.command == "bench":
        try:
            return _run_bench(args)
        except (FileNotFoundError, ValueError) as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 1
    if args.command == "datasets":
        for name in available_datasets():
            print(name)
        return 0
    return 1  # pragma: no cover


#: commands whose runs REPRO_PROFILE=1 wraps in a trace + cost table
_PROFILED_COMMANDS = ("detect", "score", "experiment")


def main(argv=None) -> int:
    args = _build_parser().parse_args(argv)
    _resolve_dtype(args)
    profile = os.environ.get("REPRO_PROFILE", "").strip().lower() in (
        "1", "true", "yes", "on")
    if profile and args.command in _PROFILED_COMMANDS:
        from .obs import render_profile, start_trace

        with start_trace(f"cli.{args.command}") as trace:
            code = _dispatch_command(args)
        if trace is not None:
            # stderr on purpose: --output json on stdout stays parseable
            print(render_profile(trace), file=sys.stderr)
        return code
    return _dispatch_command(args)


if __name__ == "__main__":
    sys.exit(main())
