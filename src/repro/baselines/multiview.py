"""Multi-view (MV) family baselines: AnomMAN and DualGAD.

These are the only baselines that, like UMGAD, consume the multiplex
structure instead of the merged graph:

* **AnomMAN** (Chen et al., Inf. Sci.'23) — per-view GCN autoencoders whose
  reconstructions are fused with learned attention over views; score =
  attention-fused attribute + structure reconstruction error.
* **DualGAD** (Tang et al., Inf. Sci.'24) — dual-bootstrapped
  self-supervision: subgraph (masked) reconstruction plus cluster-guided
  contrastive learning; score blends the two signals.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from ..autograd import no_grad, ops
from ..autograd.tensor import Tensor
from ..detection import BaseDetector
from ..graphs.masking import edge_mask
from ..graphs.multiplex import MultiplexGraph
from ..nn import Linear, Module, ModuleList, Parameter, init
from ..utils.rng import ensure_rng
from .common import (
    GCNStack,
    MLP,
    attribute_mse_loss,
    kmeans,
    merged_graph,
    minmax,
    sigmoid,
    structure_bce_loss,
    train_detector,
)
from ..core.scoring import structure_errors_sampled


class _AnomMANNet(Module):
    def __init__(self, in_dim: int, hidden: int, views: int, rng):
        super().__init__()
        self.encoders = ModuleList([GCNStack([in_dim, hidden], rng)
                                    for _ in range(views)])
        self.decoders = ModuleList([GCNStack([hidden, in_dim], rng)
                                    for _ in range(views)])
        self.attention = Parameter(init.normal((views,), rng, std=0.1),
                                   name="anomman.attention")


class AnomMAN(BaseDetector):
    """Detect anomalies on multi-view attributed networks."""

    def __init__(self, hidden_dim: int = 32, epochs: int = 40, lr: float = 5e-3,
                 alpha: float = 0.6, seed=0):
        self.hidden_dim = hidden_dim
        self.epochs = epochs
        self.lr = lr
        self.alpha = alpha
        self.seed = seed
        self._scores: Optional[np.ndarray] = None

    def fit(self, graph: MultiplexGraph) -> "AnomMAN":
        rng = ensure_rng(self.seed)
        relations = [graph[name] for name in graph.relation_names]
        props = [rel.sym_propagator() for rel in relations]
        x = Tensor(graph.x)
        net = _AnomMANNet(graph.num_features, self.hidden_dim, len(relations), rng)

        def loss_fn():
            att = ops.softmax(net.attention, axis=-1)
            total = Tensor(0.0)
            fused_rec = None
            for v, (rel, prop) in enumerate(zip(relations, props)):
                z = net.encoders[v](x, prop)
                x_rec = net.decoders[v](z, prop)
                term = ops.mul(x_rec, ops.index(att, v))
                fused_rec = term if fused_rec is None else ops.add(fused_rec, term)
                total = ops.add(total, ops.mul(
                    structure_bce_loss(z, rel, rng),
                    ops.index(att, v)))
            attr = attribute_mse_loss(fused_rec, x)
            return ops.add(ops.mul(attr, self.alpha),
                           ops.mul(total, 1.0 - self.alpha))

        self.train_state = train_detector(net, loss_fn, self.epochs, self.lr)
        self.loss_history = self.train_state.loss_history

        att = np.exp(net.attention.data - net.attention.data.max())
        att /= att.sum()
        fused_rec = np.zeros_like(graph.x)
        struct_err = np.zeros(graph.num_nodes)
        with no_grad():
            for v, (rel, prop) in enumerate(zip(relations, props)):
                z = net.encoders[v](x, prop)
                fused_rec += att[v] * net.decoders[v](z, prop).data
                struct_err += att[v] * structure_errors_sampled(z.data, rel,
                                                                rng)
        attr_err = np.linalg.norm(fused_rec - graph.x, axis=1)
        self._scores = (self.alpha * minmax(attr_err)
                        + (1.0 - self.alpha) * minmax(struct_err))
        return self


class _DualGADNet(Module):
    def __init__(self, in_dim: int, hidden: int, views: int, rng):
        super().__init__()
        self.encoders = ModuleList([GCNStack([in_dim, hidden], rng)
                                    for _ in range(views)])
        self.decoder = MLP([hidden, in_dim], rng)
        self.cluster_proj = Linear(hidden, hidden, rng)


class DualGAD(BaseDetector):
    """Dual-bootstrapped self-supervised GAD (subgraph reconstruction +
    cluster-guided contrast).

    Generative branch: per-view encoders reconstruct attributes after random
    edge masking. Contrastive branch: k-means clusters on the averaged
    embedding act as pseudo-labels; nodes are pulled toward their cluster
    centroid and pushed from a random other centroid. The anomaly score
    combines reconstruction error with distance-to-own-centroid (cluster
    inconsistency).
    """

    def __init__(self, hidden_dim: int = 32, epochs: int = 40, lr: float = 5e-3,
                 clusters: int = 8, mask_ratio: float = 0.2,
                 balance: float = 0.5, seed=0):
        self.hidden_dim = hidden_dim
        self.epochs = epochs
        self.lr = lr
        self.clusters = clusters
        self.mask_ratio = mask_ratio
        self.balance = balance
        self.seed = seed
        self._scores: Optional[np.ndarray] = None

    def fit(self, graph: MultiplexGraph) -> "DualGAD":
        rng = ensure_rng(self.seed)
        relations = [graph[name] for name in graph.relation_names]
        x = Tensor(graph.x)
        net = _DualGADNet(graph.num_features, self.hidden_dim, len(relations), rng)

        def embed(masked: bool):
            zs = None
            for v, rel in enumerate(relations):
                rel_graph = (edge_mask(rel, self.mask_ratio, rng).remaining
                             if masked else rel)
                z = net.encoders[v](x, rel_graph.sym_propagator())
                zs = z if zs is None else ops.add(zs, z)
            return ops.div(zs, float(len(relations)))

        # Bootstrap clusters from raw propagated features.
        boot = np.mean([rel.sym_propagator() @ graph.x for rel in relations], axis=0)
        assign, _ = kmeans(boot, self.clusters, rng)

        def loss_fn():
            z = embed(masked=True)
            recon = attribute_mse_loss(net.decoder(z), x)
            # Cluster-guided contrast.
            proj = ops.row_normalize(net.cluster_proj(z))
            centroids = []
            for c in range(self.clusters):
                members = np.flatnonzero(assign == c)
                if members.size == 0:
                    members = np.arange(graph.num_nodes)
                centroids.append(ops.mean(ops.gather_rows(proj, members), axis=0))
            cent = ops.row_normalize(ops.stack(centroids, axis=0))
            own = ops.gather_rows(cent, assign)
            other = ops.gather_rows(cent, (assign + 1 + rng.integers(
                0, max(self.clusters - 1, 1), size=assign.size)) % self.clusters)
            pos = ops.sum(ops.mul(proj, own), axis=-1)
            neg = ops.sum(ops.mul(proj, other), axis=-1)
            margin = ops.mean(ops.relu(ops.add(ops.sub(neg, pos), 0.5)))
            return ops.add(ops.mul(recon, self.balance),
                           ops.mul(margin, 1.0 - self.balance))

        self.train_state = train_detector(net, loss_fn, self.epochs, self.lr)
        self.loss_history = self.train_state.loss_history

        z = embed(masked=False)
        recon_err = np.linalg.norm(net.decoder(z).data - graph.x, axis=1)
        proj = ops.row_normalize(net.cluster_proj(z)).data
        centroids = np.stack([
            proj[assign == c].mean(axis=0) if np.any(assign == c)
            else proj.mean(axis=0)
            for c in range(self.clusters)
        ])
        centroids /= np.linalg.norm(centroids, axis=1, keepdims=True) + 1e-12
        cluster_dist = 1.0 - (proj * centroids[assign]).sum(axis=1)
        self._scores = (self.balance * minmax(recon_err)
                        + (1.0 - self.balance) * minmax(cluster_dist))
        return self
