"""Message-passing-improved (MPI) baselines: ComGA, RAND, TAM.

Each method modifies *how* messages propagate rather than what is
reconstructed:

* **ComGA** (Luo et al., WSDM'22) injects community structure into the
  GNN: community memberships (spectral) gate the propagation, and a GCN
  autoencoder reconstructs attributes + structure.
* **RAND** (Bei et al., ICDM'23) reinforces the neighborhood: per-edge
  reliability weights are updated from agreement between a node and its
  neighbors (a bandit-style update standing in for the RL policy), and
  messages are amplified along reliable edges.
* **TAM** (Qiao & Pang, NeurIPS'24) maximises local affinity on a
  *truncated* graph: edges with the lowest attribute affinity are
  iteratively removed, and the anomaly score is the negative local affinity
  after truncation.
"""

from __future__ import annotations

from typing import Optional

import numpy as np
import scipy.sparse as sp

from ..autograd import no_grad, ops
from ..autograd.tensor import Tensor
from ..detection import BaseDetector
from ..graphs.graph import RelationGraph
from ..graphs.multiplex import MultiplexGraph
from ..nn import Module
from ..utils.rng import ensure_rng
from .common import (
    GCNStack,
    attribute_mse_loss,
    cosine_rows,
    merged_graph,
    minmax,
    neighbor_mean,
    reconstruction_scores,
    spectral_embedding,
    structure_bce_loss,
    train_detector,
)


class _ComGANet(Module):
    def __init__(self, in_dim: int, hidden: int, rng):
        super().__init__()
        self.encoder = GCNStack([in_dim, hidden], rng)
        self.attr_decoder = GCNStack([hidden, in_dim], rng)


class ComGA(BaseDetector):
    """Community-aware attributed graph anomaly detection (simplified).

    Community memberships from a spectral embedding are concatenated onto
    the node attributes (standing in for the tailored community-GCN), and a
    GCN autoencoder reconstructs both attributes and structure; the score is
    the usual weighted reconstruction error.
    """

    def __init__(self, hidden_dim: int = 32, communities: int = 8,
                 epochs: int = 40, lr: float = 5e-3, alpha: float = 0.6, seed=0):
        self.hidden_dim = hidden_dim
        self.communities = communities
        self.epochs = epochs
        self.lr = lr
        self.alpha = alpha
        self.seed = seed
        self._scores: Optional[np.ndarray] = None

    def fit(self, graph: MultiplexGraph) -> "ComGA":
        rng = ensure_rng(self.seed)
        merged = merged_graph(graph)
        comm = spectral_embedding(merged, min(self.communities, 8), rng)
        features = np.concatenate([graph.x, comm], axis=1)
        x = Tensor(features)
        prop = merged.sym_propagator()
        net = _ComGANet(features.shape[1], self.hidden_dim, rng)

        def loss_fn():
            z = net.encoder(x, prop)
            x_rec = net.attr_decoder(z, prop)
            return ops.add(
                ops.mul(attribute_mse_loss(x_rec, x), self.alpha),
                ops.mul(structure_bce_loss(z, merged, rng), 1.0 - self.alpha))

        self.train_state = train_detector(net, loss_fn, self.epochs, self.lr)
        self.loss_history = self.train_state.loss_history
        with no_grad():
            z = net.encoder(x, prop).data
            x_rec = net.attr_decoder(net.encoder(x, prop), prop).data
        self._scores = reconstruction_scores(x_rec, features, z, merged, rng,
                                             alpha=self.alpha)
        return self


class RAND(BaseDetector):
    """Reinforced neighborhood selection (simplified bandit form).

    Edge reliability starts uniform and is updated multiplicatively from the
    cosine agreement between endpoints' current representations; messages
    are aggregated with reliability weights. The anomaly score is the
    disagreement between a node's own attributes and its reliable-neighbor
    aggregate.
    """

    def __init__(self, rounds: int = 4, learning_rate: float = 0.5, seed=0):
        self.rounds = int(rounds)
        self.learning_rate = float(learning_rate)
        self.seed = seed
        self._scores: Optional[np.ndarray] = None

    def fit(self, graph: MultiplexGraph) -> "RAND":
        merged = merged_graph(graph)
        x = graph.x
        n = merged.num_nodes
        src, dst = merged.directed_pairs()
        if src.size == 0:
            self._scores = np.zeros(n)
            return self

        reliability = np.ones(src.size)
        h = x.copy()
        for _ in range(self.rounds):
            # Agreement of each directed edge under current representations.
            agree = cosine_rows(h[src], h[dst])
            reliability *= np.exp(self.learning_rate * (agree - agree.mean()))
            # Normalise per destination and aggregate.
            denom = np.zeros(n)
            np.add.at(denom, dst, reliability)
            weights = reliability / np.maximum(denom[dst], 1e-12)
            agg = np.zeros_like(h)
            np.add.at(agg, dst, weights[:, None] * h[src])
            h = 0.5 * x + 0.5 * agg

        final_agg = np.zeros_like(h)
        denom = np.zeros(n)
        np.add.at(denom, dst, reliability)
        weights = reliability / np.maximum(denom[dst], 1e-12)
        np.add.at(final_agg, dst, weights[:, None] * x[src])
        disagreement = 1.0 - cosine_rows(x, final_agg)
        isolated = denom == 0
        disagreement[isolated] = np.median(disagreement[~isolated]) if (~isolated).any() else 0.0
        self._scores = minmax(disagreement)
        return self


class TAM(BaseDetector):
    """Truncated affinity maximisation (one-class homophily modelling).

    Iteratively removes the ``truncation_ratio`` least-affine edges (the
    likely anomaly–normal connections), then scores each node by its
    *negative* mean neighbor affinity on the truncated graph — anomalous
    nodes retain low affinity, normal nodes sit in affine neighborhoods.
    """

    def __init__(self, truncation_rounds: int = 3, truncation_ratio: float = 0.1,
                 seed=0):
        self.truncation_rounds = int(truncation_rounds)
        self.truncation_ratio = float(truncation_ratio)
        self.seed = seed
        self._scores: Optional[np.ndarray] = None

    def fit(self, graph: MultiplexGraph) -> "TAM":
        merged = merged_graph(graph)
        x = graph.x / (np.linalg.norm(graph.x, axis=1, keepdims=True) + 1e-12)
        current: RelationGraph = merged
        for _ in range(self.truncation_rounds):
            if current.num_edges == 0:
                break
            affinity = (x[current.edges[:, 0]] * x[current.edges[:, 1]]).sum(axis=1)
            cut = max(1, int(self.truncation_ratio * current.num_edges))
            drop = np.argsort(affinity)[:cut]
            current = current.remove_edges(drop)

        n = merged.num_nodes
        score = np.zeros(n)
        deg = np.zeros(n)
        if current.num_edges:
            aff = (x[current.edges[:, 0]] * x[current.edges[:, 1]]).sum(axis=1)
            np.add.at(score, current.edges[:, 0], aff)
            np.add.at(score, current.edges[:, 1], aff)
            np.add.at(deg, current.edges[:, 0], 1.0)
            np.add.at(deg, current.edges[:, 1], 1.0)
        mean_affinity = np.divide(score, deg, out=np.zeros(n), where=deg > 0)
        # Nodes fully disconnected by truncation had only low-affinity edges:
        # maximal anomaly evidence.
        orphaned = (deg == 0) & (merged.degrees() > 0)
        mean_affinity[orphaned] = mean_affinity.min() if np.any(~orphaned) else -1.0
        self._scores = minmax(-mean_affinity)
        return self
