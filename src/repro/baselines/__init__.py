"""Baseline detectors: all 22 methods from the paper's comparison tables.

The registry maps the paper's method names to classes and records the
category used in Table II's row grouping. ``make_baseline`` builds a
detector with per-run seed/epoch overrides.
"""

from __future__ import annotations

from typing import Dict, List, Tuple, Type

from ..detection import BaseDetector
from .contrastive import (
    ANEMONE,
    ARISE,
    CoLA,
    GCCAD,
    GRADATE,
    PREM,
    SLGAD,
    SubCR,
    VGOD,
)
from .gae import ADAGAD, AdONE, AnomalyDAE, DOMINANT, GADAM, GADNR, GCNAE
from .mpi import RAND, TAM, ComGA
from .multiview import AnomMAN, DualGAD
from .traditional import Radar

#: paper-name -> (category, class)
BASELINE_REGISTRY: Dict[str, Tuple[str, Type[BaseDetector]]] = {
    "Radar": ("Trad.", Radar),
    "ComGA": ("MPI", ComGA),
    "RAND": ("MPI", RAND),
    "TAM": ("MPI", TAM),
    "CoLA": ("CL", CoLA),
    "ANEMONE": ("CL", ANEMONE),
    "Sub-CR": ("CL", SubCR),
    "ARISE": ("CL", ARISE),
    "SL-GAD": ("CL", SLGAD),
    "PREM": ("CL", PREM),
    "GCCAD": ("CL", GCCAD),
    "GRADATE": ("CL", GRADATE),
    "VGOD": ("CL", VGOD),
    "DOMINANT": ("GAE", DOMINANT),
    "GCNAE": ("GAE", GCNAE),
    "AnomalyDAE": ("GAE", AnomalyDAE),
    "AdONE": ("GAE", AdONE),
    "GAD-NR": ("GAE", GADNR),
    "ADA-GAD": ("GAE", ADAGAD),
    "GADAM": ("GAE", GADAM),
    "AnomMAN": ("MV", AnomMAN),
    "DualGAD": ("MV", DualGAD),
}

#: methods the paper reports as running without OOM on the large datasets
LARGE_SCALE_BASELINES: List[str] = [
    "ComGA", "RAND", "PREM", "GRADATE", "VGOD", "ADA-GAD", "GADAM", "DualGAD",
]


def available_baselines() -> List[str]:
    return list(BASELINE_REGISTRY.keys())


def baseline_category(name: str) -> str:
    return BASELINE_REGISTRY[name][0]


def make_baseline(name: str, seed=0, epochs: int = None) -> BaseDetector:
    """Instantiate a baseline by paper name with optional overrides."""
    if name not in BASELINE_REGISTRY:
        raise KeyError(
            f"unknown baseline {name!r}; available: {available_baselines()}"
        )
    _, cls = BASELINE_REGISTRY[name]
    kwargs = {"seed": seed}
    if epochs is not None and "epochs" in cls.__init__.__code__.co_varnames:
        kwargs["epochs"] = epochs
    return cls(**kwargs)


__all__ = [
    "ADAGAD", "ANEMONE", "ARISE", "AdONE", "AnomMAN", "AnomalyDAE",
    "BASELINE_REGISTRY", "CoLA", "ComGA", "DOMINANT", "DualGAD", "GADAM",
    "GADNR", "GCCAD", "GCNAE", "GRADATE", "LARGE_SCALE_BASELINES", "PREM",
    "RAND", "Radar", "SLGAD", "SubCR", "TAM", "VGOD",
    "available_baselines", "baseline_category", "make_baseline",
]
