"""Shared building blocks for the baseline detectors.

Every baseline re-implements the *core mechanism* of its paper on the shared
numpy substrate (see DESIGN.md §1 for the substitution argument). The pieces
that recur — GCN encoder stacks, generic training loops, reconstruction
scoring, neighbor aggregation, k-means, spectral embeddings — live here so
each baseline file reads as its mechanism only.
"""

from __future__ import annotations

from typing import Callable, List, Optional, Tuple

import numpy as np
import scipy.sparse as sp

from ..autograd import ops, spmm
from ..autograd.tensor import Tensor
from ..engine import BatchStrategy, GradClip, Trainer, TrainState
from ..graphs.graph import RelationGraph
from ..graphs.multiplex import MultiplexGraph
from ..nn import Adam, GCNConv, Linear, Module, ModuleList
from ..utils.rng import ensure_rng


# ---------------------------------------------------------------------------
# Graph helpers
# ---------------------------------------------------------------------------

def merged_graph(graph: MultiplexGraph) -> RelationGraph:
    """Flatten the multiplex graph (non-MV baselines operate on this)."""
    return graph.merged()


def neighbor_mean(x: np.ndarray, graph: RelationGraph) -> np.ndarray:
    """Row-normalised one-hop aggregation ``D^{-1} A X`` (no self loop)."""
    adj = graph.adjacency()
    deg = np.asarray(adj.sum(axis=1)).ravel()
    inv = np.divide(1.0, deg, out=np.zeros_like(deg), where=deg > 0)
    return sp.diags(inv) @ (adj @ x)


def cosine_rows(a: np.ndarray, b: np.ndarray, eps: float = 1e-12) -> np.ndarray:
    """Row-wise cosine similarity between two matrices."""
    num = (a * b).sum(axis=1)
    den = np.linalg.norm(a, axis=1) * np.linalg.norm(b, axis=1) + eps
    return num / den


def sigmoid(x: np.ndarray) -> np.ndarray:
    return 1.0 / (1.0 + np.exp(-np.clip(x, -60.0, 60.0)))


def minmax(values: np.ndarray) -> np.ndarray:
    """Min-max normalise to [0, 1] (constant → zeros)."""
    values = np.asarray(values, dtype=np.float64)
    lo, hi = values.min(), values.max()
    if hi - lo < 1e-12:
        return np.zeros_like(values)
    return (values - lo) / (hi - lo)


def zscore(values: np.ndarray) -> np.ndarray:
    values = np.asarray(values, dtype=np.float64)
    std = values.std()
    if std < 1e-12:
        return np.zeros_like(values)
    return (values - values.mean()) / std


# ---------------------------------------------------------------------------
# Model building blocks
# ---------------------------------------------------------------------------

class GCNStack(Module):
    """A stack of GCN layers with ReLU in between (no final nonlinearity)."""

    def __init__(self, dims: List[int], rng: np.random.Generator):
        super().__init__()
        self.layers = ModuleList([
            GCNConv(d_in, d_out, rng) for d_in, d_out in zip(dims[:-1], dims[1:])
        ])

    def forward(self, x: Tensor, propagator: sp.spmatrix) -> Tensor:
        h = x
        for i, layer in enumerate(self.layers):
            h = layer(h, propagator)
            if i + 1 < len(self.layers):
                h = ops.relu(h)
        return h


class MLP(Module):
    """Fully connected stack with ReLU in between."""

    def __init__(self, dims: List[int], rng: np.random.Generator):
        super().__init__()
        self.layers = ModuleList([
            Linear(d_in, d_out, rng) for d_in, d_out in zip(dims[:-1], dims[1:])
        ])

    def forward(self, x: Tensor) -> Tensor:
        h = x
        for i, layer in enumerate(self.layers):
            h = layer(h)
            if i + 1 < len(self.layers):
                h = ops.relu(h)
        return h


def train_detector(model: Module, loss_fn: Callable, epochs: int, lr: float,
                   grad_clip: float = 5.0, weight_decay: float = 0.0,
                   callbacks=(), batch_strategy: Optional[BatchStrategy] = None,
                   graph: Optional[MultiplexGraph] = None,
                   timer=None) -> TrainState:
    """Train a baseline on the shared engine; returns full telemetry.

    ``loss_fn`` may be the historical zero-arg closure (full-batch) or take
    a :class:`~repro.engine.GraphBatch` when ``batch_strategy`` samples
    subgraphs (``graph`` is required then).
    """
    optimizer = Adam(model.parameters(), lr=lr, weight_decay=weight_decay)
    cbs = ([GradClip(grad_clip)] if grad_clip else []) + list(callbacks)
    trainer = Trainer(model, optimizer, batch_strategy=batch_strategy,
                      callbacks=cbs, timer=timer)
    return trainer.fit(graph, loss_fn, epochs)


def train_model(model: Module, loss_fn: Callable[[], Tensor], epochs: int,
                lr: float, grad_clip: float = 5.0,
                weight_decay: float = 0.0, **engine_kwargs) -> List[float]:
    """Generic training loop used by every learned baseline.

    Thin wrapper over :func:`train_detector` (the shared
    :class:`repro.engine.Trainer`) that returns just the loss history, which
    is what the historical call sites consumed.
    """
    return train_detector(model, loss_fn, epochs, lr, grad_clip=grad_clip,
                          weight_decay=weight_decay,
                          **engine_kwargs).loss_history


# ---------------------------------------------------------------------------
# Reconstruction losses / scores (shared by the GAE family)
# ---------------------------------------------------------------------------

def structure_bce_loss(z: Tensor, graph: RelationGraph, rng: np.random.Generator,
                       num_samples: int = 2048) -> Tensor:
    """Sampled BCE on ``σ(z_i · z_j)`` for edges vs random non-edges."""
    n = graph.num_nodes
    m = min(num_samples, max(graph.num_edges, 1))
    if graph.num_edges:
        idx = rng.integers(0, graph.num_edges, size=m)
        pos = graph.edges[idx]
    else:
        pos = np.empty((0, 2), dtype=np.int64)
    neg = rng.integers(0, n, size=(m, 2))

    zn = ops.row_normalize(z)
    pos_logit = ops.sum(ops.mul(ops.gather_rows(zn, pos[:, 0]),
                                ops.gather_rows(zn, pos[:, 1])), axis=-1)
    neg_logit = ops.sum(ops.mul(ops.gather_rows(zn, neg[:, 0]),
                                ops.gather_rows(zn, neg[:, 1])), axis=-1)
    eps = 1e-9
    pos_term = ops.neg(ops.mean(ops.log(ops.sigmoid(ops.mul(pos_logit, 5.0)), eps=eps)))
    neg_term = ops.neg(ops.mean(ops.log(
        ops.sub(1.0 + eps, ops.sigmoid(ops.mul(neg_logit, 5.0))), eps=eps)))
    return ops.add(pos_term, neg_term)


def attribute_mse_loss(reconstructed: Tensor, original: Tensor) -> Tensor:
    diff = ops.sub(reconstructed, original)
    return ops.mean(ops.mul(diff, diff))


def reconstruction_scores(x_rec: np.ndarray, x: np.ndarray,
                          z: np.ndarray, graph: RelationGraph,
                          rng: np.random.Generator, alpha: float = 0.5,
                          negatives_per_node: int = 20) -> np.ndarray:
    """DOMINANT-style score: ``α·attr_error + (1-α)·structure_error``.

    Structure error is the sampled neighbor/non-edge row error (same
    estimator the UMGAD scorer uses in sampled mode).
    """
    from ..core.scoring import structure_errors_sampled

    attr_err = np.linalg.norm(x_rec - x, axis=1)
    struct_err = structure_errors_sampled(z, graph, rng,
                                          negatives_per_node=negatives_per_node)
    return alpha * minmax(attr_err) + (1.0 - alpha) * minmax(struct_err)


# ---------------------------------------------------------------------------
# Classic algorithms used by several baselines
# ---------------------------------------------------------------------------

def kmeans(x: np.ndarray, k: int, rng: np.random.Generator,
           iters: int = 30) -> Tuple[np.ndarray, np.ndarray]:
    """Plain Lloyd's k-means; returns (assignments, centroids)."""
    n = x.shape[0]
    k = min(k, n)
    centroids = x[rng.choice(n, size=k, replace=False)].copy()
    assign = np.zeros(n, dtype=np.int64)
    for _ in range(iters):
        dists = ((x[:, None, :] - centroids[None, :, :]) ** 2).sum(axis=2)
        new_assign = dists.argmin(axis=1)
        if np.array_equal(new_assign, assign):
            break
        assign = new_assign
        for c in range(k):
            members = x[assign == c]
            if len(members):
                centroids[c] = members.mean(axis=0)
    return assign, centroids


def spectral_embedding(graph: RelationGraph, dim: int,
                       rng: np.random.Generator) -> np.ndarray:
    """Leading eigenvectors of the normalised adjacency (community signal)."""
    prop = graph.sym_propagator()
    dim = min(dim, graph.num_nodes - 2)
    try:
        vals, vecs = sp.linalg.eigsh(prop, k=dim, which="LA",
                                     v0=rng.random(graph.num_nodes))
        return np.asarray(vecs)
    except Exception:
        # Fallback for tiny/degenerate graphs: random projection of adjacency.
        proj = rng.normal(size=(graph.num_nodes, dim))
        return graph.adjacency() @ proj


def rwr_readout(x: np.ndarray, graph: RelationGraph, nodes: np.ndarray) -> np.ndarray:
    """Mean-pooled features of a sampled subgraph (contrastive readouts)."""
    if nodes.size == 0:
        return np.zeros(x.shape[1])
    return x[nodes].mean(axis=0)
