"""Contrastive-learning (CL) family baselines.

Nine methods re-implemented around their core contrast mechanism:

* **CoLA** — node vs local-subgraph readout discrimination.
* **ANEMONE** — multi-scale: patch-level (ego) + context-level contrast.
* **Sub-CR** — multi-view (local + diffusion) contrast + attribute
  reconstruction.
* **ARISE** — substructure awareness: dense-substructure (triangle) signal
  + node-subgraph contrast.
* **SL-GAD** — generative attribute regression + contrastive views.
* **PREM** — preprocessed ego-neighbor matching (message-passing-free).
* **GCCAD** — contrast clean vs corrupted graphs against a global context.
* **GRADATE** — multi-view multi-scale contrast with an edge-modified view.
* **VGOD** — variance-based neighbor-distribution outlierness + attribute
  reconstruction.

Shared simplification (documented in DESIGN.md): local-subgraph readouts
are computed as propagated-feature neighborhoods (``P^t X`` with the
row-normalised propagator) rather than per-node RWR loops — the same local
context signal, fully vectorised. Negative readouts are other nodes'
readouts, as in the original samplers.
"""

from __future__ import annotations

from typing import Optional

import numpy as np
import scipy.sparse as sp

from ..autograd import no_grad, ops, spmm
from ..autograd.tensor import Tensor
from ..detection import BaseDetector
from ..graphs.graph import RelationGraph
from ..graphs.multiplex import MultiplexGraph
from ..nn import Linear, Module, Parameter, init
from ..utils.rng import ensure_rng
from .common import (
    GCNStack,
    MLP,
    attribute_mse_loss,
    cosine_rows,
    merged_graph,
    minmax,
    neighbor_mean,
    sigmoid,
    train_detector,
)


def _row_propagator(graph: RelationGraph) -> sp.csr_matrix:
    """Row-normalised adjacency without self loops (pure neighborhood)."""
    adj = graph.adjacency()
    deg = np.asarray(adj.sum(axis=1)).ravel()
    inv = np.divide(1.0, deg, out=np.zeros_like(deg), where=deg > 0)
    return (sp.diags(inv) @ adj).tocsr()


def _derangement(n: int, rng: np.random.Generator) -> np.ndarray:
    perm = rng.permutation(n)
    shift = perm[(np.arange(n) + 1) % n]
    clash = shift == np.arange(n)
    if np.any(clash):
        shift[clash] = (shift[clash] + 1) % n
    return shift


class _Bilinear(Module):
    """Bilinear discriminator ``σ(h_i W r_i)`` used by the CoLA family."""

    def __init__(self, dim: int, rng):
        super().__init__()
        self.weight = Parameter(init.xavier_uniform((dim, dim), rng),
                                name="disc.weight")

    def forward(self, h: Tensor, readout: Tensor) -> Tensor:
        return ops.sum(ops.mul(ops.matmul(h, self.weight), readout), axis=-1)


def _bce_pair(pos_logit: Tensor, neg_logit: Tensor) -> Tensor:
    eps = 1e-9
    pos = ops.neg(ops.mean(ops.log(ops.sigmoid(pos_logit), eps=eps)))
    neg = ops.neg(ops.mean(ops.log(ops.sub(1.0 + eps, ops.sigmoid(neg_logit)),
                                   eps=eps)))
    return ops.add(pos, neg)


class _ColaNet(Module):
    def __init__(self, in_dim: int, hidden: int, rng):
        super().__init__()
        self.encoder = GCNStack([in_dim, hidden], rng)
        self.readout_proj = Linear(in_dim, hidden, rng)
        self.disc = _Bilinear(hidden, rng)


class CoLA(BaseDetector):
    """Contrastive self-supervised anomaly detection (node vs subgraph)."""

    def __init__(self, hidden_dim: int = 32, epochs: int = 40, lr: float = 5e-3,
                 hops: int = 2, eval_rounds: int = 4, seed=0):
        self.hidden_dim = hidden_dim
        self.epochs = epochs
        self.lr = lr
        self.hops = hops
        self.eval_rounds = eval_rounds
        self.seed = seed
        self._scores: Optional[np.ndarray] = None

    def fit(self, graph: MultiplexGraph) -> "CoLA":
        rng = ensure_rng(self.seed)
        merged = merged_graph(graph)
        prop = merged.sym_propagator()
        row_prop = _row_propagator(merged)

        # Local-subgraph readout: t-hop propagated raw features.
        readout_np = graph.x
        for _ in range(self.hops):
            readout_np = row_prop @ readout_np
        x = Tensor(graph.x)
        readout_raw = Tensor(readout_np)
        net = _ColaNet(graph.num_features, self.hidden_dim, rng)

        def loss_fn():
            h = ops.row_normalize(net.encoder(x, prop))
            r = ops.row_normalize(net.readout_proj(readout_raw))
            shift = _derangement(merged.num_nodes, rng)
            pos = net.disc(h, r)
            neg = net.disc(h, ops.gather_rows(r, shift))
            return _bce_pair(pos, neg)

        self.train_state = train_detector(net, loss_fn, self.epochs, self.lr)
        self.loss_history = self.train_state.loss_history

        with no_grad():
            h = ops.row_normalize(net.encoder(x, prop))
            r = ops.row_normalize(net.readout_proj(readout_raw))
            pos = sigmoid(net.disc(h, r).data)
            neg_total = np.zeros_like(pos)
            for _ in range(self.eval_rounds):
                shift = _derangement(merged.num_nodes, rng)
                neg_total += sigmoid(
                    net.disc(h, ops.gather_rows(r, shift)).data)
        self._scores = minmax(neg_total / self.eval_rounds - pos)
        return self


class _AnemoneNet(Module):
    def __init__(self, in_dim: int, hidden: int, rng):
        super().__init__()
        self.encoder = GCNStack([in_dim, hidden], rng)
        self.patch_proj = Linear(in_dim, hidden, rng)
        self.context_proj = Linear(in_dim, hidden, rng)
        self.patch_disc = _Bilinear(hidden, rng)
        self.context_disc = _Bilinear(hidden, rng)


class ANEMONE(BaseDetector):
    """Multi-scale contrastive GAD: patch (1-hop) + context (multi-hop)."""

    def __init__(self, hidden_dim: int = 32, epochs: int = 40, lr: float = 5e-3,
                 gamma: float = 0.5, seed=0):
        self.hidden_dim = hidden_dim
        self.epochs = epochs
        self.lr = lr
        self.gamma = gamma
        self.seed = seed
        self._scores: Optional[np.ndarray] = None

    def fit(self, graph: MultiplexGraph) -> "ANEMONE":
        rng = ensure_rng(self.seed)
        merged = merged_graph(graph)
        prop = merged.sym_propagator()
        row_prop = _row_propagator(merged)

        patch_np = row_prop @ graph.x                       # 1-hop ego
        context_np = row_prop @ (row_prop @ (row_prop @ graph.x))  # 3-hop
        x = Tensor(graph.x)
        patch_raw, context_raw = Tensor(patch_np), Tensor(context_np)
        net = _AnemoneNet(graph.num_features, self.hidden_dim, rng)

        def loss_fn():
            h = ops.row_normalize(net.encoder(x, prop))
            p = ops.row_normalize(net.patch_proj(patch_raw))
            c = ops.row_normalize(net.context_proj(context_raw))
            shift = _derangement(merged.num_nodes, rng)
            patch_term = _bce_pair(net.patch_disc(h, p),
                                   net.patch_disc(h, ops.gather_rows(p, shift)))
            context_term = _bce_pair(net.context_disc(h, c),
                                     net.context_disc(h, ops.gather_rows(c, shift)))
            return ops.add(ops.mul(patch_term, self.gamma),
                           ops.mul(context_term, 1.0 - self.gamma))

        self.train_state = train_detector(net, loss_fn, self.epochs, self.lr)
        self.loss_history = self.train_state.loss_history

        h = ops.row_normalize(net.encoder(x, prop))
        p = ops.row_normalize(net.patch_proj(patch_raw))
        c = ops.row_normalize(net.context_proj(context_raw))
        shift = _derangement(merged.num_nodes, rng)
        patch_score = (sigmoid(net.patch_disc(h, ops.gather_rows(p, shift)).data)
                       - sigmoid(net.patch_disc(h, p).data))
        ctx_score = (sigmoid(net.context_disc(h, ops.gather_rows(c, shift)).data)
                     - sigmoid(net.context_disc(h, c).data))
        self._scores = minmax(self.gamma * patch_score
                              + (1.0 - self.gamma) * ctx_score)
        return self


class _SubCRNet(Module):
    def __init__(self, in_dim: int, hidden: int, rng):
        super().__init__()
        self.encoder = GCNStack([in_dim, hidden], rng)
        self.local_proj = Linear(in_dim, hidden, rng)
        self.global_proj = Linear(in_dim, hidden, rng)
        self.disc = _Bilinear(hidden, rng)
        self.attr_ae = MLP([in_dim, hidden, in_dim], rng)


class SubCR(BaseDetector):
    """Sub-CR: multi-view contrast (local + global diffusion) + attribute
    reconstruction."""

    def __init__(self, hidden_dim: int = 32, epochs: int = 40, lr: float = 5e-3,
                 balance: float = 0.5, seed=0):
        self.hidden_dim = hidden_dim
        self.epochs = epochs
        self.lr = lr
        self.balance = balance
        self.seed = seed
        self._scores: Optional[np.ndarray] = None

    def fit(self, graph: MultiplexGraph) -> "SubCR":
        rng = ensure_rng(self.seed)
        merged = merged_graph(graph)
        prop = merged.sym_propagator()
        row_prop = _row_propagator(merged)

        local_np = row_prop @ graph.x
        # Global view: truncated diffusion (sum of powers ≈ PPR).
        diff = graph.x.copy()
        acc = np.zeros_like(diff)
        coef = 1.0
        for _ in range(3):
            diff = row_prop @ diff
            coef *= 0.5
            acc += coef * diff
        x = Tensor(graph.x)
        local_raw, global_raw = Tensor(local_np), Tensor(acc)
        net = _SubCRNet(graph.num_features, self.hidden_dim, rng)

        def loss_fn():
            h = ops.row_normalize(net.encoder(x, prop))
            l = ops.row_normalize(net.local_proj(local_raw))
            g = ops.row_normalize(net.global_proj(global_raw))
            shift = _derangement(merged.num_nodes, rng)
            contrast = ops.add(
                _bce_pair(net.disc(h, l), net.disc(h, ops.gather_rows(l, shift))),
                _bce_pair(net.disc(h, g), net.disc(h, ops.gather_rows(g, shift))))
            recon = attribute_mse_loss(net.attr_ae(x), x)
            return ops.add(ops.mul(contrast, self.balance),
                           ops.mul(recon, 1.0 - self.balance))

        self.train_state = train_detector(net, loss_fn, self.epochs, self.lr)
        self.loss_history = self.train_state.loss_history

        h = ops.row_normalize(net.encoder(x, prop))
        l = ops.row_normalize(net.local_proj(local_raw))
        g = ops.row_normalize(net.global_proj(global_raw))
        contrast_score = (1.0 - sigmoid(net.disc(h, l).data)
                          + 1.0 - sigmoid(net.disc(h, g).data)) / 2.0
        recon_err = np.linalg.norm(net.attr_ae(x).data - graph.x, axis=1)
        self._scores = (self.balance * minmax(contrast_score)
                        + (1.0 - self.balance) * minmax(recon_err))
        return self


class ARISE(BaseDetector):
    """ARISE: substructure awareness via triangle density + contrast.

    Dense substructures (near-cliques) are the structural anomaly signal:
    per-node triangle participation normalised by degree, combined with a
    CoLA-style contrast score for attribute anomalies.
    """

    def __init__(self, hidden_dim: int = 32, epochs: int = 30, lr: float = 5e-3,
                 balance: float = 0.5, seed=0):
        self.hidden_dim = hidden_dim
        self.epochs = epochs
        self.lr = lr
        self.balance = balance
        self.seed = seed
        self._scores: Optional[np.ndarray] = None

    def fit(self, graph: MultiplexGraph) -> "ARISE":
        rng = ensure_rng(self.seed)
        merged = merged_graph(graph)

        # Substructure signal: triangles / possible wedges per node.
        adj = merged.adjacency()
        adj_sq = adj @ adj
        triangles = np.asarray(adj.multiply(adj_sq).sum(axis=1)).ravel() / 2.0
        deg = merged.degrees().astype(np.float64)
        wedges = np.maximum(deg * (deg - 1) / 2.0, 1.0)
        density = triangles / wedges
        # Relative density within the graph plus raw triangle mass: cliques
        # have both high closure and high absolute triangle counts.
        substructure = 0.5 * minmax(density) + 0.5 * minmax(np.log1p(triangles))

        cola = CoLA(hidden_dim=self.hidden_dim, epochs=self.epochs, lr=self.lr,
                    seed=self.seed)
        cola.fit(graph)
        contrast = cola.decision_scores()
        self.train_state = cola.train_state
        self.loss_history = list(cola.loss_history)

        self._scores = (self.balance * substructure
                        + (1.0 - self.balance) * minmax(contrast))
        return self


class _SLGADNet(Module):
    def __init__(self, in_dim: int, hidden: int, rng):
        super().__init__()
        self.encoder = GCNStack([in_dim, hidden], rng)
        self.regressor = Linear(hidden, in_dim, rng)  # generative head
        self.readout_proj = Linear(in_dim, hidden, rng)
        self.disc = _Bilinear(hidden, rng)


class SLGAD(BaseDetector):
    """SL-GAD: generative attribute regression + multi-view contrast."""

    def __init__(self, hidden_dim: int = 32, epochs: int = 40, lr: float = 5e-3,
                 balance: float = 0.6, seed=0):
        self.hidden_dim = hidden_dim
        self.epochs = epochs
        self.lr = lr
        self.balance = balance
        self.seed = seed
        self._scores: Optional[np.ndarray] = None

    def fit(self, graph: MultiplexGraph) -> "SLGAD":
        rng = ensure_rng(self.seed)
        merged = merged_graph(graph)
        prop = merged.sym_propagator()
        row_prop = _row_propagator(merged)
        # Generative target: predict own attributes from *neighbor-only*
        # context (masked self), per the generative attribute regression.
        context_np = row_prop @ graph.x
        x = Tensor(graph.x)
        context = Tensor(context_np)
        net = _SLGADNet(graph.num_features, self.hidden_dim, rng)

        def loss_fn():
            h = net.encoder(context, prop)
            x_pred = net.regressor(h)
            gen = attribute_mse_loss(x_pred, x)
            hn = ops.row_normalize(h)
            r = ops.row_normalize(net.readout_proj(context))
            shift = _derangement(merged.num_nodes, rng)
            con = _bce_pair(net.disc(hn, r), net.disc(hn, ops.gather_rows(r, shift)))
            return ops.add(ops.mul(gen, self.balance),
                           ops.mul(con, 1.0 - self.balance))

        self.train_state = train_detector(net, loss_fn, self.epochs, self.lr)
        self.loss_history = self.train_state.loss_history

        with no_grad():
            h = net.encoder(context, prop)
            gen_err = np.linalg.norm(net.regressor(h).data - graph.x, axis=1)
            hn = ops.row_normalize(h)
            r = ops.row_normalize(net.readout_proj(context))
            con_score = 1.0 - sigmoid(net.disc(hn, r).data)
        self._scores = (self.balance * minmax(gen_err)
                        + (1.0 - self.balance) * minmax(con_score))
        return self


class PREM(BaseDetector):
    """PREM: preprocessing + ego-neighbor matching, no training-phase
    message passing.

    The GNN is replaced by one preprocessing pass (neighbor mean); a linear
    projection is trained with a contrastive objective on (node, ego) pairs.
    The score is the negative matching similarity.
    """

    def __init__(self, hidden_dim: int = 32, epochs: int = 25, lr: float = 1e-2,
                 seed=0):
        self.hidden_dim = hidden_dim
        self.epochs = epochs
        self.lr = lr
        self.seed = seed
        self._scores: Optional[np.ndarray] = None

    def fit(self, graph: MultiplexGraph) -> "PREM":
        rng = ensure_rng(self.seed)
        merged = merged_graph(graph)
        ego_np = neighbor_mean(graph.x, merged)
        x = Tensor(graph.x)
        ego = Tensor(ego_np)

        class _Proj(Module):
            def __init__(self, in_dim, hidden, prng):
                super().__init__()
                self.node_proj = Linear(in_dim, hidden, prng)
                self.ego_proj = Linear(in_dim, hidden, prng)

        net = _Proj(graph.num_features, self.hidden_dim, rng)

        def loss_fn():
            hn = ops.row_normalize(net.node_proj(x))
            he = ops.row_normalize(net.ego_proj(ego))
            shift = _derangement(merged.num_nodes, rng)
            pos = ops.mul(ops.sum(ops.mul(hn, he), axis=-1), 5.0)
            neg = ops.mul(ops.sum(ops.mul(hn, ops.gather_rows(he, shift)), axis=-1), 5.0)
            return _bce_pair(pos, neg)

        self.train_state = train_detector(net, loss_fn, self.epochs, self.lr)
        self.loss_history = self.train_state.loss_history
        hn = ops.row_normalize(net.node_proj(x)).data
        he = ops.row_normalize(net.ego_proj(ego)).data
        match = (hn * he).sum(axis=1)
        self._scores = minmax(-match)
        return self


class _GCCADNet(Module):
    def __init__(self, in_dim: int, hidden: int, rng):
        super().__init__()
        self.encoder = GCNStack([in_dim, hidden], rng)


class GCCAD(BaseDetector):
    """GCCAD: graph corruption contrastive coding.

    Pseudo-anomalies are made by corrupting (shuffling) features; the
    encoder learns to place clean nodes near the global context vector and
    corrupted nodes far from it. Score = distance to the global context.
    """

    def __init__(self, hidden_dim: int = 32, epochs: int = 40, lr: float = 5e-3,
                 seed=0):
        self.hidden_dim = hidden_dim
        self.epochs = epochs
        self.lr = lr
        self.seed = seed
        self._scores: Optional[np.ndarray] = None

    def fit(self, graph: MultiplexGraph) -> "GCCAD":
        rng = ensure_rng(self.seed)
        merged = merged_graph(graph)
        prop = merged.sym_propagator()
        x = Tensor(graph.x)
        net = _GCCADNet(graph.num_features, self.hidden_dim, rng)

        def loss_fn():
            h = ops.row_normalize(net.encoder(x, prop))
            context = ops.mean(h, axis=0)
            shuffle = rng.permutation(merged.num_nodes)
            corrupted = Tensor(graph.x[shuffle])
            h_bad = ops.row_normalize(net.encoder(corrupted, prop))
            pos = ops.mul(ops.sum(ops.mul(h, context), axis=-1), 5.0)
            neg = ops.mul(ops.sum(ops.mul(h_bad, context), axis=-1), 5.0)
            return _bce_pair(pos, neg)

        self.train_state = train_detector(net, loss_fn, self.epochs, self.lr)
        self.loss_history = self.train_state.loss_history
        h = ops.row_normalize(net.encoder(x, prop)).data
        context = h.mean(axis=0)
        context /= np.linalg.norm(context) + 1e-12
        self._scores = minmax(-(h @ context))
        return self


class _GradateNet(Module):
    def __init__(self, in_dim: int, hidden: int, rng):
        super().__init__()
        self.encoder = GCNStack([in_dim, hidden], rng)
        self.readout_proj = Linear(in_dim, hidden, rng)
        self.disc = _Bilinear(hidden, rng)


class GRADATE(BaseDetector):
    """GRADATE: multi-scale contrast with an edge-modified augmented view.

    Node-subgraph contrast runs in both the original and an edge-dropped
    view; a subgraph-subgraph term ties the two views' readouts together.
    """

    def __init__(self, hidden_dim: int = 32, epochs: int = 40, lr: float = 5e-3,
                 edge_drop: float = 0.2, balance: float = 0.5, seed=0):
        self.hidden_dim = hidden_dim
        self.epochs = epochs
        self.lr = lr
        self.edge_drop = edge_drop
        self.balance = balance
        self.seed = seed
        self._scores: Optional[np.ndarray] = None

    def fit(self, graph: MultiplexGraph) -> "GRADATE":
        rng = ensure_rng(self.seed)
        merged = merged_graph(graph)
        drop = rng.choice(max(merged.num_edges, 1),
                          size=int(self.edge_drop * merged.num_edges),
                          replace=False)
        view2 = merged.remove_edges(drop)
        prop1, prop2 = merged.sym_propagator(), view2.sym_propagator()
        r1 = Tensor(_row_propagator(merged) @ graph.x)
        r2 = Tensor(_row_propagator(view2) @ graph.x)
        x = Tensor(graph.x)
        net = _GradateNet(graph.num_features, self.hidden_dim, rng)

        def loss_fn():
            h1 = ops.row_normalize(net.encoder(x, prop1))
            h2 = ops.row_normalize(net.encoder(x, prop2))
            p1 = ops.row_normalize(net.readout_proj(r1))
            p2 = ops.row_normalize(net.readout_proj(r2))
            shift = _derangement(merged.num_nodes, rng)
            ns1 = _bce_pair(net.disc(h1, p1), net.disc(h1, ops.gather_rows(p1, shift)))
            ns2 = _bce_pair(net.disc(h2, p2), net.disc(h2, ops.gather_rows(p2, shift)))
            # subgraph-subgraph agreement across views
            ss = ops.mean(ops.sum(ops.mul(ops.sub(p1, p2), ops.sub(p1, p2)), axis=1))
            return ops.add(ops.mul(ops.add(ns1, ns2), self.balance),
                           ops.mul(ss, 1.0 - self.balance))

        self.train_state = train_detector(net, loss_fn, self.epochs, self.lr)
        self.loss_history = self.train_state.loss_history

        h1 = ops.row_normalize(net.encoder(x, prop1))
        p1 = ops.row_normalize(net.readout_proj(r1))
        h2 = ops.row_normalize(net.encoder(x, prop2))
        p2 = ops.row_normalize(net.readout_proj(r2))
        s1 = 1.0 - sigmoid(net.disc(h1, p1).data)
        s2 = 1.0 - sigmoid(net.disc(h2, p2).data)
        cross = np.linalg.norm(p1.data - p2.data, axis=1)
        self._scores = (self.balance * minmax((s1 + s2) / 2.0)
                        + (1.0 - self.balance) * minmax(cross))
        return self


class VGOD(BaseDetector):
    """VGOD: variance-based outlier detection + attribute reconstruction.

    Structural outlierness = variance of a node's neighbors' embeddings
    around the node (high for nodes bridging inconsistent neighborhoods);
    blended with an MLP attribute-reconstruction error.
    """

    def __init__(self, hidden_dim: int = 32, epochs: int = 40, lr: float = 5e-3,
                 balance: float = 0.5, seed=0):
        self.hidden_dim = hidden_dim
        self.epochs = epochs
        self.lr = lr
        self.balance = balance
        self.seed = seed
        self._scores: Optional[np.ndarray] = None

    def fit(self, graph: MultiplexGraph) -> "VGOD":
        rng = ensure_rng(self.seed)
        merged = merged_graph(graph)
        prop = merged.sym_propagator()
        x = Tensor(graph.x)

        class _Net(Module):
            def __init__(self, in_dim, hidden, prng):
                super().__init__()
                self.encoder = GCNStack([in_dim, hidden], prng)
                self.attr_ae = MLP([in_dim, hidden, in_dim], prng)

        net = _Net(graph.num_features, self.hidden_dim, rng)
        row_prop = _row_propagator(merged)

        def loss_fn():
            h = net.encoder(x, prop)
            # Variance objective: pull nodes toward their neighborhood mean
            # (normal nodes comply; anomalies can't without breaking recon).
            diff = ops.sub(h, spmm(row_prop, h))
            var_term = ops.mean(ops.sum(ops.mul(diff, diff), axis=1))
            recon = attribute_mse_loss(net.attr_ae(x), x)
            return ops.add(ops.mul(var_term, self.balance),
                           ops.mul(recon, 1.0 - self.balance))

        self.train_state = train_detector(net, loss_fn, self.epochs, self.lr)
        self.loss_history = self.train_state.loss_history

        h = net.encoder(x, prop).data
        src, dst = merged.directed_pairs()
        n = merged.num_nodes
        # Neighbor variance around each node.
        mean = np.zeros_like(h)
        count = np.zeros(n)
        if src.size:
            np.add.at(mean, dst, h[src])
            np.add.at(count, dst, 1.0)
            mean /= np.maximum(count[:, None], 1.0)
            sq = np.zeros(n)
            np.add.at(sq, dst, ((h[src] - mean[dst]) ** 2).sum(axis=1))
            variance = sq / np.maximum(count, 1.0)
        else:
            variance = np.zeros(n)
        recon_err = np.linalg.norm(net.attr_ae(x).data - graph.x, axis=1)
        self._scores = (self.balance * minmax(variance)
                        + (1.0 - self.balance) * minmax(recon_err))
        return self
