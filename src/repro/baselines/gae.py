"""Graph-autoencoder (GAE) family baselines.

* **DOMINANT** (Ding et al., SDM'19) — GCN encoder, GCN attribute decoder,
  inner-product structure decoder; score = weighted reconstruction error.
* **GCNAE** (Kipf & Welling VGAE, SDM'19 usage) — (variational) GCN
  autoencoder; score from attribute+structure reconstruction.
* **AnomalyDAE** (Fan et al., ICASSP'20) — dual autoencoders: a structure AE
  over the adjacency and an attribute AE over the feature matrix, with
  cross reconstruction.
* **AdONE** (Bandyopadhyay et al., WSDM'20) — autoencoders with explicit
  per-node outlier weights learned to down-weight anomalies; the learned
  weights are the anomaly score.
* **GAD-NR** (Roy et al., WSDM'24) — neighborhood reconstruction: from a
  node's embedding, predict its degree and its neighborhood's feature
  distribution (mean/variance); score = combined reconstruction error.
* **ADA-GAD** (He et al., AAAI'24) — two-stage anomaly-denoised training:
  stage 1 trains on a denoised graph (lowest preliminary-error edges), then
  stage 2 retrains the decoder on the original graph.
* **GADAM** (Chen et al., ICLR'24) — local-inconsistency mining without
  message passing, then adaptive message passing with inconsistency-gated
  edge weights; hybrid score.
"""

from __future__ import annotations

from typing import Optional

import numpy as np
import scipy.sparse as sp

from ..autograd import no_grad, ops
from ..autograd.tensor import Tensor
from ..detection import BaseDetector
from ..graphs.multiplex import MultiplexGraph
from ..engine import TrainState
from ..nn import Linear, Module
from ..utils.rng import ensure_rng
from .common import (
    GCNStack,
    MLP,
    attribute_mse_loss,
    cosine_rows,
    merged_graph,
    minmax,
    neighbor_mean,
    reconstruction_scores,
    structure_bce_loss,
    train_detector,
)


class _EncoderDecoder(Module):
    def __init__(self, in_dim: int, hidden: int, rng):
        super().__init__()
        self.encoder = GCNStack([in_dim, hidden, hidden], rng)
        self.decoder = GCNStack([hidden, in_dim], rng)


class DOMINANT(BaseDetector):
    """Deep anomaly detection on attributed networks."""

    def __init__(self, hidden_dim: int = 32, epochs: int = 50, lr: float = 5e-3,
                 alpha: float = 0.6, seed=0):
        self.hidden_dim = hidden_dim
        self.epochs = epochs
        self.lr = lr
        self.alpha = alpha
        self.seed = seed
        self._scores: Optional[np.ndarray] = None

    def fit(self, graph: MultiplexGraph) -> "DOMINANT":
        rng = ensure_rng(self.seed)
        merged = merged_graph(graph)
        prop = merged.sym_propagator()
        x = Tensor(graph.x)
        net = _EncoderDecoder(graph.num_features, self.hidden_dim, rng)

        def loss_fn():
            z = net.encoder(x, prop)
            x_rec = net.decoder(z, prop)
            return ops.add(
                ops.mul(attribute_mse_loss(x_rec, x), self.alpha),
                ops.mul(structure_bce_loss(z, merged, rng), 1.0 - self.alpha))

        self.train_state = train_detector(net, loss_fn, self.epochs, self.lr)
        self.loss_history = self.train_state.loss_history
        with no_grad():
            z = net.encoder(x, prop)
            x_rec = net.decoder(z, prop)
        self._scores = reconstruction_scores(x_rec.data, graph.x, z.data,
                                             merged, rng, alpha=self.alpha)
        return self


class _VGAENet(Module):
    def __init__(self, in_dim: int, hidden: int, rng):
        super().__init__()
        self.base = GCNStack([in_dim, hidden], rng)
        self.mu_head = GCNStack([hidden, hidden], rng)
        self.logvar_head = GCNStack([hidden, hidden], rng)
        self.attr_decoder = GCNStack([hidden, in_dim], rng)


class GCNAE(BaseDetector):
    """Variational GCN autoencoder detector (GCNAE in the paper's tables)."""

    def __init__(self, hidden_dim: int = 32, epochs: int = 50, lr: float = 5e-3,
                 alpha: float = 0.5, kl_weight: float = 1e-3, seed=0):
        self.hidden_dim = hidden_dim
        self.epochs = epochs
        self.lr = lr
        self.alpha = alpha
        self.kl_weight = kl_weight
        self.seed = seed
        self._scores: Optional[np.ndarray] = None

    def fit(self, graph: MultiplexGraph) -> "GCNAE":
        rng = ensure_rng(self.seed)
        merged = merged_graph(graph)
        prop = merged.sym_propagator()
        x = Tensor(graph.x)
        net = _VGAENet(graph.num_features, self.hidden_dim, rng)

        def loss_fn():
            h = ops.relu(net.base(x, prop))
            mu = net.mu_head(h, prop)
            logvar = ops.clip(net.logvar_head(h, prop), -5.0, 5.0)
            noise = rng.normal(size=mu.shape)
            z = ops.add(mu, ops.mul(ops.exp(ops.mul(logvar, 0.5)), noise))
            x_rec = net.attr_decoder(z, prop)
            kl = ops.mul(ops.mean(
                ops.sub(ops.add(ops.exp(logvar), ops.mul(mu, mu)),
                        ops.add(logvar, 1.0))), 0.5)
            recon = ops.add(
                ops.mul(attribute_mse_loss(x_rec, x), self.alpha),
                ops.mul(structure_bce_loss(z, merged, rng), 1.0 - self.alpha))
            return ops.add(recon, ops.mul(kl, self.kl_weight))

        self.train_state = train_detector(net, loss_fn, self.epochs, self.lr)
        self.loss_history = self.train_state.loss_history
        with no_grad():
            h = ops.relu(net.base(x, prop))
            mu = net.mu_head(h, prop)
            x_rec = net.attr_decoder(mu, prop)
        self._scores = reconstruction_scores(x_rec.data, graph.x, mu.data,
                                             merged, rng, alpha=self.alpha)
        return self


class _AnomalyDAENet(Module):
    def __init__(self, in_dim: int, n: int, hidden: int, rng):
        super().__init__()
        self.struct_encoder = GCNStack([in_dim, hidden], rng)
        self.attr_encoder = MLP([in_dim, hidden], rng)
        self.attr_decoder = MLP([hidden, in_dim], rng)


class AnomalyDAE(BaseDetector):
    """Dual autoencoder: structure AE × attribute AE with cross terms."""

    def __init__(self, hidden_dim: int = 32, epochs: int = 50, lr: float = 5e-3,
                 alpha: float = 0.5, seed=0):
        self.hidden_dim = hidden_dim
        self.epochs = epochs
        self.lr = lr
        self.alpha = alpha
        self.seed = seed
        self._scores: Optional[np.ndarray] = None

    def fit(self, graph: MultiplexGraph) -> "AnomalyDAE":
        rng = ensure_rng(self.seed)
        merged = merged_graph(graph)
        prop = merged.sym_propagator()
        x = Tensor(graph.x)
        net = _AnomalyDAENet(graph.num_features, merged.num_nodes,
                             self.hidden_dim, rng)

        def loss_fn():
            z_s = net.struct_encoder(x, prop)          # structure-aware
            z_a = net.attr_encoder(x)                  # attribute-only
            # Cross reconstruction: attributes decoded from the structure
            # embedding, structure predicted from both embeddings.
            x_rec = net.attr_decoder(z_s)
            struct = structure_bce_loss(ops.add(z_s, z_a), merged, rng)
            return ops.add(ops.mul(attribute_mse_loss(x_rec, x), self.alpha),
                           ops.mul(struct, 1.0 - self.alpha))

        self.train_state = train_detector(net, loss_fn, self.epochs, self.lr)
        self.loss_history = self.train_state.loss_history
        with no_grad():
            z_s = net.struct_encoder(x, prop)
            z_a = net.attr_encoder(x)
            x_rec = net.attr_decoder(z_s)
        z = (z_s.data + z_a.data) / 2.0
        self._scores = reconstruction_scores(x_rec.data, graph.x, z, merged,
                                             rng, alpha=self.alpha)
        return self


class _AdONENet(Module):
    def __init__(self, in_dim: int, hidden: int, rng):
        super().__init__()
        self.attr_ae = MLP([in_dim, hidden, in_dim], rng)
        self.struct_encoder = GCNStack([in_dim, hidden], rng)


class AdONE(BaseDetector):
    """Outlier-resistant embedding: learned per-node outlier weights.

    The reconstruction losses are weighted by ``log(1/o_i)`` with learnable
    outlier scores ``o_i`` (softmax-normalised); training pushes ``o_i`` up
    exactly for nodes the autoencoders cannot explain — those are returned
    as the anomaly scores.
    """

    def __init__(self, hidden_dim: int = 32, epochs: int = 60, lr: float = 1e-2,
                 seed=0):
        self.hidden_dim = hidden_dim
        self.epochs = epochs
        self.lr = lr
        self.seed = seed
        self._scores: Optional[np.ndarray] = None

    def fit(self, graph: MultiplexGraph) -> "AdONE":
        rng = ensure_rng(self.seed)
        merged = merged_graph(graph)
        prop = merged.sym_propagator()
        n = merged.num_nodes
        x = Tensor(graph.x)
        net = _AdONENet(graph.num_features, self.hidden_dim, rng)
        from ..nn import Parameter
        from ..nn import init as nn_init
        net.outlier_logits = Parameter(nn_init.zeros(n), name="adone.outlier")

        # Row-normalised (self-loop-free) propagator for homophily error.
        adj = merged.adjacency()
        deg = np.asarray(adj.sum(axis=1)).ravel()
        inv = np.divide(1.0, deg, out=np.zeros_like(deg), where=deg > 0)
        row_prop = sp.diags(inv) @ adj

        from ..autograd import spmm

        def loss_fn():
            # Outlier weights w_i = -log(o_i) with Σ o_i = 1 (softmax); the
            # interior optimum puts o_i ∝ error_i, i.e. the outlier scores
            # absorb exactly the unexplainable nodes.
            o = ops.softmax(net.outlier_logits, axis=-1)
            w = ops.neg(ops.log(o, eps=1e-12))
            x_rec = net.attr_ae(x)
            attr_err = ops.sum(ops.mul(ops.sub(x_rec, x), ops.sub(x_rec, x)), axis=1)
            z = net.struct_encoder(x, prop)
            hom_diff = ops.sub(z, spmm(row_prop, z))
            hom_err = ops.sum(ops.mul(hom_diff, hom_diff), axis=1)
            return ops.mean(ops.mul(w, ops.add(attr_err, hom_err)))

        self.train_state = train_detector(net, loss_fn, self.epochs, self.lr)
        self.loss_history = self.train_state.loss_history
        o = net.outlier_logits.data
        self._scores = minmax(o)
        return self


class _GADNRNet(Module):
    def __init__(self, in_dim: int, hidden: int, rng):
        super().__init__()
        self.encoder = GCNStack([in_dim, hidden], rng)
        self.self_decoder = MLP([hidden, in_dim], rng)
        self.degree_decoder = MLP([hidden, 1], rng)
        self.neigh_mean_decoder = MLP([hidden, in_dim], rng)


class GADNR(BaseDetector):
    """GAD-NR: reconstruct a node's entire neighborhood from its embedding."""

    def __init__(self, hidden_dim: int = 32, epochs: int = 50, lr: float = 5e-3,
                 weights=(1.0, 0.5, 1.0), seed=0):
        self.hidden_dim = hidden_dim
        self.epochs = epochs
        self.lr = lr
        self.weights = weights
        self.seed = seed
        self._scores: Optional[np.ndarray] = None

    def fit(self, graph: MultiplexGraph) -> "GADNR":
        rng = ensure_rng(self.seed)
        merged = merged_graph(graph)
        prop = merged.sym_propagator()
        x = Tensor(graph.x)
        net = _GADNRNet(graph.num_features, self.hidden_dim, rng)

        log_deg = Tensor(np.log1p(merged.degrees().astype(np.float64))[:, None])
        neigh = Tensor(neighbor_mean(graph.x, merged))
        w_self, w_deg, w_neigh = self.weights

        def loss_fn():
            z = net.encoder(x, prop)
            self_err = attribute_mse_loss(net.self_decoder(z), x)
            deg_err = attribute_mse_loss(net.degree_decoder(z), log_deg)
            neigh_err = attribute_mse_loss(net.neigh_mean_decoder(z), neigh)
            return ops.add(ops.add(ops.mul(self_err, w_self),
                                   ops.mul(deg_err, w_deg)),
                           ops.mul(neigh_err, w_neigh))

        self.train_state = train_detector(net, loss_fn, self.epochs, self.lr)
        self.loss_history = self.train_state.loss_history
        with no_grad():
            z = net.encoder(x, prop)
            self_err = np.linalg.norm(net.self_decoder(z).data - graph.x,
                                      axis=1)
            deg_err = np.abs(net.degree_decoder(z).data.ravel()
                             - np.log1p(merged.degrees()))
            neigh_err = np.linalg.norm(net.neigh_mean_decoder(z).data
                                       - neighbor_mean(graph.x, merged),
                                       axis=1)
        w_self, w_deg, w_neigh = self.weights
        self._scores = (w_self * minmax(self_err) + w_deg * minmax(deg_err)
                        + w_neigh * minmax(neigh_err)) / (w_self + w_deg + w_neigh)
        return self


class ADAGAD(BaseDetector):
    """ADA-GAD: anomaly-denoised two-stage autoencoder training.

    Stage 1 computes preliminary reconstruction errors, builds a *denoised*
    graph by dropping the highest-error edges and retrains the encoder on
    it; stage 2 freezes the encoder and retrains the decoder on the original
    graph. Scoring uses the stage-2 reconstruction on the original graph.
    """

    def __init__(self, hidden_dim: int = 32, epochs: int = 30, lr: float = 5e-3,
                 denoise_ratio: float = 0.15, alpha: float = 0.6, seed=0):
        self.hidden_dim = hidden_dim
        self.epochs = epochs
        self.lr = lr
        self.denoise_ratio = denoise_ratio
        self.alpha = alpha
        self.seed = seed
        self._scores: Optional[np.ndarray] = None

    def fit(self, graph: MultiplexGraph) -> "ADAGAD":
        rng = ensure_rng(self.seed)
        merged = merged_graph(graph)
        x = Tensor(graph.x)

        # --- preliminary pass: quick AE to rank edges by endpoint error
        pre = _EncoderDecoder(graph.num_features, self.hidden_dim, rng)
        prop = merged.sym_propagator()

        def pre_loss():
            z = pre.encoder(x, prop)
            return attribute_mse_loss(pre.decoder(z, prop), x)

        pre_state = train_detector(pre, pre_loss, max(5, self.epochs // 3),
                                   self.lr)
        pre_err = np.linalg.norm(
            pre.decoder(pre.encoder(x, prop), prop).data - graph.x, axis=1)
        edge_err = pre_err[merged.edges[:, 0]] + pre_err[merged.edges[:, 1]]
        cut = int(self.denoise_ratio * merged.num_edges)
        denoised = (merged.remove_edges(np.argsort(-edge_err)[:cut])
                    if cut else merged)

        # --- stage 1: train encoder+decoder on the denoised graph
        net = _EncoderDecoder(graph.num_features, self.hidden_dim, rng)
        d_prop = denoised.sym_propagator()

        def stage1_loss():
            z = net.encoder(x, d_prop)
            x_rec = net.decoder(z, d_prop)
            return ops.add(
                ops.mul(attribute_mse_loss(x_rec, x), self.alpha),
                ops.mul(structure_bce_loss(z, denoised, rng), 1.0 - self.alpha))

        stage1_state = train_detector(net, stage1_loss, self.epochs, self.lr)

        # --- stage 2: freeze encoder, retrain decoder on the ORIGINAL graph
        frozen_z = Tensor(net.encoder(x, d_prop).data)

        def stage2_loss():
            x_rec = net.decoder(frozen_z, prop)
            return attribute_mse_loss(x_rec, x)

        stage2_state = train_detector(net.decoder, stage2_loss,
                                      max(5, self.epochs // 2), self.lr)
        self.train_state = TrainState.concat([pre_state, stage1_state,
                                              stage2_state])
        self.loss_history = self.train_state.loss_history

        with no_grad():
            x_rec = net.decoder(frozen_z, prop).data
        self._scores = reconstruction_scores(x_rec, graph.x, frozen_z.data,
                                             merged, rng, alpha=self.alpha)
        return self


class GADAM(BaseDetector):
    """GADAM: local-inconsistency mining + adaptive message passing.

    Phase 1 (LIM): message-passing-free inconsistency — one minus the cosine
    between a node's attributes and its neighborhood mean. Phase 2: messages
    are re-aggregated with edge weights gated by endpoint consistency, and
    the final score blends both phases.
    """

    def __init__(self, blend: float = 0.5, rounds: int = 2, seed=0):
        self.blend = float(blend)
        self.rounds = int(rounds)
        self.seed = seed
        self._scores: Optional[np.ndarray] = None

    def fit(self, graph: MultiplexGraph) -> "GADAM":
        merged = merged_graph(graph)
        x = graph.x
        n = merged.num_nodes

        # Phase 1: local inconsistency mining.
        agg = neighbor_mean(x, merged)
        lim = 1.0 - cosine_rows(x, agg)

        # Phase 2: adaptive message passing — gate edges by consistency.
        src, dst = merged.directed_pairs()
        h = x.copy()
        for _ in range(self.rounds):
            if src.size == 0:
                break
            consistency = 1.0 - 0.5 * (lim[src] + lim[dst])
            denom = np.zeros(n)
            np.add.at(denom, dst, consistency)
            weights = consistency / np.maximum(denom[dst], 1e-12)
            new_h = np.zeros_like(h)
            np.add.at(new_h, dst, weights[:, None] * h[src])
            h = 0.5 * x + 0.5 * new_h
        adaptive = 1.0 - cosine_rows(x, h)

        self._scores = (self.blend * minmax(lim)
                        + (1.0 - self.blend) * minmax(adaptive))
        return self
