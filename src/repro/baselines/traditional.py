"""Traditional (non-GNN) baseline: Radar (Li et al., IJCAI'17).

Radar characterises anomalies through the *residual* of attribute
information after explaining each node's attributes from the rest of the
graph, with network-consistency (Laplacian) regularisation. We implement the
core alternating optimisation of the original paper on the merged graph:

    min_W  ||X - W X||²_F + α·||W||²_F + β·tr(RᵀLR),  R = X - W X

where ``W`` is a node-by-node reconstruction matrix (here restricted to
graph neighborhoods for tractability) and the anomaly score is the row norm
of the residual ``R``.
"""

from __future__ import annotations

from typing import Optional

import numpy as np
import scipy.sparse as sp

from ..detection import BaseDetector
from ..graphs.multiplex import MultiplexGraph
from ..utils.rng import ensure_rng
from .common import merged_graph, minmax


class Radar(BaseDetector):
    """Residual analysis for anomaly detection in attributed networks.

    Parameters follow the original objective: ``alpha`` penalises the
    reconstruction matrix, ``beta`` weights network consistency,
    ``iterations`` alternates residual/update steps.
    """

    def __init__(self, alpha: float = 1.0, beta: float = 0.5,
                 iterations: int = 10, seed=0):
        self.alpha = float(alpha)
        self.beta = float(beta)
        self.iterations = int(iterations)
        self.seed = seed
        self._scores: Optional[np.ndarray] = None

    def fit(self, graph: MultiplexGraph) -> "Radar":
        rng = ensure_rng(self.seed)  # noqa: F841  (kept for API symmetry)
        merged = merged_graph(graph)
        x = graph.x
        n = merged.num_nodes

        # Neighborhood reconstruction operator restricted to the graph:
        # each node is explained by the (degree-normalised) attributes of
        # its neighbors, shrunk by the ridge penalty alpha.
        adj = merged.adjacency()
        deg = np.asarray(adj.sum(axis=1)).ravel()
        inv = np.divide(1.0, deg + self.alpha, out=np.zeros(n), where=(deg + self.alpha) > 0)
        smooth = sp.diags(inv) @ adj  # ridge-shrunk neighborhood average

        # Laplacian for the consistency term.
        lap = sp.diags(deg) - adj

        residual = x - smooth @ x
        for _ in range(self.iterations):
            # Gradient step on tr(R^T L R): push residuals of connected
            # nodes together, so anomalies (inconsistent with neighbors)
            # keep large residuals.
            residual = residual - self.beta * 0.05 * (lap @ residual)
            reconstructed = smooth @ (x - residual)
            residual = 0.5 * residual + 0.5 * (x - reconstructed)

        self._scores = minmax(np.linalg.norm(residual, axis=1))
        return self
