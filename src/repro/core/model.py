"""UMGAD: the full model (paper Sec. IV).

Three components trained jointly end-to-end:

1. **Original-view graph reconstruction** (Sec. IV-A): per relation, a
   GAT-encoder/SGC-decoder GMAE reconstructs masked node attributes (Eq. 1–4)
   and masked edges (Eq. 5–7); relation importance is fused with learnable
   weights ``a_r`` (attributes, Eq. 3) and ``b_r`` (structure losses, Eq. 8).
2. **Augmented-view graph reconstruction** (Sec. IV-B): an attribute-level
   view built by swapping node attributes (Eq. 10–13) and a subgraph-level
   view built by RWR subgraph masking (Eq. 14–16), each with SGC-based GMAEs.
3. **Dual-view contrastive learning** (Sec. IV-C, Eq. 17) between the
   original-view reconstruction and each augmented-view reconstruction.

The total objective is Eq. 18; anomaly scores follow Eq. 19 and the
unsupervised threshold Sec. IV-E (see :mod:`repro.core.threshold`).

Documented deviations from the paper (also listed in DESIGN.md):

* The ``K`` mask repeats share encoder/decoder weights (the paper indexes
  weights by ``(r, k)``); repeats act as mask resampling, which is the
  standard GraphMAE practice and keeps the parameter count linear in ``R``.
* Fusion weights ``a_r`` / ``b_r`` are softmax-normalised. Raw weights make
  Eq. 8 unbounded below (the optimiser could drive ``b_r → -∞``).
* Contrastive and edge-prediction dot products are computed on
  L2-normalised vectors with a temperature for numerical stability.
"""

from __future__ import annotations

from contextlib import nullcontext
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..autograd import is_grad_enabled, no_grad, ops
from ..autograd.tensor import Tensor
from ..detection import BaseDetector
from ..engine import (
    EarlyStopping,
    GradClip,
    ProgressLogger,
    Trainer,
    TrainState,
    make_batch_strategy,
)
from ..graphs.masking import attribute_mask, attribute_swap, edge_mask, subgraph_mask
from ..graphs.multiplex import MultiplexGraph
from ..nn import Adam, Module, ModuleList, Parameter, init
from ..obs.trace import span
from ..utils.rng import ensure_rng
from ..utils.timer import Timer
from .config import UMGADConfig
from .gmae import GMAE
from .losses import dual_view_contrastive, masked_edge_loss, scaled_cosine_error
from .scoring import (
    attribute_errors,
    combine_view_score,
    fast_score_enabled,
    structure_errors,
)


class _Networks(Module):
    """Parameter container: per-relation GMAEs + fusion weights."""

    def __init__(self, num_relations: int, num_features: int, cfg: UMGADConfig,
                 rng: np.random.Generator):
        super().__init__()

        def bank(kind: str) -> ModuleList:
            return ModuleList([
                GMAE(num_features, cfg.hidden_dim, rng, encoder=kind,
                     encoder_layers=cfg.encoder_layers,
                     decoder_propagation=cfg.decoder_propagation,
                     gat_heads=cfg.gat_heads)
                for _ in range(num_relations)
            ])

        self.attr = bank("gat")       # original view, attribute GMAE (W_enc1)
        self.struct = bank("gat")     # original view, structure GMAE (W_enc2)
        self.attr_aug = bank("sgc")   # attribute-level augmented view (W_enc3)
        self.sub_aug = bank("sgc")    # subgraph-level augmented view
        # Learnable relation-fusion weights, initialised from a normal
        # distribution as in the paper, consumed through a softmax.
        self.a_raw = Parameter(init.normal((num_relations,), rng, std=0.1),
                               name="fusion.a")
        self.b_raw = Parameter(init.normal((num_relations,), rng, std=0.1),
                               name="fusion.b")


class UMGAD(BaseDetector):
    """Unsupervised Multiplex Graph Anomaly Detection.

    Usage::

        model = UMGAD(UMGADConfig(epochs=50))
        model.fit(graph)
        scores = model.decision_scores()
        predictions = model.predict()          # label-free threshold
    """

    def __init__(self, config: Optional[UMGADConfig] = None):
        self.config = config or UMGADConfig()
        self.networks: Optional[_Networks] = None
        self.loss_history: List[float] = []
        self.loss_components: List[Dict[str, float]] = []
        self.train_state: Optional[TrainState] = None
        self.timer = Timer()
        self._scores: Optional[np.ndarray] = None
        self._graph: Optional[MultiplexGraph] = None
        self._relation_names: Optional[List[str]] = None
        self._num_features: Optional[int] = None
        self._rng = ensure_rng(self.config.seed)

    # ------------------------------------------------------------------
    # Training
    # ------------------------------------------------------------------
    def fit(self, graph: MultiplexGraph, verbose: bool = False) -> "UMGAD":
        cfg = self.config
        self._graph = graph
        self._relation_names = graph.relation_names
        self._num_features = graph.num_features
        self._rng = ensure_rng(cfg.seed)
        self.networks = _Networks(graph.num_relations, graph.num_features, cfg,
                                  self._rng)
        optimizer = Adam(self.networks.parameters(), lr=cfg.learning_rate,
                         weight_decay=cfg.weight_decay)

        callbacks = []
        if cfg.grad_clip:
            callbacks.append(GradClip(cfg.grad_clip))
        if verbose:
            callbacks.append(ProgressLogger(every=max(1, cfg.epochs // 10)))
        if cfg.early_stop_patience:
            callbacks.append(EarlyStopping(cfg.early_stop_patience,
                                           cfg.early_stop_min_delta,
                                           verbose=verbose))
        trainer = Trainer(
            self.networks, optimizer,
            batch_strategy=make_batch_strategy(
                cfg.batch, batch_size=cfg.batch_size,
                batches_per_epoch=cfg.batches_per_epoch,
                walk_size=cfg.batch_walk_size, restart_prob=cfg.rwr_restart,
                seed=cfg.seed),
            callbacks=callbacks, timer=self.timer)
        state = trainer.fit(graph, lambda batch: self._epoch_loss(batch.graph),
                            cfg.epochs)
        self.train_state = state
        self.loss_history = state.loss_history
        self.loss_components = state.loss_components

        with self.timer.measure("scoring"):
            self._scores = self._compute_scores(graph)
        return self

    # ------------------------------------------------------------------
    def _relation_list(self, graph: MultiplexGraph):
        return [graph[name] for name in graph.relation_names]

    def _fusion_weights(self, raw: Parameter) -> Tensor:
        if self.config.relation_fusion == "uniform":
            n = raw.data.shape[0]
            return Tensor(np.full(n, 1.0 / n))
        return ops.softmax(raw, axis=-1)

    def _fuse(self, recons: List[Tensor], weights: Tensor) -> Tensor:
        """Eq. 3 / 12: ``Σ_r a_r X^{r}`` with learnable (softmaxed) weights."""
        fused = None
        for r, rec in enumerate(recons):
            term = ops.mul(rec, ops.index(weights, r))
            fused = term if fused is None else ops.add(fused, term)
        return fused

    # ------------------------------------------------------------------
    def _epoch_loss(self, graph: MultiplexGraph) -> Tuple[Tensor, Dict[str, float]]:
        cfg = self.config
        rng = self._rng
        nets = self.networks
        x = Tensor(graph.x)
        relations = self._relation_list(graph)
        n = graph.num_nodes

        a_w = self._fusion_weights(nets.a_raw)
        b_w = self._fusion_weights(nets.b_raw)

        total = Tensor(0.0)
        parts: Dict[str, float] = {}
        z_ma = z_aa = z_sa = None

        want_attr = cfg.mode in ("full", "att")
        want_struct = cfg.mode in ("full", "str")
        want_sub = cfg.mode in ("full", "sub", "str")

        # ---------------- Original view (Sec. IV-A) ----------------
        if cfg.use_original and (want_attr or want_struct):
            loss_attr = Tensor(0.0)
            loss_struct = Tensor(0.0)
            fused_accum = None
            for _k in range(cfg.mask_repeats):
                if want_attr:
                    mask = (attribute_mask(n, cfg.mask_ratio, rng).nodes
                            if cfg.use_mask else np.empty(0, dtype=np.int64))
                    recons = [nets.attr[r].forward(x, rel, masked_nodes=mask)
                              for r, rel in enumerate(relations)]
                    fused = self._fuse(recons, a_w)
                    target_nodes = mask if cfg.use_mask else np.arange(n)
                    loss_attr = ops.add(
                        loss_attr,
                        scaled_cosine_error(fused, x, target_nodes, cfg.eta))
                    fused_accum = fused if fused_accum is None else ops.add(fused_accum, fused)
                if want_struct:
                    for r, rel in enumerate(relations):
                        if cfg.use_mask:
                            em = edge_mask(rel, cfg.mask_ratio, rng)
                            remaining, targets = em.remaining, em.masked_edges
                        else:
                            remaining = rel
                            idx = rng.choice(max(rel.num_edges, 1),
                                             size=max(1, int(rel.num_edges * cfg.mask_ratio)))
                            targets = rel.edges[idx % max(rel.num_edges, 1)] \
                                if rel.num_edges else np.empty((0, 2), dtype=np.int64)
                        decoded = nets.struct[r].forward(x, remaining)
                        rel_loss = masked_edge_loss(
                            decoded, targets, n, rng,
                            negative_samples=cfg.negative_samples,
                            temperature=cfg.contrast_temperature)
                        loss_struct = ops.add(
                            loss_struct, ops.mul(rel_loss, ops.index(b_w, r)))
            if want_attr and want_struct:
                orig = ops.add(ops.mul(loss_attr, cfg.alpha),
                               ops.mul(loss_struct, 1.0 - cfg.alpha))
            elif want_attr:
                orig = loss_attr
            else:
                orig = loss_struct
            total = ops.add(total, orig)
            parts["L_O"] = float(orig.data)
            if fused_accum is not None:
                z_ma = ops.div(fused_accum, float(cfg.mask_repeats))

        # -------- Attribute-level augmented view (Sec. IV-B1) --------
        if cfg.use_augmented and cfg.use_attr_aug and want_attr:
            loss_aug = Tensor(0.0)
            fused_accum = None
            for _k in range(cfg.mask_repeats):
                x_swapped, swapped = attribute_swap(graph.x, cfg.swap_ratio, rng)
                x_aug = Tensor(x_swapped)
                mask = swapped if cfg.use_mask else np.empty(0, dtype=np.int64)
                recons = [nets.attr_aug[r].forward(x_aug, rel, masked_nodes=mask)
                          for r, rel in enumerate(relations)]
                fused = self._fuse(recons, a_w)
                # Eq. 13: reconstruction is compared against the ORIGINAL
                # attributes of the swapped nodes.
                loss_aug = ops.add(
                    loss_aug, scaled_cosine_error(fused, x, swapped, cfg.eta))
                fused_accum = fused if fused_accum is None else ops.add(fused_accum, fused)
            total = ops.add(total, ops.mul(loss_aug, cfg.lam))
            parts["L_A_Aug"] = float(loss_aug.data)
            z_aa = ops.div(fused_accum, float(cfg.mask_repeats))

        # -------- Subgraph-level augmented view (Sec. IV-B2) --------
        if cfg.use_augmented and cfg.use_subgraph_aug and want_sub:
            loss_sa = Tensor(0.0)
            loss_ss = Tensor(0.0)
            fused_accum = None
            for _k in range(cfg.mask_repeats):
                recons = []
                union_nodes: List[np.ndarray] = []
                for r, rel in enumerate(relations):
                    sm = subgraph_mask(rel, cfg.num_subgraphs, cfg.subgraph_size,
                                       rng, restart_prob=cfg.rwr_restart)
                    if cfg.use_mask:
                        masked_nodes = sm.nodes
                        remaining = sm.remaining
                    else:
                        masked_nodes = np.empty(0, dtype=np.int64)
                        remaining = rel
                    decoded = nets.sub_aug[r].forward(x, remaining,
                                                      masked_nodes=masked_nodes)
                    recons.append(decoded)
                    union_nodes.append(sm.nodes)
                    if cfg.mode != "att":
                        rel_loss = masked_edge_loss(
                            decoded, sm.masked_edges, n, rng,
                            negative_samples=cfg.negative_samples,
                            temperature=cfg.contrast_temperature)
                        loss_ss = ops.add(
                            loss_ss, ops.mul(rel_loss, ops.index(b_w, r)))
                fused = self._fuse(recons, a_w)
                nodes = np.unique(np.concatenate(union_nodes))
                loss_sa = ops.add(
                    loss_sa, scaled_cosine_error(fused, x, nodes, cfg.eta))
                fused_accum = fused if fused_accum is None else ops.add(fused_accum, fused)
            sub = ops.add(ops.mul(loss_sa, cfg.beta),
                          ops.mul(loss_ss, 1.0 - cfg.beta))
            total = ops.add(total, ops.mul(sub, cfg.mu))
            parts["L_S_Aug"] = float(sub.data)
            z_sa = ops.div(fused_accum, float(cfg.mask_repeats))

        # -------- Dual-view contrastive learning (Sec. IV-C) --------
        if cfg.use_contrastive and z_ma is not None and (z_aa is not None
                                                         or z_sa is not None):
            loss_cl = Tensor(0.0)
            if z_aa is not None:
                loss_cl = ops.add(loss_cl, dual_view_contrastive(
                    z_ma, z_aa, rng, temperature=cfg.contrast_temperature))
            if z_sa is not None:
                loss_cl = ops.add(loss_cl, dual_view_contrastive(
                    z_ma, z_sa, rng, temperature=cfg.contrast_temperature))
            total = ops.add(total, ops.mul(loss_cl, cfg.theta))
            parts["L_CL"] = float(loss_cl.data)

        return total, parts

    # ------------------------------------------------------------------
    # Scoring (Eq. 19)
    # ------------------------------------------------------------------
    def _eval_fusion_weights(self) -> np.ndarray:
        raw = self.networks.a_raw.data
        if self.config.relation_fusion == "uniform":
            return np.full(raw.shape[0], 1.0 / raw.shape[0])
        weights = np.exp(raw - raw.max())
        return weights / weights.sum()

    def _fused_eval_recon(self, bank: ModuleList, graph: MultiplexGraph,
                          cache: Optional[dict] = None):
        """Mask-free reconstruction pass; returns (fused, per-relation).

        ``cache`` — a per-scoring-call dict — memoises the pass per bank,
        so the views of one :meth:`_compute_scores` call never repeat an
        identical full forward (the pass consumes no RNG, so reuse is
        bitwise-invisible).
        """
        if cache is not None and id(bank) in cache:
            return cache[id(bank)]
        with span("score.fused_pass") as sp:
            x = Tensor(graph.x)
            relations = self._relation_list(graph)
            sp.set("relations", len(relations))
            weights = self._eval_fusion_weights()
            per_rel = []
            fused = np.zeros_like(graph.x)
            for r, rel in enumerate(relations):
                rec = bank[r].forward(x, rel).data
                per_rel.append(rec)
                fused = fused + weights[r] * rec
        if cache is not None:
            cache[id(bank)] = (fused, per_rel)
        return fused, per_rel

    def _masked_eval_recon(self, bank: ModuleList, graph: MultiplexGraph,
                           cache: Optional[dict] = None):
        """Imputation-style reconstruction for scoring.

        Nodes are partitioned into ``ceil(1/r_m)`` disjoint groups; each
        group is [MASK]ed in turn and its rows are reconstructed from
        context only. This matches the training distribution of the GMAE —
        an unmasked pass lets the autoencoder copy its input, flattening
        the anomaly signal. Falls back to the unmasked pass when masking is
        ablated (w/o M), which is exactly that variant's point.

        Fast path (the default, see :func:`fast_score_enabled`): when the
        call runs under :func:`~repro.autograd.no_grad`, the group loop is
        replaced by one stacked forward per relation
        (:meth:`~repro.core.gmae.GMAE.impute_grouped`) — bitwise-identical
        and pinned by the parity fixtures.
        """
        if not self.config.use_mask:
            return self._fused_eval_recon(graph=graph, bank=bank, cache=cache)
        with span("score.masked_group") as sp:
            x = Tensor(graph.x)
            relations = self._relation_list(graph)
            weights = self._eval_fusion_weights()
            n = graph.num_nodes
            num_groups = max(2, int(np.ceil(1.0 / self.config.mask_ratio)))
            perm = self._rng.permutation(n)
            groups = [g for g in np.array_split(perm, num_groups) if g.size]
            sp.set("groups", len(groups))
            sp.set("relations", len(relations))

            # Batched only when the fast engine is on AND the tape is off —
            # checking the flag here (not just the grad state) keeps the
            # REPRO_DISABLE_FAST_SCORE escape hatch effective even when a
            # caller wraps scoring in their own no_grad().
            if fast_score_enabled() and not is_grad_enabled():
                per_rel = [bank[r].impute_grouped(x, rel, groups)
                           for r, rel in enumerate(relations)]
            else:
                per_rel = [np.zeros_like(graph.x) for _ in relations]
                for group in groups:
                    for r, rel in enumerate(relations):
                        rec = bank[r].forward(x, rel, masked_nodes=group).data
                        per_rel[r][group] = rec[group]

            # Degree-aware fusion: a masked node can only be imputed from
            # relations where it actually has neighbors — fusing in a
            # neighbor-less relation's output injects pure mask-token noise
            # (this dominates on sparse graphs like DG-Fin). Rows with no
            # neighbors anywhere fall back to the unweighted mean so their
            # score is driven by the structure term instead.
            avail = np.stack([rel.degrees() > 0 for rel in relations], axis=1)
            w_matrix = avail * weights[None, :]
            row_sum = w_matrix.sum(axis=1, keepdims=True)
            no_context = row_sum.ravel() <= 0
            w_matrix[no_context] = 1.0 / len(relations)
            row_sum = w_matrix.sum(axis=1, keepdims=True)
            w_matrix = w_matrix / row_sum

            fused = np.zeros_like(graph.x)
            for r in range(len(relations)):
                fused += w_matrix[:, r:r + 1] * per_rel[r]
            return fused, per_rel

    def _view_score(self, graph: MultiplexGraph, fused: np.ndarray,
                    per_rel: List[np.ndarray], include_attr: bool,
                    include_struct: bool, fast: bool = False) -> np.ndarray:
        cfg = self.config
        relations = self._relation_list(graph)
        attr_err = None
        if include_attr:
            with span("score.attributes"):
                attr_err = attribute_errors(fused, graph.x,
                                            metric=cfg.attr_score_metric)
                # A node with no neighbors in any relation has no
                # imputation context: its "reconstruction" is mask-token
                # noise, not evidence. Neutralise those to the median so
                # isolated normal nodes (common on sparse graphs) don't
                # flood the top ranks.
                has_context = np.zeros(graph.num_nodes, dtype=bool)
                for rel in relations:
                    has_context |= rel.degrees() > 0
                if has_context.any() and (~has_context).any():
                    attr_err[~has_context] = np.median(attr_err[has_context])
        struct_errs = []
        if include_struct:
            with span("score.structure") as sp:
                sp.set("relations", len(relations))
                for rel, decoded in zip(relations, per_rel):
                    struct_errs.append(structure_errors(
                        decoded, rel, cfg.structure_score_mode, self._rng,
                        negatives_per_node=cfg.structure_score_negatives,
                        exact_max_nodes=cfg.exact_score_max_nodes,
                        fast=fast))
        return combine_view_score(attr_err, struct_errs, cfg.epsilon)

    def _compute_scores(self, graph: MultiplexGraph) -> np.ndarray:
        """Eq. 19 over the configured views.

        By default this runs the grad-free engine: the networks flip to
        eval mode, the whole pass sits under ``no_grad()`` (tape-free
        forwards, CSR attention kernels, stacked mask groups), identical
        fused passes are shared through a per-call cache, and the sampled
        structure scorer takes its fast kernels. ``REPRO_DISABLE_FAST_SCORE=1``
        restores the sequential tape-recording path; both produce
        bit-identical scores (pinned by ``tests/fixtures/score_parity.json``
        and the in-process parity assertions).
        """
        cfg = self.config
        nets = self.networks
        include_attr = cfg.mode in ("full", "att")
        include_struct = cfg.mode in ("full", "str", "sub")
        fast = fast_score_enabled()
        cache: Optional[dict] = {} if fast else None
        views = []

        was_training = nets.training
        nets.eval()
        try:
            with (no_grad() if fast else nullcontext()):
                if cfg.use_original and cfg.mode != "sub":
                    with span("score.view") as sp:
                        sp.set("view", "original")
                        fused, _ = self._masked_eval_recon(
                            nets.attr, graph, cache)
                        if cfg.mode in ("full", "str"):
                            # structure term from the structure-GMAE's
                            # decoded features (full-graph decode: edge
                            # prediction needs full context)
                            _, per_rel_struct = self._fused_eval_recon(
                                nets.struct, graph, cache)
                        else:
                            # mode == "att": the view ignores the structure
                            # term entirely, so don't pay a full fused pass
                            # for decoded features nobody reads
                            per_rel_struct = []
                        views.append(self._view_score(
                            graph, fused, per_rel_struct, include_attr,
                            include_struct, fast=fast))

                if cfg.use_augmented and cfg.use_attr_aug and \
                        cfg.mode in ("full", "att"):
                    with span("score.view") as sp:
                        sp.set("view", "attr_aug")
                        fused, per_rel = self._masked_eval_recon(
                            nets.attr_aug, graph, cache)
                        if include_struct and cfg.mode == "full":
                            _, per_rel = self._fused_eval_recon(
                                nets.attr_aug, graph, cache)
                        views.append(self._view_score(
                            graph, fused, per_rel, include_attr,
                            include_struct and cfg.mode == "full",
                            fast=fast))

                if cfg.use_augmented and cfg.use_subgraph_aug and \
                        cfg.mode in ("full", "sub", "str"):
                    with span("score.view") as sp:
                        sp.set("view", "sub_aug")
                        fused, _ = self._masked_eval_recon(
                            nets.sub_aug, graph, cache)
                        _, per_rel = self._fused_eval_recon(
                            nets.sub_aug, graph, cache)
                        views.append(self._view_score(
                            graph, fused, per_rel, include_attr,
                            include_struct, fast=fast))
        finally:
            nets.train(was_training)

        if not views:
            raise RuntimeError(
                "configuration disables every view; nothing to score")
        with span("score.aggregate") as sp:
            sp.set("views", len(views))
            return np.mean(views, axis=0)

    # ------------------------------------------------------------------
    @property
    def relation_importance(self) -> Dict[str, float]:
        """Learned attribute-fusion weights per relation (softmaxed a_r)."""
        if self.networks is None or self._relation_names is None:
            raise RuntimeError("fit() the model first")
        weights = self._eval_fusion_weights()
        return dict(zip(self._relation_names, weights.tolist()))

    # ------------------------------------------------------------------
    # Persistence + serving (repro.serve)
    # ------------------------------------------------------------------
    def build_networks(self, relation_names: List[str],
                       num_features: int) -> "UMGAD":
        """Allocate untrained networks with the right shapes.

        Used by checkpoint loading: the freshly initialised weights are
        immediately overwritten by :meth:`load_state_dict`, so only the
        shapes (relation count, feature dim) matter here.
        """
        self._relation_names = list(relation_names)
        self._num_features = int(num_features)
        self.networks = _Networks(len(self._relation_names), self._num_features,
                                  self.config, ensure_rng(self.config.seed))
        return self

    def state_dict(self) -> Dict[str, np.ndarray]:
        """Flat name → array dict of every trainable parameter."""
        if self.networks is None:
            raise RuntimeError("fit() the model before taking a state dict")
        return self.networks.state_dict()

    def load_state_dict(self, state: Dict[str, np.ndarray],
                        copy: bool = True) -> None:
        """Strictly load arrays produced by :meth:`state_dict`.

        ``copy=False`` aliases the arrays (shared-memory serving tier).
        """
        if self.networks is None:
            raise RuntimeError(
                "allocate networks first (fit() or build_networks())")
        self.networks.load_state_dict(state, copy=copy)

    def score_graph(self, graph: MultiplexGraph,
                    seed: Optional[int] = None) -> np.ndarray:
        """Score a graph with the trained networks, without refitting.

        Unlike the scores cached by :meth:`fit`, this pass seeds a fresh
        generator (``seed`` or ``config.seed``) so repeated calls — and
        calls on a checkpoint-loaded copy of the model — produce bitwise
        identical results for the same graph.
        """
        if self.networks is None:
            raise RuntimeError("fit() or load a checkpoint before scoring")
        if self._num_features is not None and \
                graph.num_features != self._num_features:
            raise ValueError(
                f"graph has {graph.num_features} features, model was trained "
                f"with {self._num_features}")
        if self._relation_names is not None and \
                graph.num_relations != len(self._relation_names):
            raise ValueError(
                f"graph has {graph.num_relations} relations, model was "
                f"trained with {len(self._relation_names)}")
        saved_rng = self._rng
        self._rng = ensure_rng(self.config.seed if seed is None else seed)
        try:
            return self._compute_scores(graph)
        finally:
            self._rng = saved_rng
