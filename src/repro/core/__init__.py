"""UMGAD core: model, config, losses, scoring, threshold selection."""

from .config import UMGADConfig, ablation_config
from .explain import AnomalyExplainer, Explanation
from .gmae import GMAE
from .model import UMGAD
from .threshold import (
    ThresholdResult,
    default_window,
    moving_average,
    predict_with_threshold,
    select_threshold,
)

__all__ = [
    "AnomalyExplainer",
    "Explanation",
    "GMAE",
    "ThresholdResult",
    "UMGAD",
    "UMGADConfig",
    "ablation_config",
    "default_window",
    "moving_average",
    "predict_with_threshold",
    "select_threshold",
]
