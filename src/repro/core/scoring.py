"""Anomaly scoring (Eq. 19) — attribute and structure reconstruction errors.

Per view ``* ∈ {O, A_Aug, S_Aug}`` and node ``i``:

``S_*(i) = ε · ||x̃_*(i) − x(i)||₂ + (1 − ε) · (1/R) Σ_r err(ζ̃ʳ_*(i), ζʳ(i))``

where the structure error compares the reconstructed adjacency row
``ζ̃ʳ(i) = σ(z_i · z_jᵀ)`` against the observed binary row. (The paper's
norm notation is internally swapped — its text defines ``||·||₁`` as the
Euclidean norm and ``||·||₂`` as the L1 norm; we use Euclidean for the
attribute residual and mean absolute error for the structure row, matching
the intent.)

Two structure-error implementations:

* **exact** — full ``n × n`` reconstruction, computed in row blocks;
* **sampled** — per node, only its observed neighbors plus ``q`` sampled
  non-neighbors are evaluated (the RQ3 large-graph path).

Deviation noted in DESIGN.md: each error term is min–max normalised across
nodes before the ε-mix so the two terms are commensurable (the common
DOMINANT-style practice; the paper's ε is otherwise scale-dependent).
"""

from __future__ import annotations

import os
from functools import lru_cache
from typing import Dict, Iterable, List, Optional

import numpy as np
import scipy.sparse as sp

from ..graphs.graph import RelationGraph


def fast_score_enabled() -> bool:
    """True unless ``REPRO_DISABLE_FAST_SCORE=1`` opts back into the
    sequential tape-recording scoring path (kept as a byte-exact fallback
    and as the baseline the perf benchmarks compare against). Checked by
    every layer of the grad-free engine — model, GMAE, serving — so the
    escape hatch holds even inside an ambient ``no_grad()`` region."""
    return os.environ.get("REPRO_DISABLE_FAST_SCORE", "") in ("", "0")


def _sigmoid(x: np.ndarray) -> np.ndarray:
    return 1.0 / (1.0 + np.exp(-np.clip(x, -60.0, 60.0)))


@lru_cache(maxsize=4)
def _query_rows(n: int, q: int) -> np.ndarray:
    """``repeat(arange(n), q)`` — the row index of every sampled pair.

    Identical across the many sampled-structure calls of one scoring pass
    (3 views × R relations), so cache the few-MB array instead of
    rebuilding it per call.
    """
    return np.repeat(np.arange(n), q)


def _sample_adjacency(adj: sp.csr_matrix, rows: np.ndarray,
                      cols: np.ndarray) -> np.ndarray:
    """``adj[rows, cols]`` as a flat array, skipping the fancy-index wrapper.

    ``adj[rows, cols]`` spends most of its time in scipy's generic index
    validation and ``np.matrix`` packaging; the underlying
    ``csr_sample_values`` kernel reads the same entries directly. Falls
    back to the public path if the private kernel moves.
    """
    try:
        from scipy.sparse import _sparsetools

        out = np.empty(rows.size, dtype=adj.dtype)
        _sparsetools.csr_sample_values(
            adj.shape[0], adj.shape[1], adj.indptr, adj.indices, adj.data,
            rows.size, rows.astype(adj.indices.dtype, copy=False),
            cols.astype(adj.indices.dtype, copy=False), out)
        return out
    except (ImportError, AttributeError):  # pragma: no cover - old scipy
        return np.asarray(adj[rows, cols]).ravel()


def minmax_normalize(values: np.ndarray) -> np.ndarray:
    """Scale to [0, 1]; constant input maps to zeros."""
    values = np.asarray(values, dtype=np.float64)
    lo, hi = values.min(), values.max()
    if hi - lo < 1e-12:
        return np.zeros_like(values)
    return (values - lo) / (hi - lo)


def attribute_errors(reconstructed: np.ndarray, original: np.ndarray,
                     metric: str = "cosine") -> np.ndarray:
    """Per-node attribute residual.

    ``metric="euclidean"`` is the literal Eq. 19 (``||x̃(i) − x(i)||₂``);
    ``metric="cosine"`` (default) is ``1 − cos(x̃(i), x(i))`` — the same
    residual the training loss (Eq. 4) minimises. The cosine form is
    scale-invariant, which matters for camouflaged anomalies whose feature
    *norms* shrink toward the global mean: Euclidean error under-scores
    exactly those nodes (documented deviation, DESIGN.md §1).
    """
    if metric == "euclidean":
        return np.linalg.norm(reconstructed - original, axis=1)
    if metric == "cosine":
        num = (reconstructed * original).sum(axis=1)
        den = (np.linalg.norm(reconstructed, axis=1)
               * np.linalg.norm(original, axis=1) + 1e-12)
        return 1.0 - num / den
    raise ValueError(f"unknown attribute error metric {metric!r}")


#: inverse-temperature applied to normalised inner products before the
#: sigmoid — cosine logits live in [-1, 1], where the raw sigmoid is stuck
#: in [0.27, 0.73] and every non-edge looks half-wrong; sharpening matches
#: the temperature the structure loss trains with.
LOGIT_SCALE = 4.0


def structure_errors_exact(decoded: np.ndarray, graph: RelationGraph,
                           block_size: int = 1024) -> np.ndarray:
    """Mean absolute error between ``σ(z zᵀ)`` rows and adjacency rows."""
    n = graph.num_nodes
    z = decoded / (np.linalg.norm(decoded, axis=1, keepdims=True) + 1e-12)
    adj = graph.adjacency()
    errors = np.empty(n, dtype=np.float64)
    for start in range(0, n, block_size):
        stop = min(start + block_size, n)
        recon = _sigmoid(LOGIT_SCALE * (z[start:stop] @ z.T))
        dense_rows = np.asarray(adj[start:stop].todense())
        errors[start:stop] = np.abs(recon - dense_rows).mean(axis=1)
    return errors


def structure_errors_sampled(decoded: np.ndarray, graph: RelationGraph,
                             rng: np.random.Generator,
                             negatives_per_node: int = 20,
                             fast: bool = False) -> np.ndarray:
    """Neighbor + sampled-negative estimate of the structure row error.

    For node ``i``: error over its observed neighbors (should reconstruct
    to ~1) plus ``negatives_per_node`` random non-edges (should be ~0),
    averaged. Unbiased up to the negative subsample, O(E + n·q) total.

    ``fast=True`` (the grad-free scoring engine) draws the identical
    negative sample and returns bit-identical errors through cheaper
    kernels: bincount scatter (same accumulation order as ``np.add.at``),
    a clip-free sigmoid (the cosine logits live in ``±LOGIT_SCALE``, far
    inside the clip range, so the clamp is the identity), and per-column
    contractions into preallocated buffers that skip the ``(n, q, f)``
    gather (verified bit-equal to the one-shot einsum).
    """
    n = graph.num_nodes
    z = decoded / (np.linalg.norm(decoded, axis=1, keepdims=True) + 1e-12)
    adj = graph.adjacency()

    if fast:
        if graph.num_edges:
            src, dst = graph.directed_pairs()
            logits = LOGIT_SCALE * np.einsum("ij,ij->i", z[src], z[dst])
            per_edge = np.abs(1.0 / (1.0 + np.exp(-logits)) - 1.0)
            pos_err = np.bincount(src, weights=per_edge, minlength=n)
            deg = np.bincount(src, minlength=n).astype(np.float64)
        else:
            pos_err = np.zeros(n, dtype=np.float64)
            deg = np.zeros(n, dtype=np.float64)

        neg_idx = rng.integers(0, n, size=(n, negatives_per_node))
        # Column-at-a-time contraction: skips materialising the (n, q, f)
        # gather, which is the hot allocation of the one-shot einsum, and
        # is verified bit-equal to it (tests/test_grad_mode.py).
        gathered = np.empty_like(z)
        neg_pred = np.empty((n, negatives_per_node), dtype=z.dtype)
        for k in range(negatives_per_node):
            np.take(z, neg_idx[:, k], axis=0, out=gathered)
            col = LOGIT_SCALE * np.einsum("ij,ij->i", z, gathered)
            neg_pred[:, k] = 1.0 / (1.0 + np.exp(-col))
        rows = _query_rows(n, negatives_per_node)
        is_edge = _sample_adjacency(adj, rows, neg_idx.ravel()).reshape(
            n, negatives_per_node)
        neg_err = np.abs(neg_pred - is_edge).sum(axis=1)

        total = pos_err + neg_err
        count = deg + negatives_per_node
        return total / count

    pos_err = np.zeros(n, dtype=np.float64)
    deg = np.zeros(n, dtype=np.float64)
    if graph.num_edges:
        src, dst = graph.directed_pairs()
        logits = LOGIT_SCALE * np.einsum("ij,ij->i", z[src], z[dst])
        per_edge = np.abs(_sigmoid(logits) - 1.0)
        np.add.at(pos_err, src, per_edge)
        np.add.at(deg, src, 1.0)

    neg_idx = rng.integers(0, n, size=(n, negatives_per_node))
    neg_logits = LOGIT_SCALE * np.einsum("ij,ikj->ik", z, z[neg_idx])
    neg_pred = _sigmoid(neg_logits)
    # Sampled pairs that happen to be true edges contribute |p - 1| instead.
    rows = np.repeat(np.arange(n), negatives_per_node)
    is_edge = np.asarray(adj[rows, neg_idx.ravel()]).ravel().reshape(n, negatives_per_node)
    neg_err = np.abs(neg_pred - is_edge).sum(axis=1)

    total = pos_err + neg_err
    count = deg + negatives_per_node
    return total / count


def structure_errors(decoded: np.ndarray, graph: RelationGraph,
                     mode: str, rng: np.random.Generator,
                     negatives_per_node: int = 20,
                     exact_max_nodes: int = 4000,
                     fast: bool = False) -> np.ndarray:
    """Dispatch between exact and sampled structure error.

    ``fast`` routes sampled mode through its grad-free kernels (bitwise
    identical; see :func:`structure_errors_sampled`). Exact mode has no
    fast variant — it is one blocked BLAS product either way.
    """
    if mode == "auto":
        mode = "exact" if graph.num_nodes <= exact_max_nodes else "sampled"
    if mode == "exact":
        return structure_errors_exact(decoded, graph)
    if mode == "sampled":
        return structure_errors_sampled(decoded, graph, rng,
                                        negatives_per_node=negatives_per_node,
                                        fast=fast)
    raise ValueError(f"unknown structure score mode {mode!r}")


def combine_view_score(attr_err: Optional[np.ndarray],
                       struct_errs: Iterable[np.ndarray],
                       epsilon: float) -> np.ndarray:
    """ε-mix of normalised attribute and (relation-averaged) structure error."""
    struct_errs = list(struct_errs)
    parts = []
    if attr_err is not None:
        parts.append(epsilon * minmax_normalize(attr_err))
    if struct_errs:
        mean_struct = np.mean([minmax_normalize(e) for e in struct_errs], axis=0)
        parts.append((1.0 - epsilon) * mean_struct)
    if not parts:
        raise ValueError("no score components to combine")
    if len(parts) == 1:
        # Single-term variants (Fig. 6 Att/Str): drop the ε weighting so the
        # score is the normalised error itself.
        return minmax_normalize(parts[0])
    return np.sum(parts, axis=0)
