"""Per-node anomaly explanations.

The paper reports a single scalar score per node; a production deployment
needs to answer *why* a node was flagged. This module decomposes a fitted
UMGAD model's score into interpretable evidence:

* attribute evidence — the masked-imputation residual, with the most
  deviating feature dimensions;
* structure evidence — per-relation reconstruction error of the node's
  adjacency row;
* relation attribution — which relations (weighted by the learned a_r)
  carried the signal;
* nearest normal behaviour — how far the node's imputed attributes sit
  from its actual attributes relative to the population.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

import numpy as np

from ..autograd import no_grad
from ..graphs.multiplex import MultiplexGraph
from .model import UMGAD
from .scoring import attribute_errors, structure_errors


@dataclass(frozen=True)
class Explanation:
    """Evidence for one node's anomaly score."""

    node: int
    score: float
    score_percentile: float
    attribute_error: float
    attribute_percentile: float
    structure_errors: Dict[str, float]
    structure_percentiles: Dict[str, float]
    top_deviant_features: List[int]
    relation_weights: Dict[str, float]

    def summary(self) -> str:
        """One-paragraph human-readable explanation."""
        lines = [
            f"node {self.node}: score {self.score:.4f} "
            f"(p{self.score_percentile:.0f} of all nodes)",
            f"  attribute residual {self.attribute_error:.4f} "
            f"(p{self.attribute_percentile:.0f}); most deviant feature dims: "
            f"{self.top_deviant_features}",
        ]
        for rel, err in self.structure_errors.items():
            lines.append(
                f"  structure[{rel}] error {err:.4f} "
                f"(p{self.structure_percentiles[rel]:.0f}, "
                f"fusion weight {self.relation_weights[rel]:.2f})")
        return "\n".join(lines)


class AnomalyExplainer:
    """Decompose a fitted UMGAD model's scores into per-node evidence.

    Usage::

        explainer = AnomalyExplainer(model, graph)
        print(explainer.explain(worst_node).summary())
    """

    def __init__(self, model: UMGAD, graph: MultiplexGraph,
                 scores: Optional[np.ndarray] = None):
        if model.networks is None:
            raise RuntimeError("fit the model before explaining")
        self.model = model
        self.graph = graph
        # ``scores`` lets the serving layer explain a graph other than the
        # training graph (whose scores are what decision_scores() returns).
        self._scores_override = scores
        self._prepare()

    def _prepare(self) -> None:
        from contextlib import nullcontext

        from .scoring import fast_score_enabled

        model, graph = self.model, self.graph
        cfg = model.config
        # no_grad: evidence gathering is pure inference — tape-free
        # forwards through the same grad-free engine scoring uses (and the
        # same REPRO_DISABLE_FAST_SCORE escape hatch).
        with (no_grad() if fast_score_enabled() else nullcontext()):
            fused, _ = model._masked_eval_recon(model.networks.attr, graph)
            _, per_rel = model._fused_eval_recon(model.networks.struct, graph)
        self._fused = fused
        self._attr_err = attribute_errors(fused, graph.x,
                                          metric=cfg.attr_score_metric)
        self._struct_err = {}
        for name, decoded in zip(graph.relation_names, per_rel):
            self._struct_err[name] = structure_errors(
                decoded, graph[name], cfg.structure_score_mode, model._rng,
                negatives_per_node=cfg.structure_score_negatives,
                exact_max_nodes=cfg.exact_score_max_nodes)
        self._scores = (self._scores_override if self._scores_override
                        is not None else model.decision_scores())

    @staticmethod
    def _percentile(values: np.ndarray, value: float) -> float:
        return float(100.0 * (values < value).mean())

    def explain(self, node: int, top_features: int = 5) -> Explanation:
        """Build the evidence bundle for ``node``."""
        node = int(node)
        if not 0 <= node < self.graph.num_nodes:
            raise IndexError(f"node {node} out of range [0, {self.graph.num_nodes})")
        residual = np.abs(self._fused[node] - self.graph.x[node])
        deviant = np.argsort(-residual)[:top_features].tolist()
        struct = {name: float(err[node])
                  for name, err in self._struct_err.items()}
        struct_pct = {name: self._percentile(err, err[node])
                      for name, err in self._struct_err.items()}
        return Explanation(
            node=node,
            score=float(self._scores[node]),
            score_percentile=self._percentile(self._scores, self._scores[node]),
            attribute_error=float(self._attr_err[node]),
            attribute_percentile=self._percentile(self._attr_err,
                                                  self._attr_err[node]),
            structure_errors=struct,
            structure_percentiles=struct_pct,
            top_deviant_features=deviant,
            relation_weights=self.model.relation_importance,
        )

    def top_anomalies(self, k: int = 10) -> List[Explanation]:
        """Explanations for the ``k`` highest-scoring nodes."""
        order = np.argsort(-self._scores)[:k]
        return [self.explain(int(i)) for i in order]
