"""UMGAD loss kernels (Eqs. 4, 7, 13, 15, 17).

All functions take/return autograd tensors so they can sit inside the
training graph. Numerical-stability deviations from the paper's formulas are
noted inline.
"""

from __future__ import annotations

import numpy as np

from ..autograd import ops
from ..autograd.tensor import Tensor


def scaled_cosine_error(reconstructed: Tensor, original: Tensor,
                        nodes: np.ndarray, eta: float) -> Tensor:
    """Masked-node attribute reconstruction loss (Eq. 4 / 13 / 15 kernel).

    ``mean_i (1 - cos(x̃_i, x_i))^η`` over the masked node subset — the
    scaled cosine error of GraphMAE, with the paper's scaling factor η.
    """
    if nodes.size == 0:
        return Tensor(0.0)
    rec = ops.gather_rows(reconstructed, nodes)
    org = ops.gather_rows(original, nodes)
    cos = ops.cosine_similarity(rec, org, axis=-1)
    err = ops.power(ops.clip(ops.sub(1.0, cos), 0.0, 2.0), eta)
    return ops.mean(err)


def masked_edge_loss(decoded: Tensor, masked_edges: np.ndarray,
                     num_nodes: int, rng: np.random.Generator,
                     negative_samples: int = 5,
                     temperature: float = 0.5) -> Tensor:
    """Masked-edge prediction loss with negative sampling (Eq. 7 / 15).

    For each masked edge ``(v, u)`` the model must rank the true endpoint
    ``u`` above ``negative_samples`` uniformly drawn non-endpoints ``u'``
    using the decoded-feature inner product ``g(v, u)``. Deviation from the
    raw formula: decoded rows are L2-normalised and divided by a temperature
    before the softmax — raw f-dimensional inner products overflow ``exp``;
    normalisation keeps the objective identical up to scale.
    """
    if masked_edges.size == 0:
        return Tensor(0.0)
    masked_edges = np.asarray(masked_edges, dtype=np.int64).reshape(-1, 2)
    m = masked_edges.shape[0]

    z = ops.row_normalize(decoded)
    v = ops.gather_rows(z, masked_edges[:, 0])        # (m, f)
    u = ops.gather_rows(z, masked_edges[:, 1])        # (m, f)
    negatives = rng.integers(0, num_nodes, size=(m, negative_samples))
    neg = ops.gather_rows(z, negatives.ravel())       # (m*k, f)
    neg = ops.reshape(neg, (m, negative_samples, z.shape[1]))

    pos_logit = ops.div(ops.sum(ops.mul(v, u), axis=-1), temperature)      # (m,)
    v_expanded = ops.reshape(v, (m, 1, z.shape[1]))
    neg_logit = ops.div(ops.sum(ops.mul(v_expanded, neg), axis=-1), temperature)  # (m, k)

    logits = ops.concat([ops.reshape(pos_logit, (m, 1)), neg_logit], axis=1)
    log_probs = ops.log_softmax(logits, axis=1)
    # Cross-entropy with the positive always in column 0.
    return ops.neg(ops.mean(ops.index(log_probs, (slice(None), 0))))


def dual_view_contrastive(z_original: Tensor, z_augmented: Tensor,
                          rng: np.random.Generator,
                          temperature: float = 0.5) -> Tensor:
    """One term of the dual-view contrastive loss (Eq. 17).

    Positive pair: node ``i`` across the two views. Negative pairs: node
    ``i`` in the original view vs a random other node ``j`` in each view
    (sampled as a derangement so ``j != i``). Deviation: embeddings are
    L2-normalised with a temperature for stable exponentials.
    """
    n = z_original.shape[0]
    za = ops.row_normalize(z_original)
    zb = ops.row_normalize(z_augmented)

    # Derangement: shift a random permutation so j(i) != i.
    perm = rng.permutation(n)
    shift = perm[(np.arange(n) + 1) % n]
    collision = shift == np.arange(n)
    if np.any(collision):
        shift[collision] = (shift[collision] + 1) % n

    pos = ops.div(ops.sum(ops.mul(za, zb), axis=-1), temperature)
    neg_same = ops.div(ops.sum(ops.mul(za, ops.gather_rows(za, shift)), axis=-1),
                       temperature)
    neg_cross = ops.div(ops.sum(ops.mul(za, ops.gather_rows(zb, shift)), axis=-1),
                        temperature)

    m = pos.shape[0]
    logits = ops.concat([
        ops.reshape(pos, (m, 1)),
        ops.reshape(neg_same, (m, 1)),
        ops.reshape(neg_cross, (m, 1)),
    ], axis=1)
    log_probs = ops.log_softmax(logits, axis=1)
    return ops.neg(ops.mean(ops.index(log_probs, (slice(None), 0))))
