"""Graph-masked autoencoder (GMAE) building block.

One GMAE pairs an encoder (GAT, or simplified GCN for the augmented views,
matching Sec. V-A3: "Our method adopts GAT and simplified GCN as the encoder
and decoder") with a simplified-GCN decoder that maps hidden states back to
attribute space. The learnable ``[MASK]`` token lives here too.

Scoring fast path: under :func:`~repro.autograd.grad_mode.no_grad`,
:meth:`GMAE.forward` routes GAT layers through their CSR inference kernel,
and :meth:`GMAE.impute_grouped` evaluates all disjoint mask groups of a
masked scoring pass as one stacked forward over the relation's cached
block-diagonal propagator — bitwise-identical to the sequential per-group
forwards it replaces.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np
import scipy.sparse as sp

from ..autograd import grad_mode, ops
from ..autograd.tensor import Tensor
from ..graphs.graph import RelationGraph
from ..nn import GATConv, Module, ModuleList, Parameter, SGCConv, init


class GMAE(Module):
    """Encoder/decoder pair with an optional learnable mask token.

    Parameters
    ----------
    in_features / hidden_dim:
        Attribute and latent dimensionalities (``f`` and ``d_h``).
    encoder:
        ``"gat"`` (original view) or ``"sgc"`` (augmented views).
    encoder_layers:
        Depth of the encoder stack (paper: 2 for real-anomaly datasets,
        1 for injected ones).
    """

    def __init__(self, in_features: int, hidden_dim: int, rng: np.random.Generator,
                 encoder: str = "gat", encoder_layers: int = 1,
                 decoder_propagation: int = 1, gat_heads: int = 1):
        super().__init__()
        if encoder not in ("gat", "sgc"):
            raise ValueError(f"unknown encoder kind {encoder!r}")
        self.kind = encoder
        self.in_features = in_features
        self.hidden_dim = hidden_dim
        self.mask_token = Parameter(init.normal((1, in_features), rng, std=0.1),
                                    name="gmae.mask_token")

        layers = []
        dims = [in_features] + [hidden_dim] * encoder_layers
        for d_in, d_out in zip(dims[:-1], dims[1:]):
            if encoder == "gat":
                layers.append(GATConv(d_in, d_out, rng, heads=gat_heads,
                                      concat_heads=False))
            else:
                layers.append(SGCConv(d_in, d_out, rng, propagation=1))
        self.encoder = ModuleList(layers)
        self.decoder = SGCConv(hidden_dim, in_features, rng,
                               propagation=decoder_propagation)

    # ------------------------------------------------------------------
    def apply_mask(self, x: Tensor, masked_nodes: np.ndarray) -> Tensor:
        """Replace the rows of ``masked_nodes`` with the [MASK] token."""
        if masked_nodes.size == 0:
            return x
        return ops.set_rows(x, masked_nodes, self.mask_token)

    def encode(self, x: Tensor, graph: RelationGraph,
               propagator: Optional[sp.spmatrix] = None) -> Tensor:
        """Run the encoder stack over ``graph``'s structure."""
        h = x
        if self.kind == "gat":
            from .scoring import fast_score_enabled

            src, dst = graph.directed_pairs()
            inference = (not grad_mode.is_grad_enabled()
                         and fast_score_enabled())
            for i, layer in enumerate(self.encoder):
                scatter = (graph.gat_scatter(1, layer.add_self_loops)
                           if inference else None)
                h = layer(h, src, dst, num_nodes=graph.num_nodes,
                          scatter=scatter)
                if i + 1 < len(self.encoder):
                    h = ops.elu(h)
        else:
            prop = propagator if propagator is not None else graph.sym_propagator()
            for i, layer in enumerate(self.encoder):
                h = layer(h, prop)
                if i + 1 < len(self.encoder):
                    h = ops.elu(h)
        return h

    def decode(self, hidden: Tensor, graph: RelationGraph,
               propagator: Optional[sp.spmatrix] = None) -> Tensor:
        """Decode hidden states back to attribute space."""
        prop = propagator if propagator is not None else graph.sym_propagator()
        return self.decoder(hidden, prop)

    def forward(self, x: Tensor, graph: RelationGraph,
                masked_nodes: Optional[np.ndarray] = None) -> Tensor:
        """Full masked-autoencoding pass; returns reconstructed attributes."""
        if masked_nodes is not None and masked_nodes.size:
            x = self.apply_mask(x, masked_nodes)
        hidden = self.encode(x, graph)
        return self.decode(hidden, graph)

    # ------------------------------------------------------------------
    # Grad-free batched masked scoring
    # ------------------------------------------------------------------
    def impute_grouped(self, x: Tensor, graph: RelationGraph,
                       groups: List[np.ndarray]) -> np.ndarray:
        """Impute every node from ``g`` disjoint mask groups in one pass.

        Equivalent to running :meth:`forward` once per group with that
        group's rows masked and keeping each run's masked rows — but the
        ``g`` runs are stacked into a single ``(g·n, f)`` forward over the
        relation's cached block-diagonal propagator / tiled GAT scatter,
        so every layer does one wide product instead of ``g`` narrow ones.
        Three further savings, all bitwise-invisible (BLAS gemm and CSR
        row results depend only on the row's inputs, which the parity
        tests pin):

        * the first layer's ``X W`` is computed once on the shared
          unmasked rows (plus one ``[MASK] W`` row) and tiled, instead of
          ``g`` times on near-identical inputs;
        * the decoder's final propagation only evaluates the rows each
          copy actually contributes (its own mask group);
        * nothing is recorded on the tape.

        Returns the assembled ``(n, f)`` imputation matrix (row ``i``
        reconstructed with its group masked). Inference-only: call under
        :func:`~repro.autograd.no_grad` (asserted), as no gradient flows
        to the mask token or weights.
        """
        if grad_mode.is_grad_enabled():
            raise RuntimeError(
                "impute_grouped is an inference kernel; wrap the call in "
                "autograd.no_grad()")
        n = graph.num_nodes
        copies = len(groups)
        base = x.data if isinstance(x, Tensor) else np.asarray(x)
        offsets = np.arange(copies, dtype=np.int64) * n
        stacked_rows = np.concatenate(
            [group + off for group, off in zip(groups, offsets)])

        # First linear layer on [X; mask_token] once, then tile + patch.
        first = self.encoder[0]
        token = self.mask_token.data
        with_token = np.concatenate([base, token], axis=0) @ first.weight.data
        hidden = np.tile(with_token[:n], (copies, 1))
        hidden[stacked_rows] = with_token[n]

        if self.kind == "gat":
            scatter = graph.gat_scatter(copies, first.add_self_loops)
            # Attention halves are row-wise in h, so tile-and-patch them
            # exactly like the hidden rows instead of recomputing per copy.
            a_src, a_dst = first.attention_halves(with_token)
            alphas = []
            for half in (a_src, a_dst):
                stacked = np.tile(half[:n], (copies, 1))
                stacked[stacked_rows] = half[n]
                alphas.append(stacked)
            h = first.inference_from_hidden(hidden, scatter, tuple(alphas))
            for i, layer in enumerate(self.encoder):
                if i == 0:
                    continue
                h = ops.elu(h)
                h = layer(h, None, None, num_nodes=scatter.num_nodes,
                          scatter=graph.gat_scatter(copies,
                                                    layer.add_self_loops))
        else:
            prop = graph.block_propagator(copies)
            h = Tensor(hidden)
            for i, layer in enumerate(self.encoder):
                if i == 0:
                    for _ in range(first.propagation):
                        h = Tensor(prop @ h.data)
                    if first.bias is not None:
                        h = Tensor(h.data + first.bias.data)
                else:
                    h = layer(ops.elu(h), prop)

        # Decoder: full gemm + all-but-last full hops, then only the rows
        # each copy contributes (its mask group) through the final hop.
        prop = graph.block_propagator(copies)
        decoded = h.data @ self.decoder.weight.data
        for _ in range(self.decoder.propagation - 1):
            decoded = prop @ decoded
        if self.decoder.propagation == 0:
            rows = decoded[stacked_rows]
        else:
            rows = prop[stacked_rows] @ decoded
        if self.decoder.bias is not None:
            rows = rows + self.decoder.bias.data

        # Same dtype (and cast, for float32 graphs fed by the float64 GAT
        # attention promotion) as the sequential path's per-relation buffer.
        out = np.zeros((n, base.shape[1]), dtype=base.dtype)
        out[np.concatenate(groups)] = rows
        return out
