"""Graph-masked autoencoder (GMAE) building block.

One GMAE pairs an encoder (GAT, or simplified GCN for the augmented views,
matching Sec. V-A3: "Our method adopts GAT and simplified GCN as the encoder
and decoder") with a simplified-GCN decoder that maps hidden states back to
attribute space. The learnable ``[MASK]`` token lives here too.
"""

from __future__ import annotations

from typing import Optional

import numpy as np
import scipy.sparse as sp

from ..autograd import ops
from ..autograd.tensor import Tensor
from ..graphs.graph import RelationGraph
from ..nn import GATConv, Module, ModuleList, Parameter, SGCConv, init


class GMAE(Module):
    """Encoder/decoder pair with an optional learnable mask token.

    Parameters
    ----------
    in_features / hidden_dim:
        Attribute and latent dimensionalities (``f`` and ``d_h``).
    encoder:
        ``"gat"`` (original view) or ``"sgc"`` (augmented views).
    encoder_layers:
        Depth of the encoder stack (paper: 2 for real-anomaly datasets,
        1 for injected ones).
    """

    def __init__(self, in_features: int, hidden_dim: int, rng: np.random.Generator,
                 encoder: str = "gat", encoder_layers: int = 1,
                 decoder_propagation: int = 1, gat_heads: int = 1):
        super().__init__()
        if encoder not in ("gat", "sgc"):
            raise ValueError(f"unknown encoder kind {encoder!r}")
        self.kind = encoder
        self.in_features = in_features
        self.hidden_dim = hidden_dim
        self.mask_token = Parameter(init.normal((1, in_features), rng, std=0.1),
                                    name="gmae.mask_token")

        layers = []
        dims = [in_features] + [hidden_dim] * encoder_layers
        for d_in, d_out in zip(dims[:-1], dims[1:]):
            if encoder == "gat":
                layers.append(GATConv(d_in, d_out, rng, heads=gat_heads,
                                      concat_heads=False))
            else:
                layers.append(SGCConv(d_in, d_out, rng, propagation=1))
        self.encoder = ModuleList(layers)
        self.decoder = SGCConv(hidden_dim, in_features, rng,
                               propagation=decoder_propagation)

    # ------------------------------------------------------------------
    def apply_mask(self, x: Tensor, masked_nodes: np.ndarray) -> Tensor:
        """Replace the rows of ``masked_nodes`` with the [MASK] token."""
        if masked_nodes.size == 0:
            return x
        return ops.set_rows(x, masked_nodes, self.mask_token)

    def encode(self, x: Tensor, graph: RelationGraph,
               propagator: Optional[sp.spmatrix] = None) -> Tensor:
        """Run the encoder stack over ``graph``'s structure."""
        h = x
        if self.kind == "gat":
            src, dst = graph.directed_pairs()
            for i, layer in enumerate(self.encoder):
                h = layer(h, src, dst, num_nodes=graph.num_nodes)
                if i + 1 < len(self.encoder):
                    h = ops.elu(h)
        else:
            prop = propagator if propagator is not None else graph.sym_propagator()
            for i, layer in enumerate(self.encoder):
                h = layer(h, prop)
                if i + 1 < len(self.encoder):
                    h = ops.elu(h)
        return h

    def decode(self, hidden: Tensor, graph: RelationGraph,
               propagator: Optional[sp.spmatrix] = None) -> Tensor:
        """Decode hidden states back to attribute space."""
        prop = propagator if propagator is not None else graph.sym_propagator()
        return self.decoder(hidden, prop)

    def forward(self, x: Tensor, graph: RelationGraph,
                masked_nodes: Optional[np.ndarray] = None) -> Tensor:
        """Full masked-autoencoding pass; returns reconstructed attributes."""
        if masked_nodes is not None and masked_nodes.size:
            x = self.apply_mask(x, masked_nodes)
        hidden = self.encode(x, graph)
        return self.decode(hidden, graph)
